//! The Fig. 1 privacy-control walkthrough: the three VA modes and the
//! soft-mute / session semantics, driven purely through the state machine
//! (no audio rendering, runs instantly).
//!
//! ```text
//! cargo run --example privacy_control
//! ```

use headtalk::control::{PrivacyController, VaEvent, VaMode, VaResponse};

fn show(va: &PrivacyController, what: &str, response: VaResponse) {
    println!(
        "  {what:<48} -> {response:?} (mode {:?}, session {})",
        va.mode(),
        if va.session_active() {
            "open"
        } else {
            "closed"
        }
    );
}

fn main() {
    let mut va = PrivacyController::new();
    println!("A day with a HeadTalk-enabled voice assistant (Fig. 1):\n");

    println!("Normal mode — the stock behaviour:");
    let r = va.handle(VaEvent::WakeDetected {
        live: false,
        facing: false,
    });
    show(&va, "TV says the wake word (replay!)", r);
    assert!(
        r.audio_forwarded_to_cloud(),
        "normal mode forwards everything"
    );
    va.handle(VaEvent::SessionEnded);

    println!("\nUser: \"Alexa, enter HeadTalk mode\"");
    va.handle(VaEvent::EnterHeadTalkMode);
    assert_eq!(va.mode(), VaMode::HeadTalk);

    println!("HeadTalk mode:");
    let r = va.handle(VaEvent::WakeDetected {
        live: false,
        facing: true,
    });
    show(&va, "TV says the wake word again", r);
    let r = va.handle(VaEvent::WakeDetected {
        live: true,
        facing: false,
    });
    show(&va, "user speaks while facing away", r);
    let r = va.handle(VaEvent::WakeDetected {
        live: true,
        facing: true,
    });
    show(&va, "user turns to the device and speaks", r);
    let r = va.handle(VaEvent::WakeDetected {
        live: true,
        facing: false,
    });
    show(&va, "follow-up command, no longer facing (same session)", r);
    assert!(
        r.audio_forwarded_to_cloud(),
        "sessions persist without facing"
    );
    va.handle(VaEvent::SessionEnded);
    let r = va.handle(VaEvent::WakeDetected {
        live: true,
        facing: false,
    });
    show(&va, "new command after the session ended, not facing", r);
    assert_eq!(r, VaResponse::SoftMuted);

    println!("\nMute button (hard mute):");
    va.handle(VaEvent::MuteButton);
    let r = va.handle(VaEvent::WakeDetected {
        live: true,
        facing: true,
    });
    show(&va, "facing user speaks while hard-muted", r);
    assert_eq!(r, VaResponse::HardMuted);
    va.handle(VaEvent::UnmuteButton);
    println!("\nUnmuted; back to {:?} mode.", va.mode());
}
