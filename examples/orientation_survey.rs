//! Orientation survey: sweep a speaker through the paper's 14 collection
//! angles and watch the facing classifier's verdicts — a miniature Fig. 10.
//!
//! ```text
//! cargo run --release --example orientation_survey
//! ```

use headtalk::facing::{zone_of, FacingDefinition, FacingZone};
use headtalk::orientation::{ModelKind, OrientationDetector};
use headtalk::{HeadTalk, PipelineConfig};
use ht_datagen::CaptureSpec;
use ht_ml::{Classifier, Dataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = PipelineConfig::default();
    let def = FacingDefinition::Definition4;

    // Train on a handful of repetitions per Definition-4 angle…
    println!("Training the orientation detector (Definition-4 labels)…");
    let mut feats = Vec::new();
    let mut labels = Vec::new();
    for (i, angle) in ht_acoustics::geometry::PAPER_ANGLES_DEG
        .into_iter()
        .enumerate()
    {
        let Some(label) = def.label(angle) else {
            continue;
        };
        for rep in 0..3u64 {
            let spec = CaptureSpec {
                angle_deg: angle,
                seed: 500 + i as u64 * 8 + rep,
                ..CaptureSpec::baseline(0)
            };
            feats.push(HeadTalk::orientation_features(&config, &spec.render()?)?);
            labels.push(label);
        }
    }
    let det = OrientationDetector::fit(&Dataset::from_parts(feats, labels)?, ModelKind::Svm, 7)?;

    // …then sweep every angle with fresh captures.
    println!("\nangle   zone        verdict      score");
    let mut sweep: Vec<f64> = ht_acoustics::geometry::PAPER_ANGLES_DEG.to_vec();
    sweep.extend(ht_acoustics::geometry::EXTRA_ANGLES_DEG);
    sweep.sort_by(f64::total_cmp);
    for (i, angle) in sweep.into_iter().enumerate() {
        let spec = CaptureSpec {
            angle_deg: angle,
            seed: 7000 + i as u64,
            ..CaptureSpec::baseline(0)
        };
        let fv = HeadTalk::orientation_features(&config, &spec.render()?)?;
        let facing = det.is_facing(&fv);
        let score = det.decision_score(&fv);
        let zone = match zone_of(angle) {
            FacingZone::Facing => "facing",
            FacingZone::Blind => "borderline",
            FacingZone::NonFacing => "non-facing",
        };
        println!(
            "{angle:>6.0}° {zone:<11} {:<12} {score:+.2}",
            if facing { "FACING" } else { "not facing" }
        );
    }
    println!("\nBorderline angles (±45°…±75°) sit in the paper's \"blind zone\": the classifier is allowed to go either way there.");
    Ok(())
}
