//! Replay-attack demonstration: the spectral signature that betrays a
//! loudspeaker (Fig. 3) and a liveness detector that exploits it.
//!
//! ```text
//! cargo run --release --example replay_attack
//! ```

use headtalk::liveness::LivenessDetector;
use headtalk::{HeadTalk, PipelineConfig};
use ht_datagen::{CaptureSpec, SourceKind};
use ht_dsp::rng::SeedableRng;
use ht_dsp::spectrum::Spectrum;
use ht_ml::{Classifier, Dataset};
use ht_speech::replay::SpeakerModel;
use ht_speech::utterance::WakeWord;
use ht_speech::voice::VoiceProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = ht_acoustics::SAMPLE_RATE;
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(99);
    let voice = VoiceProfile::adult_male();

    // ── The Fig. 3 signature, dry ──────────────────────────────────────────
    println!("Spectral fingerprints of \"Computer\" (dry waveforms):");
    let live = WakeWord::Computer.synthesize(&voice, &mut rng, fs);
    let sources = [
        ("live human".to_string(), live.clone()),
        (
            "Sony SRS-X5 replay".into(),
            SpeakerModel::SonySrsX5.play(&live, &mut rng, fs),
        ),
        (
            "Galaxy S21 replay".into(),
            SpeakerModel::GalaxyS21.play(&live, &mut rng, fs),
        ),
    ];
    for (name, audio) in &sources {
        let s = Spectrum::of(audio, fs)?;
        let core = s.band_energy(200.0, 4000.0);
        let high = s.band_energy(4000.0, 12_000.0);
        println!(
            "  {name:<22} >4 kHz / speech-core energy: {:.4}",
            high / core
        );
    }

    // ── A liveness detector trained on simulated captures ──────────────────
    println!("\nTraining the liveness detector on in-room captures…");
    let config = PipelineConfig::default();
    let mut train = Dataset::new(config.liveness_input_len);
    let mut test = Dataset::new(config.liveness_input_len);
    for i in 0..16u64 {
        let human = CaptureSpec::baseline(100 + i);
        let replay = CaptureSpec {
            source: SourceKind::Replay {
                model: if i % 2 == 0 {
                    SpeakerModel::SonySrsX5
                } else {
                    SpeakerModel::GalaxyS21
                },
                voice,
            },
            ..CaptureSpec::baseline(200 + i)
        };
        let target = if i < 12 { &mut train } else { &mut test };
        target.push(HeadTalk::liveness_input(&config, &human.render()?)?, 1)?;
        target.push(HeadTalk::liveness_input(&config, &replay.render()?)?, 0)?;
    }
    let det = LivenessDetector::fit(&train, 15, 7)?;
    let preds = det.predict_batch(test.features());
    let acc = ht_ml::metrics::accuracy(test.labels(), &preds);
    println!(
        "  held-out accuracy on {} captures: {:.0}%",
        test.len(),
        acc * 100.0
    );

    println!("\nAttack outcome:");
    for (i, (&label, &pred)) in test.labels().iter().zip(&preds).enumerate() {
        let truth = if label == 1 { "human " } else { "replay" };
        let verdict = if pred == 1 {
            "accepted as live"
        } else {
            "rejected as mechanical"
        };
        println!("  capture {i}: {truth} -> {verdict}");
    }
    Ok(())
}
