//! Quickstart: assemble and use a complete HeadTalk pipeline.
//!
//! This example trains a *small* pipeline (a few dozen simulated captures)
//! so it finishes in under a minute; the full reproduction protocol lives in
//! the `headtalk-repro` binary.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use headtalk::facing::FacingDefinition;
use headtalk::liveness::LivenessDetector;
use headtalk::orientation::{ModelKind, OrientationDetector};
use headtalk::{HeadTalk, PipelineConfig};
use ht_datagen::{CaptureSpec, SourceKind};
use ht_ml::Dataset;
use ht_speech::replay::SpeakerModel;
use ht_speech::voice::VoiceProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = PipelineConfig::default();
    println!("HeadTalk quickstart — training a miniature pipeline…");

    // ── 1. Orientation detector ────────────────────────────────────────────
    // Render a handful of captures at facing and non-facing angles and
    // train the Definition-4 SVM on their features.
    let def = FacingDefinition::Definition4;
    let mut orient_feats = Vec::new();
    let mut orient_labels = Vec::new();
    for (i, angle) in [
        0.0, 15.0, -15.0, 30.0, -30.0, 90.0, -90.0, 135.0, -135.0, 180.0,
    ]
    .into_iter()
    .enumerate()
    {
        for rep in 0..3u64 {
            let spec = CaptureSpec {
                angle_deg: angle,
                seed: 1000 + i as u64 * 10 + rep,
                ..CaptureSpec::baseline(0)
            };
            let channels = spec.render()?;
            let features = HeadTalk::orientation_features(&config, &channels)?;
            if let Some(label) = def.label(angle) {
                orient_feats.push(features);
                orient_labels.push(label);
            }
        }
    }
    let orientation = OrientationDetector::fit(
        &Dataset::from_parts(orient_feats, orient_labels)?,
        ModelKind::Svm,
        7,
    )?;
    println!("  orientation detector trained");

    // ── 2. Liveness detector ──────────────────────────────────────────────
    let mut live_ds = Dataset::new(config.liveness_input_len);
    for i in 0..12u64 {
        let human = CaptureSpec::baseline(2000 + i);
        live_ds.push(HeadTalk::liveness_input(&config, &human.render()?)?, 1)?;
        let replay = CaptureSpec {
            source: SourceKind::Replay {
                model: SpeakerModel::SonySrsX5,
                voice: VoiceProfile::adult_male(),
            },
            ..CaptureSpec::baseline(3000 + i)
        };
        live_ds.push(HeadTalk::liveness_input(&config, &replay.render()?)?, 0)?;
    }
    let liveness = LivenessDetector::fit(&live_ds, 15, 42)?;
    println!("  liveness detector trained");

    // ── 3. The assembled pipeline ──────────────────────────────────────────
    let pipeline = HeadTalk::new(config, liveness, orientation)?;
    let trials = [
        ("live human, facing (0°)", CaptureSpec::baseline(9001)),
        (
            "live human, facing away (180°)",
            CaptureSpec {
                angle_deg: 180.0,
                ..CaptureSpec::baseline(9002)
            },
        ),
        (
            "TV speaker replaying the wake word",
            CaptureSpec {
                source: SourceKind::Replay {
                    model: SpeakerModel::SonySrsX5,
                    voice: VoiceProfile::adult_male(),
                },
                ..CaptureSpec::baseline(9003)
            },
        ),
    ];
    println!("\nwake-word decisions:");
    for (label, spec) in trials {
        let decision = pipeline.process_wake(&spec.render()?)?;
        println!(
            "  {label}: live={} (p={:.2}) facing={} → {}",
            decision.live,
            decision.live_probability,
            decision.facing,
            if decision.accepted() {
                "ACCEPTED (forwarded to cloud)"
            } else {
                "soft-muted"
            }
        );
    }
    Ok(())
}
