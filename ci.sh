#!/usr/bin/env sh
# The offline CI gate — exactly what .github/workflows/ci.yml runs.
#
# The workspace is hermetic (zero external crates), so every step runs with
# --offline and must pass with no registry reachable. Run from the repo root:
#
#   ./ci.sh
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --offline --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test -q --offline --release

# The ht-par determinism contract says thread count must never change any
# result, so the whole suite must stay green at both extremes of the
# HT_THREADS override (1 = serial global pool, 4 = oversubscribed on small
# runners).
echo "==> cargo test (HT_THREADS=1)"
HT_THREADS=1 cargo test -q --offline --release

echo "==> cargo test (HT_THREADS=4)"
HT_THREADS=4 cargo test -q --offline --release

echo "CI green"
