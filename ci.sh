#!/usr/bin/env sh
# The offline CI gate — exactly what .github/workflows/ci.yml runs.
#
# The workspace is hermetic (zero external crates), so every step runs with
# --offline and must pass with no registry reachable. Run from the repo root:
#
#   ./ci.sh
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --offline --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test -q --offline --release

# The ht-par determinism contract says thread count must never change any
# result, so the whole suite must stay green at both extremes of the
# HT_THREADS override (1 = serial global pool, 4 = oversubscribed on small
# runners).
echo "==> cargo test (HT_THREADS=1)"
HT_THREADS=1 cargo test -q --offline --release

echo "==> cargo test (HT_THREADS=4)"
HT_THREADS=4 cargo test -q --offline --release

# Observability must be read-only: recording spans/counters through every
# instrumented layer may cost time but can never change a computed result
# (the golden-determinism test additionally proves report-byte identity).
echo "==> cargo test (HT_OBS=json)"
HT_OBS=json cargo test -q --offline --release

# Disabled-path overhead gate: spans compiled into the hot layers must cost
# an atomic load + branch when HT_OBS is off. The obs bench binary asserts
# a 50 ns median bound on the disabled span/counter paths (the measured
# cost is ~2 ns; the bound's headroom absorbs CI-runner noise) and fails
# the run on violation. BENCH_obs.json lands in target/bench_out.
echo "==> obs overhead gate (bench obs)"
HT_BENCH_FAST=1 HT_BENCH_DIR=target/bench_out cargo bench -q --offline -p ht-bench --bench obs

# FFT plan-cache gate: the fft_plans bench ends with a steady-state workload
# run under HT_OBS recording and asserts, via the fft.plan_hits /
# fft.plan_misses counters, that misses stay bounded by the number of
# distinct transform sizes and that the warmed steady state adds zero
# misses. A regression that rebuilds plans per call fails here.
# BENCH_fft.json lands in target/bench_out.
echo "==> fft plan-cache gate (bench fft_plans)"
HT_BENCH_FAST=1 HT_BENCH_DIR=target/bench_out cargo bench -q --offline -p ht-bench --bench fft_plans

echo "CI green"
