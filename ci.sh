#!/usr/bin/env sh
# The offline CI gate — exactly what .github/workflows/ci.yml runs.
#
# The workspace is hermetic (zero external crates), so every step runs with
# --offline and must pass with no registry reachable. Run from the repo root:
#
#   ./ci.sh
#
# Each step is timed; the run fails fast on the first broken step (naming
# it) and always ends with a per-step summary table.
set -u

SUMMARY=$(mktemp)
trap 'rm -f "$SUMMARY"' EXIT

print_summary() {
    echo ""
    echo "== step summary =="
    cat "$SUMMARY"
}

# step <name> <command...> — run, time, and record one CI step; on failure
# print the failing step's name and the summary so far, then exit.
step() {
    STEP_NAME=$1
    shift
    echo "==> $STEP_NAME"
    STEP_START=$(date +%s)
    "$@"
    STEP_RC=$?
    STEP_ELAPSED=$(( $(date +%s) - STEP_START ))
    if [ "$STEP_RC" -ne 0 ]; then
        printf '%-42s %5ss  FAIL\n' "$STEP_NAME" "$STEP_ELAPSED" >> "$SUMMARY"
        echo ""
        echo "CI FAILED at step: $STEP_NAME (exit $STEP_RC after ${STEP_ELAPSED}s)"
        print_summary
        exit "$STEP_RC"
    fi
    printf '%-42s %5ss  ok\n' "$STEP_NAME" "$STEP_ELAPSED" >> "$SUMMARY"
}

step "cargo fmt --check" cargo fmt --check

step "cargo clippy (all targets, -D warnings)" \
    cargo clippy --offline --all-targets -- -D warnings

step "cargo build --release" cargo build --release --offline

step "cargo test" cargo test -q --offline --release

# The ht-par determinism contract says thread count must never change any
# result, so the whole suite must stay green at both extremes of the
# HT_THREADS override (1 = serial global pool, 4 = oversubscribed on small
# runners).
step "cargo test (HT_THREADS=1)" \
    env HT_THREADS=1 cargo test -q --offline --release

step "cargo test (HT_THREADS=4)" \
    env HT_THREADS=4 cargo test -q --offline --release

# Observability must be read-only: recording spans/counters through every
# instrumented layer may cost time but can never change a computed result
# (the golden-determinism test additionally proves report-byte identity).
step "cargo test (HT_OBS=json)" \
    env HT_OBS=json cargo test -q --offline --release

# Disabled-path overhead gate: spans compiled into the hot layers must cost
# an atomic load + branch when HT_OBS is off. The obs bench binary asserts
# a 50 ns median bound on the disabled span/counter paths (the measured
# cost is ~2 ns; the bound's headroom absorbs CI-runner noise) and fails
# the run on violation. BENCH_obs.json lands in target/bench_out.
step "obs overhead gate (bench obs)" \
    env HT_BENCH_FAST=1 HT_BENCH_DIR="$PWD/target/bench_out" \
    cargo bench -q --offline -p ht-bench --bench obs

# FFT plan-cache gate: the fft_plans bench ends with a steady-state workload
# run under HT_OBS recording and asserts, via the fft.plan_hits /
# fft.plan_misses counters, that misses stay bounded by the number of
# distinct transform sizes and that the warmed steady state adds zero
# misses. A regression that rebuilds plans per call fails here.
# BENCH_fft.json lands in target/bench_out.
step "fft plan-cache gate (bench fft_plans)" \
    env HT_BENCH_FAST=1 HT_BENCH_DIR="$PWD/target/bench_out" \
    cargo bench -q --offline -p ht-bench --bench fft_plans

# Streaming latency gate: the stream_latency bench drives the frame-by-frame
# wake pipeline over rendered scenarios with observability on and asserts
# (a) the stream.frame p95 stays inside half the 10 ms hop deadline and
# (b) the steady-state push loop makes zero heap allocations, counted by a
# wrapping global allocator. BENCH_stream.json lands in target/bench_out.
step "stream latency gate (bench stream_latency)" \
    env HT_BENCH_FAST=1 HT_BENCH_DIR="$PWD/target/bench_out" \
    cargo bench -q --offline -p ht-bench --bench stream_latency

# Server throughput gate: the server_throughput bench replays a seeded
# multi-tenant load drive (thousands of interleaved sessions) through the
# sharded WakeServer (slots prewarmed, int8 decision backends calibrated)
# and asserts (a) sustained end-to-end wake decisions/sec stays above the
# floor, (b) the incremental decision path (serve.assemble +
# serve.decision) sustains 1200/s at the median — above anything the old
# full-segment directivity flush could reach, (c) the median
# serve.assemble stays under 300 µs, and (d) the serve.decision and
# serve.push p99 tails stay under their ceilings. BENCH_server.json lands
# in target/bench_out.
step "server throughput gate (bench server_throughput)" \
    env HT_BENCH_FAST=1 HT_BENCH_DIR="$PWD/target/bench_out" \
    cargo bench -q --offline -p ht-bench --bench server_throughput

# Quantized decision-path gate: the kernel_quant bench times the reference
# vs vectorized GCC-PHAT whitening kernels and the f64 vs int8 liveness /
# orientation inference backends, asserting the per-size cross-spectrum
# speedup floors, a 2x floor on int8 liveness inference, an accuracy delta
# within 0.5 pp of the f64 reference, byte-stability of the reference
# path (building the int8 backends must not move a bit), and — on AVX2
# machines — exact i32 agreement between the std::arch i8 kernels and the
# scalar reference on every tested shape (non-AVX2 runners log a notice
# and skip). BENCH_quant.json lands in target/bench_out.
step "quantized kernel gate (bench kernel_quant)" \
    env HT_BENCH_FAST=1 HT_BENCH_DIR="$PWD/target/bench_out" \
    cargo bench -q --offline -p ht-bench --bench kernel_quant

# Serving soak: 10k sessions through the load generator with a counting
# global allocator — the steady-state push path AND the incremental
# evidence assembly must make zero heap allocations, and the session
# arenas must never grow past warmup.
step "serve soak (10k sessions, zero steady-state allocs)" \
    cargo test -q --offline --release -p ht-serve --test serve_soak -- --ignored

print_summary
echo ""
echo "CI green"
