//! Cross-crate integration tests: speech synthesis → room acoustics →
//! feature extraction → classification → privacy control, exercised as one
//! system on deliberately small workloads.

use headtalk::control::{PrivacyController, VaEvent, VaResponse};
use headtalk::facing::FacingDefinition;
use headtalk::liveness::LivenessDetector;
use headtalk::orientation::{ModelKind, OrientationDetector};
use headtalk::{HeadTalk, PipelineConfig};
use ht_datagen::{CaptureSpec, SourceKind};
use ht_ml::Dataset;
use ht_speech::replay::SpeakerModel;
use ht_speech::voice::VoiceProfile;

/// The shared pipeline: building it renders ~50 captures and trains two
/// models, so all tests share one instance.
fn pipeline() -> &'static HeadTalk {
    static PIPELINE: std::sync::OnceLock<HeadTalk> = std::sync::OnceLock::new();
    PIPELINE.get_or_init(build_pipeline)
}

/// Builds a small but real pipeline: everything is trained on rendered
/// audio, no mocks anywhere.
fn build_pipeline() -> HeadTalk {
    let config = PipelineConfig::default();
    let def = FacingDefinition::Definition4;

    let mut orient_feats = Vec::new();
    let mut orient_labels = Vec::new();
    for (i, angle) in [0.0, 15.0, -30.0, 30.0, 90.0, -90.0, 135.0, 180.0]
        .into_iter()
        .enumerate()
    {
        // Four reps per angle: the frame-averaged Welch features carry less
        // per-capture noise than the old whole-capture transform, so the SVM
        // boundary is estimated from a few more renders per angle to keep
        // every held-out probe (incl. the 180° rejections) on the right side.
        for rep in 0..4u64 {
            let spec = CaptureSpec {
                angle_deg: angle,
                seed: 100 + i as u64 * 4 + rep,
                ..CaptureSpec::baseline(0)
            };
            let channels = spec.render().expect("render succeeds");
            let f = HeadTalk::orientation_features(&config, &channels).expect("features");
            if let Some(l) = def.label(angle) {
                orient_feats.push(f);
                orient_labels.push(l);
            }
        }
    }
    let orientation = OrientationDetector::fit(
        &Dataset::from_parts(orient_feats, orient_labels).expect("dataset"),
        ModelKind::Svm,
        7,
    )
    .expect("orientation training");

    let mut live_ds = Dataset::new(config.liveness_input_len);
    for i in 0..16u64 {
        let human = CaptureSpec::baseline(300 + i);
        live_ds
            .push(
                HeadTalk::liveness_input(&config, &human.render().expect("render")).expect("prep"),
                1,
            )
            .expect("push");
        let replay = CaptureSpec {
            source: SourceKind::Replay {
                model: SpeakerModel::SonySrsX5,
                voice: VoiceProfile::adult_male(),
            },
            ..CaptureSpec::baseline(400 + i)
        };
        live_ds
            .push(
                HeadTalk::liveness_input(&config, &replay.render().expect("render")).expect("prep"),
                0,
            )
            .expect("push");
    }
    let liveness = LivenessDetector::fit(&live_ds, 24, 8).expect("liveness training");
    HeadTalk::new(config, liveness, orientation).expect("pipeline assembly")
}

#[test]
fn facing_human_is_accepted_and_drives_the_controller() {
    let pipeline = pipeline();
    let spec = CaptureSpec::baseline(9100);
    let decision = pipeline
        .process_wake(&spec.render().expect("render"))
        .expect("decision");
    assert!(decision.live, "a live facing human must pass liveness");
    assert!(decision.facing, "a 0° speaker must be classified facing");
    assert!(decision.accepted());

    let mut va = PrivacyController::new();
    va.handle(VaEvent::EnterHeadTalkMode);
    let r = va.handle(VaEvent::WakeDetected {
        live: decision.live,
        facing: decision.facing,
    });
    assert_eq!(r, VaResponse::SessionOpened);
}

#[test]
fn backward_human_is_soft_muted() {
    let pipeline = pipeline();
    let spec = CaptureSpec {
        angle_deg: 180.0,
        ..CaptureSpec::baseline(9200)
    };
    let decision = pipeline
        .process_wake(&spec.render().expect("render"))
        .expect("decision");
    assert!(
        !decision.facing,
        "a 180° speaker must not be classified facing"
    );
    assert!(!decision.accepted());

    let mut va = PrivacyController::new();
    va.handle(VaEvent::EnterHeadTalkMode);
    let r = va.handle(VaEvent::WakeDetected {
        live: decision.live,
        facing: decision.facing,
    });
    assert_eq!(r, VaResponse::SoftMuted);
}

#[test]
fn replay_attack_is_rejected() {
    let pipeline = pipeline();
    // The attacker replays the wake word through a speaker *facing the VA*
    // — orientation alone would accept it; liveness must not.
    let spec = CaptureSpec {
        source: SourceKind::Replay {
            model: SpeakerModel::SonySrsX5,
            voice: VoiceProfile::adult_male(),
        },
        ..CaptureSpec::baseline(9300)
    };
    let decision = pipeline
        .process_wake(&spec.render().expect("render"))
        .expect("decision");
    assert!(!decision.live, "replayed audio must fail liveness");
    assert!(!decision.accepted());
}

#[test]
fn decisions_are_deterministic() {
    let pipeline = pipeline();
    let spec = CaptureSpec::baseline(9400);
    let channels = spec.render().expect("render");
    let a = pipeline.process_wake(&channels).expect("decision");
    let b = pipeline.process_wake(&channels).expect("decision");
    assert_eq!(a, b);
}

#[test]
fn all_three_devices_flow_through_the_pipeline() {
    // Feature widths differ per device; each device's pipeline must accept
    // its own captures end to end.
    for device in ht_acoustics::array::Device::ALL {
        let config = PipelineConfig::for_device(device);
        let spec = CaptureSpec {
            device,
            ..CaptureSpec::baseline(9500)
        };
        let channels = spec.render().expect("render");
        let f = HeadTalk::orientation_features(&config, &channels).expect("features");
        assert_eq!(
            f.len(),
            headtalk::features::feature_width(4, &config),
            "{device:?}"
        );
    }
}
