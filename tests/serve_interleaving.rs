//! The multi-tenant determinism contract, pinned: N sessions pushed
//! through a [`WakeServer`] in arbitrarily interleaved, arbitrarily ragged
//! chunk schedules must each produce an outcome **byte-identical** to
//! running that session's capture alone through the batch path
//! (`HeadTalk::decide_batch` — the same reference `process_wake` rides) —
//! at `HT_THREADS=1` and `4`, with failing sessions interleaved in, with
//! slots recycled between sessions. Plus the admission-control invariants:
//! in-flight sessions never exceed capacity, and rejected or evicted
//! sessions leave no residual shard state.
//!
//! Every property here replays from a printed seed via `HT_CHECK_SEED`.

use headtalk::stream::WakeVerdict;
use headtalk::HeadTalk;
use ht_dsp::check::property;
use ht_serve::{
    noise_captures, run_load, toy_pipeline, LoadConfig, RejectReason, ServeConfig, ServeError,
    TokenBucketConfig, WakeServer,
};

/// One shared toy pipeline (training is milliseconds, but every server
/// borrows it).
fn pipeline() -> &'static HeadTalk {
    static PIPELINE: std::sync::OnceLock<HeadTalk> = std::sync::OnceLock::new();
    PIPELINE.get_or_init(toy_pipeline)
}

fn serve_config(ht: &HeadTalk, n_shards: usize, sessions_per_shard: usize) -> ServeConfig {
    ServeConfig {
        n_shards,
        sessions_per_shard,
        bucket: TokenBucketConfig {
            capacity: u64::MAX,
            refill_per_sec: 0,
        },
        ..ServeConfig::for_pipeline(ht.config())
    }
}

fn assert_bits_eq(a: &[f64], b: &[f64], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: feature count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: feature {i}: {x} vs {y}");
    }
}

/// The headline property: random session counts, random capture lengths,
/// random ragged chunkings, random interleavings — every session's served
/// outcome is byte-identical to its solo batch result, and in-flight
/// counts never exceed capacity while the schedule runs.
#[test]
fn prop_interleaved_sessions_match_solo_batch() {
    let ht = pipeline();
    property("serve_interleaving").cases(6).run(|g| {
        let n_sessions = g.usize_in(2..7);
        let n_shards = g.usize_in(1..4);
        let sessions_per_shard = n_sessions.div_ceil(n_shards);
        let captures = noise_captures(
            n_sessions,
            4,
            g.usize_in(3000..4500),
            g.usize_in(0..500),
            g.u64_in(0..u64::MAX),
        );
        let server = WakeServer::new(ht, serve_config(ht, n_shards, sessions_per_shard));
        let capacity = n_shards * sessions_per_shard;

        for id in 0..n_sessions as u64 {
            server.open(id, id).expect("open under capacity");
        }
        // Random interleaving with ragged chunks until every session is
        // fully fed.
        let mut cursors: Vec<(u64, usize)> = (0..n_sessions as u64).map(|id| (id, 0)).collect();
        let mut live = n_sessions;
        while !cursors.is_empty() {
            assert!(
                server.stats().live <= capacity && server.stats().live == live,
                "in-flight sessions must track opens minus closes, bounded by capacity"
            );
            let pick = g.usize_in(0..cursors.len());
            let (id, pos) = cursors[pick];
            let capture = &captures[id as usize];
            let len = capture[0].len();
            let take = g.usize_in(1..1200).min(len - pos);
            let chunk: Vec<&[f64]> = capture.iter().map(|c| &c[pos..pos + take]).collect();
            server.push(id, &chunk, 0).expect("push");
            cursors[pick].1 = pos + take;
            if pos + take == len {
                let served = server.finalize(id, 0).expect("finalize");
                live -= 1;
                cursors.swap_remove(pick);

                let (solo_decision, solo_features) = ht.decide_batch(capture).expect("solo batch");
                let ctx = format!("session {id}");
                let decision = served.decision.expect("advisory decision");
                assert_eq!(decision, solo_decision, "{ctx}: decision");
                assert_eq!(
                    decision.live_probability.to_bits(),
                    solo_decision.live_probability.to_bits(),
                    "{ctx}: live probability bits"
                );
                assert_eq!(
                    decision.facing_score.to_bits(),
                    solo_decision.facing_score.to_bits(),
                    "{ctx}: facing score bits"
                );
                assert_bits_eq(&served.features, &solo_features, &ctx);
                let expected = if solo_decision.accepted() {
                    WakeVerdict::Allow
                } else {
                    WakeVerdict::SoftMute
                };
                assert_eq!(served.verdict, expected, "{ctx}: verdict");
                assert_eq!(served.samples_per_channel, len, "{ctx}: samples");
            }
        }
        assert_eq!(server.stats().live, 0, "every session closed");
    });
}

/// The full seeded load generator replays byte-identically at
/// `HT_THREADS=1` and `4`: same decisions, same rejections, same
/// fingerprint. This is the `(seed, scenario set)` replay contract.
#[test]
fn load_drive_is_byte_identical_across_thread_counts() {
    let ht = pipeline();
    let captures = noise_captures(4, 4, 4000, 300, 0x1A7E);
    let config = LoadConfig {
        seed: 0x5EED,
        n_sessions: 30,
        ..LoadConfig::default()
    };
    let drive = || {
        let server = WakeServer::new(ht, serve_config(ht, 3, 4));
        run_load(&server, &captures, &config).expect("drive")
    };
    let one = ht_par::Pool::new(1).install(drive);
    let four = ht_par::Pool::new(4).install(drive);
    assert_eq!(one, four, "thread count must not change any bit of the run");
    assert_eq!(one.decided, 30);
    assert_eq!(one.decided, one.accepted + one.soft_muted);
}

/// Admission invariants under random operation sequences: live sessions
/// never exceed `n_shards * sessions_per_shard`, per-shard live counts
/// never exceed the shard's slot capacity, and a rejected open changes
/// nothing observable.
#[test]
fn prop_admission_never_overcommits_and_rejections_are_stateless() {
    let ht = pipeline();
    property("serve_admission").cases(12).run(|g| {
        let n_shards = g.usize_in(1..4);
        let sessions_per_shard = g.usize_in(1..4);
        let bucket = TokenBucketConfig {
            capacity: g.u64_in(0..6),
            refill_per_sec: *g.choose(&[0u64, 2, 1_000_000]),
        };
        let server = WakeServer::new(
            ht,
            ServeConfig {
                n_shards,
                sessions_per_shard,
                bucket,
                session_idle_timeout_ns: 1_000,
                ..ServeConfig::for_pipeline(ht.config())
            },
        );
        let capacity = n_shards * sessions_per_shard;
        let chunk_data = vec![vec![0.01f64; 480]; 4];
        let mut now = 0u64;
        let mut open_ids: Vec<u64> = Vec::new();
        for _ in 0..g.usize_in(1..60) {
            now += g.u64_in(0..2_000_000_000);
            match g.usize_in(0..10) {
                // Mostly opens: pressure on admission.
                0..=5 => {
                    let id = g.u64_in(0..12);
                    let before = server.stats();
                    match server.open(id, now) {
                        Ok(()) => open_ids.push(id),
                        Err(ServeError::DuplicateSession(_)) => {
                            assert!(open_ids.contains(&id), "duplicate implies open");
                            assert_eq!(server.stats(), before, "duplicate changed state");
                        }
                        Err(ServeError::Rejected(reason)) => {
                            assert_eq!(
                                server.stats(),
                                before,
                                "rejected open must leave no residual state"
                            );
                            if let RejectReason::ShardFull { shard, capacity } = reason {
                                assert_eq!(
                                    before.shards[shard].live, capacity,
                                    "ShardFull only when the shard is full"
                                );
                            }
                        }
                        Err(e) => panic!("unexpected open error {e}"),
                    }
                }
                6..=7 => {
                    if let Some(&id) = open_ids.last() {
                        let chunk: Vec<&[f64]> = chunk_data.iter().map(Vec::as_slice).collect();
                        server.push(id, &chunk, now).expect("valid push");
                    }
                }
                8 => {
                    if let Some(id) = open_ids.pop() {
                        match server.finalize(id, now) {
                            Ok(_) => {}
                            Err(ServeError::Pipeline(_)) => {
                                // Undecidable (too-short) captures are
                                // retryable: the session stays open,
                                // marked active at `now`.
                                open_ids.push(id);
                            }
                            Err(e) => panic!("unexpected finalize error {e}"),
                        }
                    }
                }
                _ => {
                    server.evict_idle(now);
                    // Resync the model: probe each id with an empty chunk
                    // (a no-op push) — unknown means it was evicted.
                    open_ids.retain(|&id| {
                        let chunk: Vec<&[f64]> = chunk_data.iter().map(|c| &c[0..0]).collect();
                        server.push(id, &chunk, now).is_ok()
                    });
                }
            }
            let stats = server.stats();
            assert!(
                stats.live <= capacity,
                "live {} exceeds capacity {capacity}",
                stats.live
            );
            for (i, shard) in stats.shards.iter().enumerate() {
                assert!(
                    shard.live <= sessions_per_shard,
                    "shard {i} live {} exceeds {sessions_per_shard}",
                    shard.live
                );
                assert!(
                    shard.slots_built <= sessions_per_shard,
                    "shard {i} built {} slots, cap {sessions_per_shard}",
                    shard.slots_built
                );
            }
            assert_eq!(stats.live, open_ids.len(), "live tracks the model");
        }
    });
}

/// Failing sessions interleaved among healthy ones: geometry violations
/// evict eagerly, the arena's marks stay flat (no slot pinned behind a
/// dead session, no slot rebuilt), and — the part that matters — the
/// healthy sessions' outcomes remain byte-identical to solo batch.
#[test]
fn prop_failing_sessions_do_not_perturb_healthy_neighbours() {
    let ht = pipeline();
    property("serve_failure_isolation").cases(4).run(|g| {
        let captures = noise_captures(3, 4, 3200, 200, g.u64_in(0..u64::MAX));
        // One shard so healthy and failing sessions share an arena.
        let server = WakeServer::new(ht, serve_config(ht, 1, 2));
        let bad_chunk = [vec![0.0f64; 64], vec![0.0f64; 64]];

        for (round, capture) in captures.iter().enumerate() {
            let healthy = 2 * round as u64;
            let failing = healthy + 1;
            server.open(healthy, 0).expect("open healthy");
            server.open(failing, 0).expect("open failing");

            let len = capture[0].len();
            let mut pos = 0;
            let mut poisoned = false;
            while pos < len {
                let take = g.usize_in(1..900).min(len - pos);
                let chunk: Vec<&[f64]> = capture.iter().map(|c| &c[pos..pos + take]).collect();
                server.push(healthy, &chunk, 0).expect("healthy push");
                pos += take;
                // Interleave the failing session's doomed push mid-stream.
                if !poisoned && g.bool() {
                    let bad: Vec<&[f64]> = bad_chunk.iter().map(Vec::as_slice).collect();
                    assert!(matches!(
                        server.push(failing, &bad, 0),
                        Err(ServeError::Evicted { id, .. }) if id == failing
                    ));
                    poisoned = true;
                }
            }
            if !poisoned {
                let bad: Vec<&[f64]> = bad_chunk.iter().map(Vec::as_slice).collect();
                assert!(matches!(
                    server.push(failing, &bad, 0),
                    Err(ServeError::Evicted { .. })
                ));
            }

            let served = server.finalize(healthy, 0).expect("finalize healthy");
            let (solo_decision, solo_features) = ht.decide_batch(capture).expect("solo");
            assert_eq!(
                served.decision.expect("decision"),
                solo_decision,
                "round {round}: healthy decision"
            );
            assert_bits_eq(
                &served.features,
                &solo_features,
                &format!("round {round}: healthy features"),
            );

            let shard = server.stats().shards[0];
            assert_eq!(shard.live, 0, "round {round}: nothing pinned");
            assert!(
                shard.slots_built <= 2,
                "round {round}: arena grew past the concurrent pair"
            );
            assert_eq!(shard.live_hwm, 2, "round {round}: hwm flat at the pair");
        }
    });
}
