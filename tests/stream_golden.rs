//! The streaming determinism contract, pinned: feeding a capture through
//! `WakeStream` chunk by chunk — hop-aligned, ragged, or one-shot — must
//! produce a verdict and feature vector *byte-identical* to the batch path
//! (`HeadTalk::decide_batch`), on every `ht-datagen` scenario, at any
//! thread count, with observability on or off. Plus the typed rejection of
//! mid-stream geometry changes and the enforcing gate's early soft-mute.

use headtalk::facing::FacingDefinition;
use headtalk::liveness::LivenessDetector;
use headtalk::orientation::{ModelKind, OrientationDetector};
use headtalk::stream::{GateConfig, GateMode, StreamConfig, StreamError, WakeVerdict};
use headtalk::{HeadTalk, HeadTalkError, PipelineConfig, StreamOutcome, WakeStream};
use ht_datagen::{CaptureSpec, SourceKind};
use ht_dsp::check::property;
use ht_dsp::rng::SeedableRng;
use ht_ml::Dataset;
use ht_speech::replay::SpeakerModel;
use ht_speech::voice::VoiceProfile;

/// One shared pipeline (training renders ~20 captures, so every test
/// reuses it).
fn pipeline() -> &'static HeadTalk {
    static PIPELINE: std::sync::OnceLock<HeadTalk> = std::sync::OnceLock::new();
    PIPELINE.get_or_init(build_pipeline)
}

fn build_pipeline() -> HeadTalk {
    let config = PipelineConfig::default();
    let def = FacingDefinition::Definition4;

    let mut orient_feats = Vec::new();
    let mut orient_labels = Vec::new();
    for (i, angle) in [0.0, 20.0, -30.0, 45.0, 90.0, -120.0, 150.0, 180.0]
        .into_iter()
        .enumerate()
    {
        let spec = CaptureSpec {
            angle_deg: angle,
            seed: 700 + i as u64,
            ..CaptureSpec::baseline(0)
        };
        let channels = spec.render().expect("render succeeds");
        if let Some(label) = def.label(angle) {
            orient_feats
                .push(HeadTalk::orientation_features(&config, &channels).expect("features"));
            orient_labels.push(label);
        }
    }
    let orientation = OrientationDetector::fit(
        &Dataset::from_parts(orient_feats, orient_labels).expect("dataset"),
        ModelKind::Svm,
        7,
    )
    .expect("orientation training");

    let mut live_ds = Dataset::new(config.liveness_input_len);
    for i in 0..6u64 {
        let human = CaptureSpec::baseline(800 + i);
        live_ds
            .push(
                HeadTalk::liveness_input(&config, &human.render().expect("render")).expect("prep"),
                1,
            )
            .expect("push");
        let replay = CaptureSpec {
            source: SourceKind::Replay {
                model: SpeakerModel::SonySrsX5,
                voice: VoiceProfile::adult_male(),
            },
            ..CaptureSpec::baseline(900 + i)
        };
        live_ds
            .push(
                HeadTalk::liveness_input(&config, &replay.render().expect("render")).expect("prep"),
                0,
            )
            .expect("push");
    }
    let liveness = LivenessDetector::fit(&live_ds, 16, 8).expect("liveness training");
    HeadTalk::new(config, liveness, orientation).expect("pipeline assembly")
}

/// The scenario suite: facing/averted humans and replays.
fn scenarios() -> Vec<(&'static str, CaptureSpec)> {
    vec![
        ("facing_human", CaptureSpec::baseline(9600)),
        (
            "oblique_human",
            CaptureSpec {
                angle_deg: 45.0,
                ..CaptureSpec::baseline(9610)
            },
        ),
        (
            "side_human",
            CaptureSpec {
                angle_deg: 90.0,
                ..CaptureSpec::baseline(9620)
            },
        ),
        (
            "backward_human",
            CaptureSpec {
                angle_deg: 180.0,
                ..CaptureSpec::baseline(9630)
            },
        ),
        (
            "facing_replay",
            CaptureSpec {
                source: SourceKind::Replay {
                    model: SpeakerModel::SonySrsX5,
                    voice: VoiceProfile::adult_male(),
                },
                ..CaptureSpec::baseline(9640)
            },
        ),
        (
            "backward_replay",
            CaptureSpec {
                angle_deg: 180.0,
                source: SourceKind::Replay {
                    model: SpeakerModel::SonySrsX5,
                    voice: VoiceProfile::adult_male(),
                },
                ..CaptureSpec::baseline(9650)
            },
        ),
    ]
}

fn push_chunks(stream: &mut WakeStream<'_>, channels: &[Vec<f64>], chunk_len: usize) {
    let len = channels[0].len();
    let mut pos = 0;
    while pos < len {
        let end = (pos + chunk_len).min(len);
        let refs: Vec<&[f64]> = channels.iter().map(|c| &c[pos..end]).collect();
        stream.push(&refs).expect("push");
        pos = end;
    }
}

fn stream_outcome(ht: &HeadTalk, channels: &[Vec<f64>], chunk_len: usize) -> StreamOutcome {
    let mut stream = ht.streamer(channels.len()).expect("streamer");
    push_chunks(&mut stream, channels, chunk_len);
    stream.finalize().expect("finalize")
}

fn assert_bits_eq(a: &[f64], b: &[f64], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: feature count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: feature {i}: {x} vs {y}");
    }
}

fn assert_outcome_matches_batch(
    ht: &HeadTalk,
    channels: &[Vec<f64>],
    outcome: &StreamOutcome,
    ctx: &str,
) {
    let (batch_decision, batch_features) = ht.decide_batch(channels).expect("batch");
    let decision = outcome
        .decision
        .expect("advisory streaming carries a decision");
    assert_eq!(decision, batch_decision, "{ctx}: decision");
    assert_eq!(
        decision.live_probability.to_bits(),
        batch_decision.live_probability.to_bits(),
        "{ctx}: live probability bits"
    );
    assert_eq!(
        decision.facing_score.to_bits(),
        batch_decision.facing_score.to_bits(),
        "{ctx}: facing score bits"
    );
    assert_bits_eq(&outcome.features, &batch_features, ctx);
    let expected_verdict = if batch_decision.accepted() {
        WakeVerdict::Allow
    } else {
        WakeVerdict::SoftMute
    };
    assert_eq!(outcome.verdict, expected_verdict, "{ctx}: verdict");
}

#[test]
fn streaming_is_byte_identical_to_batch_on_every_scenario() {
    let ht = pipeline();
    let hop = StreamConfig::for_pipeline(ht.config()).hop;
    for (name, spec) in scenarios() {
        let channels = spec.render().expect("render");
        // Hop-aligned, ragged (prime), and one-shot chunkings.
        for chunk_len in [hop, 997, channels[0].len()] {
            let outcome = stream_outcome(ht, &channels, chunk_len);
            let ctx = format!("{name} (chunk {chunk_len})");
            assert_outcome_matches_batch(ht, &channels, &outcome, &ctx);
        }
        // The batch adapter rides the same streaming path.
        let (batch_decision, _) = ht.decide_batch(&channels).expect("batch");
        let adapted = ht.process_wake(&channels).expect("adapter");
        assert_eq!(adapted, batch_decision, "{name}: process_wake adapter");
    }
}

#[test]
fn streaming_is_thread_count_invariant() {
    let ht = pipeline();
    let channels = CaptureSpec::baseline(9700).render().expect("render");
    let hop = StreamConfig::for_pipeline(ht.config()).hop;
    let one = ht_par::Pool::new(1).install(|| stream_outcome(ht, &channels, hop));
    let four = ht_par::Pool::new(4).install(|| stream_outcome(ht, &channels, hop));
    assert_eq!(one.decision, four.decision);
    assert_bits_eq(&one.features, &four.features, "threads 1 vs 4");
    assert_eq!(one.early_exit, four.early_exit);
    assert_eq!(one.frames, four.frames);
    assert_outcome_matches_batch(ht, &channels, &one, "single thread");
}

#[test]
fn observability_mode_does_not_change_results() {
    let ht = pipeline();
    let channels = CaptureSpec::baseline(9710).render().expect("render");
    let hop = StreamConfig::for_pipeline(ht.config()).hop;
    let off = stream_outcome(ht, &channels, hop);
    ht_obs::set_mode(ht_obs::Mode::Json);
    let json = stream_outcome(ht, &channels, hop);
    ht_obs::set_mode(ht_obs::Mode::Off);
    assert_eq!(off.decision, json.decision);
    assert_bits_eq(&off.features, &json.features, "obs off vs json");
    assert_eq!(off.early_exit, json.early_exit);
}

#[test]
fn arbitrary_chunkings_match_one_shot_batch() {
    // Property: any partition of the capture into pushes — single samples,
    // ragged tails, whole-capture — yields the identical outcome. Runs on
    // a synthetic 4-channel capture to keep the case count high.
    let ht = pipeline();
    property("stream_chunking_invariance").cases(12).run(|g| {
        let n = g.usize_in(3_000..8_000);
        let mut rng = ht_dsp::rng::StdRng::seed_from_u64(g.u64_in(0..1 << 32));
        let ch0 = ht_dsp::rng::white_noise(&mut rng, n);
        let channels: Vec<Vec<f64>> = (0..4)
            .map(|c| {
                if c == 0 {
                    ch0.clone()
                } else {
                    ht_dsp::signal::fractional_delay(&ch0, c as f64 * 1.5, 16)
                }
            })
            .collect();
        let reference = stream_outcome(ht, &channels, n);
        let mut stream = ht.streamer(4).expect("streamer");
        let mut pos = 0;
        while pos < n {
            let end = (pos + g.usize_in(1..1_500)).min(n);
            let refs: Vec<&[f64]> = channels.iter().map(|c| &c[pos..end]).collect();
            stream.push(&refs).expect("push");
            pos = end;
        }
        let outcome = stream.finalize().expect("finalize");
        assert_eq!(outcome.decision, reference.decision);
        assert_bits_eq(&outcome.features, &reference.features, "random chunking");
        assert_eq!(outcome.early_exit, reference.early_exit);
        assert_eq!(outcome.frames, reference.frames);
    });
}

#[test]
fn mid_stream_geometry_changes_are_rejected_without_corrupting_state() {
    let ht = pipeline();
    let channels = CaptureSpec::baseline(9720).render().expect("render");
    let len = channels[0].len();
    let hop = StreamConfig::for_pipeline(ht.config()).hop;
    let mut stream = ht.streamer(4).expect("streamer");

    // First half arrives legitimately.
    let half = len / 2;
    push_chunks(
        &mut stream,
        &channels
            .iter()
            .map(|c| c[..half].to_vec())
            .collect::<Vec<_>>(),
        hop,
    );

    // A producer switches to 44.1 kHz mid-stream: typed error, not wrong lags.
    let refs: Vec<&[f64]> = channels.iter().map(|c| &c[half..half + hop]).collect();
    let err = stream
        .push_audio(headtalk::stream::AudioChunk::new(44_100.0, &refs))
        .unwrap_err();
    assert!(
        matches!(
            err,
            HeadTalkError::Stream(StreamError::SampleRateChanged {
                expected_hz: 48_000,
                got_hz: 44_100,
            })
        ),
        "{err:?}"
    );

    // A producer drops to 2 channels mid-stream: same story.
    let err = stream.push(&refs[..2]).unwrap_err();
    assert!(
        matches!(
            err,
            HeadTalkError::Stream(StreamError::ChannelCountChanged {
                expected: 4,
                got: 2
            })
        ),
        "{err:?}"
    );

    // Ragged chunk: typed error.
    let ragged: Vec<&[f64]> = (0..4)
        .map(|c| {
            if c == 0 {
                &channels[0][half..half + hop - 1]
            } else {
                &channels[c][half..half + hop]
            }
        })
        .collect();
    let err = stream.push(&ragged).unwrap_err();
    assert!(
        matches!(err, HeadTalkError::Stream(StreamError::RaggedChunk { .. })),
        "{err:?}"
    );

    // The rejections left the stream intact: finish the capture and the
    // outcome is still byte-identical to batch.
    let rest: Vec<Vec<f64>> = channels.iter().map(|c| c[half..].to_vec()).collect();
    push_chunks(&mut stream, &rest, hop);
    let outcome = stream.finalize().expect("finalize");
    assert_outcome_matches_batch(ht, &channels, &outcome, "after rejected pushes");
}

#[test]
fn enforcing_gate_soft_mutes_before_the_utterance_ends() {
    let ht = pipeline();
    let channels = CaptureSpec::baseline(9730).render().expect("render");
    let len = channels[0].len();
    // A gate rigged to always fire on orientation: the facing floor is
    // unreachable and the liveness floor can never strike.
    let gate = GateConfig {
        mode: GateMode::Enforcing,
        min_voiced_frames: 2,
        patience: 2,
        live_floor: f64::NEG_INFINITY,
        facing_floor: f64::INFINITY,
        ..GateConfig::default()
    };
    let config = StreamConfig {
        gate,
        ..StreamConfig::for_pipeline(ht.config())
    };
    let mut stream = ht.streamer_with(4, config).expect("streamer");
    let mut muted_at = None;
    let mut pos = 0;
    while pos < len {
        let end = (pos + config.hop).min(len);
        let refs: Vec<&[f64]> = channels.iter().map(|c| &c[pos..end]).collect();
        if stream.push(&refs).expect("push") == WakeVerdict::SoftMute && muted_at.is_none() {
            muted_at = Some(stream.samples_per_channel());
        }
        pos = end;
    }
    let muted_at = muted_at.expect("the rigged gate must fire");
    assert!(
        muted_at < len,
        "soft mute must land before the capture ends ({muted_at} vs {len})"
    );
    // Ingestion stopped at the mute: later pushes were dropped.
    assert_eq!(stream.samples_per_channel(), muted_at);
    let frames_at_mute = stream.frames();
    let exit = stream.early_exit().expect("exit recorded");
    assert_eq!(exit.reason, headtalk::stream::ExitReason::NotFacing);
    let outcome = stream.finalize().expect("finalize");
    assert_eq!(outcome.verdict, WakeVerdict::SoftMute);
    assert_eq!(outcome.frames, frames_at_mute);
    assert_eq!(outcome.samples_per_channel, muted_at);
}

#[test]
fn advisory_gate_records_the_exit_but_never_alters_the_decision() {
    let ht = pipeline();
    let channels = CaptureSpec::baseline(9740).render().expect("render");
    let len = channels[0].len();
    let gate = GateConfig {
        min_voiced_frames: 2,
        patience: 2,
        facing_floor: f64::INFINITY,
        ..GateConfig::default()
    };
    let config = StreamConfig {
        gate,
        ..StreamConfig::for_pipeline(ht.config())
    };
    let mut stream = ht.streamer_with(4, config).expect("streamer");
    push_chunks(&mut stream, &channels, config.hop);
    // Advisory: every frame of the full capture was still analyzed.
    let expected_frames = (1 + (len - config.frame_len) / config.hop) as u64;
    assert_eq!(stream.frames(), expected_frames);
    assert!(stream.early_exit().is_some());
    let outcome = stream.finalize().expect("finalize");
    assert!(outcome.early_exit.is_some());
    assert_outcome_matches_batch(ht, &channels, &outcome, "advisory with rigged gate");
}

#[test]
#[ignore = "calibration probe"]
fn probe_evidence_floors() {
    use ht_stream::FrameAnalyzer;
    for (name, spec) in [
        ("facing_0", CaptureSpec::baseline(111)),
        (
            "oblique_45",
            CaptureSpec {
                angle_deg: 45.0,
                ..CaptureSpec::baseline(112)
            },
        ),
        (
            "side_90",
            CaptureSpec {
                angle_deg: 90.0,
                ..CaptureSpec::baseline(113)
            },
        ),
        (
            "back_180",
            CaptureSpec {
                angle_deg: 180.0,
                ..CaptureSpec::baseline(114)
            },
        ),
        (
            "replay_0",
            CaptureSpec {
                source: SourceKind::Replay {
                    model: SpeakerModel::SonySrsX5,
                    voice: VoiceProfile::adult_male(),
                },
                ..CaptureSpec::baseline(115)
            },
        ),
        (
            "replay_180",
            CaptureSpec {
                angle_deg: 180.0,
                source: SourceKind::Replay {
                    model: SpeakerModel::SonySrsX5,
                    voice: VoiceProfile::adult_male(),
                },
                ..CaptureSpec::baseline(116)
            },
        ),
    ] {
        let channels = spec.render().expect("render");
        let mut an = FrameAnalyzer::new(4, 960, 13, 48_000.0).expect("analyzer");
        let mut frame = vec![vec![0.0; 960]; 4];
        let len = channels[0].len();
        let mut peak_rms: f64 = 0.0;
        let mut live_ewma = None::<f64>;
        let mut face_ewma = None::<f64>;
        let mut live_traj = Vec::new();
        let mut face_traj = Vec::new();
        let mut pos = 0;
        while pos + 960 <= len {
            for (dst, src) in frame.iter_mut().zip(&channels) {
                dst.copy_from_slice(&src[pos..pos + 960]);
            }
            let f = an.analyze(&frame).expect("analyze");
            peak_rms = peak_rms.max(f.rms);
            let voiced = f.rms > 0.1 * peak_rms && f.rms > 1e-12;
            if voiced {
                let (l, o) = (
                    headtalk::liveness::frame_live_evidence(f),
                    headtalk::orientation::frame_facing_evidence(f),
                );
                live_ewma = Some(live_ewma.map_or(l, |e| 0.75 * e + 0.25 * l));
                face_ewma = Some(face_ewma.map_or(o, |e| 0.75 * e + 0.25 * o));
                live_traj.push(live_ewma.unwrap());
                face_traj.push(face_ewma.unwrap());
            }
            pos += 480;
        }
        let min = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
        let last = |v: &[f64]| v.last().copied().unwrap_or(f64::NAN);
        eprintln!(
            "{name:12} voiced={:3}  live ewma min={:.3} last={:.3}   face ewma min={:.3} last={:.3}",
            live_traj.len(), min(&live_traj), last(&live_traj), min(&face_traj), last(&face_traj)
        );
    }
}

#[test]
fn reset_reuse_is_bit_identical_to_a_fresh_stream() {
    // `reset` must clear *every* accumulator — running band-energy sums,
    // GCC lag windows, the directivity Welch state, the decimator and
    // filter tails — so a recycled stream is indistinguishable from a
    // fresh one. This is the contract the serve arena's slot recycling
    // rides on.
    let ht = pipeline();
    let a = CaptureSpec::baseline(9760).render().expect("render");
    let b = CaptureSpec {
        angle_deg: 135.0,
        ..CaptureSpec::baseline(9761)
    }
    .render()
    .expect("render");
    let hop = StreamConfig::for_pipeline(ht.config()).hop;

    let fresh = stream_outcome(ht, &b, hop);

    // Recycle after a *completed* session.
    let mut stream = ht.streamer(4).expect("streamer");
    push_chunks(&mut stream, &a, hop);
    let _ = stream.outcome().expect("outcome");
    stream.reset();
    push_chunks(&mut stream, &b, hop);
    let recycled = stream.finalize().expect("finalize");
    assert_eq!(recycled.decision, fresh.decision, "recycled after finalize");
    assert_bits_eq(&recycled.features, &fresh.features, "recycled features");
    assert_eq!(recycled.frames, fresh.frames);

    // Recycle after an *abandoned* mid-capture session: partial frame in
    // the ring, partial directivity segment, filter tails all non-trivial.
    let half: Vec<Vec<f64>> = a
        .iter()
        .map(|c| c[..a[0].len() / 2 + 331].to_vec())
        .collect();
    let mut stream = ht.streamer(4).expect("streamer");
    push_chunks(&mut stream, &half, 997);
    stream.reset();
    push_chunks(&mut stream, &b, hop);
    let recycled = stream.finalize().expect("finalize");
    assert_eq!(recycled.decision, fresh.decision, "recycled mid-capture");
    assert_bits_eq(&recycled.features, &fresh.features, "mid-capture features");
    assert_eq!(recycled.frames, fresh.frames);
    assert_eq!(recycled.samples_per_channel, fresh.samples_per_channel);
}

#[test]
fn zero_variance_tail_matches_batch() {
    // A capture whose tail goes dead silent exercises the zero-variance
    // guard in the liveness framing and the silent-frame paths in the
    // band-energy and GCC accumulators. Identity to batch must survive it.
    let ht = pipeline();
    let mut channels = CaptureSpec::baseline(9770).render().expect("render");
    let len = channels[0].len();
    for c in &mut channels {
        for x in &mut c[len / 2..] {
            *x = 0.0;
        }
    }
    let hop = StreamConfig::for_pipeline(ht.config()).hop;
    for chunk_len in [hop, 997, len] {
        let outcome = stream_outcome(ht, &channels, chunk_len);
        let ctx = format!("silent tail (chunk {chunk_len})");
        assert_outcome_matches_batch(ht, &channels, &outcome, &ctx);
    }
}

#[test]
fn all_silent_capture_streams_and_batches_identically() {
    // Fully silent input: every frame is zero-variance. Whatever the
    // pipeline decides (or refuses to decide), stream and batch must
    // agree bit-for-bit.
    let ht = pipeline();
    let channels = vec![vec![0.0f64; 48_000]; 4];
    let hop = StreamConfig::for_pipeline(ht.config()).hop;
    let mut stream = ht.streamer(4).expect("streamer");
    push_chunks(&mut stream, &channels, hop);
    let streamed = stream.finalize();
    let batched = ht.decide_batch(&channels);
    match (streamed, batched) {
        (Ok(outcome), Ok((decision, features))) => {
            assert_eq!(outcome.decision, Some(decision), "silent decision");
            assert_bits_eq(&outcome.features, &features, "silent features");
        }
        (Err(se), Err(be)) => {
            assert_eq!(format!("{se}"), format!("{be}"), "silent error parity");
        }
        (s, b) => panic!("stream/batch diverge on silence: {s:?} vs {b:?}"),
    }
}

#[test]
fn default_gate_stays_silent_for_a_facing_human() {
    // The calibrated default floors must never strike a facing live
    // speaker — the gate exists to cut averted speech and replays short,
    // not to second-guess legitimate wakes.
    let ht = pipeline();
    let channels = CaptureSpec::baseline(9750).render().expect("render");
    let hop = StreamConfig::for_pipeline(ht.config()).hop;
    let outcome = stream_outcome(ht, &channels, hop);
    assert!(
        outcome.early_exit.is_none(),
        "default gate fired on a facing human: {:?}",
        outcome.early_exit
    );
    assert_outcome_matches_batch(ht, &channels, &outcome, "facing human, default gate");
}
