//! Soak: ten thousand sessions through the serving layer with a counting
//! global allocator, asserting the steady-state contract that makes
//! multi-tenant serving viable on device-class hardware:
//!
//! * after a short warmup, the **push path makes zero heap allocations**
//!   per session — every ring, STFT scratch, gate, and capture buffer is
//!   recycled from the shard arenas (finalization deliberately sits
//!   outside the counted window: the batch decision allocates its
//!   denoise/feature buffers by design);
//! * the arenas never grow past warmup — ten thousand sessions are served
//!   by the same handful of slots (`slots_built` flat).
//!
//! `#[ignore]`d in the default suite (it is a soak, not a unit test); the
//! CI soak leg runs it with `-- --ignored`. `HT_SOAK_SESSIONS` overrides
//! the session count for local iteration.
//!
//! The test drives the server serially from this thread: the allocation
//! counter is thread-local, and what's under test is the serving layer's
//! buffer reuse, not the pool (`tests/serve_interleaving.rs` covers the
//! parallel schedule).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use ht_serve::{noise_captures, toy_pipeline, ServeConfig, TokenBucketConfig, WakeServer};

struct CountingAlloc;

thread_local! {
    // Const-initialized `Cell<u64>`: no lazy-init allocation and no
    // destructor, so the counter itself never perturbs the count.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocations made by `f` on this thread.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(|c| c.get());
    f();
    ALLOCS.with(|c| c.get()) - before
}

#[test]
#[ignore = "soak: minutes of work; the CI soak leg runs it with -- --ignored"]
fn soak_sessions_make_zero_steady_state_push_allocations() {
    let n_sessions: u64 = std::env::var("HT_SOAK_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let warmup: u64 = 64;
    assert!(n_sessions > warmup, "soak needs more sessions than warmup");

    let ht = toy_pipeline();
    let server = WakeServer::new(
        &ht,
        ServeConfig {
            n_shards: 4,
            sessions_per_shard: 4,
            bucket: TokenBucketConfig {
                capacity: u64::MAX,
                refill_per_sec: 0,
            },
            ..ServeConfig::for_pipeline(ht.config())
        },
    );
    // Equal-length captures: buffers stabilize after the first use of each
    // slot, which is exactly the steady state a fleet frontend reaches.
    let captures = noise_captures(8, 4, 4800, 0, 0x50AC);
    let hop = server.config().stream.hop;

    let mut chunk: Vec<&[f64]> = Vec::with_capacity(4);
    let mut steady_alloc_sessions = 0u64;
    let mut worst = (0u64, 0u64); // (session, allocs)
    let mut slots_after_warmup = 0;

    for id in 0..n_sessions {
        let capture = &captures[(id % captures.len() as u64) as usize];
        let len = capture[0].len();
        server.open(id, id).expect("open");

        let mut push_loop = || {
            let mut pos = 0;
            while pos < len {
                let end = (pos + hop).min(len);
                chunk.clear();
                chunk.extend(capture.iter().map(|c| &c[pos..end]));
                server.push(id, &chunk, id).expect("push");
                pos = end;
            }
        };
        if id < warmup {
            push_loop();
        } else {
            let allocs = allocs_during(push_loop);
            if allocs > 0 {
                steady_alloc_sessions += 1;
                if allocs > worst.1 {
                    worst = (id, allocs);
                }
            }
        }
        // Finalization (the batch decision) allocates by design; it sits
        // outside the counted window on purpose.
        let outcome = server.finalize(id, id).expect("finalize");
        assert!(outcome.decision.is_some(), "session {id} decided");

        if id + 1 == warmup {
            slots_after_warmup = server.stats().slots_built;
            assert!(slots_after_warmup >= 1);
        }
    }

    let stats = server.stats();
    assert_eq!(stats.live, 0, "all sessions closed");
    assert_eq!(
        stats.slots_built, slots_after_warmup,
        "arena grew after warmup: slots must be recycled, not rebuilt"
    );
    assert_eq!(
        steady_alloc_sessions,
        0,
        "{steady_alloc_sessions} of {} steady-state sessions allocated on the push path \
         (worst: session {} with {} allocations)",
        n_sessions - warmup,
        worst.0,
        worst.1,
    );
}
