//! Soak: ten thousand sessions through the serving layer with a counting
//! global allocator, asserting the steady-state contract that makes
//! multi-tenant serving viable on device-class hardware:
//!
//! * after a short warmup, the **push path makes zero heap allocations**
//!   per session — every ring, STFT scratch, GCC/band-energy accumulator,
//!   directivity segment, and liveness framing buffer is recycled from
//!   the shard arenas;
//! * **evidence assembly is alloc-free too**: `WakeStream::assemble`
//!   folds the accumulators into the presized feature scratch without
//!   touching the heap, so a finalize's only allocations are the outcome
//!   clone and the model's inference scratch (deliberately outside the
//!   counted window);
//! * the arenas never grow past warmup — ten thousand sessions are served
//!   by the same handful of slots (`slots_built` flat).
//!
//! `#[ignore]`d in the default suite (it is a soak, not a unit test); the
//! CI soak leg runs it with `-- --ignored`. `HT_SOAK_SESSIONS` overrides
//! the session count for local iteration.
//!
//! The test drives the server serially from this thread: the allocation
//! counter is thread-local, and what's under test is the serving layer's
//! buffer reuse, not the pool (`tests/serve_interleaving.rs` covers the
//! parallel schedule).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use ht_serve::{noise_captures, toy_pipeline, ServeConfig, TokenBucketConfig, WakeServer};

struct CountingAlloc;

thread_local! {
    // Const-initialized `Cell<u64>`: no lazy-init allocation and no
    // destructor, so the counter itself never perturbs the count.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocations made by `f` on this thread.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(|c| c.get());
    f();
    ALLOCS.with(|c| c.get()) - before
}

#[test]
#[ignore = "soak: minutes of work; the CI soak leg runs it with -- --ignored"]
fn soak_sessions_make_zero_steady_state_push_allocations() {
    let n_sessions: u64 = std::env::var("HT_SOAK_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let warmup: u64 = 64;
    assert!(n_sessions > warmup, "soak needs more sessions than warmup");

    let ht = toy_pipeline();
    let server = WakeServer::new(
        &ht,
        ServeConfig {
            n_shards: 4,
            sessions_per_shard: 4,
            bucket: TokenBucketConfig {
                capacity: u64::MAX,
                refill_per_sec: 0,
            },
            ..ServeConfig::for_pipeline(ht.config())
        },
    );
    // Equal-length captures: buffers stabilize after the first use of each
    // slot, which is exactly the steady state a fleet frontend reaches.
    let captures = noise_captures(8, 4, 4800, 0, 0x50AC);
    let hop = server.config().stream.hop;

    let mut chunk: Vec<&[f64]> = Vec::with_capacity(4);
    let mut steady_alloc_sessions = 0u64;
    let mut worst = (0u64, 0u64); // (session, allocs)
    let mut slots_after_warmup = 0;

    for id in 0..n_sessions {
        let capture = &captures[(id % captures.len() as u64) as usize];
        let len = capture[0].len();
        server.open(id, id).expect("open");

        let mut push_loop = || {
            let mut pos = 0;
            while pos < len {
                let end = (pos + hop).min(len);
                chunk.clear();
                chunk.extend(capture.iter().map(|c| &c[pos..end]));
                server.push(id, &chunk, id).expect("push");
                pos = end;
            }
        };
        if id < warmup {
            push_loop();
        } else {
            let allocs = allocs_during(push_loop);
            if allocs > 0 {
                steady_alloc_sessions += 1;
                if allocs > worst.1 {
                    worst = (id, allocs);
                }
            }
        }
        // Finalization sits outside the counted window on purpose: the
        // outcome clones the assembled features and the model's inference
        // scratch allocates. The assembly itself is alloc-free — pinned
        // separately by `assemble_is_alloc_free_after_warmup`.
        let outcome = server.finalize(id, id).expect("finalize");
        assert!(outcome.decision.is_some(), "session {id} decided");

        if id + 1 == warmup {
            slots_after_warmup = server.stats().slots_built;
            assert!(slots_after_warmup >= 1);
        }
    }

    let stats = server.stats();
    assert_eq!(stats.live, 0, "all sessions closed");
    assert_eq!(
        stats.slots_built, slots_after_warmup,
        "arena grew after warmup: slots must be recycled, not rebuilt"
    );
    assert_eq!(
        steady_alloc_sessions,
        0,
        "{steady_alloc_sessions} of {} steady-state sessions allocated on the push path \
         (worst: session {} with {} allocations)",
        n_sessions - warmup,
        worst.0,
        worst.1,
    );
}

/// The incremental-finalize half of the steady-state contract: once a
/// slot's scratch is warm, folding the accumulators into the feature
/// vector (`WakeStream::assemble`) makes **zero** heap allocations — the
/// O(features) assembly the serving decision path rides never touches
/// the allocator, capture after capture, across `reset` recycling.
#[test]
#[ignore = "soak companion: the CI soak leg runs it with -- --ignored"]
fn assemble_is_alloc_free_after_warmup() {
    let ht = toy_pipeline();
    let hop = headtalk::stream::StreamConfig::for_pipeline(ht.config()).hop;
    let captures = noise_captures(4, 4, 4800, 0, 0xA55E);
    let mut stream = ht.streamer(4).expect("streamer");

    let push_all = |stream: &mut headtalk::WakeStream<'_>, capture: &Vec<Vec<f64>>| {
        let len = capture[0].len();
        let mut pos = 0;
        while pos < len {
            let end = (pos + hop).min(len);
            let chunk: Vec<&[f64]> = capture.iter().map(|c| &c[pos..end]).collect();
            stream.push(&chunk).expect("push");
            pos = end;
        }
    };

    // Warmup: the first assembly sizes the feature scratch.
    for capture in &captures {
        push_all(&mut stream, capture);
        stream.assemble().expect("assemble");
        stream.reset();
    }

    // Steady state: every subsequent assembly is alloc-free.
    for (round, capture) in captures.iter().cycle().take(64).enumerate() {
        push_all(&mut stream, capture);
        let allocs = allocs_during(|| {
            stream.assemble().expect("assemble");
        });
        assert_eq!(
            allocs, 0,
            "round {round}: assemble allocated {allocs} times"
        );
        stream.reset();
    }
}
