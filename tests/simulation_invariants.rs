//! Integration tests on the physical plausibility of the simulation
//! substrates — the invariants the paper's insights depend on.

use ht_acoustics::array::Device;
use ht_datagen::placements::{GridLocation, RoomKind};
use ht_datagen::{CaptureSpec, SourceKind};
use ht_dsp::signal::rms;
use ht_dsp::spectrum::{hlbr, Spectrum};
use ht_speech::replay::SpeakerModel;
use ht_speech::utterance::WakeWord;
use ht_speech::voice::VoiceProfile;

const FS: f64 = 48_000.0;

#[test]
fn received_level_decays_with_distance() {
    // Insight: direct sound falls ~1/d. Peak amplitude tracks the direct
    // path (whole-buffer RMS would be diluted by the reverberant tail,
    // which does not fall off with distance).
    let mut levels = Vec::new();
    for d in [1.0, 3.0, 5.0] {
        let spec = CaptureSpec {
            location: GridLocation {
                radial_deg: 0.0,
                distance_m: d,
            },
            ..CaptureSpec::baseline(11)
        };
        levels.push(ht_dsp::signal::peak(&spec.render().expect("render")[0]));
    }
    assert!(levels[0] > levels[1] && levels[1] > levels[2], "{levels:?}");
    // The 3-D source-to-mic distances are 1.35 m and 5.08 m (mouth at
    // 1.65 m, device at 0.74 m), so the free-field ratio is ~3.8; early
    // reflections overlapping the peak at 5 m shrink it further.
    assert!(
        levels[0] / levels[2] > 1.5,
        "1m vs 5m peak ratio {}",
        levels[0] / levels[2]
    );
}

#[test]
fn hlbr_decreases_monotonically_from_front_to_back() {
    // Insight 2: speech directivity makes the high/low balance a monotone
    // function of |angle| (on average).
    let mut ratios = Vec::new();
    for (i, angle) in [0.0, 90.0, 180.0].into_iter().enumerate() {
        // Average a few seeds to suppress per-utterance variation.
        let mut vals = Vec::new();
        for rep in 0..3u64 {
            let spec = CaptureSpec {
                angle_deg: angle,
                seed: 40 + i as u64 * 10 + rep,
                ..CaptureSpec::baseline(0)
            };
            let ch = spec.render().expect("render");
            vals.push(hlbr(&Spectrum::of(&ch[0], FS).expect("spectrum")));
        }
        ratios.push(ht_dsp::stats::mean(&vals));
    }
    assert!(
        ratios[0] > ratios[1] && ratios[1] > ratios[2],
        "HLBR not monotone: {ratios:?}"
    );
}

#[test]
fn home_is_noisier_than_lab() {
    let lab = CaptureSpec::baseline(21);
    let home = CaptureSpec {
        room: RoomKind::Home,
        placement: ht_datagen::placements::Placement::HomeShelf,
        ..lab
    };
    // Compare the ambient floors in the first few milliseconds, before the
    // direct sound arrives (3 m ≈ 8.8 ms of propagation).
    let lch = lab.render().expect("render");
    let hch = home.render().expect("render");
    let floor = |c: &Vec<f64>| rms(&c[..300]);
    assert!(
        floor(&hch[0]) > 2.0 * floor(&lch[0]),
        "home floor {} vs lab floor {}",
        floor(&hch[0]),
        floor(&lch[0])
    );
}

#[test]
fn all_devices_render_their_default_subsets() {
    for device in Device::ALL {
        let spec = CaptureSpec {
            device,
            ..CaptureSpec::baseline(31)
        };
        let ch = spec.render().expect("render");
        assert_eq!(ch.len(), 4, "{device:?} default subset is 4 mics");
        let full = spec
            .render_mics(Some(&(0..device.channels()).collect::<Vec<_>>()))
            .expect("render full");
        assert_eq!(full.len(), device.channels());
    }
}

#[test]
fn replayed_audio_keeps_less_high_frequency_after_the_room() {
    // The Fig. 3 liveness cue must survive room acoustics, or the liveness
    // detector could never work on real captures.
    let human = CaptureSpec::baseline(51);
    let replay = CaptureSpec {
        source: SourceKind::Replay {
            model: SpeakerModel::GalaxyS21,
            voice: VoiceProfile::adult_male(),
        },
        ..CaptureSpec::baseline(52)
    };
    let hf_ratio = |ch: &Vec<f64>| {
        let s = Spectrum::of(ch, FS).expect("spectrum");
        s.band_energy(4_500.0, 10_000.0) / s.band_energy(300.0, 3_000.0)
    };
    let h = hf_ratio(&human.render().expect("render")[0]);
    let r = hf_ratio(&replay.render().expect("render")[0]);
    assert!(h > r, "human HF ratio {h} should exceed replay {r}");
}

#[test]
fn wake_words_have_distinct_durations_after_rendering() {
    let computer = CaptureSpec::baseline(61);
    let hey = CaptureSpec {
        wake_word: WakeWord::HeyAssistant,
        ..CaptureSpec::baseline(61)
    };
    let c = computer.render().expect("render");
    let h = hey.render().expect("render");
    assert!(h[0].len() > c[0].len(), "longer phrase renders longer");
}

#[test]
fn session_perturbation_changes_features_but_not_geometry() {
    let cfg = headtalk::PipelineConfig::default();
    let s0 = CaptureSpec::baseline(71);
    let s1 = CaptureSpec {
        session: 1,
        ..CaptureSpec::baseline(71)
    };
    let f0 = headtalk::HeadTalk::orientation_features(&cfg, &s0.render().expect("render"))
        .expect("features");
    let f1 = headtalk::HeadTalk::orientation_features(&cfg, &s1.render().expect("render"))
        .expect("features");
    assert_eq!(f0.len(), f1.len());
    assert_ne!(f0, f1, "different sessions must differ");
    // But both remain finite and usable.
    assert!(f0.iter().chain(f1.iter()).all(|v| v.is_finite()));
}
