//! Property-based tests (proptest) on the core invariants of the DSP, ML
//! and control substrates.
#![allow(clippy::manual_range_contains)]

use headtalk::control::{PrivacyController, VaEvent, VaMode};
use headtalk::facing::FacingDefinition;
use ht_dsp::correlate::gcc_phat;
use ht_dsp::fft;
use ht_dsp::filter::Butterworth;
use ht_ml::metrics::Confusion;
use proptest::prelude::*;

fn small_signal() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0..1.0f64, 16..256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_round_trip_recovers_signal(x in small_signal()) {
        let spec: Vec<ht_dsp::Complex> =
            x.iter().map(|&v| ht_dsp::Complex::from_real(v)).collect();
        let back = fft::ifft(&fft::fft(&spec));
        for (a, b) in x.iter().zip(back.iter()) {
            prop_assert!((a - b.re).abs() < 1e-9);
            prop_assert!(b.im.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_parseval_energy(x in small_signal()) {
        let spec = fft::rfft(&x);
        let n = spec.len() as f64;
        let time: f64 = x.iter().map(|v| v * v).sum();
        let freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
        prop_assert!((time - freq).abs() < 1e-6 * time.max(1.0));
    }

    #[test]
    fn filtfilt_preserves_length_and_finiteness(
        x in small_signal(),
        order in 1usize..6,
        fc in 200.0..10_000.0f64,
    ) {
        let f = Butterworth::lowpass(order, fc, 48_000.0).unwrap();
        let y = f.filtfilt(&x);
        prop_assert_eq!(y.len(), x.len());
        prop_assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gcc_phat_peak_is_bounded_by_lag_window(
        x in prop::collection::vec(-1.0..1.0f64, 64..256),
        max_lag in 1usize..20,
    ) {
        let g = gcc_phat(&x, &x, max_lag).unwrap();
        prop_assert_eq!(g.values.len(), 2 * g.max_lag + 1);
        prop_assert!(g.peak_lag().unsigned_abs() <= g.max_lag);
        // Self-correlation peaks at zero lag.
        prop_assert_eq!(g.peak_lag(), 0);
    }

    #[test]
    fn integer_delays_are_recovered_exactly(
        seed in 0u64..1000,
        delay in 0usize..12,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = ht_dsp::rng::white_noise(&mut rng, 512);
        let y = ht_dsp::signal::fractional_delay(&x, delay as f64, 16);
        let g = gcc_phat(&x, &y, 16).unwrap();
        prop_assert_eq!(g.peak_lag(), -(delay as isize));
    }

    #[test]
    fn confusion_metrics_are_rates(
        labels in prop::collection::vec(0usize..2, 1..64),
        flips in prop::collection::vec(any::<bool>(), 1..64),
    ) {
        let preds: Vec<usize> = labels
            .iter()
            .zip(flips.iter().cycle())
            .map(|(&l, &f)| if f { 1 - l } else { l })
            .collect();
        let c = Confusion::from_predictions(&labels, &preds);
        for rate in [c.accuracy(), c.precision(), c.recall(), c.far(), c.frr(), c.f1()] {
            prop_assert!((0.0..=1.0).contains(&rate));
        }
        prop_assert_eq!(c.total(), labels.len());
        // FRR + TPR = 1 whenever positives exist.
        if labels.contains(&1) {
            prop_assert!((c.frr() + c.tpr() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn eer_is_a_rate(
        scores in prop::collection::vec(-5.0..5.0f64, 4..64),
    ) {
        // Force both classes present.
        let labels: Vec<usize> = (0..scores.len()).map(|i| i % 2).collect();
        let eer = ht_ml::metrics::equal_error_rate(&labels, &scores);
        prop_assert!((0.0..=1.0).contains(&eer));
    }

    #[test]
    fn facing_definitions_are_consistent(angle in -360.0..360.0f64) {
        for def in FacingDefinition::ALL {
            if let Some(label) = def.label(angle) {
                prop_assert!(label <= 1);
                // A labeled-facing angle always lies in the facing zone and
                // vice versa for labeled non-facing angles.
                if label == 1 {
                    prop_assert_eq!(FacingDefinition::ground_truth(angle), 1);
                } else {
                    prop_assert_eq!(FacingDefinition::ground_truth(angle), 0);
                }
            }
        }
        // Definitions only become more exclusive from 1 to 4 on the facing
        // side: anything Definition-4 calls facing, Definition-1 does too.
        if FacingDefinition::Definition4.label(angle) == Some(1) {
            prop_assert_eq!(FacingDefinition::Definition1.label(angle), Some(1));
        }
    }

    #[test]
    fn sus_scores_are_bounded(
        answers in prop::collection::vec(1u8..=5, 10),
    ) {
        let response: [u8; 10] = answers.try_into().unwrap();
        let score = headtalk::userstudy::sus_score(&response);
        prop_assert!((0.0..=100.0).contains(&score));
        prop_assert_eq!(score % 2.5, 0.0);
    }

    #[test]
    fn smote_balances_binary_datasets(
        n_min in 2usize..6,
        n_maj in 6usize..14,
        seed in 0u64..100,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut ds = ht_ml::Dataset::new(2);
        for i in 0..n_min {
            ds.push(vec![i as f64, 5.0], 1).unwrap();
        }
        for i in 0..n_maj {
            ds.push(vec![i as f64, -5.0], 0).unwrap();
        }
        let up = ht_ml::sampling::smote(&ds, 3, &mut rng).unwrap();
        let counts = up.class_counts();
        prop_assert_eq!(counts[0].1, counts[1].1);
        prop_assert_eq!(up.len(), 2 * n_maj);
    }

    #[test]
    fn privacy_controller_never_forwards_while_muted(
        events in prop::collection::vec(0u8..6, 1..40),
    ) {
        let mut va = PrivacyController::new();
        for e in events {
            let event = match e {
                0 => VaEvent::WakeDetected { live: true, facing: true },
                1 => VaEvent::WakeDetected { live: false, facing: true },
                2 => VaEvent::EnterHeadTalkMode,
                3 => VaEvent::MuteButton,
                4 => VaEvent::SessionEnded,
                _ => VaEvent::UnmuteButton,
            };
            let muted_before = va.mode() == VaMode::Mute;
            let r = va.handle(event);
            if muted_before && matches!(event, VaEvent::WakeDetected { .. }) {
                prop_assert!(!r.audio_forwarded_to_cloud());
            }
        }
    }

    #[test]
    fn privacy_controller_headtalk_rejects_non_live_without_session(
        live in any::<bool>(),
        facing in any::<bool>(),
    ) {
        let mut va = PrivacyController::new();
        va.handle(VaEvent::EnterHeadTalkMode);
        let r = va.handle(VaEvent::WakeDetected { live, facing });
        prop_assert_eq!(r.audio_forwarded_to_cloud(), live && facing);
    }
}
