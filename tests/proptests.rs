//! Property-based tests on the core invariants of the DSP, ML and control
//! substrates, running on the in-repo `ht_dsp::check` harness
//! (deterministic per-case seeds, `HT_CHECK_SEED=…` replay).
#![allow(clippy::manual_range_contains)]

use headtalk::control::{PrivacyController, VaEvent, VaMode};
use headtalk::facing::FacingDefinition;
use ht_dsp::check::{property, Gen};
use ht_dsp::correlate::gcc_phat;
use ht_dsp::fft;
use ht_dsp::filter::Butterworth;
use ht_dsp::rng::{SeedableRng, StdRng};
use ht_ml::metrics::Confusion;

fn small_signal(g: &mut Gen) -> Vec<f64> {
    g.vec_f64(-1.0..1.0, 16..256)
}

#[test]
fn fft_round_trip_recovers_signal() {
    property("fft_round_trip_recovers_signal")
        .cases(64)
        .run(|g| {
            let x = small_signal(g);
            let spec: Vec<ht_dsp::Complex> =
                x.iter().map(|&v| ht_dsp::Complex::from_real(v)).collect();
            let back = fft::ifft(&fft::fft(&spec));
            for (a, b) in x.iter().zip(back.iter()) {
                assert!((a - b.re).abs() < 1e-9);
                assert!(b.im.abs() < 1e-9);
            }
        });
}

#[test]
fn fft_parseval_energy() {
    property("fft_parseval_energy").cases(64).run(|g| {
        let x = small_signal(g);
        let spec = fft::rfft(&x);
        let n = spec.len() as f64;
        let time: f64 = x.iter().map(|v| v * v).sum();
        let freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
        assert!((time - freq).abs() < 1e-6 * time.max(1.0));
    });
}

#[test]
fn filtfilt_preserves_length_and_finiteness() {
    property("filtfilt_preserves_length_and_finiteness")
        .cases(64)
        .run(|g| {
            let x = small_signal(g);
            let order = g.usize_in(1..6);
            let fc = g.f64_in(200.0..10_000.0);
            let f = Butterworth::lowpass(order, fc, 48_000.0).unwrap();
            let y = f.filtfilt(&x);
            assert_eq!(y.len(), x.len());
            assert!(y.iter().all(|v| v.is_finite()));
        });
}

#[test]
fn gcc_phat_peak_is_bounded_by_lag_window() {
    property("gcc_phat_peak_is_bounded_by_lag_window")
        .cases(64)
        .run(|g| {
            let x = g.vec_f64(-1.0..1.0, 64..256);
            let max_lag = g.usize_in(1..20);
            let gp = gcc_phat(&x, &x, max_lag).unwrap();
            assert_eq!(gp.values.len(), 2 * gp.max_lag + 1);
            assert!(gp.peak_lag().unsigned_abs() <= gp.max_lag);
            // Self-correlation peaks at zero lag.
            assert_eq!(gp.peak_lag(), 0);
        });
}

#[test]
fn integer_delays_are_recovered_exactly() {
    property("integer_delays_are_recovered_exactly")
        .cases(64)
        .run(|g| {
            let seed = g.u64_in(0..1000);
            let delay = g.usize_in(0..12);
            let mut rng = StdRng::seed_from_u64(seed);
            let x = ht_dsp::rng::white_noise(&mut rng, 512);
            let y = ht_dsp::signal::fractional_delay(&x, delay as f64, 16);
            let gp = gcc_phat(&x, &y, 16).unwrap();
            assert_eq!(gp.peak_lag(), -(delay as isize));
        });
}

#[test]
fn confusion_metrics_are_rates() {
    property("confusion_metrics_are_rates").cases(64).run(|g| {
        let labels = g.vec_usize(0..2, 1..64);
        let flips = {
            let mut f = g.vec_bool(1..64);
            if f.is_empty() {
                f.push(true);
            }
            f
        };
        let preds: Vec<usize> = labels
            .iter()
            .zip(flips.iter().cycle())
            .map(|(&l, &f)| if f { 1 - l } else { l })
            .collect();
        let c = Confusion::from_predictions(&labels, &preds);
        for rate in [
            c.accuracy(),
            c.precision(),
            c.recall(),
            c.far(),
            c.frr(),
            c.f1(),
        ] {
            assert!((0.0..=1.0).contains(&rate));
        }
        assert_eq!(c.total(), labels.len());
        // FRR + TPR = 1 whenever positives exist.
        if labels.contains(&1) {
            assert!((c.frr() + c.tpr() - 1.0).abs() < 1e-12);
        }
    });
}

#[test]
fn eer_is_a_rate() {
    property("eer_is_a_rate").cases(64).run(|g| {
        let scores = g.vec_f64(-5.0..5.0, 4..64);
        // Force both classes present.
        let labels: Vec<usize> = (0..scores.len()).map(|i| i % 2).collect();
        let eer = ht_ml::metrics::equal_error_rate(&labels, &scores);
        assert!((0.0..=1.0).contains(&eer));
    });
}

#[test]
fn facing_definitions_are_consistent() {
    property("facing_definitions_are_consistent")
        .cases(64)
        .run(|g| {
            let angle = g.f64_in(-360.0..360.0);
            for def in FacingDefinition::ALL {
                if let Some(label) = def.label(angle) {
                    assert!(label <= 1);
                    // A labeled-facing angle always lies in the facing zone
                    // and vice versa for labeled non-facing angles.
                    if label == 1 {
                        assert_eq!(FacingDefinition::ground_truth(angle), 1);
                    } else {
                        assert_eq!(FacingDefinition::ground_truth(angle), 0);
                    }
                }
            }
            // Definitions only become more exclusive from 1 to 4 on the
            // facing side: anything Definition-4 calls facing, Definition-1
            // does too.
            if FacingDefinition::Definition4.label(angle) == Some(1) {
                assert_eq!(FacingDefinition::Definition1.label(angle), Some(1));
            }
        });
}

#[test]
fn sus_scores_are_bounded() {
    property("sus_scores_are_bounded").cases(64).run(|g| {
        let mut response = [0u8; 10];
        for slot in &mut response {
            *slot = g.usize_in(1..6) as u8;
        }
        let score = headtalk::userstudy::sus_score(&response);
        assert!((0.0..=100.0).contains(&score));
        assert_eq!(score % 2.5, 0.0);
    });
}

#[test]
fn smote_balances_binary_datasets() {
    property("smote_balances_binary_datasets")
        .cases(64)
        .run(|g| {
            let n_min = g.usize_in(2..6);
            let n_maj = g.usize_in(6..14);
            let seed = g.u64_in(0..100);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ds = ht_ml::Dataset::new(2);
            for i in 0..n_min {
                ds.push(vec![i as f64, 5.0], 1).unwrap();
            }
            for i in 0..n_maj {
                ds.push(vec![i as f64, -5.0], 0).unwrap();
            }
            let up = ht_ml::sampling::smote(&ds, 3, &mut rng).unwrap();
            let counts = up.class_counts();
            assert_eq!(counts[0].1, counts[1].1);
            assert_eq!(up.len(), 2 * n_maj);
        });
}

#[test]
fn privacy_controller_never_forwards_while_muted() {
    property("privacy_controller_never_forwards_while_muted")
        .cases(64)
        .run(|g| {
            let events = g.vec_usize(0..6, 1..40);
            let mut va = PrivacyController::new();
            for e in events {
                let event = match e {
                    0 => VaEvent::WakeDetected {
                        live: true,
                        facing: true,
                    },
                    1 => VaEvent::WakeDetected {
                        live: false,
                        facing: true,
                    },
                    2 => VaEvent::EnterHeadTalkMode,
                    3 => VaEvent::MuteButton,
                    4 => VaEvent::SessionEnded,
                    _ => VaEvent::UnmuteButton,
                };
                let muted_before = va.mode() == VaMode::Mute;
                let r = va.handle(event);
                if muted_before && matches!(event, VaEvent::WakeDetected { .. }) {
                    assert!(!r.audio_forwarded_to_cloud());
                }
            }
        });
}

#[test]
fn privacy_controller_headtalk_rejects_non_live_without_session() {
    property("privacy_controller_headtalk_rejects_non_live_without_session")
        .cases(16)
        .run(|g| {
            let live = g.bool();
            let facing = g.bool();
            let mut va = PrivacyController::new();
            va.handle(VaEvent::EnterHeadTalkMode);
            let r = va.handle(VaEvent::WakeDetected { live, facing });
            assert_eq!(r.audio_forwarded_to_cloud(), live && facing);
        });
}
