//! Typed streaming errors.
//!
//! A streaming pipeline fixes its geometry — sample rate, channel count,
//! frame/hop sizes — at construction, because every downstream quantity
//! (band-edge bins, GCC lag windows, hop deadlines) is derived from it. A
//! producer that changes rate or channel count mid-stream would not crash
//! the DSP; it would silently shift every GCC lag and band edge. These
//! errors make that contract violation loud and recoverable: the stream's
//! state is untouched and valid pushes keep working.

use std::error::Error;
use std::fmt;

/// An error raised by the streaming ingest/analysis layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// A chunk arrived with a different sample rate than the stream was
    /// built for. Accepting it would silently rescale every frequency bin
    /// and TDoA.
    SampleRateChanged {
        /// Rate the stream was built for, in Hz (rounded to integer Hz for
        /// exact comparison).
        expected_hz: u32,
        /// Rate the offending chunk claimed.
        got_hz: u32,
    },
    /// A chunk arrived with a different number of channels than the stream
    /// was built for. Accepting it would scramble the microphone-pair
    /// geometry behind every GCC lag.
    ChannelCountChanged {
        /// Channel count the stream was built for.
        expected: usize,
        /// Channel count of the offending chunk.
        got: usize,
    },
    /// The channels of one chunk have unequal lengths.
    RaggedChunk {
        /// Length of the first channel in the chunk.
        first: usize,
        /// The differing length encountered.
        other: usize,
    },
    /// Invalid construction-time geometry (zero sizes, hop larger than the
    /// frame, too few channels, …).
    BadGeometry(String),
    /// Feature assembly was requested before one complete analysis frame
    /// was accumulated — the capture is shorter than a single frame, so no
    /// fixed-width feature vector exists yet.
    NoFrames,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::SampleRateChanged { expected_hz, got_hz } => write!(
                f,
                "sample rate changed mid-stream: stream built for {expected_hz} Hz, chunk claims {got_hz} Hz"
            ),
            StreamError::ChannelCountChanged { expected, got } => write!(
                f,
                "channel count changed mid-stream: stream built for {expected} channels, chunk has {got}"
            ),
            StreamError::RaggedChunk { first, other } => write!(
                f,
                "ragged chunk: channels must share one length, got {first} and {other}"
            ),
            StreamError::BadGeometry(msg) => write!(f, "bad stream geometry: {msg}"),
            StreamError::NoFrames => write!(
                f,
                "no analysis frames accumulated: capture shorter than one frame"
            ),
        }
    }
}

impl Error for StreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_both_sides_of_the_mismatch() {
        let e = StreamError::SampleRateChanged {
            expected_hz: 48_000,
            got_hz: 44_100,
        };
        let msg = e.to_string();
        assert!(msg.contains("48000") && msg.contains("44100"), "{msg}");

        let e = StreamError::ChannelCountChanged {
            expected: 4,
            got: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains('4') && msg.contains('2'), "{msg}");

        let e = StreamError::RaggedChunk {
            first: 480,
            other: 7,
        };
        assert!(e.to_string().contains("480"));

        let e = StreamError::BadGeometry("hop 0".into());
        assert!(e.to_string().contains("hop 0"));
    }
}
