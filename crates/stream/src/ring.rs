//! Multi-channel ring-buffered PCM ingest with fixed frame/hop geometry.
//!
//! A [`FrameRing`] accepts pushes of any size (hop-aligned or ragged) and
//! yields fixed-size overlapping analysis frames: a frame of `frame_len`
//! samples is ready whenever that many are buffered, and popping one
//! advances the read head by `hop`, keeping the `frame_len − hop` overlap
//! for the next frame. Capacity grows only when a producer outruns the
//! consumer; a drained ring fed hop-sized chunks never reallocates, which
//! is what makes the steady-state zero-allocation claim of the streaming
//! pipeline hold.

use crate::error::StreamError;

/// A fixed-geometry, multi-channel sample ring that frames its contents.
#[derive(Debug, Clone)]
pub struct FrameRing {
    channels: usize,
    frame_len: usize,
    hop: usize,
    /// Physical capacity per channel.
    cap: usize,
    /// Physical index of the oldest buffered sample.
    head: usize,
    /// Buffered samples per channel.
    len: usize,
    /// One circular buffer per channel, all sharing `head`/`len`.
    bufs: Vec<Vec<f64>>,
    pushed: u64,
    popped: u64,
}

impl FrameRing {
    /// Builds a ring for `channels` channels with `frame_len`-sample frames
    /// advancing by `hop`.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::BadGeometry`] when any dimension is zero or
    /// `hop > frame_len` (gapped framing would silently drop samples).
    pub fn new(channels: usize, frame_len: usize, hop: usize) -> Result<FrameRing, StreamError> {
        FrameRing::with_capacity(channels, frame_len, hop, 0)
    }

    /// Like [`new`](FrameRing::new), but preallocates at least
    /// `min_capacity` samples per channel so bursty producers don't trigger
    /// ring growth mid-stream.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::BadGeometry`] as for [`new`](FrameRing::new).
    pub fn with_capacity(
        channels: usize,
        frame_len: usize,
        hop: usize,
        min_capacity: usize,
    ) -> Result<FrameRing, StreamError> {
        if channels == 0 {
            return Err(StreamError::BadGeometry(
                "ring needs at least one channel".into(),
            ));
        }
        if frame_len == 0 || hop == 0 {
            return Err(StreamError::BadGeometry(
                "frame length and hop must be positive".into(),
            ));
        }
        if hop > frame_len {
            return Err(StreamError::BadGeometry(format!(
                "hop {hop} exceeds frame length {frame_len}: frames would skip samples"
            )));
        }
        // Headroom for one full frame plus one hop-sized push keeps the
        // drained steady state allocation-free.
        let cap = (frame_len + hop).max(min_capacity).next_power_of_two();
        Ok(FrameRing {
            channels,
            frame_len,
            hop,
            cap,
            head: 0,
            len: 0,
            bufs: vec![vec![0.0; cap]; channels],
            pushed: 0,
            popped: 0,
        })
    }

    /// Appends one chunk (any length, including empty) to every channel.
    /// Returns the number of frames now ready to pop.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::ChannelCountChanged`] when the chunk's channel
    /// count differs from the ring's, [`StreamError::RaggedChunk`] when the
    /// chunk's channels have unequal lengths. Either way the ring is left
    /// untouched.
    pub fn push(&mut self, chunk: &[&[f64]]) -> Result<usize, StreamError> {
        if chunk.len() != self.channels {
            return Err(StreamError::ChannelCountChanged {
                expected: self.channels,
                got: chunk.len(),
            });
        }
        let add = chunk[0].len();
        for c in chunk {
            if c.len() != add {
                return Err(StreamError::RaggedChunk {
                    first: add,
                    other: c.len(),
                });
            }
        }
        if add == 0 {
            return Ok(self.ready_frames());
        }
        if self.len + add > self.cap {
            self.grow(self.len + add);
        }
        let write = (self.head + self.len) % self.cap;
        let first = (self.cap - write).min(add);
        for (buf, c) in self.bufs.iter_mut().zip(chunk) {
            buf[write..write + first].copy_from_slice(&c[..first]);
            buf[..add - first].copy_from_slice(&c[first..]);
        }
        self.len += add;
        self.pushed += add as u64;
        Ok(self.ready_frames())
    }

    /// Copies the oldest complete frame into `out` (one `frame_len`-sample
    /// buffer per channel) and advances the read head by `hop`. Returns
    /// `false`, leaving `out` untouched, when fewer than `frame_len` samples
    /// are buffered.
    ///
    /// # Panics
    ///
    /// Panics if `out` does not have exactly `channels` buffers of
    /// `frame_len` samples.
    pub fn pop_frame_into(&mut self, out: &mut [Vec<f64>]) -> bool {
        assert_eq!(out.len(), self.channels, "output channel count");
        if self.len < self.frame_len {
            return false;
        }
        let first = (self.cap - self.head).min(self.frame_len);
        for (dst, buf) in out.iter_mut().zip(&self.bufs) {
            assert_eq!(dst.len(), self.frame_len, "output frame length");
            dst[..first].copy_from_slice(&buf[self.head..self.head + first]);
            dst[first..].copy_from_slice(&buf[..self.frame_len - first]);
        }
        self.head = (self.head + self.hop) % self.cap;
        self.len -= self.hop;
        self.popped += 1;
        true
    }

    /// Number of complete frames currently poppable.
    pub fn ready_frames(&self) -> usize {
        if self.len < self.frame_len {
            0
        } else {
            1 + (self.len - self.frame_len) / self.hop
        }
    }

    /// Buffered samples per channel (includes the overlap carried between
    /// frames).
    pub fn pending(&self) -> usize {
        self.len
    }

    /// Total samples pushed per channel over the ring's lifetime.
    pub fn samples_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total frames popped over the ring's lifetime.
    pub fn frames_popped(&self) -> u64 {
        self.popped
    }

    /// The configured channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The configured frame length in samples.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// The configured hop in samples.
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// Current physical capacity per channel (grows only when a producer
    /// outruns the consumer).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Empties the ring and zeroes its lifetime statistics while keeping
    /// every buffer at its current capacity, so a pooled ring can serve a
    /// new stream without touching the heap (multi-tenant slot reuse).
    pub fn reset(&mut self) {
        self.head = 0;
        self.len = 0;
        self.pushed = 0;
        self.popped = 0;
    }

    /// Reallocates to hold at least `need` samples, unwrapping the ring
    /// into logical order.
    fn grow(&mut self, need: usize) {
        let cap = need.next_power_of_two().max(self.cap * 2);
        for buf in &mut self.bufs {
            let mut next = vec![0.0; cap];
            let first = (self.cap - self.head).min(self.len);
            next[..first].copy_from_slice(&buf[self.head..self.head + first]);
            next[first..self.len].copy_from_slice(&buf[..self.len - first]);
            *buf = next;
        }
        self.head = 0;
        self.cap = cap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, offset: f64) -> Vec<f64> {
        (0..n).map(|i| i as f64 + offset).collect()
    }

    /// Reference framing: the first `k` complete frames of
    /// `ht_dsp::stft::frames` (which zero-pads a final partial frame the
    /// ring intentionally withholds until enough samples arrive).
    fn reference_frames(x: &[f64], frame_len: usize, hop: usize) -> Vec<Vec<f64>> {
        let complete = if x.len() < frame_len {
            0
        } else {
            1 + (x.len() - frame_len) / hop
        };
        ht_dsp::stft::frames(x, frame_len, hop)
            .into_iter()
            .take(complete)
            .collect()
    }

    fn drain(ring: &mut FrameRing) -> Vec<Vec<Vec<f64>>> {
        let mut out = Vec::new();
        let mut frame = vec![vec![0.0; ring.frame_len()]; ring.channels()];
        while ring.pop_frame_into(&mut frame) {
            out.push(frame.clone());
        }
        out
    }

    #[test]
    fn hop_aligned_pushes_match_batch_framing() {
        let (frame_len, hop) = (8, 4);
        let x = ramp(37, 0.0);
        let y = ramp(37, 100.0);
        let mut ring = FrameRing::new(2, frame_len, hop).unwrap();
        let mut got = Vec::new();
        let mut frame = vec![vec![0.0; frame_len]; 2];
        for start in (0..x.len()).step_by(hop) {
            let end = (start + hop).min(x.len());
            ring.push(&[&x[start..end], &y[start..end]]).unwrap();
            while ring.pop_frame_into(&mut frame) {
                got.push(frame.clone());
            }
        }
        let expect_x = reference_frames(&x, frame_len, hop);
        assert_eq!(got.len(), expect_x.len());
        for (g, e) in got.iter().zip(&expect_x) {
            assert_eq!(g[0], *e);
        }
        let expect_y = reference_frames(&y, frame_len, hop);
        for (g, e) in got.iter().zip(&expect_y) {
            assert_eq!(g[1], *e);
        }
    }

    #[test]
    fn ragged_pushes_yield_identical_frames() {
        let (frame_len, hop) = (16, 8);
        let x = ramp(301, 0.5);
        let mut one_shot = FrameRing::new(1, frame_len, hop).unwrap();
        one_shot.push(&[&x]).unwrap();
        let expect = drain(&mut one_shot);

        // Prime-sized pushes exercise every wraparound alignment.
        let mut ragged = FrameRing::new(1, frame_len, hop).unwrap();
        let mut got = Vec::new();
        let mut frame = vec![vec![0.0; frame_len]];
        for chunk in x.chunks(7) {
            ragged.push(&[chunk]).unwrap();
            while ragged.pop_frame_into(&mut frame) {
                got.push(frame.clone());
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn overlap_is_carried_between_frames() {
        let mut ring = FrameRing::new(1, 6, 2).unwrap();
        let x = ramp(10, 0.0);
        ring.push(&[&x]).unwrap();
        assert_eq!(ring.ready_frames(), 3);
        let mut frame = vec![vec![0.0; 6]];
        assert!(ring.pop_frame_into(&mut frame));
        assert_eq!(frame[0], ramp(6, 0.0));
        assert!(ring.pop_frame_into(&mut frame));
        assert_eq!(frame[0], vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn steady_state_drained_ring_never_grows() {
        let (frame_len, hop) = (960, 480);
        let mut ring = FrameRing::new(4, frame_len, hop).unwrap();
        let cap = ring.capacity();
        let chunk = vec![0.25; hop];
        let refs: Vec<&[f64]> = (0..4).map(|_| chunk.as_slice()).collect();
        let mut frame = vec![vec![0.0; frame_len]; 4];
        for _ in 0..1000 {
            ring.push(&refs).unwrap();
            while ring.pop_frame_into(&mut frame) {}
        }
        assert_eq!(
            ring.capacity(),
            cap,
            "drained hop-sized pushes must not grow the ring"
        );
        assert_eq!(ring.frames_popped(), 999);
    }

    #[test]
    fn burst_grows_then_yields_correct_frames() {
        let mut ring = FrameRing::new(1, 8, 8).unwrap();
        let small_cap = ring.capacity();
        let x = ramp(1000, 0.0);
        // Fill partway, then burst past capacity without draining.
        ring.push(&[&x[..5]]).unwrap();
        ring.push(&[&x[5..640]]).unwrap();
        assert!(ring.capacity() > small_cap);
        ring.push(&[&x[640..]]).unwrap();
        let frames = drain(&mut ring);
        assert_eq!(frames.len(), 125);
        for (t, f) in frames.iter().enumerate() {
            assert_eq!(f[0], ramp(8, (t * 8) as f64), "frame {t}");
        }
    }

    #[test]
    fn geometry_errors() {
        assert!(matches!(
            FrameRing::new(0, 8, 4),
            Err(StreamError::BadGeometry(_))
        ));
        assert!(matches!(
            FrameRing::new(1, 0, 1),
            Err(StreamError::BadGeometry(_))
        ));
        assert!(matches!(
            FrameRing::new(1, 4, 0),
            Err(StreamError::BadGeometry(_))
        ));
        assert!(matches!(
            FrameRing::new(1, 4, 5),
            Err(StreamError::BadGeometry(_))
        ));
    }

    #[test]
    fn push_errors_leave_the_ring_untouched() {
        let mut ring = FrameRing::new(2, 8, 4).unwrap();
        let a = ramp(4, 0.0);
        ring.push(&[&a, &a]).unwrap();
        let before = ring.pending();

        let err = ring.push(&[&a]).unwrap_err();
        assert_eq!(
            err,
            StreamError::ChannelCountChanged {
                expected: 2,
                got: 1
            }
        );
        let b = ramp(3, 0.0);
        let err = ring.push(&[&a, &b]).unwrap_err();
        assert_eq!(err, StreamError::RaggedChunk { first: 4, other: 3 });

        assert_eq!(ring.pending(), before);
        // The ring still works after rejected pushes.
        ring.push(&[&a, &a]).unwrap();
        assert_eq!(ring.ready_frames(), 1);
    }

    #[test]
    fn empty_chunks_are_a_no_op() {
        let mut ring = FrameRing::new(1, 4, 2).unwrap();
        assert_eq!(ring.push(&[&[]]).unwrap(), 0);
        assert_eq!(ring.pending(), 0);
        assert_eq!(ring.samples_pushed(), 0);
    }

    #[test]
    fn with_capacity_preallocates() {
        let ring = FrameRing::with_capacity(1, 8, 4, 10_000).unwrap();
        assert!(ring.capacity() >= 10_000);
    }

    #[test]
    fn reset_reuses_capacity_and_yields_identical_frames() {
        let (frame_len, hop) = (16, 8);
        let x = ramp(301, 0.5);
        let mut ring = FrameRing::new(1, frame_len, hop).unwrap();
        ring.push(&[&x]).unwrap();
        let cap_after_growth = ring.capacity();
        let first = drain(&mut ring);

        ring.reset();
        assert_eq!(ring.pending(), 0);
        assert_eq!(ring.samples_pushed(), 0);
        assert_eq!(ring.frames_popped(), 0);
        assert_eq!(ring.capacity(), cap_after_growth, "reset must keep buffers");
        ring.push(&[&x]).unwrap();
        assert_eq!(drain(&mut ring), first, "a reset ring frames identically");
        assert_eq!(ring.capacity(), cap_after_growth);
    }
}
