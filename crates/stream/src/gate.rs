//! The early-exit gate: frame-granular soft-mute before the utterance ends.
//!
//! The paper's privacy control only helps if the decision lands before the
//! assistant wakes. The gate watches cheap per-frame evidence — the
//! high/low band ratio (replay speakers cut highs, Fig. 3) and the SRP
//! peak sharpness (a frontal speaker has a dominant direct path) — through
//! an EWMA, and soft-mutes once the evidence has stayed below its floor
//! for `patience` consecutive voiced frames. Silence never counts against
//! the speaker: unvoiced frames leave the EWMAs and strike counters alone.
//!
//! Two modes with different determinism contracts:
//!
//! * [`GateMode::Advisory`] (default): the verdict is recorded (when the
//!   gate would have muted) but the stream keeps ingesting, and the final
//!   decision is the batch-identical model verdict. Use this when the
//!   byte-identity contract with the batch pipeline matters.
//! * [`GateMode::Enforcing`]: the stream stops ingesting at the exit frame
//!   — genuine early mute, at the cost of deciding on a truncated capture.

/// The stream's rolling verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeVerdict {
    /// Not enough evidence yet; keep listening.
    Undecided,
    /// The finalized pipeline accepted the capture (live *and* facing).
    /// Only ever produced at finalization — the models, not the gate,
    /// grant an Allow.
    Allow,
    /// The gate (mid-stream) or the finalized pipeline rejected the
    /// capture; the assistant should stay muted.
    SoftMute,
}

/// What the gate does when it concludes the speaker isn't addressing the
/// device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMode {
    /// Record the would-be exit but keep ingesting; the final verdict is
    /// byte-identical to the batch pipeline.
    Advisory,
    /// Stop ingesting at the exit frame (true early mute).
    Enforcing,
}

/// Why the gate fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// The band-ratio EWMA stayed under its floor: replay-like spectrum.
    NotLive,
    /// The SRP-sharpness EWMA stayed under its floor: no dominant direct
    /// path toward the array.
    NotFacing,
}

/// A fired early exit: which frame, and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EarlyExit {
    /// 0-based index of the frame at which the gate fired.
    pub frame: u64,
    /// The failing evidence stream.
    pub reason: ExitReason,
}

/// Tuning for the early-exit gate.
///
/// The default floors are calibrated on the `ht-datagen` scenario suite
/// (the `probe_evidence_floors` probe in the golden tests): a facing live
/// speaker's evidence EWMAs never dip below roughly 0.029 (band ratio) and
/// 1.42 (SRP sharpness) on any rendered scenario, so the defaults sit just
/// under those minima — the advisory gate stays silent for legitimate
/// speakers while averted speech and the worst replays (whose EWMAs reach
/// 0.021 and 1.14) can still strike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Advisory (default) or enforcing; see [`GateMode`].
    pub mode: GateMode,
    /// Voiced frames to observe before the gate may judge at all.
    pub min_voiced_frames: usize,
    /// Consecutive below-floor voiced frames required to fire.
    pub patience: usize,
    /// Floor for the band-ratio EWMA (liveness evidence).
    pub live_floor: f64,
    /// Floor for the SRP-sharpness EWMA (orientation evidence).
    pub facing_floor: f64,
    /// EWMA smoothing factor in `(0, 1]`; 1 means no smoothing.
    pub ewma_alpha: f64,
    /// A frame is voiced when its RMS exceeds this fraction of the running
    /// peak RMS.
    pub voiced_rms_fraction: f64,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            mode: GateMode::Advisory,
            min_voiced_frames: 10,
            patience: 8,
            live_floor: 0.025,
            facing_floor: 1.3,
            ewma_alpha: 0.25,
            voiced_rms_fraction: 0.1,
        }
    }
}

impl GateConfig {
    /// The default advisory configuration.
    pub fn advisory() -> GateConfig {
        GateConfig::default()
    }

    /// The default thresholds with [`GateMode::Enforcing`].
    pub fn enforcing() -> GateConfig {
        GateConfig {
            mode: GateMode::Enforcing,
            ..GateConfig::default()
        }
    }

    /// A gate that never fires (floors at −∞) — streaming becomes pure
    /// instrumentation.
    pub fn disabled() -> GateConfig {
        GateConfig {
            live_floor: f64::NEG_INFINITY,
            facing_floor: f64::NEG_INFINITY,
            ..GateConfig::default()
        }
    }
}

/// Incremental evidence accumulator implementing the early-exit policy.
#[derive(Debug, Clone)]
pub struct EarlyExitGate {
    cfg: GateConfig,
    frames: u64,
    voiced: usize,
    peak_rms: f64,
    live_ewma: Option<f64>,
    facing_ewma: Option<f64>,
    live_strikes: usize,
    facing_strikes: usize,
    fired: Option<EarlyExit>,
}

impl EarlyExitGate {
    /// A fresh gate with the given tuning.
    pub fn new(cfg: GateConfig) -> EarlyExitGate {
        EarlyExitGate {
            cfg,
            frames: 0,
            voiced: 0,
            peak_rms: 0.0,
            live_ewma: None,
            facing_ewma: None,
            live_strikes: 0,
            facing_strikes: 0,
            fired: None,
        }
    }

    /// Feeds one frame's evidence and returns the rolling verdict. Once
    /// fired the gate latches: every later observation returns
    /// [`WakeVerdict::SoftMute`] without touching the evidence state.
    pub fn observe(&mut self, rms: f64, live_evidence: f64, facing_evidence: f64) -> WakeVerdict {
        let frame = self.frames;
        self.frames += 1;
        if self.fired.is_some() {
            return WakeVerdict::SoftMute;
        }
        self.peak_rms = self.peak_rms.max(rms);
        let voiced = rms > self.cfg.voiced_rms_fraction * self.peak_rms && rms > 1e-12;
        if !voiced {
            return WakeVerdict::Undecided;
        }
        self.voiced += 1;
        let a = self.cfg.ewma_alpha;
        let live = ewma(&mut self.live_ewma, live_evidence, a);
        let facing = ewma(&mut self.facing_ewma, facing_evidence, a);
        if self.voiced < self.cfg.min_voiced_frames {
            return WakeVerdict::Undecided;
        }
        step_strikes(&mut self.live_strikes, live, self.cfg.live_floor);
        step_strikes(&mut self.facing_strikes, facing, self.cfg.facing_floor);
        // Liveness first: a fixed check order keeps the reported reason
        // deterministic when both streams cross on the same frame.
        let reason = if self.live_strikes >= self.cfg.patience {
            Some(ExitReason::NotLive)
        } else if self.facing_strikes >= self.cfg.patience {
            Some(ExitReason::NotFacing)
        } else {
            None
        };
        if let Some(reason) = reason {
            self.fired = Some(EarlyExit { frame, reason });
            return WakeVerdict::SoftMute;
        }
        WakeVerdict::Undecided
    }

    /// The fired exit, if any.
    pub fn fired(&self) -> Option<EarlyExit> {
        self.fired
    }

    /// The current liveness EWMA (None before the first voiced frame).
    pub fn live_score(&self) -> Option<f64> {
        self.live_ewma
    }

    /// The current orientation EWMA (None before the first voiced frame).
    pub fn facing_score(&self) -> Option<f64> {
        self.facing_ewma
    }

    /// Frames observed (voiced or not).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Voiced frames observed.
    pub fn voiced_frames(&self) -> usize {
        self.voiced
    }

    /// The configuration this gate runs under.
    pub fn config(&self) -> &GateConfig {
        &self.cfg
    }

    /// Returns the gate to its just-constructed state (same tuning) so a
    /// pooled gate can judge a new stream. Equivalent to
    /// `*self = EarlyExitGate::new(*self.config())` but usable in place.
    pub fn reset(&mut self) {
        *self = EarlyExitGate::new(self.cfg);
    }
}

fn ewma(state: &mut Option<f64>, value: f64, alpha: f64) -> f64 {
    let next = match *state {
        None => value,
        Some(prev) => prev + alpha * (value - prev),
    };
    *state = Some(next);
    next
}

fn step_strikes(strikes: &mut usize, value: f64, floor: f64) {
    if value < floor {
        *strikes += 1;
    } else {
        *strikes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GateConfig {
        GateConfig {
            min_voiced_frames: 3,
            patience: 2,
            live_floor: 0.5,
            facing_floor: 2.0,
            ewma_alpha: 1.0,
            ..GateConfig::default()
        }
    }

    #[test]
    fn strong_evidence_never_fires() {
        let mut g = EarlyExitGate::new(cfg());
        for _ in 0..100 {
            assert_eq!(g.observe(1.0, 2.0, 5.0), WakeVerdict::Undecided);
        }
        assert!(g.fired().is_none());
        assert_eq!(g.voiced_frames(), 100);
    }

    #[test]
    fn sustained_low_liveness_fires_not_live() {
        let mut g = EarlyExitGate::new(cfg());
        let mut verdicts = Vec::new();
        for _ in 0..6 {
            verdicts.push(g.observe(1.0, 0.1, 5.0));
        }
        // Judging starts once min_voiced_frames=3 is reached (frame 2);
        // patience=2 strikes → fires on frame 3.
        assert_eq!(verdicts[2], WakeVerdict::Undecided);
        assert_eq!(verdicts[3], WakeVerdict::SoftMute);
        let exit = g.fired().unwrap();
        assert_eq!(exit.reason, ExitReason::NotLive);
        assert_eq!(exit.frame, 3);
        // Latched.
        assert_eq!(g.observe(1.0, 9.9, 9.9), WakeVerdict::SoftMute);
    }

    #[test]
    fn sustained_low_facing_fires_not_facing() {
        let mut g = EarlyExitGate::new(cfg());
        for _ in 0..10 {
            g.observe(1.0, 2.0, 0.5);
        }
        assert_eq!(g.fired().unwrap().reason, ExitReason::NotFacing);
    }

    #[test]
    fn liveness_wins_a_tie() {
        let mut g = EarlyExitGate::new(cfg());
        for _ in 0..10 {
            g.observe(1.0, 0.1, 0.1);
        }
        assert_eq!(g.fired().unwrap().reason, ExitReason::NotLive);
    }

    #[test]
    fn silence_does_not_accumulate_strikes() {
        let mut g = EarlyExitGate::new(cfg());
        // Establish a voiced baseline.
        for _ in 0..3 {
            g.observe(1.0, 2.0, 5.0);
        }
        // Long silence with (meaningless) low evidence: no strikes.
        for _ in 0..50 {
            assert_eq!(g.observe(1e-6, 0.0, 0.0), WakeVerdict::Undecided);
        }
        assert!(g.fired().is_none());
        assert_eq!(g.voiced_frames(), 3);
        // Voiced good frames still pass afterwards.
        assert_eq!(g.observe(1.0, 2.0, 5.0), WakeVerdict::Undecided);
        assert!(g.fired().is_none());
    }

    #[test]
    fn recovery_resets_the_strike_counter() {
        let mut g = EarlyExitGate::new(cfg());
        for _ in 0..4 {
            g.observe(1.0, 2.0, 5.0);
        }
        // One bad frame, then recovery, repeatedly: patience=2 never met.
        for _ in 0..10 {
            g.observe(1.0, 0.1, 5.0);
            g.observe(1.0, 2.0, 5.0);
        }
        assert!(g.fired().is_none());
    }

    #[test]
    fn disabled_gate_never_fires() {
        let mut g = EarlyExitGate::new(GateConfig::disabled());
        for _ in 0..200 {
            g.observe(1.0, -1e9, -1e9);
        }
        assert!(g.fired().is_none());
    }

    #[test]
    fn reset_unfires_and_unlatches() {
        let mut g = EarlyExitGate::new(cfg());
        for _ in 0..10 {
            g.observe(1.0, 0.1, 0.1);
        }
        assert!(g.fired().is_some());
        g.reset();
        assert!(g.fired().is_none());
        assert_eq!(g.frames(), 0);
        assert_eq!(g.voiced_frames(), 0);
        assert!(g.live_score().is_none());
        // Behaves exactly like a fresh gate: fires on the same schedule.
        let mut verdicts = Vec::new();
        for _ in 0..6 {
            verdicts.push(g.observe(1.0, 0.1, 5.0));
        }
        assert_eq!(verdicts[2], WakeVerdict::Undecided);
        assert_eq!(verdicts[3], WakeVerdict::SoftMute);
    }

    #[test]
    fn ewma_smooths_a_single_outlier_past_alpha() {
        let mut g = EarlyExitGate::new(GateConfig {
            ewma_alpha: 0.1,
            ..cfg()
        });
        for _ in 0..5 {
            g.observe(1.0, 2.0, 5.0);
        }
        // One extreme outlier barely moves the smoothed score.
        g.observe(1.0, 0.0, 5.0);
        assert!(g.live_score().unwrap() > 1.5);
    }
}
