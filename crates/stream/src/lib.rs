//! # ht-stream — the streaming frame substrate for the wake pipeline
//!
//! The paper's orientation-aware privacy control only thwarts misactivation
//! if the decision lands *before* the assistant wakes, which means the
//! pipeline must run online, frame by frame, not batch over a finished
//! capture. This crate provides the generic, model-free substrate for that:
//!
//! * [`FrameRing`] — multi-channel ring-buffered PCM ingest with fixed
//!   frame/hop geometry; accepts pushes of any size and yields overlapping
//!   analysis frames with no steady-state allocations.
//! * [`FrameAnalyzer`] — one shared forward FFT per channel per frame
//!   (the alloc-free `StftProcessor` scratch path), then sliding SRP-PHAT
//!   over every microphone pair via
//!   `ht_dsp::correlate::gcc_phat_from_spectra_into`, plus the paper's
//!   low/high band evidence.
//! * [`DirectivityAccum`] — Welch-style running average of long
//!   channel-mean magnitude spectra, the incremental carrier of the
//!   paper's speech-directivity evidence (HLBR + low-band chunks).
//! * [`EarlyExitGate`] — frame-granular soft-mute: EWMA-smoothed liveness
//!   and orientation evidence with a patience counter, advisory or
//!   enforcing ([`GateMode`]).
//! * [`StreamError`] — typed rejection of mid-stream geometry changes
//!   (sample rate, channel count, ragged chunks) that would otherwise
//!   produce silently wrong GCC lags.
//!
//! The model-bearing streaming engine (`headtalk::stream::WakeStream`)
//! composes these with the trained liveness/orientation detectors; this
//! crate stays zero-dependency on the model layer so the substrate can be
//! reused (and tested) in isolation.

pub mod analyzer;
pub mod directivity;
pub mod error;
pub mod gate;
pub mod ring;

pub use analyzer::{FrameAnalyzer, FrameFeatures};
pub use directivity::DirectivityAccum;
pub use error::StreamError;
pub use gate::{EarlyExit, EarlyExitGate, ExitReason, GateConfig, GateMode, WakeVerdict};
pub use ring::FrameRing;

/// A borrowed multi-channel PCM chunk with its claimed sample rate.
///
/// The rate travels with every chunk so the consumer can verify it against
/// the stream's construction-time geometry and reject a mid-stream change
/// with [`StreamError::SampleRateChanged`] instead of mis-scaling every
/// frequency bin and TDoA.
#[derive(Debug, Clone, Copy)]
pub struct AudioChunk<'a> {
    /// Sample rate of the samples in `channels`, in Hz.
    pub sample_rate: f64,
    /// One equal-length slice per channel.
    pub channels: &'a [&'a [f64]],
}

impl<'a> AudioChunk<'a> {
    /// Convenience constructor.
    pub fn new(sample_rate: f64, channels: &'a [&'a [f64]]) -> AudioChunk<'a> {
        AudioChunk {
            sample_rate,
            channels,
        }
    }
}
