//! Per-frame spectral analysis: one shared forward FFT per channel, then
//! sliding SRP-PHAT across every microphone pair from those shared spectra.
//!
//! The analyzer owns every buffer it needs — STFT plan and scratch,
//! per-channel spectra, GCC cross/lag workspaces, the summed SRP curve —
//! so [`analyze`](FrameAnalyzer::analyze) is allocation-free after
//! construction. Frames are zero-padded to
//! `next_pow2(frame_len + max_lag + 1)` so circular GCC lags up to
//! `±max_lag` never alias (the same pad rule as the batch
//! `ht_dsp::srp::srp_phat`).
//!
//! Beyond the per-frame evidence, the analyzer also *accumulates* the
//! running statistics the batch decision needs — per-pair GCC lag-window
//! sums — so the reverberation half of the §III-B3 feature vector can be
//! assembled at finalize time in O(features) via
//! [`assemble_features_into`](FrameAnalyzer::assemble_features_into),
//! without revisiting any audio. (The directivity half accumulates in
//! [`crate::directivity::DirectivityAccum`], which needs longer windows
//! than one analysis frame.)

use crate::error::StreamError;
use ht_dsp::complex::Complex;
use ht_dsp::correlate::{gcc_phat_from_spectra_into_mode, SpectraGccScratch};
use ht_dsp::fft::{self, RealFftPlan};
use ht_dsp::kernels::QuantMode;
use ht_dsp::spectrum::{HIGH_BAND_HZ, LOW_BAND_HZ};
use ht_dsp::stft::StftProcessor;
use ht_dsp::window::Window;
use std::sync::Arc;

/// Spectral evidence extracted from one analysis frame.
///
/// These are *incremental* observations for the early-exit gate and the
/// latency instrumentation — deliberately cheaper and coarser than the
/// batch feature vector, which remains the sole input to the trained
/// models.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameFeatures {
    /// 0-based index of the frame within the stream.
    pub frame_index: u64,
    /// RMS of the first channel's frame (the gate's voicing signal).
    pub rms: f64,
    /// Peak of the summed SRP-PHAT curve across all pairs.
    pub srp_peak: f64,
    /// Mean absolute value of the summed SRP-PHAT curve.
    pub srp_mean_abs: f64,
    /// Interpolated GCC-PHAT peak lag (samples) per microphone pair, in
    /// `(i, j)` pair order.
    pub tdoas: Vec<f64>,
    /// Mean magnitude of the paper's 100–400 Hz low band (channel 0).
    pub low_band: f64,
    /// Mean magnitude of the paper's 500–4000 Hz high band (channel 0).
    pub high_band: f64,
}

impl FrameFeatures {
    /// SRP peak-to-mean ratio: a sharp dominant peak means a strong direct
    /// path — the frontal-orientation signature. 0 for a silent frame.
    ///
    /// The ratio is **not** bounded below by 1: `srp_peak` is the signed
    /// maximum of the summed PHAT curve while `srp_mean_abs` averages
    /// magnitudes, so a sign-mixed curve whose positive peak is small
    /// relative to its negative excursions scores below 1 (a single pair's
    /// whitened correlation oscillates around zero by construction).
    pub fn srp_sharpness(&self) -> f64 {
        if self.srp_mean_abs > 0.0 {
            self.srp_peak / self.srp_mean_abs
        } else {
            0.0
        }
    }

    /// High/low band ratio of this frame (the per-frame analogue of
    /// `ht_dsp::spectrum::hlbr`): replay speakers attenuate highs, so live
    /// speech scores higher. 0 when the low band is silent.
    pub fn band_ratio(&self) -> f64 {
        if self.low_band > 0.0 {
            self.high_band / self.low_band
        } else {
            0.0
        }
    }
}

/// A reusable per-frame analysis engine for one stream geometry.
#[derive(Debug, Clone)]
pub struct FrameAnalyzer {
    channels: usize,
    frame_len: usize,
    max_lag: usize,
    stft: StftProcessor,
    plan: Arc<RealFftPlan>,
    spectra: Vec<Vec<Complex>>,
    pairs: Vec<(usize, usize)>,
    gcc: SpectraGccScratch,
    lag_window: Vec<f64>,
    srp: Vec<f64>,
    /// `[lo, hi)` bin ranges of the paper's low/high bands for this
    /// geometry (fixed at construction — this is why a mid-stream sample
    /// rate change must be rejected upstream).
    low_bins: (usize, usize),
    high_bins: (usize, usize),
    frames: u64,
    features: FrameFeatures,
    /// Running per-pair GCC lag-window sums, `pairs × (2·max_lag + 1)` laid
    /// out pair-major. Dividing by the frame count yields the Welch-style
    /// frame-averaged lag curves the batch features are built from.
    gcc_accum: Vec<f64>,
    /// Which whitening kernel per-frame GCC runs on: the byte-stable
    /// reference (default) or the vectorized Int8-path variant.
    quant: QuantMode,
}

impl FrameAnalyzer {
    /// Builds an analyzer for `channels`-channel frames of `frame_len`
    /// samples at `sample_rate`, correlating every pair over `±max_lag`
    /// (clamped to `frame_len − 1`).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::BadGeometry`] for fewer than two channels, a
    /// zero frame length, or a non-positive sample rate.
    pub fn new(
        channels: usize,
        frame_len: usize,
        max_lag: usize,
        sample_rate: f64,
    ) -> Result<FrameAnalyzer, StreamError> {
        if channels < 2 {
            return Err(StreamError::BadGeometry(format!(
                "analyzer needs at least two channels for TDoA, got {channels}"
            )));
        }
        if frame_len == 0 {
            return Err(StreamError::BadGeometry(
                "frame length must be positive".into(),
            ));
        }
        if sample_rate <= 0.0 || !sample_rate.is_finite() {
            return Err(StreamError::BadGeometry(format!(
                "sample rate must be positive and finite, got {sample_rate}"
            )));
        }
        let max_lag = max_lag.min(frame_len - 1);
        // Same pad rule as the batch SRP-PHAT: room for every lag we read.
        let n_fft = fft::next_pow2(frame_len + max_lag + 1);
        let stft = StftProcessor::with_n_fft(frame_len, n_fft, Window::Hann);
        let plan = fft::rfft_plan(n_fft);
        let bins = plan.onesided_len();
        let pairs: Vec<(usize, usize)> = (0..channels)
            .flat_map(|i| ((i + 1)..channels).map(move |j| (i, j)))
            .collect();
        let hz_to_bin = |hz: f64| {
            let k = (hz * n_fft as f64 / sample_rate).round() as usize;
            k.min(bins - 1)
        };
        let n_pairs = pairs.len();
        Ok(FrameAnalyzer {
            channels,
            frame_len,
            max_lag,
            stft,
            spectra: vec![vec![Complex::ZERO; bins]; channels],
            pairs,
            gcc: SpectraGccScratch::new(),
            lag_window: vec![0.0; 2 * max_lag + 1],
            srp: vec![0.0; 2 * max_lag + 1],
            low_bins: (hz_to_bin(LOW_BAND_HZ.0), hz_to_bin(LOW_BAND_HZ.1)),
            high_bins: (hz_to_bin(HIGH_BAND_HZ.0), hz_to_bin(HIGH_BAND_HZ.1)),
            frames: 0,
            features: FrameFeatures {
                frame_index: 0,
                rms: 0.0,
                srp_peak: 0.0,
                srp_mean_abs: 0.0,
                tdoas: vec![0.0; n_pairs],
                low_band: 0.0,
                high_band: 0.0,
            },
            plan,
            gcc_accum: vec![0.0; n_pairs * (2 * max_lag + 1)],
            quant: QuantMode::Reference,
        })
    }

    /// Selects the whitening kernel for subsequent frames. Streams mixing
    /// modes mid-capture would mix accumulator provenances, so callers set
    /// this once, right after construction or a [`reset`](Self::reset).
    pub fn set_quant_mode(&mut self, mode: QuantMode) {
        self.quant = mode;
    }

    /// The active whitening-kernel selection.
    pub fn quant_mode(&self) -> QuantMode {
        self.quant
    }

    /// Analyzes one frame (`channels` buffers of exactly `frame_len`
    /// samples) and returns the evidence. Allocation-free; the returned
    /// reference borrows internal storage that the next call overwrites.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::ChannelCountChanged`] /
    /// [`StreamError::BadGeometry`] for a frame of the wrong shape.
    pub fn analyze(&mut self, frame: &[Vec<f64>]) -> Result<&FrameFeatures, StreamError> {
        if frame.len() != self.channels {
            return Err(StreamError::ChannelCountChanged {
                expected: self.channels,
                got: frame.len(),
            });
        }
        for c in frame {
            if c.len() != self.frame_len {
                return Err(StreamError::BadGeometry(format!(
                    "frame length {} differs from the analyzer's {}",
                    c.len(),
                    self.frame_len
                )));
            }
        }
        {
            let _stft = ht_obs::span("stream.stft");
            for (spec, c) in self.spectra.iter_mut().zip(frame) {
                self.stft.process_into(c, spec);
            }
        }
        {
            let _srp = ht_obs::span("stream.srp");
            self.srp.fill(0.0);
            let w = 2 * self.max_lag + 1;
            for (p, &(i, j)) in self.pairs.iter().enumerate() {
                gcc_phat_from_spectra_into_mode(
                    &self.spectra[i],
                    &self.spectra[j],
                    &self.plan,
                    self.max_lag,
                    &mut self.gcc,
                    &mut self.lag_window,
                    self.quant,
                );
                self.features.tdoas[p] = peak_lag_interpolated(&self.lag_window, self.max_lag);
                for (acc, v) in self.srp.iter_mut().zip(&self.lag_window) {
                    *acc += v;
                }
                // Running evidence for the finalize-time feature vector.
                for (acc, v) in self.gcc_accum[p * w..(p + 1) * w]
                    .iter_mut()
                    .zip(&self.lag_window)
                {
                    *acc += v;
                }
            }
        }
        let f = &mut self.features;
        f.frame_index = self.frames;
        f.rms = ht_dsp::signal::rms(&frame[0]);
        f.srp_peak = self.srp.iter().copied().fold(f64::MIN, f64::max);
        f.srp_mean_abs = self.srp.iter().map(|v| v.abs()).sum::<f64>() / self.srp.len() as f64;
        let mags = &self.spectra[0];
        f.low_band = band_mean(mags, self.low_bins);
        f.high_band = band_mean(mags, self.high_bins);
        self.frames += 1;
        Ok(&self.features)
    }

    /// The configured channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The configured frame length in samples.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// The effective lag half-width (after clamping).
    pub fn max_lag(&self) -> usize {
        self.max_lag
    }

    /// The microphone pairs correlated per frame, in feature order.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// The FFT length frames are padded to.
    pub fn n_fft(&self) -> usize {
        self.stft.n_fft()
    }

    /// Frames analyzed so far.
    pub fn frames_analyzed(&self) -> u64 {
        self.frames
    }

    /// Assembles the reverberation half of the §III-B3 feature vector from
    /// the accumulated evidence, appending `srp_peaks + 5 +
    /// pairs·(window + 6)` values to `out`. O(features): no audio is
    /// revisited and, once `out` has capacity, no allocation happens. (The
    /// directivity features follow from
    /// [`crate::directivity::DirectivityAccum`].)
    ///
    /// Non-destructive and idempotent — the accumulators are left intact,
    /// so more frames may be analyzed and the vector assembled again.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::NoFrames`] when no complete frame has been
    /// analyzed yet (`out` is left untouched).
    pub fn assemble_features_into(
        &mut self,
        srp_peaks: usize,
        out: &mut Vec<f64>,
    ) -> Result<(), StreamError> {
        if self.frames == 0 {
            return Err(StreamError::NoFrames);
        }
        let frames = self.frames as f64;
        let w = 2 * self.max_lag + 1;

        // Frame-averaged SRP curve: sum of per-pair lag sums, then one
        // division per lag.
        self.srp.fill(0.0);
        for p in 0..self.pairs.len() {
            for (s, v) in self.srp.iter_mut().zip(&self.gcc_accum[p * w..(p + 1) * w]) {
                *s += v;
            }
        }
        for s in &mut self.srp {
            *s /= frames;
        }
        ht_dsp::peak::push_top_k_peak_values(&self.srp, srp_peaks, out);
        out.extend_from_slice(&ht_dsp::stats::feature_summary(&self.srp));

        // Per-pair frame-averaged GCC windows: full window, interpolated
        // TDoA, summary statistics.
        for p in 0..self.pairs.len() {
            for (dst, v) in self
                .lag_window
                .iter_mut()
                .zip(&self.gcc_accum[p * w..(p + 1) * w])
            {
                *dst = v / frames;
            }
            out.extend_from_slice(&self.lag_window);
            out.push(peak_lag_interpolated(&self.lag_window, self.max_lag));
            out.extend_from_slice(&ht_dsp::stats::feature_summary(&self.lag_window));
        }
        Ok(())
    }

    /// Rewinds the frame counter and zeroes the feature accumulators so a
    /// pooled analyzer can serve a new stream without leaking evidence
    /// between sessions. All plan, scratch, and spectra buffers are kept —
    /// analysis after a reset is byte-identical to a freshly built
    /// analyzer's and allocation-free from the first frame.
    pub fn reset(&mut self) {
        self.frames = 0;
        self.gcc_accum.fill(0.0);
    }
}

/// Mean magnitude over the one-sided bins `[lo, hi)` (0 for an empty band).
fn band_mean(spec: &[Complex], (lo, hi): (usize, usize)) -> f64 {
    if hi <= lo {
        return 0.0;
    }
    spec[lo..hi].iter().map(|z| z.abs()).sum::<f64>() / (hi - lo) as f64
}

/// Sub-sample peak of a `±max_lag` window via parabolic interpolation
/// (mirrors `LagCurve::peak_lag_interpolated`).
fn peak_lag_interpolated(values: &[f64], max_lag: usize) -> f64 {
    let mut idx = 0;
    let mut best = f64::MIN;
    for (k, &v) in values.iter().enumerate() {
        if v > best {
            best = v;
            idx = k;
        }
    }
    let coarse = idx as f64 - max_lag as f64;
    if idx == 0 || idx + 1 >= values.len() {
        return coarse;
    }
    let (ym1, y0, yp1) = (values[idx - 1], values[idx], values[idx + 1]);
    let denom = ym1 - 2.0 * y0 + yp1;
    if denom.abs() < 1e-15 {
        coarse
    } else {
        coarse + 0.5 * (ym1 - yp1) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::signal::{fractional_delay, tone};

    fn noise(n: usize, mut state: u64) -> Vec<f64> {
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn recovers_the_inter_channel_delay() {
        let x = noise(960, 7);
        let y = fractional_delay(&x, 4.0, 16);
        let mut a = FrameAnalyzer::new(2, 960, 13, 48_000.0).unwrap();
        let f = a.analyze(&[x, y]).unwrap();
        // Negative lag: the first channel leads (mirrors gcc_phat).
        assert!((f.tdoas[0] + 4.0).abs() < 0.3, "tdoa {}", f.tdoas[0]);
        assert!(f.srp_sharpness() > 1.0);
    }

    #[test]
    fn pair_order_matches_the_batch_srp_convention() {
        let a = FrameAnalyzer::new(4, 960, 13, 48_000.0).unwrap();
        assert_eq!(a.pairs(), &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(a.n_fft(), 1024);
    }

    #[test]
    fn band_ratio_separates_bright_from_dull_frames() {
        let sr = 48_000.0;
        let n = 960;
        // Bright: energy at 2 kHz (high band). Dull: 200 Hz (low band).
        let bright = tone(2000.0, sr, n, 1.0);
        let dull = tone(200.0, sr, n, 1.0);
        let mut a = FrameAnalyzer::new(2, n, 13, sr).unwrap();
        let rb = a.analyze(&[bright.clone(), bright]).unwrap().band_ratio();
        let rd = a.analyze(&[dull.clone(), dull]).unwrap().band_ratio();
        assert!(rb > 10.0 * rd.max(1e-12), "bright {rb} dull {rd}");
    }

    #[test]
    fn silent_frames_are_finite_and_flat() {
        let mut a = FrameAnalyzer::new(2, 480, 13, 48_000.0).unwrap();
        let z = vec![0.0; 480];
        let f = a.analyze(&[z.clone(), z]).unwrap();
        assert_eq!(f.rms, 0.0);
        assert_eq!(f.srp_sharpness(), 0.0);
        assert_eq!(f.band_ratio(), 0.0);
        assert!(f.tdoas.iter().all(|t| t.is_finite()));
    }

    #[test]
    fn frame_indices_count_up() {
        let mut a = FrameAnalyzer::new(2, 64, 8, 48_000.0).unwrap();
        let z = vec![0.1; 64];
        for i in 0..3 {
            let f = a.analyze(&[z.clone(), z.clone()]).unwrap();
            assert_eq!(f.frame_index, i);
        }
        assert_eq!(a.frames_analyzed(), 3);
    }

    #[test]
    fn wrong_shapes_are_rejected() {
        let mut a = FrameAnalyzer::new(2, 64, 8, 48_000.0).unwrap();
        let z = vec![0.0; 64];
        assert!(matches!(
            a.analyze(std::slice::from_ref(&z)),
            Err(StreamError::ChannelCountChanged {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            a.analyze(&[z.clone(), vec![0.0; 32]]),
            Err(StreamError::BadGeometry(_))
        ));
        // Still usable after a rejection.
        assert!(a.analyze(&[z.clone(), z]).is_ok());
    }

    #[test]
    fn geometry_validation() {
        assert!(FrameAnalyzer::new(1, 64, 8, 48_000.0).is_err());
        assert!(FrameAnalyzer::new(2, 0, 8, 48_000.0).is_err());
        assert!(FrameAnalyzer::new(2, 64, 8, 0.0).is_err());
        assert!(FrameAnalyzer::new(2, 64, 8, f64::NAN).is_err());
        // Lag clamps like the batch Correlator.
        let a = FrameAnalyzer::new(2, 8, 100, 48_000.0).unwrap();
        assert_eq!(a.max_lag(), 7);
    }

    #[test]
    fn reset_matches_a_fresh_analyzer() {
        let x = noise(960, 21);
        let y = fractional_delay(&x, 3.0, 16);
        let mut a = FrameAnalyzer::new(2, 960, 13, 48_000.0).unwrap();
        let fresh = a.analyze(&[x.clone(), y.clone()]).unwrap().clone();
        // Drift the internal state, then reset.
        let _ = a.analyze(&[y.clone(), x.clone()]).unwrap();
        a.reset();
        assert_eq!(a.frames_analyzed(), 0);
        let again = a.analyze(&[x, y]).unwrap();
        assert_eq!(again.frame_index, 0);
        assert_eq!(again.tdoas, fresh.tdoas);
        assert_eq!(again.srp_peak.to_bits(), fresh.srp_peak.to_bits());
        assert_eq!(again.low_band.to_bits(), fresh.low_band.to_bits());
    }

    #[test]
    fn sharpness_is_zero_for_silence_and_can_dip_below_one() {
        // Silent frame: mean_abs == 0, sharpness defined as 0.
        let mut a = FrameAnalyzer::new(2, 480, 13, 48_000.0).unwrap();
        let z = vec![0.0; 480];
        assert_eq!(a.analyze(&[z.clone(), z]).unwrap().srp_sharpness(), 0.0);

        // Single pair, sign-mixed curve: a polarity-inverted second channel
        // puts a large *negative* PHAT spike at lag 0, so the signed peak
        // (small positive ripple) sits below the mean magnitude — which is
        // why the accessor makes no ">= 1" promise.
        let x = noise(480, 17);
        let inv: Vec<f64> = x.iter().map(|v| -v).collect();
        let f = a.analyze(&[x, inv]).unwrap();
        let s = f.srp_sharpness();
        assert!(s.is_finite() && s >= 0.0);
        assert!(
            s < 1.0,
            "inverted-polarity pair should dip below 1, got {s}"
        );
    }

    #[test]
    fn assemble_produces_fixed_width_and_is_idempotent() {
        let x = noise(960, 3);
        let y = fractional_delay(&x, 4.0, 16);
        let mut a = FrameAnalyzer::new(2, 960, 13, 48_000.0).unwrap();

        // Before any frame: NoFrames, and `out` stays untouched.
        let mut out = vec![42.0];
        assert_eq!(
            a.assemble_features_into(3, &mut out),
            Err(StreamError::NoFrames)
        );
        assert_eq!(out, vec![42.0]);

        a.analyze(&[x.clone(), y.clone()]).unwrap();
        a.analyze(&[y.clone(), x.clone()]).unwrap();
        out.clear();
        a.assemble_features_into(3, &mut out).unwrap();
        // srp(3+5) + 1 pair × (27+1+5).
        assert_eq!(out.len(), 3 + 5 + 33);
        assert!(out.iter().all(|v| v.is_finite()));

        // Assembly is non-destructive: a second call appends the same bits.
        let mut again = Vec::new();
        a.assemble_features_into(3, &mut again).unwrap();
        assert_eq!(out.len(), again.len());
        for (o, g) in out.iter().zip(&again) {
            assert_eq!(o.to_bits(), g.to_bits());
        }

        // ... and analysis may continue after an assembly.
        a.analyze(&[x, y]).unwrap();
        assert_eq!(a.frames_analyzed(), 3);
    }

    #[test]
    fn reset_clears_accumulated_evidence() {
        let x = noise(960, 5);
        let y = fractional_delay(&x, 2.0, 16);
        let mut a = FrameAnalyzer::new(2, 960, 13, 48_000.0).unwrap();

        a.analyze(&[x.clone(), y.clone()]).unwrap();
        let mut fresh = Vec::new();
        a.assemble_features_into(3, &mut fresh).unwrap();

        // Pollute the accumulators with a different stream, then reset.
        let other = noise(960, 99);
        a.analyze(&[other.clone(), other]).unwrap();
        a.reset();
        assert_eq!(
            a.assemble_features_into(3, &mut Vec::new()),
            Err(StreamError::NoFrames)
        );

        // Same stream after reset: bit-identical features (no evidence
        // leaks between pooled sessions).
        a.analyze(&[x, y]).unwrap();
        let mut again = Vec::new();
        a.assemble_features_into(3, &mut again).unwrap();
        assert_eq!(fresh.len(), again.len());
        for (f, g) in fresh.iter().zip(&again) {
            assert_eq!(f.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn int8_mode_agrees_with_reference_and_survives_reset() {
        let x = noise(960, 31);
        let y = fractional_delay(&x, 3.0, 16);
        let mut reference = FrameAnalyzer::new(2, 960, 13, 48_000.0).unwrap();
        let mut fast = FrameAnalyzer::new(2, 960, 13, 48_000.0).unwrap();
        fast.set_quant_mode(QuantMode::Int8);
        assert_eq!(fast.quant_mode(), QuantMode::Int8);

        reference.analyze(&[x.clone(), y.clone()]).unwrap();
        fast.analyze(&[x.clone(), y.clone()]).unwrap();
        let mut want = Vec::new();
        reference.assemble_features_into(3, &mut want).unwrap();
        let mut got = Vec::new();
        fast.assemble_features_into(3, &mut got).unwrap();
        assert_eq!(want.len(), got.len());
        for (w, g) in want.iter().zip(&got) {
            assert!((w - g).abs() < 1e-8, "{w} vs {g}");
        }

        // Reset keeps the configured mode (pooled slots set it once).
        fast.reset();
        assert_eq!(fast.quant_mode(), QuantMode::Int8);
    }

    #[test]
    fn repeated_analysis_is_deterministic() {
        let x = noise(960, 11);
        let y = fractional_delay(&x, 2.5, 16);
        let mut a = FrameAnalyzer::new(2, 960, 13, 48_000.0).unwrap();
        let first = a.analyze(&[x.clone(), y.clone()]).unwrap().clone();
        for _ in 0..3 {
            let again = a.analyze(&[x.clone(), y.clone()]).unwrap();
            assert_eq!(again.tdoas, first.tdoas);
            assert_eq!(again.srp_peak.to_bits(), first.srp_peak.to_bits());
            assert_eq!(again.low_band.to_bits(), first.low_band.to_bits());
        }
    }
}
