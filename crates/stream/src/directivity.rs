//! Incremental speech-directivity evidence: a Welch-style running average
//! of long channel-mean magnitude spectra.
//!
//! The §III-B3 directivity features (HLBR and the 100–400 Hz low-band
//! chunk statistics) need *fine* spectral resolution — 20 chunks across a
//! 300 Hz band is 15 Hz per chunk, and the statistics inside each chunk
//! only carry information when the analysis window resolves the voice's
//! harmonic structure. A 20 ms analysis frame (≈100 Hz rectangular-window
//! resolution) cannot do that, so the directivity evidence accumulates
//! here over much longer segments than the per-frame SRP/GCC analysis:
//! non-overlapping windows of the channel-mean signal, each transformed
//! once and summed per bin.
//!
//! The accumulator is chunking-independent by construction: samples fill
//! the segment buffer by absolute index, so any split of the capture into
//! push calls produces the same segment boundaries, the same FFT inputs,
//! and bit-identical averaged magnitudes. The batch feature extractor
//! pushes the whole capture in one call; the streaming engine pushes
//! microphone chunks — both end at the same bits.
//!
//! Flushing is cached and adaptive. The flushed spectrum is stamped with
//! the sample-count epoch it was computed at, so repeat flushes with no
//! new audio (retryable finalizes, `finalize_batch` re-drives, `outcome()`
//! re-reads) return the cached [`Spectrum`] with zero FFT work. And when
//! no segment has completed yet — the common case for sub-second serving
//! captures against a 32k-sample Welch segment — the partial tail is
//! transformed at the next power of two ≥ its own length (floored at
//! [`MIN_PARTIAL_N_FFT`] so the 100–400 Hz chunk statistics stay
//! resolved), not zero-padded to the full segment: the produced
//! [`Spectrum`] carries its own `n_fft` so the band helpers read the same
//! underlying DTFT on a coarser grid at a fraction of the transform cost.

use crate::error::StreamError;
use ht_dsp::complex::Complex;
use ht_dsp::fft::{rfft_plan, RealFftPlan, RealFftScratch};
use ht_dsp::spectrum::Spectrum;
use ht_dsp::stft::StftProcessor;
use ht_dsp::window::Window;
use std::sync::Arc;

/// Resolution floor for the adaptive short-capture flush: at 48 kHz a
/// 4096-point grid gives ≈11.7 Hz bins, enough to keep every 15 Hz
/// low-band chunk populated. Captures whose next power of two is at
/// least the segment FFT length use the full segment grid (bit-identical
/// to the historical full-pad flush), so this floor only engages for
/// genuinely short captures.
pub const MIN_PARTIAL_N_FFT: usize = 4096;

/// Sentinel for "no cached flush" (no real epoch reaches `u64::MAX`).
const EPOCH_DIRTY: u64 = u64::MAX;

/// Running channel-mean spectrum accumulator for the directivity features.
#[derive(Debug, Clone)]
pub struct DirectivityAccum {
    channels: usize,
    seg_len: usize,
    stft: StftProcessor,
    /// Channel-mean samples of the segment currently being filled
    /// (`len() < seg_len` between pushes).
    buf: Vec<f64>,
    /// FFT scratch for completed and flushed segments.
    bins: Vec<Complex>,
    /// Zero-pad scratch for the flush path (the partial segment must not
    /// be mutated by a non-destructive flush).
    flush_buf: Vec<f64>,
    /// Running per-bin magnitude sums over completed segments.
    mag_accum: Vec<f64>,
    /// Completed (full-length) segments accumulated.
    segments: u64,
    /// Reused facade over the averaged magnitudes so callers can use the
    /// batch `hlbr`/chunk-stats helpers without allocating.
    spectrum: Spectrum,
    /// Segment FFT length (the full-resolution grid).
    n_fft: usize,
    /// Sample-count epoch `spectrum` was computed at (`EPOCH_DIRTY` when
    /// no flush is cached). A repeat flush at the same epoch returns the
    /// cached spectrum without touching the FFT.
    cached_epoch: u64,
    /// Plan for the most recent adaptive (shorter-than-segment) flush
    /// grid, kept so steady-state flushes skip the shared plan-cache lock.
    partial_plan: Option<Arc<RealFftPlan>>,
    /// Scratch for the adaptive flush transform (warmed at construction
    /// to the full segment size, so no flush grid can grow it).
    scratch: RealFftScratch,
    /// Forward FFTs performed by `flush_spectrum` since construction.
    /// Diagnostic: pinned by the zero-FFT-on-repeat regression tests.
    flush_ffts: u64,
}

impl DirectivityAccum {
    /// Builds an accumulator for `channels`-channel audio at `sample_rate`,
    /// averaging spectra over non-overlapping `seg_len`-sample segments of
    /// the channel mean.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::BadGeometry`] for zero channels, a zero
    /// segment length, or a non-positive sample rate.
    pub fn new(
        channels: usize,
        seg_len: usize,
        sample_rate: f64,
    ) -> Result<DirectivityAccum, StreamError> {
        if channels == 0 {
            return Err(StreamError::BadGeometry(
                "directivity accumulator needs at least one channel".into(),
            ));
        }
        if seg_len == 0 {
            return Err(StreamError::BadGeometry(
                "directivity segment length must be positive".into(),
            ));
        }
        if sample_rate <= 0.0 || !sample_rate.is_finite() {
            return Err(StreamError::BadGeometry(format!(
                "sample rate must be positive and finite, got {sample_rate}"
            )));
        }
        let n_fft = ht_dsp::fft::next_pow2(seg_len);
        let mut stft = StftProcessor::with_n_fft(seg_len, n_fft, Window::Rect);
        let bins = stft.onesided_len();
        // One throwaway transform warms the processor's lazily sized FFT
        // scratch (and the shared plan cache) at construction, so the
        // first segment to complete mid-stream allocates nothing — the
        // push path's allocation-free claim is unconditional.
        let mut warm_bins = vec![Complex::ZERO; bins];
        let warm_buf = vec![0.0; seg_len];
        stft.process_into(&warm_buf, &mut warm_bins);
        // Warm the adaptive-flush scratch at the *largest* grid the flush
        // can ever use (the full segment FFT), so every shorter grid runs
        // within its capacity and the flush path stays allocation-free.
        let mut scratch = RealFftScratch::new();
        rfft_plan(n_fft).forward_into(&warm_buf, &mut warm_bins, &mut scratch);
        warm_bins.fill(Complex::ZERO);
        Ok(DirectivityAccum {
            channels,
            seg_len,
            stft,
            buf: Vec::with_capacity(seg_len),
            bins: warm_bins,
            flush_buf: warm_buf,
            mag_accum: vec![0.0; bins],
            segments: 0,
            spectrum: Spectrum {
                magnitudes: vec![0.0; bins],
                sample_rate,
                n_fft,
            },
            n_fft,
            cached_epoch: EPOCH_DIRTY,
            partial_plan: None,
            scratch,
            flush_ffts: 0,
        })
    }

    /// Ingests one chunk (`channels` equally long sample slices), folding
    /// the per-sample channel mean into the current segment and
    /// transforming every segment that completes. Allocation-free after
    /// construction; amortized one FFT per `seg_len` samples.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::ChannelCountChanged`] /
    /// [`StreamError::RaggedChunk`] for a chunk of the wrong shape (the
    /// accumulator state is untouched).
    pub fn push(&mut self, chunk: &[&[f64]]) -> Result<(), StreamError> {
        if chunk.len() != self.channels {
            return Err(StreamError::ChannelCountChanged {
                expected: self.channels,
                got: chunk.len(),
            });
        }
        let len = chunk[0].len();
        if let Some(other) = chunk.iter().find(|c| c.len() != len) {
            return Err(StreamError::RaggedChunk {
                first: len,
                other: other.len(),
            });
        }
        let n = self.channels as f64;
        for i in 0..len {
            let mut mean = 0.0;
            for c in chunk {
                mean += c[i];
            }
            self.buf.push(mean / n);
            if self.buf.len() == self.seg_len {
                let _span = ht_obs::span("stream.directivity");
                self.stft.process_into(&self.buf, &mut self.bins);
                for (acc, z) in self.mag_accum.iter_mut().zip(&self.bins) {
                    *acc += z.abs();
                }
                self.segments += 1;
                self.buf.clear();
            }
        }
        Ok(())
    }

    /// Assembles the averaged magnitude spectrum over every completed
    /// segment *plus* the current partial segment (zero-padded), so short
    /// captures — down to a single sample — still yield directivity
    /// evidence. Non-destructive and idempotent: more audio may be pushed
    /// afterwards, and a repeat call returns the same bits.
    ///
    /// Two structural optimizations keep this off the finalize hot path:
    ///
    /// * **Epoch cache.** The result is stamped with the total-sample
    ///   epoch it was computed at; a repeat flush with no new audio
    ///   returns the cached spectrum and performs zero FFT work.
    /// * **Adaptive grid.** While no segment has completed, the flush is
    ///   the whole-capture magnitude spectrum at
    ///   `next_pow2(capture_len)` resolution (floored at
    ///   [`MIN_PARTIAL_N_FFT`], capped at the segment FFT length) —
    ///   exactly what [`Spectrum::of`] computes for the batch Fig. 3
    ///   analysis — instead of a full-segment zero-pad. The coarser grid
    ///   samples the *same* DTFT, so band statistics agree with the
    ///   full-pad flush at every shared frequency, for a fraction of the
    ///   transform cost. Once a segment completes, the historical
    ///   full-grid Welch average is bit-for-bit unchanged.
    ///
    /// Returns `None` when no sample has been pushed at all.
    pub fn flush_spectrum(&mut self) -> Option<&Spectrum> {
        let partial = self.buf.len();
        let epoch = self.segments * self.seg_len as u64 + partial as u64;
        if epoch == 0 {
            return None;
        }
        if self.cached_epoch == epoch {
            ht_obs::counter_add("stream.directivity_flush_cached", 1);
            return Some(&self.spectrum);
        }
        let _span = ht_obs::span("stream.directivity");
        let full_bins = self.mag_accum.len();
        if self.segments == 0 {
            // Short capture: one transform at the capture's own grid.
            let m = ht_dsp::fft::next_pow2(partial)
                .max(MIN_PARTIAL_N_FFT)
                .min(self.n_fft);
            let plan = match &self.partial_plan {
                Some(p) if p.len() == m => Arc::clone(p),
                _ => {
                    let p = rfft_plan(m);
                    self.partial_plan = Some(Arc::clone(&p));
                    p
                }
            };
            let half = plan.onesided_len();
            plan.forward_into(&self.buf, &mut self.bins[..half], &mut self.scratch);
            self.spectrum.magnitudes.resize(half, 0.0);
            for (mag, z) in self.spectrum.magnitudes.iter_mut().zip(&self.bins[..half]) {
                *mag = z.abs();
            }
            self.spectrum.n_fft = m;
            self.flush_ffts += 1;
            ht_obs::counter_add("stream.directivity_flush_fft", 1);
        } else {
            self.spectrum.magnitudes.resize(full_bins, 0.0);
            self.spectrum.n_fft = self.n_fft;
            let mut total = self.segments as f64;
            if partial > 0 {
                total += 1.0;
                self.flush_buf[..partial].copy_from_slice(&self.buf);
                self.flush_buf[partial..].fill(0.0);
                self.stft.process_into(&self.flush_buf, &mut self.bins);
                for ((m, acc), z) in self
                    .spectrum
                    .magnitudes
                    .iter_mut()
                    .zip(&self.mag_accum)
                    .zip(&self.bins)
                {
                    *m = (acc + z.abs()) / total;
                }
                self.flush_ffts += 1;
                ht_obs::counter_add("stream.directivity_flush_fft", 1);
            } else {
                for (m, acc) in self.spectrum.magnitudes.iter_mut().zip(&self.mag_accum) {
                    *m = acc / total;
                }
            }
        }
        self.cached_epoch = epoch;
        Some(&self.spectrum)
    }

    /// Forward FFTs `flush_spectrum` has performed since construction
    /// (cache hits and full-segment averages perform none). Survives
    /// [`reset`](DirectivityAccum::reset) so pooled reuse keeps a running
    /// total.
    pub fn flush_ffts(&self) -> u64 {
        self.flush_ffts
    }

    /// The configured channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The segment length in samples.
    pub fn seg_len(&self) -> usize {
        self.seg_len
    }

    /// Completed (full-length) segments accumulated so far.
    pub fn segments(&self) -> u64 {
        self.segments
    }

    /// Samples folded into the current partial segment.
    pub fn pending_samples(&self) -> usize {
        self.buf.len()
    }

    /// Clears all accumulated evidence while keeping every buffer at
    /// capacity, so a pooled session can reuse the accumulator with no
    /// allocations and bit-identical results to a fresh one.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.mag_accum.fill(0.0);
        self.segments = 0;
        // A recycled session may push a different capture of the same
        // length, so the epoch alone cannot distinguish it — drop the
        // cached flush explicitly.
        self.cached_epoch = EPOCH_DIRTY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(n: usize, mut state: u64) -> Vec<f64> {
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn chunking_does_not_change_the_spectrum() {
        let x = noise(5000, 9);
        let y = noise(5000, 11);
        for chunk in [1usize, 7, 480, 1024, 6000] {
            let mut whole = DirectivityAccum::new(2, 1024, 48_000.0).unwrap();
            whole.push(&[&x, &y]).unwrap();
            let reference = whole.flush_spectrum().unwrap().clone();

            let mut split = DirectivityAccum::new(2, 1024, 48_000.0).unwrap();
            let mut pos = 0;
            while pos < x.len() {
                let end = (pos + chunk).min(x.len());
                split.push(&[&x[pos..end], &y[pos..end]]).unwrap();
                pos = end;
            }
            let got = split.flush_spectrum().unwrap();
            assert_eq!(got.magnitudes.len(), reference.magnitudes.len());
            for (g, r) in got.magnitudes.iter().zip(&reference.magnitudes) {
                assert_eq!(g.to_bits(), r.to_bits(), "chunk {chunk}");
            }
        }
    }

    #[test]
    fn short_capture_matches_zero_padded_whole_capture_fft() {
        // One partial segment: the flushed spectrum is the plain magnitude
        // spectrum of the zero-padded capture mean.
        let x = noise(300, 3);
        let mut acc = DirectivityAccum::new(1, 1024, 48_000.0).unwrap();
        acc.push(&[&x]).unwrap();
        assert_eq!(acc.segments(), 0);
        assert_eq!(acc.pending_samples(), 300);
        let got = acc.flush_spectrum().unwrap().clone();
        let mut padded = x.clone();
        padded.resize(1024, 0.0);
        let reference = ht_dsp::fft::rfft_magnitude(&padded);
        assert_eq!(got.magnitudes.len(), reference.len());
        for (g, r) in got.magnitudes.iter().zip(&reference) {
            assert_eq!(g.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn flush_is_non_destructive_and_idempotent() {
        let x = noise(2500, 21);
        let mut acc = DirectivityAccum::new(1, 1024, 48_000.0).unwrap();
        acc.push(&[&x[..1500]]).unwrap();
        let first = acc.flush_spectrum().unwrap().clone();
        let again = acc.flush_spectrum().unwrap().clone();
        assert_eq!(first, again);

        // Continue pushing after a flush: same as never having flushed.
        acc.push(&[&x[1500..]]).unwrap();
        let streamed = acc.flush_spectrum().unwrap().clone();
        let mut fresh = DirectivityAccum::new(1, 1024, 48_000.0).unwrap();
        fresh.push(&[&x]).unwrap();
        let reference = fresh.flush_spectrum().unwrap();
        for (s, r) in streamed.magnitudes.iter().zip(&reference.magnitudes) {
            assert_eq!(s.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn empty_accumulator_has_no_spectrum_and_reset_matches_fresh() {
        let mut acc = DirectivityAccum::new(2, 512, 48_000.0).unwrap();
        assert!(acc.flush_spectrum().is_none());

        let x = noise(700, 5);
        let y = noise(700, 6);
        acc.push(&[&x, &y]).unwrap();
        let first = acc.flush_spectrum().unwrap().clone();

        // Pollute with different audio, reset, replay: identical bits.
        acc.push(&[&y, &x]).unwrap();
        acc.reset();
        assert!(acc.flush_spectrum().is_none());
        acc.push(&[&x, &y]).unwrap();
        let again = acc.flush_spectrum().unwrap();
        for (f, a) in first.magnitudes.iter().zip(&again.magnitudes) {
            assert_eq!(f.to_bits(), a.to_bits());
        }
    }

    #[test]
    fn all_silent_capture_flushes_the_exact_zero_spectrum_idempotently() {
        // A soft-muted microphone delivers exact zeros: every segment (and
        // the zero-padded partial) transforms to the zero spectrum, so the
        // documented result is exactly-zero magnitudes — not a partial
        // window, not NaN — and repeated flushes return the same bits.
        for len in [1usize, 100, 512, 700, 2048] {
            let z = vec![0.0; len];
            let mut acc = DirectivityAccum::new(2, 512, 48_000.0).unwrap();
            acc.push(&[&z, &z]).unwrap();
            for round in 0..3 {
                let spec = acc.flush_spectrum().unwrap().clone();
                assert!(
                    spec.magnitudes.iter().all(|&m| m == 0.0),
                    "len {len} round {round}: non-zero magnitude"
                );
            }
            // Still ingesting after the flushes: state was untouched.
            acc.push(&[&z, &z]).unwrap();
            assert!(acc
                .flush_spectrum()
                .unwrap()
                .magnitudes
                .iter()
                .all(|&m| m == 0.0));
        }
    }

    #[test]
    fn short_capture_flush_property() {
        // Property (alongside the non-destructive-flush pin): for any
        // capture shorter than one Welch segment, pushed in any chunking,
        // the flush is the zero-padded whole-capture spectrum — never a
        // partial window — and flushing is idempotent.
        ht_dsp::check::property("directivity_short_capture_flush")
            .cases(40)
            .run(|g| {
                let seg_len = *g.choose(&[256usize, 512, 1024]);
                let len = g.usize_in(1..seg_len);
                let x = g.vec_f64(-1.0..1.0, len..len + 1);
                let mut acc = DirectivityAccum::new(1, seg_len, 48_000.0).unwrap();
                let mut pos = 0;
                while pos < len {
                    let end = (pos + g.usize_in(1..len + 1)).min(len);
                    acc.push(&[&x[pos..end]]).unwrap();
                    pos = end;
                }
                assert_eq!(acc.segments(), 0, "capture shorter than one segment");
                let first = acc.flush_spectrum().unwrap().clone();
                let again = acc.flush_spectrum().unwrap().clone();
                assert_eq!(first, again, "flush must be idempotent");
                let mut padded = x.clone();
                padded.resize(ht_dsp::fft::next_pow2(seg_len), 0.0);
                let reference = ht_dsp::fft::rfft_magnitude(&padded);
                assert_eq!(first.magnitudes.len(), reference.len());
                for (f, r) in first.magnitudes.iter().zip(&reference) {
                    assert_eq!(f.to_bits(), r.to_bits(), "partial-window leak");
                }
            });
    }

    #[test]
    fn repeat_flush_at_same_epoch_performs_zero_ffts() {
        let x = noise(1500, 77);
        let mut acc = DirectivityAccum::new(1, 1024, 48_000.0).unwrap();
        acc.push(&[&x[..700]]).unwrap();
        assert_eq!(acc.flush_ffts(), 0, "push alone must not flush");
        let first = acc.flush_spectrum().unwrap().clone();
        assert_eq!(acc.flush_ffts(), 1);
        for _ in 0..3 {
            let again = acc.flush_spectrum().unwrap();
            assert_eq!(again, &first);
        }
        assert_eq!(acc.flush_ffts(), 1, "repeat flushes must hit the cache");
        // New audio invalidates the cache: the next flush transforms again.
        acc.push(&[&x[700..]]).unwrap();
        acc.flush_spectrum().unwrap();
        assert_eq!(acc.flush_ffts(), 2);
        // A reset drops the cache even though a same-length capture would
        // land on the same epoch.
        acc.reset();
        acc.push(&[&x[..700]]).unwrap();
        let replay = acc.flush_spectrum().unwrap().clone();
        assert_eq!(acc.flush_ffts(), 3);
        for (r, f) in replay.magnitudes.iter().zip(&first.magnitudes) {
            assert_eq!(r.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn complete_segment_flush_performs_no_fft_and_caches() {
        let x = noise(2048, 41);
        let mut acc = DirectivityAccum::new(1, 1024, 48_000.0).unwrap();
        acc.push(&[&x]).unwrap();
        assert_eq!(acc.segments(), 2);
        assert_eq!(acc.pending_samples(), 0);
        let first = acc.flush_spectrum().unwrap().clone();
        let again = acc.flush_spectrum().unwrap().clone();
        assert_eq!(first, again);
        assert_eq!(
            acc.flush_ffts(),
            0,
            "averaging completed segments is FFT-free"
        );
    }

    #[test]
    fn short_capture_against_large_segment_uses_adaptive_grid() {
        // A 4800-sample capture against a 32k Welch segment (the serving
        // shape) transforms at next_pow2(4800) = 8192 — the whole-capture
        // spectrum `Spectrum::of` computes — not the full 32k pad.
        let x = noise(4800, 5);
        let mut acc = DirectivityAccum::new(1, 32_768, 48_000.0).unwrap();
        acc.push(&[&x]).unwrap();
        let got = acc.flush_spectrum().unwrap().clone();
        assert_eq!(got.n_fft, 8192);
        assert_eq!(got.magnitudes.len(), 8192 / 2 + 1);
        let reference = ht_dsp::fft::rfft_magnitude(&x);
        assert_eq!(got.magnitudes.len(), reference.len());
        for (g, r) in got.magnitudes.iter().zip(&reference) {
            assert_eq!(g.to_bits(), r.to_bits());
        }
        assert_eq!(acc.flush_ffts(), 1);
    }

    #[test]
    fn tiny_capture_flush_floors_at_min_partial_n_fft() {
        let x = noise(10, 3);
        let mut acc = DirectivityAccum::new(1, 32_768, 48_000.0).unwrap();
        acc.push(&[&x]).unwrap();
        let got = acc.flush_spectrum().unwrap().clone();
        assert_eq!(got.n_fft, MIN_PARTIAL_N_FFT);
        let mut padded = x.clone();
        padded.resize(MIN_PARTIAL_N_FFT, 0.0);
        let reference = ht_dsp::fft::rfft_magnitude(&padded);
        for (g, r) in got.magnitudes.iter().zip(&reference) {
            assert_eq!(g.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn adaptive_grid_samples_the_full_pad_dtft() {
        // The coarse M-point grid samples the same DTFT as the historical
        // full-segment zero-pad at every (n_fft / M)-th bin: the grid
        // change trades resolution, never accuracy.
        let x = noise(4800, 21);
        let mut acc = DirectivityAccum::new(1, 32_768, 48_000.0).unwrap();
        acc.push(&[&x]).unwrap();
        let got = acc.flush_spectrum().unwrap().clone();
        assert_eq!(got.n_fft, 8192);
        let mut padded = x.clone();
        padded.resize(32_768, 0.0);
        let full = ht_dsp::fft::rfft_magnitude(&padded);
        let stride = 32_768 / got.n_fft;
        for (k, g) in got.magnitudes.iter().enumerate() {
            let r = full[k * stride];
            assert!(
                (g - r).abs() <= 1e-9 * r.abs().max(1.0),
                "bin {k}: {g} vs {r}"
            );
        }
    }

    #[test]
    fn adaptive_flush_is_non_destructive_across_the_grid_transition() {
        // Flushing on the adaptive grid, then streaming past the segment
        // boundary, must yield the same full-grid Welch average as never
        // having flushed.
        let x = noise(40_000, 31);
        let mut acc = DirectivityAccum::new(1, 32_768, 48_000.0).unwrap();
        acc.push(&[&x[..4800]]).unwrap();
        assert_eq!(acc.flush_spectrum().unwrap().n_fft, 8192);
        acc.push(&[&x[4800..]]).unwrap();
        let streamed = acc.flush_spectrum().unwrap().clone();
        assert_eq!(
            streamed.n_fft, 32_768,
            "full grid returns with the first segment"
        );

        let mut fresh = DirectivityAccum::new(1, 32_768, 48_000.0).unwrap();
        fresh.push(&[&x]).unwrap();
        let reference = fresh.flush_spectrum().unwrap();
        assert_eq!(streamed.magnitudes.len(), reference.magnitudes.len());
        for (s, r) in streamed.magnitudes.iter().zip(&reference.magnitudes) {
            assert_eq!(s.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn cached_flush_interleaving_property() {
        // Property: for any chunking with flushes interleaved at random
        // points, the final spectrum is bit-identical to a single-push
        // fresh accumulator, every interleaved double-flush hits the
        // cache, and flushing never perturbs later evidence.
        ht_dsp::check::property("directivity_cached_flush_interleaving")
            .cases(30)
            .run(|g| {
                let seg_len = *g.choose(&[512usize, 1024, 8192]);
                let len = g.usize_in(1..3 * seg_len);
                let x = g.vec_f64(-1.0..1.0, len..len + 1);
                let mut acc = DirectivityAccum::new(1, seg_len, 48_000.0).unwrap();
                let mut pos = 0;
                while pos < len {
                    let end = (pos + g.usize_in(1..len + 1)).min(len);
                    acc.push(&[&x[pos..end]]).unwrap();
                    pos = end;
                    if g.usize_in(0..3) == 0 {
                        let ffts = acc.flush_ffts();
                        let first = acc.flush_spectrum().unwrap().clone();
                        let again = acc.flush_spectrum().unwrap();
                        assert_eq!(&first, again, "repeat flush must be bit-stable");
                        assert!(
                            acc.flush_ffts() <= ffts + 1,
                            "repeat flush must not transform again"
                        );
                    }
                }
                let streamed = acc.flush_spectrum().unwrap().clone();
                let mut fresh = DirectivityAccum::new(1, seg_len, 48_000.0).unwrap();
                fresh.push(&[&x]).unwrap();
                let reference = fresh.flush_spectrum().unwrap();
                assert_eq!(streamed.n_fft, reference.n_fft);
                assert_eq!(streamed.magnitudes.len(), reference.magnitudes.len());
                for (s, r) in streamed.magnitudes.iter().zip(&reference.magnitudes) {
                    assert_eq!(s.to_bits(), r.to_bits());
                }
            });
    }

    #[test]
    fn bad_shapes_are_rejected_without_state_damage() {
        let mut acc = DirectivityAccum::new(2, 256, 48_000.0).unwrap();
        let x = noise(100, 1);
        assert!(matches!(
            acc.push(&[&x]),
            Err(StreamError::ChannelCountChanged {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            acc.push(&[&x, &x[..50]]),
            Err(StreamError::RaggedChunk { .. })
        ));
        assert_eq!(acc.pending_samples(), 0);
        acc.push(&[&x, &x]).unwrap();
        assert_eq!(acc.pending_samples(), 100);
    }

    #[test]
    fn geometry_validation() {
        assert!(DirectivityAccum::new(0, 256, 48_000.0).is_err());
        assert!(DirectivityAccum::new(2, 0, 48_000.0).is_err());
        assert!(DirectivityAccum::new(2, 256, 0.0).is_err());
        assert!(DirectivityAccum::new(2, 256, f64::NAN).is_err());
    }
}
