//! Proof of the streaming pipeline's core claim: once warmed, the
//! ingest → STFT → SRP → gate path makes zero heap allocations per frame,
//! even with JSON observability recording on. Same counting-allocator
//! harness as `ht-dsp`'s alloc_free suite.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use ht_stream::{EarlyExitGate, FrameAnalyzer, FrameRing, GateConfig};

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(|c| c.get());
    f();
    ALLOCS.with(|c| c.get()) - before
}

#[test]
fn steady_state_frame_loop_is_allocation_free() {
    // JSON mode: the guarantee must hold in fully instrumented runs.
    ht_obs::set_mode(ht_obs::Mode::Json);
    let (channels, frame_len, hop) = (4, 960, 480);
    let mut ring = FrameRing::new(channels, frame_len, hop).unwrap();
    let mut analyzer = FrameAnalyzer::new(channels, frame_len, 13, 48_000.0).unwrap();
    let mut gate = EarlyExitGate::new(GateConfig::default());
    let mut frame = vec![vec![0.0; frame_len]; channels];
    let chunk: Vec<Vec<f64>> = (0..channels)
        .map(|c| {
            (0..hop)
                .map(|k| ((k + c * 31) as f64 * 0.01).sin())
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = chunk.iter().map(Vec::as_slice).collect();

    // Warm-up: sizes the FFT scratch and creates the registry histograms.
    for _ in 0..4 {
        ring.push(&refs).unwrap();
        while ring.pop_frame_into(&mut frame) {
            let f = analyzer.analyze(&frame).unwrap();
            gate.observe(f.rms, f.band_ratio(), f.srp_sharpness());
        }
    }

    let n = allocs_during(|| {
        for _ in 0..128 {
            ring.push(&refs).unwrap();
            while ring.pop_frame_into(&mut frame) {
                let f = analyzer.analyze(&frame).unwrap();
                gate.observe(f.rms, f.band_ratio(), f.srp_sharpness());
            }
        }
    });
    ht_obs::set_mode(ht_obs::Mode::Off);
    assert_eq!(n, 0, "steady-state streaming frames allocated {n} times");
}
