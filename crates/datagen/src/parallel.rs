//! Deprecated forwarding shims to [`ht_par`].
//!
//! The original scoped-thread `parallel_map` (spawn-per-call, one
//! `Mutex<Option<U>>` per item, an atomic index counter) is superseded by
//! the workspace-wide persistent work-stealing pool in the `ht-par` crate.
//! These wrappers keep old call sites compiling; new code should call
//! [`ht_par::par_map`] (global pool) or build a dedicated [`ht_par::Pool`].

/// Applies `f` to every item on `threads` worker threads, preserving input
/// order in the output. `threads == 0` or `1` runs inline.
///
/// # Panics
///
/// Propagates panics from `f`.
#[deprecated(
    since = "0.1.0",
    note = "use ht_par::par_map (global pool) or ht_par::Pool::new(threads).par_map"
)]
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    ht_par::Pool::new(threads).par_map(items, f)
}

/// The default worker count.
#[deprecated(since = "0.1.0", note = "use ht_par::default_threads")]
pub fn default_threads() -> usize {
    ht_par::default_threads()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map(&items, 0, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[5], 4, |&x| x), vec![5]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = vec![1, 2];
        assert_eq!(parallel_map(&items, 64, |&x| x * 10), vec![10, 20]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
