//! A minimal scoped-thread parallel map for rendering and feature
//! extraction (no external thread-pool dependency needed).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on `threads` worker threads, preserving input
/// order in the output. `threads == 0` or `1` runs inline.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers).
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<U>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// The default worker count: the machine's available parallelism, capped to
/// leave a core for the system.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map(&items, 0, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[5], 4, |&x| x), vec![5]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = vec![1, 2];
        assert_eq!(parallel_map(&items, 64, |&x| x * 10), vec![10, 20]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
