//! # ht-datagen — scenario and dataset generators
//!
//! Reproduces the paper's data-collection protocol (§IV, Table I/II) on top
//! of the simulation substrates:
//!
//! * [`scenario`] — one *capture*: a room, a device placement, a speaker (or
//!   loudspeaker) at a grid location with an orientation angle, a wake word,
//!   loudness, ambient noise, posture, obstruction, and session index; plus
//!   its deterministic rendering into multichannel audio,
//! * [`placements`] — the device locations A/B/C in the lab and the home
//!   shelf (Fig. 8/9),
//! * [`datasets`] — builders for Datasets 1–8 of Table II with exactly the
//!   paper's sample counts.
//!
//! Parallel rendering goes through the workspace-wide [`ht_par`] pool; the
//! old `parallel` module's spawn-per-call map is gone.
//!
//! # Example
//!
//! ```
//! use ht_datagen::datasets;
//!
//! // Table II: Dataset-1 has 9072 samples.
//! let specs = datasets::dataset1();
//! assert_eq!(specs.len(), 9072);
//! ```

pub mod datasets;
pub mod json;
pub mod placements;
pub mod scenario;

pub use scenario::{CaptureSpec, SourceKind};
