//! Device placements: locations A, B, C in the lab (Fig. 8) and the
//! near-window TV shelf in the home (Fig. 9).

use ht_acoustics::geometry::Vec3;
use ht_acoustics::room::Room;

/// The two rooms of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoomKind {
    /// The 20'×14'×10' office (Fig. 8), 33 dB ambient.
    Lab,
    /// The 33'×10'×8' apartment living room (Fig. 9), 43 dB ambient.
    Home,
}

impl RoomKind {
    /// Both rooms.
    pub const ALL: [RoomKind; 2] = [RoomKind::Lab, RoomKind::Home];

    /// Builds the room model.
    pub fn room(self) -> Room {
        match self {
            RoomKind::Lab => Room::lab(),
            RoomKind::Home => Room::home(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RoomKind::Lab => "lab",
            RoomKind::Home => "home",
        }
    }

    /// The measured ambient noise floor (§IV): 33 dB lab, 43 dB home.
    pub fn ambient_spl(self) -> f64 {
        match self {
            RoomKind::Lab => ht_acoustics::spl::LAB_AMBIENT_SPL,
            RoomKind::Home => ht_acoustics::spl::HOME_AMBIENT_SPL,
        }
    }
}

/// Device placements within a room.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Lab location A: near-wall study table, 74 cm high (the default).
    LabA,
    /// Lab location B: coffee table, 45 cm high (§IV-B7).
    LabB,
    /// Lab location C: work table, 75 cm high (§IV-B7).
    LabC,
    /// Home: near-window TV shelf, 83 cm high.
    HomeShelf,
}

impl Placement {
    /// The default placement for a room (A in the lab, the shelf at home).
    pub fn default_for(room: RoomKind) -> Placement {
        match room {
            RoomKind::Lab => Placement::LabA,
            RoomKind::Home => Placement::HomeShelf,
        }
    }

    /// Which room this placement lives in.
    pub fn room_kind(self) -> RoomKind {
        match self {
            Placement::HomeShelf => RoomKind::Home,
            _ => RoomKind::Lab,
        }
    }

    /// Device (array-center) position in room coordinates.
    pub fn device_position(self) -> Vec3 {
        match self {
            Placement::LabA => Vec3::new(0.5, 2.1, 0.74),
            Placement::LabB => Vec3::new(3.0, 0.5, 0.45),
            Placement::LabC => Vec3::new(5.6, 2.1, 0.75),
            Placement::HomeShelf => Vec3::new(0.5, 1.5, 0.83),
        }
    }

    /// The azimuth the device "faces" (into the open space the speaker grid
    /// occupies); radial directions are measured around this axis.
    pub fn facing_azimuth_deg(self) -> f64 {
        match self {
            Placement::LabA => 0.0,   // toward +x
            Placement::LabB => 90.0,  // toward +y
            Placement::LabC => 180.0, // toward -x
            Placement::HomeShelf => 0.0,
        }
    }

    /// Extra device height (meters) applied for the "raised" obstruction
    /// experiment (the paper raises the device 14.8 cm, §IV-B13).
    pub const RAISED_HEIGHT_M: f64 = 0.148;
}

/// A grid location of the speaker: radial direction (−15°/0°/+15°, labeled
/// L/M/R in the paper) and distance (1/3/5 m).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridLocation {
    /// Radial offset from the device's facing axis, in degrees (−15, 0, 15).
    pub radial_deg: f64,
    /// Distance from the device, in meters (1, 3, 5).
    pub distance_m: f64,
}

impl GridLocation {
    /// The nine grid intersections of Fig. 8/9: {L, M, R} × {1, 3, 5} m.
    pub fn grid9() -> Vec<GridLocation> {
        let mut g = Vec::with_capacity(9);
        for &radial_deg in &[-15.0, 0.0, 15.0] {
            for &distance_m in &[1.0, 3.0, 5.0] {
                g.push(GridLocation {
                    radial_deg,
                    distance_m,
                });
            }
        }
        g
    }

    /// The three mid-line locations M1, M3, M5 used by Datasets 3–7.
    pub fn mid3() -> Vec<GridLocation> {
        [1.0, 3.0, 5.0]
            .into_iter()
            .map(|distance_m| GridLocation {
                radial_deg: 0.0,
                distance_m,
            })
            .collect()
    }

    /// The paper's label for this location (L1, M3, R5, …).
    pub fn label(self) -> String {
        let side = if self.radial_deg < -1.0 {
            "L"
        } else if self.radial_deg > 1.0 {
            "R"
        } else {
            "M"
        };
        format!("{side}{}", self.distance_m as i64)
    }

    /// The speaker's floor position for a placement (mouth height applied
    /// separately).
    pub fn speaker_position(self, placement: Placement, mouth_height: f64) -> Vec3 {
        let device = placement.device_position();
        let az = placement.facing_azimuth_deg() + self.radial_deg;
        let dir = ht_acoustics::geometry::azimuth_to_direction(az);
        Vec3::new(
            device.x + dir.x * self.distance_m,
            device.y + dir.y * self.distance_m,
            mouth_height,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_placements_are_inside_their_rooms() {
        for p in [
            Placement::LabA,
            Placement::LabB,
            Placement::LabC,
            Placement::HomeShelf,
        ] {
            let room = p.room_kind().room();
            assert!(
                room.contains(p.device_position()),
                "{p:?} outside {}",
                room.name
            );
        }
    }

    #[test]
    fn grid_locations_stay_inside_the_rooms() {
        // Every default-placement grid point at standing mouth height must
        // be inside the room (the paper collected data there).
        for room in RoomKind::ALL {
            let p = Placement::default_for(room);
            for loc in GridLocation::grid9() {
                let pos = loc.speaker_position(p, 1.65);
                assert!(
                    room.room().contains(pos),
                    "{} {} -> {pos:?}",
                    room.name(),
                    loc.label()
                );
            }
        }
        // B and C are only used at 3 m along the mid line (§IV-B7).
        for p in [Placement::LabB, Placement::LabC] {
            let loc = GridLocation {
                radial_deg: 0.0,
                distance_m: 3.0,
            };
            assert!(RoomKind::Lab.room().contains(loc.speaker_position(p, 1.65)));
        }
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(
            GridLocation {
                radial_deg: -15.0,
                distance_m: 1.0
            }
            .label(),
            "L1"
        );
        assert_eq!(
            GridLocation {
                radial_deg: 0.0,
                distance_m: 3.0
            }
            .label(),
            "M3"
        );
        assert_eq!(
            GridLocation {
                radial_deg: 15.0,
                distance_m: 5.0
            }
            .label(),
            "R5"
        );
    }

    #[test]
    fn grid_sizes() {
        assert_eq!(GridLocation::grid9().len(), 9);
        assert_eq!(GridLocation::mid3().len(), 3);
    }

    #[test]
    fn distance_is_realized_exactly() {
        let p = Placement::LabA;
        let loc = GridLocation {
            radial_deg: 15.0,
            distance_m: 3.0,
        };
        let pos = loc.speaker_position(p, 1.65);
        let horiz = ((pos.x - p.device_position().x).powi(2)
            + (pos.y - p.device_position().y).powi(2))
        .sqrt();
        assert!((horiz - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ambient_levels_match_paper() {
        assert_eq!(RoomKind::Lab.ambient_spl(), 33.0);
        assert_eq!(RoomKind::Home.ambient_spl(), 43.0);
    }
}
