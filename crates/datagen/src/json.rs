//! JSON conversions for [`CaptureSpec`] and its datagen-owned field types.
//!
//! Together with the impls in `ht-acoustics` and `ht-speech`, this lets the
//! feature cache persist `CaptureSpec` sidecars without `serde`: a spec is
//! an object of named fields; fieldless enums are variant-name strings; the
//! payload-carrying [`SourceKind`] is externally tagged
//! (`{"Human": {...}}` / `{"Replay": {...}}`).

use crate::placements::{GridLocation, Placement, RoomKind};
use crate::scenario::{CaptureSpec, Posture, SourceKind};
use ht_dsp::impl_unit_enum_json;
use ht_dsp::json::{field, FromJson, Json, JsonError, ToJson};

impl_unit_enum_json!(RoomKind, {
    RoomKind::Lab => "Lab",
    RoomKind::Home => "Home",
});

impl_unit_enum_json!(Placement, {
    Placement::LabA => "LabA",
    Placement::LabB => "LabB",
    Placement::LabC => "LabC",
    Placement::HomeShelf => "HomeShelf",
});

impl_unit_enum_json!(Posture, {
    Posture::Standing => "Standing",
    Posture::Sitting => "Sitting",
});

impl ToJson for GridLocation {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("radial_deg", self.radial_deg)
            .set("distance_m", self.distance_m)
    }
}

impl FromJson for GridLocation {
    fn from_json(v: &Json) -> Result<GridLocation, JsonError> {
        Ok(GridLocation {
            radial_deg: field(v, "radial_deg")?,
            distance_m: field(v, "distance_m")?,
        })
    }
}

impl ToJson for SourceKind {
    fn to_json(&self) -> Json {
        match self {
            SourceKind::Human { voice } => {
                Json::obj().set("Human", Json::obj().set("voice", voice.to_json()))
            }
            SourceKind::Replay { model, voice } => Json::obj().set(
                "Replay",
                Json::obj()
                    .set("model", model.to_json())
                    .set("voice", voice.to_json()),
            ),
        }
    }
}

impl FromJson for SourceKind {
    fn from_json(v: &Json) -> Result<SourceKind, JsonError> {
        if let Some(human) = v.get("Human") {
            return Ok(SourceKind::Human {
                voice: field(human, "voice")?,
            });
        }
        if let Some(replay) = v.get("Replay") {
            return Ok(SourceKind::Replay {
                model: field(replay, "model")?,
                voice: field(replay, "voice")?,
            });
        }
        Err(JsonError::msg(
            "expected a `Human` or `Replay` tagged object for SourceKind",
        ))
    }
}

impl ToJson for CaptureSpec {
    fn to_json(&self) -> Json {
        let ambient = match self.ambient {
            Some((kind, spl)) => Json::Arr(vec![kind.to_json(), Json::F64(spl)]),
            None => Json::Null,
        };
        Json::obj()
            .set("room", self.room.to_json())
            .set("placement", self.placement.to_json())
            .set("device", self.device.to_json())
            .set("location", self.location.to_json())
            .set("angle_deg", self.angle_deg)
            .set("wake_word", self.wake_word.to_json())
            .set("source", self.source.to_json())
            .set("loudness_spl", self.loudness_spl)
            .set("ambient", ambient)
            .set("posture", self.posture.to_json())
            .set("obstruction", self.obstruction.to_json())
            .set("raised", self.raised)
            .set("session", self.session)
            .set("temporal_drift", self.temporal_drift)
            .set("seed", self.seed)
    }
}

impl FromJson for CaptureSpec {
    fn from_json(v: &Json) -> Result<CaptureSpec, JsonError> {
        let ambient = match v.get("ambient") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(pair)) if pair.len() == 2 => {
                let kind = FromJson::from_json(&pair[0])
                    .map_err(|e| JsonError::msg(format!("field `ambient`: {}", e.message)))?;
                let spl = pair[1]
                    .as_f64()
                    .ok_or_else(|| JsonError::msg("field `ambient`: expected [kind, spl_db]"))?;
                Some((kind, spl))
            }
            Some(_) => {
                return Err(JsonError::msg(
                    "field `ambient`: expected null or [kind, spl_db]",
                ))
            }
        };
        Ok(CaptureSpec {
            room: field(v, "room")?,
            placement: field(v, "placement")?,
            device: field(v, "device")?,
            location: field(v, "location")?,
            angle_deg: field(v, "angle_deg")?,
            wake_word: field(v, "wake_word")?,
            source: field(v, "source")?,
            loudness_spl: field(v, "loudness_spl")?,
            ambient,
            posture: field(v, "posture")?,
            obstruction: field(v, "obstruction")?,
            raised: field(v, "raised")?,
            session: field(v, "session")?,
            temporal_drift: field(v, "temporal_drift")?,
            seed: field(v, "seed")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_acoustics::noise::NoiseKind;
    use ht_speech::replay::SpeakerModel;
    use ht_speech::voice::VoiceProfile;

    #[test]
    fn baseline_spec_round_trips() {
        let spec = CaptureSpec::baseline(0xDEAD_BEEF_CAFE_F00D);
        let text = spec.to_json().pretty();
        let back = CaptureSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn replay_and_ambient_round_trip() {
        let spec = CaptureSpec {
            source: SourceKind::Replay {
                model: SpeakerModel::GalaxyS21,
                voice: VoiceProfile::adult_female(),
            },
            ambient: Some((NoiseKind::Tv, 45.0)),
            posture: Posture::Sitting,
            session: 1,
            temporal_drift: 0.25,
            ..CaptureSpec::baseline(7)
        };
        let back = CaptureSpec::from_json(&Json::parse(&spec.to_json().dump()).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn u64_seed_survives_round_trip_exactly() {
        let spec = CaptureSpec {
            seed: u64::MAX - 1,
            ..CaptureSpec::baseline(0)
        };
        let back = CaptureSpec::from_json(&Json::parse(&spec.to_json().dump()).unwrap()).unwrap();
        assert_eq!(back.seed, u64::MAX - 1);
    }

    #[test]
    fn malformed_source_is_rejected() {
        let mut v = CaptureSpec::baseline(1).to_json();
        v = v.set("source", Json::obj().set("Alien", Json::Null));
        assert!(CaptureSpec::from_json(&v).is_err());
    }
}
