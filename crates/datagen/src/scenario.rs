//! One capture: the full description of a single data-collection sample and
//! its deterministic rendering to multichannel audio.

use crate::placements::{GridLocation, Placement, RoomKind};
use ht_acoustics::array::Device;
use ht_acoustics::directivity::Directivity;
use ht_acoustics::noise::NoiseKind;
use ht_acoustics::render::{RenderConfig, Scene, Source};
use ht_acoustics::room::Obstruction;
use ht_acoustics::AcousticsError;
use ht_dsp::rng::{SeedableRng, StdRng};
use ht_speech::replay::SpeakerModel;
use ht_speech::utterance::WakeWord;
use ht_speech::voice::VoiceProfile;

/// Who produces the sound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceKind {
    /// A live human speaker.
    Human {
        /// The speaker's voice.
        voice: VoiceProfile,
    },
    /// The wake word replayed through a loudspeaker (replay attack /
    /// accidental trigger).
    Replay {
        /// Playback device.
        model: SpeakerModel,
        /// The voice that was recorded and is being replayed.
        voice: VoiceProfile,
    },
}

impl SourceKind {
    /// `true` for a live human source (the liveness ground truth).
    pub fn is_live(self) -> bool {
        matches!(self, SourceKind::Human { .. })
    }

    fn voice(self) -> VoiceProfile {
        match self {
            SourceKind::Human { voice } | SourceKind::Replay { voice, .. } => voice,
        }
    }
}

/// Speaker posture (§IV-B11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Posture {
    /// Standing: mouth at ≈1.65 m.
    #[default]
    Standing,
    /// Sitting: mouth at ≈1.20 m.
    Sitting,
}

impl Posture {
    /// Mouth height above the floor in meters.
    pub fn mouth_height_m(self) -> f64 {
        match self {
            Posture::Standing => 1.65,
            Posture::Sitting => 1.20,
        }
    }
}

/// A complete description of one collected sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureSpec {
    /// The room.
    pub room: RoomKind,
    /// Where the device sits.
    pub placement: Placement,
    /// Which prototype array records.
    pub device: Device,
    /// The speaker's grid location.
    pub location: GridLocation,
    /// Speaker orientation: 0° = facing the device, 180° = facing away.
    pub angle_deg: f64,
    /// The spoken wake word.
    pub wake_word: WakeWord,
    /// Human or replay source.
    pub source: SourceKind,
    /// Utterance loudness in dB SPL at the 1 m reference (paper default 70).
    pub loudness_spl: f64,
    /// Optional injected ambient noise `(kind, dB SPL)` on top of the room
    /// floor (§IV-B10 uses 45 dB).
    pub ambient: Option<(NoiseKind, f64)>,
    /// Standing or sitting.
    pub posture: Posture,
    /// Obstruction state of the device (§IV-B13).
    pub obstruction: Obstruction,
    /// Device raised by 14.8 cm (§IV-B13 recovery condition).
    pub raised: bool,
    /// Data-collection session index (cross-session protocols train on one
    /// session and test on another).
    pub session: u32,
    /// Temporal drift relative to the training day: 0.0 same-day,
    /// larger for the week/month recollections of §IV-B9.
    pub temporal_drift: f64,
    /// Per-sample random seed (renders are fully deterministic).
    pub seed: u64,
}

impl CaptureSpec {
    /// A baseline spec: D2 in the lab at M3, "Computer", 70 dB, standing,
    /// facing the device, session 0.
    pub fn baseline(seed: u64) -> CaptureSpec {
        CaptureSpec {
            room: RoomKind::Lab,
            placement: Placement::LabA,
            device: Device::D2,
            location: GridLocation {
                radial_deg: 0.0,
                distance_m: 3.0,
            },
            angle_deg: 0.0,
            wake_word: WakeWord::Computer,
            source: SourceKind::Human {
                voice: VoiceProfile::adult_male(),
            },
            loudness_spl: ht_acoustics::spl::DEFAULT_UTTERANCE_SPL,
            ambient: None,
            posture: Posture::Standing,
            obstruction: Obstruction::None,
            raised: false,
            session: 0,
            temporal_drift: 0.0,
            seed,
        }
    }

    /// The session-level room: the base room perturbed deterministically by
    /// the session index and temporal drift (all samples of one session see
    /// the same room; different sessions/days see slightly different ones —
    /// §IV-B9).
    pub fn session_room(&self) -> ht_acoustics::room::Room {
        let base = self.room.room();
        if self.session == 0 && self.temporal_drift == 0.0 {
            return base;
        }
        let mut rng = StdRng::seed_from_u64(
            0x5E55_1044u64
                ^ (self.session as u64).wrapping_mul(0x9E37_79B9)
                ^ ((self.temporal_drift * 1000.0) as u64).wrapping_mul(0x85EB_CA6B),
        );
        let sd = 0.05 + self.temporal_drift;
        base.with_perturbed_absorption(&mut rng, sd)
    }

    /// Renders the capture on a subset of the device's microphones
    /// (`None` = the paper's default 4-mic subset).
    ///
    /// # Errors
    ///
    /// Propagates geometry/rendering errors.
    pub fn render_mics(
        &self,
        mic_indices: Option<&[usize]>,
    ) -> Result<Vec<Vec<f64>>, AcousticsError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let voice = self.source.voice();

        // --- Dry source waveform -----------------------------------------
        // Per-utterance prosody: real speakers never say the wake word the
        // same way twice (rate, pitch and effort drift a few percent).
        let voice = VoiceProfile {
            f0_hz: (voice.f0_hz * (1.0 + 0.06 * ht_dsp::rng::gaussian(&mut rng)))
                .clamp(70.0, 320.0),
            rate: (voice.rate * (1.0 + 0.08 * ht_dsp::rng::gaussian(&mut rng))).clamp(0.6, 1.6),
            brightness: (voice.brightness * (1.0 + 0.10 * ht_dsp::rng::gaussian(&mut rng)))
                .clamp(0.3, 2.2),
            ..voice
        };
        let dry = self
            .wake_word
            .synthesize(&voice, &mut rng, ht_acoustics::SAMPLE_RATE);
        let mut dry = match self.source {
            SourceKind::Human { .. } => dry,
            SourceKind::Replay { model, .. } => {
                model.play(&dry, &mut rng, ht_acoustics::SAMPLE_RATE)
            }
        };
        ht_acoustics::spl::scale_to_spl(&mut dry, self.loudness_spl);

        // --- Geometry with human placement error -------------------------
        // §VI: "we tried our best to maintain the exact angle … some human
        // errors may exist" — ±4° orientation and ±5 cm position jitter
        // (people re-align to floor markings imperfectly on every trial).
        // Re-placement error grows with temporal drift: weeks later the
        // user no longer remembers the exact marks or stance (§IV-B9).
        let angle_sd = 4.0 + 40.0 * self.temporal_drift;
        let pos_sd = 0.05 + 0.4 * self.temporal_drift;
        let angle_jitter = angle_sd * ht_dsp::rng::gaussian(&mut rng);
        let pos_jitter = ht_acoustics::geometry::Vec3::new(
            pos_sd * ht_dsp::rng::gaussian(&mut rng),
            pos_sd * ht_dsp::rng::gaussian(&mut rng),
            0.03 * ht_dsp::rng::gaussian(&mut rng),
        );
        let mouth_height = match self.source {
            SourceKind::Human { .. } => self.posture.mouth_height_m(),
            // The loudspeaker sits on furniture at ≈1 m.
            SourceKind::Replay { .. } => 1.0,
        };
        let speaker_pos = self.location.speaker_position(self.placement, mouth_height) + pos_jitter;

        // Facing the device means pointing back along the radial direction.
        let device_pos = {
            let mut p = self.placement.device_position();
            if self.raised {
                p.z += Placement::RAISED_HEIGHT_M;
            }
            // Temporal drift nudges the device itself (moved for cleaning,
            // re-plugged, shelf items shifted) — deterministic per
            // session-day so all samples of a day agree.
            if self.temporal_drift > 0.0 {
                let mut drng = StdRng::seed_from_u64(
                    0xDE51_CE00 ^ (self.session as u64).wrapping_mul(0xC2B2_AE35),
                );
                let sd = 0.4 * self.temporal_drift;
                p.x += sd * ht_dsp::rng::gaussian(&mut drng);
                p.y += sd * ht_dsp::rng::gaussian(&mut drng);
            }
            p
        };
        let to_device = device_pos - speaker_pos;
        let facing_az =
            ht_acoustics::geometry::Vec3::new(to_device.x, to_device.y, 0.0).azimuth_deg();
        let source_az = facing_az + self.angle_deg + angle_jitter;

        // --- Directivity --------------------------------------------------
        let directivity = match self.source {
            SourceKind::Human { voice } => {
                // Per-speaker anatomy: deterministic in the voice identity.
                let mut drng = StdRng::seed_from_u64(voice.f0_hz.to_bits());
                Directivity::human_speech().perturbed(&mut drng, 0.08)
            }
            SourceKind::Replay { model, .. } => match model {
                SpeakerModel::GalaxyS21 => Directivity::phone_speaker(),
                _ => Directivity::loudspeaker(),
            },
        };

        // --- Scene and render ---------------------------------------------
        let array = self
            .device
            .array_at(device_pos, self.placement.facing_azimuth_deg());
        let array = match mic_indices {
            Some(idx) => array.subset(idx),
            None => array.subset(&self.device.default_subset()),
        };
        let scene = Scene {
            room: self.session_room(),
            source: Source {
                position: speaker_pos,
                azimuth_deg: source_az,
                directivity,
            },
            array,
        };
        let cfg = RenderConfig {
            obstruction: self.obstruction,
            scatter_seed: self.seed ^ 0xD1FF_05E5,
            ..RenderConfig::default()
        };
        let mut channels = scene.render(&dry, &cfg)?;

        // --- Microphone gain mismatch --------------------------------------
        // COTS arrays have ±0.5 dB channel-to-channel sensitivity spread.
        for ch in channels.iter_mut() {
            let g = 1.0 + 0.06 * ht_dsp::rng::gaussian(&mut rng);
            for v in ch.iter_mut() {
                *v *= g;
            }
        }

        // --- Ambient noise -------------------------------------------------
        ht_acoustics::noise::add_to_channels(
            &mut rng,
            &mut channels,
            NoiseKind::RoomAmbient,
            ht_acoustics::SAMPLE_RATE,
            self.room.ambient_spl(),
        );
        if let Some((kind, spl)) = self.ambient {
            ht_acoustics::noise::add_to_channels(
                &mut rng,
                &mut channels,
                kind,
                ht_acoustics::SAMPLE_RATE,
                spl,
            );
        }
        Ok(channels)
    }

    /// Renders with the paper's default 4-microphone subset.
    ///
    /// # Errors
    ///
    /// Propagates geometry/rendering errors.
    pub fn render(&self) -> Result<Vec<Vec<f64>>, AcousticsError> {
        self.render_mics(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::signal::rms;

    #[test]
    fn baseline_renders_four_channels() {
        let spec = CaptureSpec::baseline(1);
        let ch = spec.render().unwrap();
        assert_eq!(ch.len(), 4);
        assert!(ch[0].len() > 10_000);
        assert!(ch.iter().flatten().all(|v| v.is_finite()));
        assert!(rms(&ch[0]) > 0.0);
    }

    #[test]
    fn renders_are_deterministic() {
        let spec = CaptureSpec::baseline(42);
        assert_eq!(spec.render().unwrap(), spec.render().unwrap());
        let other = CaptureSpec::baseline(43);
        assert_ne!(spec.render().unwrap(), other.render().unwrap());
    }

    #[test]
    fn facing_capture_is_louder_than_backward() {
        let facing = CaptureSpec::baseline(7);
        let backward = CaptureSpec {
            angle_deg: 180.0,
            ..facing
        };
        let rf = rms(&facing.render().unwrap()[0]);
        let rb = rms(&backward.render().unwrap()[0]);
        assert!(rf > rb, "facing {rf} vs backward {rb}");
    }

    #[test]
    fn session_rooms_differ_between_sessions_but_not_within() {
        let s0a = CaptureSpec {
            session: 1,
            ..CaptureSpec::baseline(1)
        };
        let s0b = CaptureSpec {
            session: 1,
            seed: 99,
            ..CaptureSpec::baseline(1)
        };
        let s1 = CaptureSpec {
            session: 2,
            ..CaptureSpec::baseline(1)
        };
        assert_eq!(s0a.session_room(), s0b.session_room());
        assert_ne!(s0a.session_room(), s1.session_room());
    }

    #[test]
    fn temporal_drift_perturbs_more() {
        let base = CaptureSpec::baseline(1);
        let week = CaptureSpec {
            temporal_drift: 0.15,
            ..base
        };
        assert_ne!(week.session_room(), base.session_room());
    }

    #[test]
    fn replay_sources_render() {
        let spec = CaptureSpec {
            source: SourceKind::Replay {
                model: SpeakerModel::SonySrsX5,
                voice: VoiceProfile::adult_male(),
            },
            ..CaptureSpec::baseline(5)
        };
        assert!(!spec.source.is_live());
        let ch = spec.render().unwrap();
        assert_eq!(ch.len(), 4);
    }

    #[test]
    fn mic_subset_controls_channel_count() {
        let spec = CaptureSpec::baseline(9);
        let two = spec.render_mics(Some(&[0, 3])).unwrap();
        assert_eq!(two.len(), 2);
    }

    #[test]
    fn louder_spec_renders_louder() {
        let quiet = CaptureSpec {
            loudness_spl: 60.0,
            ..CaptureSpec::baseline(11)
        };
        let loud = CaptureSpec {
            loudness_spl: 80.0,
            ..CaptureSpec::baseline(11)
        };
        assert!(rms(&loud.render().unwrap()[0]) > 3.0 * rms(&quiet.render().unwrap()[0]));
    }
}
