//! Builders for the paper's datasets (Table II) plus the auxiliary
//! collections used by individual experiments (±75° angles for Table III,
//! placements B/C for §IV-B7, and the ASVspoof-sim liveness corpus).
//!
//! Builders return [`CaptureSpec`]s — audio is rendered lazily (and usually
//! in parallel) by the experiment harness.

use crate::placements::{GridLocation, Placement, RoomKind};
use crate::scenario::{CaptureSpec, Posture, SourceKind};
use ht_acoustics::array::Device;
use ht_acoustics::noise::NoiseKind;
use ht_acoustics::room::Obstruction;
use ht_speech::replay::SpeakerModel;
use ht_speech::utterance::WakeWord;
use ht_speech::voice::VoiceProfile;

/// The 14 collection angles (§IV "Datasets").
pub fn angles14() -> Vec<f64> {
    ht_acoustics::geometry::PAPER_ANGLES_DEG.to_vec()
}

/// The 8 angles of the DoV-style cross-user dataset (no ±15°/±30°;
/// §IV-B14).
pub fn angles8() -> Vec<f64> {
    vec![0.0, 45.0, -45.0, 90.0, -90.0, 135.0, -135.0, 180.0]
}

/// The experimenter's voice used for Datasets 1–7 (a single person
/// collected those datasets).
pub fn experimenter_voice() -> VoiceProfile {
    VoiceProfile::adult_male()
}

fn seed_for(dataset_id: u64, index: usize) -> u64 {
    (dataset_id << 40) ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Dataset-1: 2 rooms × 3 devices × 3 utterances × 9 locations × 14 angles
/// × 2 samples × 2 sessions = 9072 samples.
pub fn dataset1() -> Vec<CaptureSpec> {
    let mut specs = Vec::with_capacity(9072);
    let voice = experimenter_voice();
    let mut idx = 0usize;
    for room in RoomKind::ALL {
        for device in Device::ALL {
            for wake_word in WakeWord::ALL {
                for location in GridLocation::grid9() {
                    for &angle_deg in &angles14() {
                        for session in 0..2u32 {
                            for _rep in 0..2 {
                                specs.push(CaptureSpec {
                                    room,
                                    placement: Placement::default_for(room),
                                    device,
                                    location,
                                    angle_deg,
                                    wake_word,
                                    source: SourceKind::Human { voice },
                                    loudness_spl: 70.0,
                                    ambient: None,
                                    posture: Posture::Standing,
                                    obstruction: Obstruction::None,
                                    raised: false,
                                    session,
                                    temporal_drift: 0.0,
                                    seed: seed_for(1, idx),
                                });
                                idx += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    specs
}

/// Dataset-2 (Replay): Sony loudspeaker, 2 utterances ("Computer" and
/// "Hey Assistant!"), 9 locations, 14 angles, 2 repetitions, 2 sessions
/// = 1008 samples (recorded by D2 in the lab).
pub fn dataset2() -> Vec<CaptureSpec> {
    let mut specs = Vec::with_capacity(1008);
    let voice = experimenter_voice();
    let mut idx = 0usize;
    for wake_word in [WakeWord::Computer, WakeWord::HeyAssistant] {
        for location in GridLocation::grid9() {
            for &angle_deg in &angles14() {
                for session in 0..2u32 {
                    for _rep in 0..2 {
                        specs.push(CaptureSpec {
                            source: SourceKind::Replay {
                                model: SpeakerModel::SonySrsX5,
                                voice,
                            },
                            wake_word,
                            location,
                            angle_deg,
                            session,
                            ..CaptureSpec::baseline(seed_for(2, idx))
                        });
                        idx += 1;
                    }
                }
            }
        }
    }
    specs
}

/// Dataset-3 (Temporal): "Computer", M1/M3/M5, 14 angles, 2 sessions,
/// 2 repetitions, 2 temporal offsets (one week, one month) = 336 samples.
pub fn dataset3() -> Vec<CaptureSpec> {
    let mut specs = Vec::with_capacity(336);
    let mut idx = 0usize;
    for (t, temporal_drift) in [(0u32, 0.15), (1, 0.25)] {
        // week, month
        for location in GridLocation::mid3() {
            for &angle_deg in &angles14() {
                for session in 0..2u32 {
                    for _rep in 0..2 {
                        specs.push(CaptureSpec {
                            location,
                            angle_deg,
                            // Fresh session indices so the temporal rooms
                            // differ from the Dataset-1 sessions.
                            session: 10 + 2 * t + session,
                            temporal_drift,
                            ..CaptureSpec::baseline(seed_for(3, idx))
                        });
                        idx += 1;
                    }
                }
            }
        }
    }
    specs
}

/// Dataset-4 (Ambient): "Computer", 2 noise kinds (white, TV) at 45 dB,
/// M1/M3/M5, 14 angles, 1 session, 2 repetitions = 168 samples.
pub fn dataset4() -> Vec<CaptureSpec> {
    let mut specs = Vec::with_capacity(168);
    let mut idx = 0usize;
    for kind in [NoiseKind::White, NoiseKind::Tv] {
        for location in GridLocation::mid3() {
            for &angle_deg in &angles14() {
                for _rep in 0..2 {
                    specs.push(CaptureSpec {
                        location,
                        angle_deg,
                        ambient: Some((kind, ht_acoustics::spl::AMBIENT_EXPERIMENT_SPL)),
                        ..CaptureSpec::baseline(seed_for(4, idx))
                    });
                    idx += 1;
                }
            }
        }
    }
    specs
}

/// Dataset-5 (Sitting): "Computer", M1/M3/M5, 14 angles, 1 session,
/// 2 repetitions = 84 samples.
pub fn dataset5() -> Vec<CaptureSpec> {
    let mut specs = Vec::with_capacity(84);
    let mut idx = 0usize;
    for location in GridLocation::mid3() {
        for &angle_deg in &angles14() {
            for _rep in 0..2 {
                specs.push(CaptureSpec {
                    location,
                    angle_deg,
                    posture: Posture::Sitting,
                    ..CaptureSpec::baseline(seed_for(5, idx))
                });
                idx += 1;
            }
        }
    }
    specs
}

/// Dataset-6 (Loudness): "Computer", M1/M3/M5, 14 angles, 1 session,
/// 2 repetitions, 2 loudness levels (60 and 80 dB) = 168 samples.
pub fn dataset6() -> Vec<CaptureSpec> {
    let mut specs = Vec::with_capacity(168);
    let mut idx = 0usize;
    for loudness_spl in [60.0, 80.0] {
        for location in GridLocation::mid3() {
            for &angle_deg in &angles14() {
                for _rep in 0..2 {
                    specs.push(CaptureSpec {
                        location,
                        angle_deg,
                        loudness_spl,
                        ..CaptureSpec::baseline(seed_for(6, idx))
                    });
                    idx += 1;
                }
            }
        }
    }
    specs
}

/// The three §IV-B13 obstruction settings: partially blocked, fully
/// blocked, and fully blocked but raised 14.8 cm (Fig. 17).
pub fn obstruction_settings() -> [(Obstruction, bool); 3] {
    [
        (Obstruction::Partial, false),
        (Obstruction::Full, false),
        (Obstruction::Raised, true),
    ]
}

/// Dataset-7 (Nearby objects): "Computer", M1/M3/M5, 14 angles, 1 session,
/// 2 repetitions, 3 settings = 252 samples.
pub fn dataset7() -> Vec<CaptureSpec> {
    let mut specs = Vec::with_capacity(252);
    let mut idx = 0usize;
    for (obstruction, raised) in obstruction_settings() {
        for location in GridLocation::mid3() {
            for &angle_deg in &angles14() {
                for _rep in 0..2 {
                    specs.push(CaptureSpec {
                        location,
                        angle_deg,
                        obstruction,
                        raised,
                        ..CaptureSpec::baseline(seed_for(7, idx))
                    });
                    idx += 1;
                }
            }
        }
    }
    specs
}

/// Dataset-8 (Multi-user, DoV-style): 10 participants (4 male, 6 female),
/// 9 locations, 8 angles, 2 repetitions = 1440 samples. Returns the specs
/// together with each sample's participant id (for leave-one-user-out).
pub fn dataset8() -> (Vec<CaptureSpec>, Vec<usize>) {
    let panel = VoiceProfile::panel(0xD0_5EED);
    let mut specs = Vec::with_capacity(1440);
    let mut participants = Vec::with_capacity(1440);
    let mut idx = 0usize;
    for (pid, voice) in panel.iter().enumerate() {
        for location in GridLocation::grid9() {
            for &angle_deg in &angles8() {
                for _rep in 0..2 {
                    specs.push(CaptureSpec {
                        location,
                        angle_deg,
                        wake_word: WakeWord::HeyAssistant,
                        source: SourceKind::Human { voice: *voice },
                        ..CaptureSpec::baseline(seed_for(8, idx))
                    });
                    participants.push(pid);
                    idx += 1;
                }
            }
        }
    }
    (specs, participants)
}

/// The ±75° verification angles for Table III: D2, lab, "Computer",
/// 9 locations × 2 angles × 2 repetitions × 2 sessions = 72 samples.
pub fn table3_extra_angles() -> Vec<CaptureSpec> {
    let mut specs = Vec::with_capacity(72);
    let mut idx = 0usize;
    for &angle_deg in &ht_acoustics::geometry::EXTRA_ANGLES_DEG {
        for location in GridLocation::grid9() {
            for session in 0..2u32 {
                for _rep in 0..2 {
                    specs.push(CaptureSpec {
                        location,
                        angle_deg,
                        session,
                        ..CaptureSpec::baseline(seed_for(9, idx))
                    });
                    idx += 1;
                }
            }
        }
    }
    specs
}

/// §IV-B7 placement data: "Computer" at 3 m along 0° from placement `p`
/// (B or C), 14 angles × 2 repetitions × 2 sessions = 56 samples.
pub fn placement_specs(placement: Placement) -> Vec<CaptureSpec> {
    let mut specs = Vec::with_capacity(56);
    let mut idx = 0usize;
    let location = GridLocation {
        radial_deg: 0.0,
        distance_m: 3.0,
    };
    for &angle_deg in &angles14() {
        for session in 0..2u32 {
            for _rep in 0..2 {
                specs.push(CaptureSpec {
                    placement,
                    location,
                    angle_deg,
                    session,
                    ..CaptureSpec::baseline(seed_for(10, idx) ^ placement as u64)
                });
                idx += 1;
            }
        }
    }
    specs
}

/// An ASVspoof-2019-style liveness pre-training corpus: `n_per_class` live
/// utterances from varied voices and `n_per_class` replays through varied
/// playback devices, at varied positions. Returns specs and liveness labels
/// (1 = live).
///
/// The corpus is *deliberately domain-shifted* from the paper's own data
/// (home acoustics instead of the lab, and no Sony-class speaker among the
/// replay devices), mirroring how ASVspoof's simulated physical-access
/// conditions differ from the authors' recordings — this is what produces
/// the §IV-A1 generalization gap that incremental learning then closes.
pub fn asvspoof_sim(n_per_class: usize, seed: u64) -> (Vec<CaptureSpec>, Vec<usize>) {
    use ht_dsp::rng::Rng;
    use ht_dsp::rng::SeedableRng;
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(seed);
    let mut specs = Vec::with_capacity(2 * n_per_class);
    let mut labels = Vec::with_capacity(2 * n_per_class);
    let words = WakeWord::ALL;
    let models = [SpeakerModel::GalaxyS21, SpeakerModel::GenericMedia];
    let grid = GridLocation::grid9();
    for i in 0..n_per_class {
        let female: bool = rng.gen();
        let voice = VoiceProfile::random(&mut rng, female);
        let location = grid[rng.gen_range(0..grid.len())];
        let angle_deg = *angles14()
            .get(rng.gen_range(0..14usize))
            .expect("angle grid has 14 entries");
        let base = CaptureSpec {
            room: RoomKind::Home,
            placement: Placement::HomeShelf,
            location,
            angle_deg,
            wake_word: words[rng.gen_range(0..words.len())],
            ..CaptureSpec::baseline(seed_for(11, 2 * i) ^ seed)
        };
        specs.push(CaptureSpec {
            source: SourceKind::Human { voice },
            ..base
        });
        labels.push(1);
        specs.push(CaptureSpec {
            source: SourceKind::Replay {
                model: models[rng.gen_range(0..models.len())],
                voice,
            },
            seed: seed_for(11, 2 * i + 1) ^ seed,
            ..base
        });
        labels.push(0);
    }
    (specs, labels)
}

/// A mixed-traffic scenario suite for the serving load generator
/// (`ht-serve`): `n` specs cycling through facing / side / backward human
/// speakers and a facing loudspeaker replay, so a multi-tenant drive
/// exercises accepts, orientation rejects, and liveness rejects in one
/// run. Deterministic: each spec gets its own seed derived from
/// `base_seed` and its index.
pub fn serve_scenarios(n: usize, base_seed: u64) -> Vec<CaptureSpec> {
    let voice = experimenter_voice();
    let mix: [(f64, SourceKind); 4] = [
        (0.0, SourceKind::Human { voice }),
        (90.0, SourceKind::Human { voice }),
        (180.0, SourceKind::Human { voice }),
        (
            0.0,
            SourceKind::Replay {
                model: SpeakerModel::SonySrsX5,
                voice,
            },
        ),
    ];
    (0..n)
        .map(|i| {
            let (angle_deg, source) = mix[i % mix.len()];
            CaptureSpec {
                angle_deg,
                source,
                ..CaptureSpec::baseline(seed_for(12, i) ^ base_seed)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_sample_counts() {
        assert_eq!(dataset1().len(), 9072);
        assert_eq!(dataset2().len(), 1008);
        assert_eq!(dataset3().len(), 336);
        assert_eq!(dataset4().len(), 168);
        assert_eq!(dataset5().len(), 84);
        assert_eq!(dataset6().len(), 168);
        assert_eq!(dataset7().len(), 252);
        let (d8, pids) = dataset8();
        assert_eq!(d8.len(), 1440);
        assert_eq!(pids.len(), 1440);
    }

    #[test]
    fn dataset1_covers_all_factor_combinations() {
        let specs = dataset1();
        use std::collections::HashSet;
        let rooms: HashSet<_> = specs.iter().map(|s| s.room).collect();
        let devices: HashSet<_> = specs.iter().map(|s| s.device).collect();
        let words: HashSet<_> = specs.iter().map(|s| s.wake_word).collect();
        let sessions: HashSet<_> = specs.iter().map(|s| s.session).collect();
        assert_eq!(rooms.len(), 2);
        assert_eq!(devices.len(), 3);
        assert_eq!(words.len(), 3);
        assert_eq!(sessions.len(), 2);
        // All seeds unique.
        let seeds: HashSet<_> = specs.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), specs.len());
    }

    #[test]
    fn dataset2_is_all_replay() {
        assert!(dataset2().iter().all(|s| !s.source.is_live()));
    }

    #[test]
    fn dataset3_has_temporal_drift() {
        let specs = dataset3();
        assert!(specs.iter().all(|s| s.temporal_drift > 0.0));
        let weeks = specs.iter().filter(|s| s.temporal_drift == 0.15).count();
        assert_eq!(weeks, 168);
    }

    #[test]
    fn dataset5_is_sitting() {
        assert!(dataset5().iter().all(|s| s.posture == Posture::Sitting));
    }

    #[test]
    fn dataset6_loudness_levels() {
        let specs = dataset6();
        let sixty = specs.iter().filter(|s| s.loudness_spl == 60.0).count();
        assert_eq!(sixty, 84);
    }

    #[test]
    fn dataset7_settings() {
        let specs = dataset7();
        let raised = specs.iter().filter(|s| s.raised).count();
        assert_eq!(raised, 84);
        assert!(specs.iter().all(|s| s.obstruction != Obstruction::None));
    }

    #[test]
    fn serve_scenarios_cycle_the_mix_with_unique_seeds() {
        use std::collections::HashSet;
        let specs = serve_scenarios(9, 0xFEED);
        assert_eq!(specs.len(), 9);
        let seeds: HashSet<_> = specs.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), 9, "every spec renders from its own seed");
        // The 4-way mix cycles: live facing, live side, live backward, replay.
        assert!(specs[0].source.is_live() && specs[0].angle_deg == 0.0);
        assert!(specs[1].source.is_live() && specs[1].angle_deg == 90.0);
        assert!(specs[2].source.is_live() && specs[2].angle_deg == 180.0);
        assert!(!specs[3].source.is_live());
        assert_eq!(specs[4].angle_deg, specs[0].angle_deg);
        // Seeds differ under a different base.
        assert_ne!(serve_scenarios(1, 1)[0].seed, specs[0].seed);
    }

    #[test]
    fn dataset8_participants_are_balanced() {
        let (_, pids) = dataset8();
        for p in 0..10 {
            assert_eq!(pids.iter().filter(|&&x| x == p).count(), 144);
        }
    }

    #[test]
    fn extra_angles_are_75() {
        let specs = table3_extra_angles();
        assert_eq!(specs.len(), 72);
        assert!(specs.iter().all(|s| s.angle_deg.abs() == 75.0));
    }

    #[test]
    fn placement_specs_use_requested_placement() {
        let b = placement_specs(Placement::LabB);
        assert_eq!(b.len(), 56);
        assert!(b.iter().all(|s| s.placement == Placement::LabB));
    }

    #[test]
    fn asvspoof_sim_is_balanced_and_seeded() {
        let (specs, labels) = asvspoof_sim(20, 1);
        assert_eq!(specs.len(), 40);
        assert_eq!(labels.iter().filter(|&&l| l == 1).count(), 20);
        let (again, _) = asvspoof_sim(20, 1);
        assert_eq!(specs, again);
        let (other, _) = asvspoof_sim(20, 2);
        assert_ne!(specs, other);
    }
}
