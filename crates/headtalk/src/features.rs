//! Orientation feature extraction (§III-B3).
//!
//! From a denoised multichannel capture the extractor produces one fixed-
//! width feature vector composed of:
//!
//! * **Speech reverberation** features — the weighted SRP-PHAT curve's top
//!   peaks and statistical summary, plus for every microphone pair the full
//!   GCC-PHAT lag window, its TDoA, and its statistical summary (kurtosis,
//!   skewness, max, MAD, std; §III-B3);
//! * **Speech directivity** features — the high/low band ratio (HLBR) and
//!   per-chunk (mean, RMS, std) statistics of the 100–400 Hz low band split
//!   into 20 chunks.

use crate::config::PipelineConfig;
use crate::HeadTalkError;
use ht_dsp::spectrum::{hlbr, low_band_chunk_stats, Spectrum};
use ht_dsp::srp::srp_phat;
use ht_dsp::stats::feature_summary;

/// Computes the width of the feature vector for `n_channels` microphones
/// under a configuration (feature vectors are fixed-width per device).
pub fn feature_width(n_channels: usize, config: &PipelineConfig) -> usize {
    let pairs = n_channels * (n_channels - 1) / 2;
    let window = 2 * config.max_lag + 1;
    // SRP: top peaks + 5 summary stats.
    let srp = config.srp_peaks + 5;
    // Per pair: GCC window + TDoA + 5 summary stats.
    let gcc = pairs * (window + 1 + 5);
    // Directivity: HLBR + chunks × (mean, rms, std).
    let directivity = 1 + 3 * config.low_band_chunks;
    srp + gcc + directivity
}

/// Extracts the §III-B3 feature vector from denoised channels.
///
/// # Errors
///
/// Returns [`HeadTalkError::InvalidInput`] for fewer than two channels or a
/// capture too short to fill the fixed-width vector, and propagates DSP
/// errors for malformed audio.
pub fn extract(channels: &[Vec<f64>], config: &PipelineConfig) -> Result<Vec<f64>, HeadTalkError> {
    let _span = ht_obs::span("wake.feature_extract");
    if channels.len() < 2 {
        return Err(HeadTalkError::InvalidInput(format!(
            "orientation features need at least 2 channels, got {}",
            channels.len()
        )));
    }
    let refs: Vec<&[f64]> = channels.iter().map(|c| c.as_slice()).collect();
    let analysis = srp_phat(&refs, config.max_lag)?;

    let mut features = Vec::with_capacity(feature_width(channels.len(), config));

    // SRP features: ranked top peak values + summary statistics.
    features.extend(analysis.top_peaks(config.srp_peaks));
    features.extend(feature_summary(&analysis.srp.values));

    // Pairwise GCC features.
    for gcc in &analysis.gccs {
        features.extend(gcc.values.iter().copied());
        features.push(gcc.peak_lag_interpolated());
        features.extend(feature_summary(&gcc.values));
    }

    // Directivity features on the channel average (a crude beamformed-to-
    // broadside reference signal).
    let len = channels[0].len();
    let mut avg = vec![0.0; len];
    for c in channels {
        for (a, v) in avg.iter_mut().zip(c.iter()) {
            *a += v;
        }
    }
    let n = channels.len() as f64;
    for a in &mut avg {
        *a /= n;
    }
    let spec = Spectrum::of(&avg, config.sample_rate)?;
    features.push(hlbr(&spec));
    for (mean, rms, std) in low_band_chunk_stats(&spec, config.low_band_chunks) {
        features.push(mean);
        features.push(rms);
        features.push(std);
    }

    // Captures shorter than the analysis windows produce truncated GCC
    // lags / peak lists / spectrum chunks; that is a malformed capture, not
    // a programming error, so it must surface as an error (a debug assert
    // here was reachable from `process_wake` with a pathologically short
    // capture).
    let expected = feature_width(channels.len(), config);
    if features.len() != expected {
        return Err(HeadTalkError::InvalidInput(format!(
            "capture too short for fixed-width features: extracted {} of \
             {expected} values from {}-sample channels",
            features.len(),
            channels[0].len()
        )));
    }
    Ok(features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::rng::SeedableRng;
    use ht_dsp::signal::fractional_delay;

    fn test_channels(n: usize, len: usize) -> Vec<Vec<f64>> {
        let mut rng = ht_dsp::rng::StdRng::seed_from_u64(1);
        let base = ht_dsp::rng::white_noise(&mut rng, len);
        (0..n)
            .map(|k| fractional_delay(&base, k as f64 * 1.5, 16))
            .collect()
    }

    #[test]
    fn width_formula_matches_extraction() {
        let cfg = PipelineConfig::default();
        for n in [2usize, 4, 6] {
            let ch = test_channels(n, 2048);
            let f = extract(&ch, &cfg).unwrap();
            assert_eq!(f.len(), feature_width(n, &cfg), "{n} channels");
        }
    }

    #[test]
    fn paper_gcc_vector_width_for_d2() {
        // §III-B3: for D2 (4 selected mics, ±13 lag) the GCC+TDoA feature
        // is 6×27 + 6 = 168 values.
        let cfg = PipelineConfig::default(); // max_lag 13
        let pairs = 6;
        let window = 27;
        let gcc_part = pairs * (window + 1); // + TDoA
        assert_eq!(gcc_part, 168);
        // The full width adds SRP and directivity features on top.
        assert!(feature_width(4, &cfg) > gcc_part);
    }

    #[test]
    fn features_are_finite() {
        let cfg = PipelineConfig::default();
        let ch = test_channels(4, 4096);
        let f = extract(&ch, &cfg).unwrap();
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn single_channel_is_rejected() {
        let cfg = PipelineConfig::default();
        let ch = test_channels(1, 1024);
        assert!(extract(&ch, &cfg).is_err());
    }

    #[test]
    fn tdoa_features_reflect_geometry() {
        // Channels delayed by 1.5 samples each: pair (0,1) TDoA ≈ -1.5.
        let cfg = PipelineConfig::default();
        let ch = test_channels(2, 4096);
        let f = extract(&ch, &cfg).unwrap();
        // Layout: srp_peaks (3) + srp stats (5) + gcc window (27) + tdoa.
        let tdoa_idx = 3 + 5 + 27;
        assert!(
            (f[tdoa_idx] + 1.5).abs() < 0.3,
            "TDoA feature {} should be ≈ -1.5",
            f[tdoa_idx]
        );
    }

    #[test]
    fn silence_produces_finite_features() {
        let cfg = PipelineConfig::default();
        let ch = vec![vec![0.0; 1024], vec![0.0; 1024]];
        let f = extract(&ch, &cfg).unwrap();
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
