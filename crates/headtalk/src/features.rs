//! Orientation feature extraction (§III-B3).
//!
//! From a raw multichannel capture the extractor produces one fixed-width
//! feature vector composed of:
//!
//! * **Speech reverberation** features — the frame-averaged weighted
//!   SRP-PHAT curve's top peaks and statistical summary, plus for every
//!   microphone pair the frame-averaged GCC-PHAT lag window, its TDoA, and
//!   its statistical summary (kurtosis, skewness, max, MAD, std; §III-B3);
//! * **Speech directivity** features — the high/low band ratio (HLBR) and
//!   per-chunk (mean, RMS, std) statistics of the 100–400 Hz low band split
//!   into 20 chunks, computed on the frame-averaged channel-mean spectrum.
//!
//! The extraction is *frame-based*: the capture is cut into the
//! [`PipelineConfig::analysis_frame_geometry`] frames, each frame is
//! analyzed by the streaming engine's [`FrameAnalyzer`], and the vector is
//! assembled from the accumulated Welch-style evidence. This makes the
//! batch extractor and the incremental `WakeStream::finalize` path one
//! code path — the golden/property tests pin them bit-identical for any
//! chunking and any `HT_THREADS`.

use crate::config::PipelineConfig;
use crate::HeadTalkError;
use ht_dsp::spectrum;
use ht_stream::analyzer::FrameAnalyzer;
use ht_stream::directivity::DirectivityAccum;
use ht_stream::error::StreamError;

/// Computes the width of the feature vector for `n_channels` microphones
/// under a configuration (feature vectors are fixed-width per device).
pub fn feature_width(n_channels: usize, config: &PipelineConfig) -> usize {
    let pairs = n_channels * (n_channels - 1) / 2;
    let window = 2 * config.max_lag + 1;
    // SRP: top peaks + 5 summary stats.
    let srp = config.srp_peaks + 5;
    // Per pair: GCC window + TDoA + 5 summary stats.
    let gcc = pairs * (window + 1 + 5);
    // Directivity: HLBR + chunks × (mean, rms, std).
    let directivity = 1 + 3 * config.low_band_chunks;
    srp + gcc + directivity
}

/// Extracts the §III-B3 feature vector from raw channels by framing the
/// capture with [`PipelineConfig::analysis_frame_geometry`] and running
/// each frame through the streaming [`FrameAnalyzer`]. Any trailing
/// samples past the last complete frame are ignored — the streaming
/// engine holds the same partial frame back, which is one of the two
/// facts behind incremental/batch bit-identity (the other: assembly reads
/// only the accumulated evidence, never the audio).
///
/// # Errors
///
/// Returns [`HeadTalkError::InvalidInput`] for fewer than two channels,
/// ragged channels, or a capture too short to hold one complete analysis
/// frame.
pub fn extract(channels: &[Vec<f64>], config: &PipelineConfig) -> Result<Vec<f64>, HeadTalkError> {
    if channels.len() < 2 {
        return Err(HeadTalkError::InvalidInput(format!(
            "orientation features need at least 2 channels, got {}",
            channels.len()
        )));
    }
    let len = channels[0].len();
    if channels.iter().any(|c| c.len() != len) {
        return Err(HeadTalkError::InvalidInput(
            "all channels must share one length".into(),
        ));
    }
    let (frame_len, hop) = config.analysis_frame_geometry();
    if len < frame_len {
        return Err(HeadTalkError::InvalidInput(format!(
            "capture too short for fixed-width features: {len}-sample \
             channels hold no complete {frame_len}-sample analysis frame"
        )));
    }

    let mut analyzer = FrameAnalyzer::new(
        channels.len(),
        frame_len,
        config.max_lag,
        config.sample_rate,
    )
    .map_err(stream_error)?;
    let mut dir = DirectivityAccum::new(
        channels.len(),
        config.directivity_segment_len(),
        config.sample_rate,
    )
    .map_err(stream_error)?;
    let refs: Vec<&[f64]> = channels.iter().map(|c| c.as_slice()).collect();
    dir.push(&refs).map_err(stream_error)?;
    let mut frame: Vec<Vec<f64>> = vec![vec![0.0; frame_len]; channels.len()];
    let mut start = 0;
    while start + frame_len <= len {
        for (dst, c) in frame.iter_mut().zip(channels) {
            dst.copy_from_slice(&c[start..start + frame_len]);
        }
        analyzer.analyze(&frame).map_err(stream_error)?;
        start += hop;
    }

    let mut features = Vec::with_capacity(feature_width(channels.len(), config));
    assemble_into(&mut analyzer, &mut dir, config, &mut features)?;
    Ok(features)
}

/// Assembles the feature vector from the accumulated evidence — the
/// analyzer's SRP/GCC sums followed by the directivity accumulator's
/// averaged spectrum — translating streaming-layer errors into the
/// pipeline's error type. This is the one assembly call both the batch
/// extractor above and the incremental `WakeStream` finalize path go
/// through, which is what makes their features structurally bit-identical.
///
/// # Errors
///
/// Returns [`HeadTalkError::InvalidInput`] when no complete frame has been
/// analyzed (capture shorter than one frame).
pub(crate) fn assemble_into(
    analyzer: &mut FrameAnalyzer,
    dir: &mut DirectivityAccum,
    config: &PipelineConfig,
    out: &mut Vec<f64>,
) -> Result<(), HeadTalkError> {
    let _span = ht_obs::span("wake.feature_extract");
    analyzer
        .assemble_features_into(config.srp_peaks, out)
        .map_err(stream_error)?;
    // ≥1 analyzed frame implies ≥frame_len pushed samples, so the
    // accumulator always has a spectrum here.
    let spec = dir.flush_spectrum().ok_or_else(|| {
        HeadTalkError::InvalidInput("no directivity evidence accumulated: capture is empty".into())
    })?;
    out.push(spectrum::hlbr(spec));
    spectrum::push_low_band_chunk_stats(spec, config.low_band_chunks, out);
    Ok(())
}

/// Maps a streaming-layer error onto the pipeline's error type, keeping
/// the user-facing "capture too short" phrasing for the no-frames case.
fn stream_error(e: StreamError) -> HeadTalkError {
    match e {
        StreamError::NoFrames => HeadTalkError::InvalidInput(
            "capture too short for fixed-width features: no complete \
             analysis frame was accumulated"
                .into(),
        ),
        other => HeadTalkError::InvalidInput(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::rng::SeedableRng;
    use ht_dsp::signal::fractional_delay;

    fn test_channels(n: usize, len: usize) -> Vec<Vec<f64>> {
        let mut rng = ht_dsp::rng::StdRng::seed_from_u64(1);
        let base = ht_dsp::rng::white_noise(&mut rng, len);
        (0..n)
            .map(|k| fractional_delay(&base, k as f64 * 1.5, 16))
            .collect()
    }

    #[test]
    fn width_formula_matches_extraction() {
        let cfg = PipelineConfig::default();
        for n in [2usize, 4, 6] {
            let ch = test_channels(n, 2048);
            let f = extract(&ch, &cfg).unwrap();
            assert_eq!(f.len(), feature_width(n, &cfg), "{n} channels");
        }
    }

    #[test]
    fn paper_gcc_vector_width_for_d2() {
        // §III-B3: for D2 (4 selected mics, ±13 lag) the GCC+TDoA feature
        // is 6×27 + 6 = 168 values.
        let cfg = PipelineConfig::default(); // max_lag 13
        let pairs = 6;
        let window = 27;
        let gcc_part = pairs * (window + 1); // + TDoA
        assert_eq!(gcc_part, 168);
        // The full width adds SRP and directivity features on top.
        assert!(feature_width(4, &cfg) > gcc_part);
    }

    #[test]
    fn features_are_finite() {
        let cfg = PipelineConfig::default();
        let ch = test_channels(4, 4096);
        let f = extract(&ch, &cfg).unwrap();
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn single_channel_is_rejected() {
        let cfg = PipelineConfig::default();
        let ch = test_channels(1, 1024);
        assert!(extract(&ch, &cfg).is_err());
    }

    #[test]
    fn tdoa_features_reflect_geometry() {
        // Channels delayed by 1.5 samples each: pair (0,1) TDoA ≈ -1.5.
        let cfg = PipelineConfig::default();
        let ch = test_channels(2, 4096);
        let f = extract(&ch, &cfg).unwrap();
        // Layout: srp_peaks (3) + srp stats (5) + gcc window (27) + tdoa.
        let tdoa_idx = 3 + 5 + 27;
        assert!(
            (f[tdoa_idx] + 1.5).abs() < 0.3,
            "TDoA feature {} should be ≈ -1.5",
            f[tdoa_idx]
        );
    }

    #[test]
    fn silence_produces_finite_features() {
        let cfg = PipelineConfig::default();
        let ch = vec![vec![0.0; 1024], vec![0.0; 1024]];
        let f = extract(&ch, &cfg).unwrap();
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
