//! # headtalk — speaker orientation-aware privacy control for voice assistants
//!
//! A Rust reproduction of *"Speaker Orientation-Aware Privacy Control to
//! Thwart Misactivation of Voice Assistants"* (Zhang, Sabir, Das — DSN 2023).
//!
//! HeadTalk adds a device-free privacy control to a voice assistant: a wake
//! command is only forwarded to the cloud when (1) a *live human* produced it
//! (not a loudspeaker replay) and (2) the human was *facing* the device. Both
//! checks run on the assistant's own microphones.
//!
//! ## Architecture (Fig. 2 of the paper)
//!
//! * [`preprocess`] — 5th-order Butterworth band-pass (100–16 000 Hz) and
//!   normalization,
//! * [`liveness`] — human-vs-mechanical-speaker detection on downsampled
//!   16 kHz audio ("wav2vec2-mini", §III-A),
//! * [`features`] — the orientation feature set: SRP-PHAT peaks, pairwise
//!   GCC-PHAT vectors and TDoAs with statistical summaries, plus speech
//!   directivity features (HLBR, low-band chunks) (§III-B3),
//! * [`facing`] — the facing/blind/non-facing zones and the four
//!   training-label definitions of Table III,
//! * [`orientation`] — the facing classifier (SVM by default; RF/DT/kNN for
//!   the §IV-A comparison),
//! * [`pipeline`] — the end-to-end wake-command decision,
//! * [`stream`] — the frame-by-frame streaming engine with the early-exit
//!   soft-mute gate (`process_wake` is a batch adapter over it),
//! * [`control`] — the privacy-mode state machine of Fig. 1 (Normal, Mute,
//!   HeadTalk; soft mute; session semantics),
//! * [`userstudy`] — SUS scoring and the paper's Table V survey data.
//!
//! ## Example
//!
//! ```no_run
//! use headtalk::control::{PrivacyController, VaEvent, VaMode};
//!
//! let mut va = PrivacyController::new();
//! va.handle(VaEvent::EnterHeadTalkMode);
//! assert_eq!(va.mode(), VaMode::HeadTalk);
//! // A wake word from a facing, live human starts a session:
//! let response = va.handle(VaEvent::WakeDetected { live: true, facing: true });
//! assert!(response.audio_forwarded_to_cloud());
//! ```

pub mod config;
pub mod control;
pub mod error;
pub mod facing;
pub mod features;
pub mod liveness;
pub mod orientation;
pub mod pipeline;
pub mod preprocess;
pub mod stream;
pub mod userstudy;

pub use config::PipelineConfig;
pub use error::HeadTalkError;
pub use ht_dsp::QuantMode;
pub use pipeline::{HeadTalk, WakeDecision};
pub use stream::{StreamConfig, StreamOutcome, WakeStream};
