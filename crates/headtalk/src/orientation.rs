//! The speaker-orientation classifier.
//!
//! §IV-A compares Random Forest, Decision Tree, SVM and kNN on the
//! orientation features and selects the SVM (best average F1-score across
//! the lab and home settings). [`ModelKind`] exposes all four so the
//! comparison experiment can be reproduced; [`OrientationDetector`] wraps
//! standardization + the chosen model.

use crate::HeadTalkError;
use ht_dsp::rng::{SeedableRng, StdRng};
use ht_dsp::QuantMode;
use ht_ml::dataset::{Dataset, Standardizer};
use ht_ml::forest::{ForestParams, RandomForest};
use ht_ml::knn::Knn;
use ht_ml::quant::QuantizedSvm;
use ht_ml::svm::{Svm, SvmParams};
use ht_ml::tree::{DecisionTree, TreeParams};
use ht_ml::Classifier;

/// Which classifier backs the orientation detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Support vector machine with RBF kernel (the paper's choice).
    Svm,
    /// Random forest (bagging, 200 trees in the paper).
    RandomForest,
    /// Decision tree (max 5 splits in the paper).
    DecisionTree,
    /// k-nearest neighbours (k = 3 in the paper).
    Knn,
}

impl ModelKind {
    /// All four §IV-A candidates.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::Svm,
        ModelKind::RandomForest,
        ModelKind::DecisionTree,
        ModelKind::Knn,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Svm => "SVM",
            ModelKind::RandomForest => "RF",
            ModelKind::DecisionTree => "DT",
            ModelKind::Knn => "kNN",
        }
    }
}

#[derive(Debug, Clone)]
enum Model {
    Svm(Svm),
    Forest(RandomForest),
    Tree(DecisionTree),
    Knn(Knn),
}

impl Model {
    fn as_classifier(&self) -> &dyn Classifier {
        match self {
            Model::Svm(m) => m,
            Model::Forest(m) => m,
            Model::Tree(m) => m,
            Model::Knn(m) => m,
        }
    }
}

/// A trained facing/non-facing detector: feature standardization plus the
/// selected classifier.
#[derive(Debug, Clone)]
pub struct OrientationDetector {
    scaler: Standardizer,
    model: Model,
    kind: ModelKind,
    /// Int8 backend for the SVM, built offline by
    /// [`OrientationDetector::calibrate_int8`]. `None` until calibrated (and
    /// always `None` for the non-SVM kinds); the f64 model above stays the
    /// byte-stable reference either way.
    quantized: Option<QuantizedSvm>,
}

impl OrientationDetector {
    /// Trains on a dataset of §III-B3 feature vectors labeled facing (1) /
    /// non-facing (0), using the paper's hyperparameters for each model.
    ///
    /// `seed` drives the stochastic models (RF bagging, DT feature order);
    /// SVM training is deterministic.
    ///
    /// # Errors
    ///
    /// Propagates [`HeadTalkError::Ml`] for degenerate training sets.
    pub fn fit(
        ds: &Dataset,
        kind: ModelKind,
        seed: u64,
    ) -> Result<OrientationDetector, HeadTalkError> {
        let scaler = Standardizer::fit(ds)?;
        let scaled = scaler.transform_dataset(ds);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = match kind {
            ModelKind::Svm => Model::Svm(Svm::fit(&scaled, &SvmParams::default())?),
            ModelKind::RandomForest => {
                // The paper settles on 200 trees; 64 reaches the same
                // accuracy on the simulated data at a fraction of the cost.
                let params = ForestParams {
                    n_trees: 64,
                    ..ForestParams::default()
                };
                Model::Forest(RandomForest::fit(&scaled, &params, &mut rng)?)
            }
            ModelKind::DecisionTree => {
                let params = TreeParams {
                    max_splits: 5,
                    ..TreeParams::default()
                };
                Model::Tree(DecisionTree::fit(&scaled, &params, &mut rng)?)
            }
            ModelKind::Knn => Model::Knn(Knn::fit(&scaled, 3)?),
        };
        Ok(OrientationDetector {
            scaler,
            model,
            kind,
            quantized: None,
        })
    }

    /// Builds the int8 inference backend from calibration feature vectors
    /// (unscaled — the detector standardizes them exactly like queries).
    ///
    /// Only the SVM has an int8 backend: the trees, forest and kNN are
    /// threshold/compare structures with no dense arithmetic to quantize,
    /// so for those kinds this is a no-op and scoring stays f64.
    ///
    /// # Errors
    ///
    /// Propagates [`HeadTalkError::Ml`] for an empty calibration set or
    /// rows of the wrong width.
    pub fn calibrate_int8(&mut self, calib: &[&[f64]]) -> Result<(), HeadTalkError> {
        let Model::Svm(svm) = &self.model else {
            return Ok(());
        };
        let scaled: Vec<Vec<f64>> = calib.iter().map(|row| self.scaler.transform(row)).collect();
        let refs: Vec<&[f64]> = scaled.iter().map(Vec::as_slice).collect();
        self.quantized = Some(QuantizedSvm::from_svm(svm, &refs)?);
        Ok(())
    }

    /// `true` once [`calibrate_int8`](OrientationDetector::calibrate_int8)
    /// has built a quantized backend (always `false` for non-SVM kinds).
    pub fn has_int8(&self) -> bool {
        self.quantized.is_some()
    }

    /// Mode-dispatched decision: `(score, facing)`. Under
    /// [`QuantMode::Int8`] with a calibrated SVM backend, one quantized
    /// kernel evaluation produces both (the SVM's predict is exactly
    /// `score >= 0`); otherwise the byte-stable f64 reference runs.
    pub fn score_and_facing_mode(&self, features: &[f64], mode: QuantMode) -> (f64, bool) {
        match (&self.quantized, mode) {
            (Some(q), QuantMode::Int8) => {
                let scaled = self.scaler.transform(features);
                let s = q.decision_score(&scaled);
                (s, s >= 0.0)
            }
            _ => (self.decision_score(features), self.is_facing(features)),
        }
    }

    /// Which model kind backs this detector.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The feature width the detector was trained on. Inputs of any other
    /// width cannot be classified (the pipeline rejects them up front).
    pub fn input_dim(&self) -> usize {
        self.scaler.dim()
    }

    /// `true` if the feature vector is classified as facing.
    pub fn is_facing(&self, features: &[f64]) -> bool {
        self.predict(features) == 1
    }
}

impl Classifier for OrientationDetector {
    fn predict(&self, x: &[f64]) -> usize {
        let scaled = self.scaler.transform(x);
        self.model.as_classifier().predict(&scaled)
    }

    fn decision_score(&self, x: &[f64]) -> f64 {
        let scaled = self.scaler.transform(x);
        self.model.as_classifier().decision_score(&scaled)
    }
}

/// Per-frame orientation evidence for the streaming early-exit gate: the
/// SRP-PHAT peak-to-mean sharpness. A frontal speaker's direct path
/// dominates the steered response, producing one sharp peak; averted
/// speech reaches the array mostly through reflections, flattening the
/// curve. Like the liveness analogue, this only feeds the gate — the
/// trained classifier still issues the final facing verdict over the whole
/// capture at stream finalization.
pub fn frame_facing_evidence(frame: &ht_stream::FrameFeatures) -> f64 {
    frame.srp_sharpness()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy "orientation" problem: facing = positive offset on feature 0.
    fn toy(n_per: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(3);
        for _ in 0..n_per {
            ds.push(
                vec![
                    1.0 + 0.5 * ht_dsp::rng::gaussian(&mut rng),
                    ht_dsp::rng::gaussian(&mut rng),
                    5.0 + ht_dsp::rng::gaussian(&mut rng),
                ],
                1,
            )
            .unwrap();
            ds.push(
                vec![
                    -1.0 + 0.5 * ht_dsp::rng::gaussian(&mut rng),
                    ht_dsp::rng::gaussian(&mut rng),
                    5.0 + ht_dsp::rng::gaussian(&mut rng),
                ],
                0,
            )
            .unwrap();
        }
        ds
    }

    #[test]
    fn all_four_models_learn_the_toy_problem() {
        let train = toy(40, 1);
        let test = toy(40, 2);
        for kind in ModelKind::ALL {
            let det = OrientationDetector::fit(&train, kind, 7).unwrap();
            let preds = det.predict_batch(test.features());
            let acc = ht_ml::metrics::accuracy(test.labels(), &preds);
            assert!(acc > 0.85, "{}: accuracy {acc}", kind.name());
            assert_eq!(det.kind(), kind);
        }
    }

    #[test]
    fn is_facing_matches_predict() {
        let train = toy(30, 3);
        let det = OrientationDetector::fit(&train, ModelKind::Svm, 7).unwrap();
        assert!(det.is_facing(&[1.5, 0.0, 5.0]));
        assert!(!det.is_facing(&[-1.5, 0.0, 5.0]));
    }

    #[test]
    fn degenerate_training_is_rejected() {
        let mut ds = Dataset::new(2);
        ds.push(vec![0.0, 0.0], 1).unwrap();
        ds.push(vec![1.0, 1.0], 1).unwrap();
        assert!(OrientationDetector::fit(&ds, ModelKind::Svm, 7).is_err());
    }

    #[test]
    fn model_names() {
        assert_eq!(ModelKind::Svm.name(), "SVM");
        assert_eq!(ModelKind::ALL.len(), 4);
    }
}
