//! The end-to-end HeadTalk pipeline (Fig. 2): preprocessing → liveness →
//! orientation → accept/soft-mute decision.

use crate::config::PipelineConfig;
use crate::features;
use crate::liveness::{prepare_decimated, LivenessDetector, LIVE_HUMAN};
use crate::orientation::OrientationDetector;
use crate::preprocess::Preprocessor;
use crate::HeadTalkError;
use ht_dsp::resample::to_16k_from_48k;
use ht_dsp::QuantMode;

/// The pipeline's verdict on one wake-word capture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WakeDecision {
    /// Liveness verdict: `true` = live human.
    pub live: bool,
    /// Liveness class-1 probability.
    pub live_probability: f64,
    /// Orientation verdict: `true` = facing the device. Only meaningful
    /// when `live` (the paper rejects mechanical sources before checking
    /// orientation), but always computed for diagnostics.
    pub facing: bool,
    /// Orientation decision score (positive = facing).
    pub facing_score: f64,
}

impl WakeDecision {
    /// The overall accept decision (Fig. 2): the command is forwarded to
    /// the cloud only when the source is a live human *and* facing.
    pub fn accepted(&self) -> bool {
        self.live && self.facing
    }
}

/// The assembled HeadTalk system: preprocessor + liveness detector +
/// orientation detector.
#[derive(Debug, Clone)]
pub struct HeadTalk {
    config: PipelineConfig,
    preprocessor: Preprocessor,
    liveness: LivenessDetector,
    orientation: OrientationDetector,
    /// Which inference backend the decision path runs. Defaults to the
    /// byte-stable f64 [`QuantMode::Reference`]; switched to
    /// [`QuantMode::Int8`] by [`HeadTalk::enable_int8`].
    quant: QuantMode,
}

impl HeadTalk {
    /// Assembles a pipeline from trained components.
    ///
    /// # Errors
    ///
    /// Returns [`HeadTalkError::Dsp`] for an invalid preprocessing
    /// configuration.
    pub fn new(
        config: PipelineConfig,
        liveness: LivenessDetector,
        orientation: OrientationDetector,
    ) -> Result<HeadTalk, HeadTalkError> {
        let preprocessor = Preprocessor::new(&config)?;
        Ok(HeadTalk {
            config,
            preprocessor,
            liveness,
            orientation,
            quant: QuantMode::Reference,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The active inference backend.
    pub fn quant_mode(&self) -> QuantMode {
        self.quant
    }

    /// Selects the inference backend. [`QuantMode::Reference`] is always
    /// available; [`QuantMode::Int8`] requires a prior
    /// [`enable_int8`](HeadTalk::enable_int8) (or
    /// [`enable_int8_assembled`](HeadTalk::enable_int8_assembled)) so the
    /// static scales exist.
    ///
    /// # Errors
    ///
    /// Returns [`HeadTalkError::InvalidInput`] when Int8 is requested
    /// before calibration.
    pub fn set_quant_mode(&mut self, mode: QuantMode) -> Result<(), HeadTalkError> {
        if mode == QuantMode::Int8 && !self.liveness.has_int8() {
            return Err(HeadTalkError::InvalidInput(
                "int8 mode requires calibrated scales: call enable_int8 first".into(),
            ));
        }
        self.quant = mode;
        Ok(())
    }

    /// Calibrates the int8 backends offline from raw training captures and
    /// switches the pipeline to [`QuantMode::Int8`]: each capture is pushed
    /// through the same preprocessing as inference (feature extraction for
    /// the orientation SVM, causal band-pass → 16 kHz → z-score for the
    /// liveness net) and the observed activation ranges fix the static
    /// per-layer scales. The f64 models are untouched and stay selectable
    /// via [`set_quant_mode`](HeadTalk::set_quant_mode).
    ///
    /// # Errors
    ///
    /// Returns [`HeadTalkError::InvalidInput`] for an empty calibration set
    /// or degenerate captures, and propagates model errors.
    pub fn enable_int8(&mut self, captures: &[Vec<Vec<f64>>]) -> Result<(), HeadTalkError> {
        if captures.is_empty() {
            return Err(HeadTalkError::InvalidInput(
                "int8 calibration needs at least one capture".into(),
            ));
        }
        let mut liveness_calib = Vec::with_capacity(captures.len());
        let mut feature_calib = Vec::with_capacity(captures.len());
        for channels in captures {
            if channels.is_empty() || channels[0].is_empty() {
                return Err(HeadTalkError::InvalidInput(
                    "calibration capture must have at least one non-empty channel".into(),
                ));
            }
            self.validate_feature_width(channels.len())?;
            feature_calib.push(features::extract(channels, &self.config)?);
            let filtered = self.preprocessor.filter_causal(&channels[0]);
            let x16k = to_16k_from_48k(&filtered)?;
            liveness_calib.push(prepare_decimated(&x16k, self.liveness.input_len())?);
        }
        let liv: Vec<&[f64]> = liveness_calib.iter().map(Vec::as_slice).collect();
        let feat: Vec<&[f64]> = feature_calib.iter().map(Vec::as_slice).collect();
        self.enable_int8_assembled(&liv, &feat)
    }

    /// [`enable_int8`](HeadTalk::enable_int8) from already-assembled
    /// evidence: prepared liveness inputs and (unscaled) orientation
    /// feature vectors — what a serving layer that has been running the
    /// reference path already holds.
    ///
    /// # Errors
    ///
    /// Propagates calibration errors; on error the pipeline stays in its
    /// previous mode.
    pub fn enable_int8_assembled(
        &mut self,
        liveness_calib: &[&[f64]],
        feature_calib: &[&[f64]],
    ) -> Result<(), HeadTalkError> {
        self.liveness.calibrate_int8(liveness_calib)?;
        self.orientation.calibrate_int8(feature_calib)?;
        self.quant = QuantMode::Int8;
        Ok(())
    }

    /// Processes one multichannel wake-word capture (raw 48 kHz channels)
    /// and returns the accept/soft-mute decision.
    ///
    /// This is a thin batch adapter over the streaming engine
    /// ([`crate::stream::WakeStream`]): the capture is fed hop-sized chunk
    /// by chunk — exercising the exact ingest → frame → gate path a live
    /// microphone would — and then finalized, which assembles the decision
    /// evidence from the stream's accumulated statistics in O(features).
    /// The returned decision is bit-identical to calling
    /// [`decide_batch`](HeadTalk::decide_batch) directly (the stream's
    /// advisory gate never alters it); the golden tests pin this
    /// equivalence.
    ///
    /// Liveness runs on a single channel (the paper: "we needed one channel
    /// of audio data to detect liveliness and 4-channel audio data to detect
    /// speaker orientation", §IV-B15); orientation runs on all channels.
    ///
    /// Each stage runs under an `ht_obs` span (per-frame
    /// `stream.ingest/stft/srp/score/gate`, then the batch `wake.denoise`,
    /// `wake.liveness_prepare`, `wake.liveness_infer`,
    /// `wake.feature_extract`, `wake.orientation_infer`), so with `HT_OBS`
    /// enabled both the per-frame latency histograms and the per-stage
    /// breakdown of §IV-B15 fall out of the registry. With `HT_OBS=off`
    /// the spans cost an atomic load each.
    ///
    /// # Errors
    ///
    /// Returns [`HeadTalkError::InvalidInput`] for empty, mismatched,
    /// silent/DC-only captures, or a channel count whose feature width does
    /// not match the width the orientation model was trained on.
    pub fn process_wake(&self, channels: &[Vec<f64>]) -> Result<WakeDecision, HeadTalkError> {
        let _wake = ht_obs::span("wake.process");
        // The same up-front shape validation the batch path performs, so
        // the adapter reports identical errors for degenerate captures.
        if channels.is_empty() || channels[0].is_empty() {
            return Err(HeadTalkError::InvalidInput(
                "capture must have at least one non-empty channel".into(),
            ));
        }
        let len = channels[0].len();
        if channels.iter().any(|c| c.len() != len) {
            return Err(HeadTalkError::InvalidInput(
                "all channels must share one length".into(),
            ));
        }
        let stream_config = crate::stream::StreamConfig {
            capacity_hint: len,
            ..crate::stream::StreamConfig::for_pipeline(&self.config)
        };
        let mut stream = self.streamer_with(channels.len(), stream_config)?;
        let hop = stream.hop();
        let mut chunk: Vec<&[f64]> = Vec::with_capacity(channels.len());
        let mut pos = 0;
        while pos < len {
            let end = (pos + hop).min(len);
            chunk.clear();
            chunk.extend(channels.iter().map(|c| &c[pos..end]));
            stream.push(&chunk)?;
            pos = end;
        }
        let outcome = stream.finalize()?;
        Ok(outcome
            .decision
            .expect("advisory streaming always carries the batch decision"))
    }

    /// The reference batch analysis: extract the frame-averaged orientation
    /// features from the raw capture, prepare the causally-filtered liveness
    /// input, run both trained models, and return the decision together with
    /// the orientation feature vector it was based on. Every stage here is a
    /// whole-capture view of an *incrementally computable* operation —
    /// frame-accumulated feature statistics, a causal (single-pass) band-pass
    /// plus streaming decimation for liveness — which is exactly why the
    /// streaming engine's finalize path can produce the same bits without
    /// revisiting the audio. The golden/property tests pin the two paths
    /// bit-identical for any chunking at any `HT_THREADS`.
    ///
    /// # Errors
    ///
    /// Returns [`HeadTalkError::InvalidInput`] as documented on
    /// [`process_wake`](HeadTalk::process_wake).
    pub fn decide_batch(
        &self,
        channels: &[Vec<f64>],
    ) -> Result<(WakeDecision, Vec<f64>), HeadTalkError> {
        if channels.is_empty() || channels[0].is_empty() {
            return Err(HeadTalkError::InvalidInput(
                "capture must have at least one non-empty channel".into(),
            ));
        }
        let len = channels[0].len();
        if channels.iter().any(|c| c.len() != len) {
            return Err(HeadTalkError::InvalidInput(
                "all channels must share one length".into(),
            ));
        }
        self.validate_feature_width(channels.len())?;

        // Orientation on the raw array: the frame analyzer whitens each
        // pair's cross-spectrum (PHAT), so a pre-filter would only reshape
        // the phase evidence the TDoA features are built from.
        let fv = features::extract(channels, &self.config)?;

        // Liveness on channel 0: causal band-pass (incrementally computable,
        // unlike the zero-phase filtfilt) -> 16 kHz -> fixed-width z-scored
        // window.
        let filtered = {
            let _s = ht_obs::span("wake.denoise");
            self.preprocessor.filter_causal(&channels[0])
        };
        let x16k = to_16k_from_48k(&filtered)?;
        let prepared = prepare_decimated(&x16k, self.liveness.input_len())?;

        Ok((self.infer_assembled(&fv, &prepared), fv))
    }

    /// Runs the trained models over already-assembled evidence: the
    /// fixed-width orientation feature vector and the prepared liveness
    /// input. This is the O(models) tail of the decision path — the
    /// streaming engine calls it at finalize time with evidence it
    /// accumulated frame by frame, and `decide_batch` calls it with the
    /// same bits computed in one pass, so the two paths cannot diverge
    /// after assembly.
    pub fn infer_assembled(&self, features: &[f64], liveness_input: &[f64]) -> WakeDecision {
        let (live_probability, live) = {
            let _s = ht_obs::span("wake.liveness_infer");
            // One forward pass: `predict` is defined as `proba >= 0.5`, so
            // deriving the class from the probability is bit-identical and
            // halves the conv-net cost of every wake decision.
            let p = self
                .liveness
                .live_probability_mode(liveness_input, self.quant);
            (p, usize::from(p >= 0.5) == LIVE_HUMAN)
        };
        let (facing_score, facing) = {
            let _s = ht_obs::span("wake.orientation_infer");
            self.orientation.score_and_facing_mode(features, self.quant)
        };
        WakeDecision {
            live,
            live_probability,
            facing,
            facing_score,
        }
    }

    /// The preprocessor, for the streaming engine's causal liveness branch.
    pub(crate) fn preprocessor(&self) -> &Preprocessor {
        &self.preprocessor
    }

    /// The liveness model's fixed input width in 16 kHz samples.
    pub(crate) fn liveness_input_len(&self) -> usize {
        self.liveness.input_len()
    }

    /// Rejects a channel count whose feature width differs from the width
    /// the orientation model was trained on. The width is a pure function
    /// of the channel count; a capture from a different geometry must be
    /// rejected up front, not fed to the classifier (whose distance/kernel
    /// code would index out of the trained width).
    pub(crate) fn validate_feature_width(&self, n_channels: usize) -> Result<(), HeadTalkError> {
        let expected = self.orientation.input_dim();
        let width = features::feature_width(n_channels, &self.config);
        if width != expected {
            return Err(HeadTalkError::InvalidInput(format!(
                "capture has {n_channels} channel(s) giving feature width {width}, but the \
                 orientation model was trained on feature width {expected}"
            )));
        }
        Ok(())
    }

    /// Extracts the orientation feature vector from a raw capture (used by
    /// the dataset builders so training and inference share one code path —
    /// this is exactly the feature view `decide_batch` scores).
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction errors.
    pub fn orientation_features(
        config: &PipelineConfig,
        channels: &[Vec<f64>],
    ) -> Result<Vec<f64>, HeadTalkError> {
        features::extract(channels, config)
    }

    /// Prepares the liveness input from a raw capture (shared by training
    /// and inference): causal band-pass on channel 0, decimate to 16 kHz,
    /// crop/pad and z-score.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing errors; rejects empty or silent captures.
    pub fn liveness_input(
        config: &PipelineConfig,
        channels: &[Vec<f64>],
    ) -> Result<Vec<f64>, HeadTalkError> {
        if channels.is_empty() || channels[0].is_empty() {
            return Err(HeadTalkError::InvalidInput(
                "capture must have at least one non-empty channel".into(),
            ));
        }
        let pre = Preprocessor::new(config)?;
        let filtered = {
            let _s = ht_obs::span("wake.denoise");
            pre.filter_causal(&channels[0])
        };
        let x16k = to_16k_from_48k(&filtered)?;
        prepare_decimated(&x16k, config.liveness_input_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orientation::ModelKind;
    use ht_dsp::rng::{SeedableRng, StdRng};
    use ht_ml::dataset::Dataset;

    /// Builds a tiny but end-to-end-valid pipeline: the models are trained
    /// on trivially separable synthetic data just to exercise the plumbing.
    fn tiny_pipeline() -> HeadTalk {
        let config = PipelineConfig {
            liveness_input_len: 512,
            ..PipelineConfig::default()
        };

        // Liveness training data at the prepared-input width.
        let mut rng = StdRng::seed_from_u64(1);
        let mut live_ds = Dataset::new(512);
        for _ in 0..10 {
            let mut fast: Vec<f64> = (0..512).map(|t| (t as f64 * 2.5).sin()).collect();
            for v in fast.iter_mut() {
                *v += 0.05 * ht_dsp::rng::gaussian(&mut rng);
            }
            ht_dsp::signal::normalize_zscore(&mut fast);
            live_ds.push(fast, 1).unwrap();
            let mut slow: Vec<f64> = (0..512).map(|t| (t as f64 * 0.05).sin()).collect();
            for v in slow.iter_mut() {
                *v += 0.05 * ht_dsp::rng::gaussian(&mut rng);
            }
            ht_dsp::signal::normalize_zscore(&mut slow);
            live_ds.push(slow, 0).unwrap();
        }
        let liveness = LivenessDetector::fit(&live_ds, 8, 2).unwrap();

        // Orientation training data at the real feature width for 2 chans.
        let width = crate::features::feature_width(2, &config);
        let mut orient_ds = Dataset::new(width);
        for i in 0..10 {
            let mut f = vec![0.0; width];
            f[0] = 1.0 + i as f64 * 0.01;
            orient_ds.push(f, 1).unwrap();
            let mut f = vec![0.0; width];
            f[0] = -1.0 - i as f64 * 0.01;
            orient_ds.push(f, 0).unwrap();
        }
        let orientation = OrientationDetector::fit(&orient_ds, ModelKind::Knn, 3).unwrap();

        HeadTalk::new(config, liveness, orientation).unwrap()
    }

    #[test]
    fn pipeline_produces_a_complete_decision() {
        let ht = tiny_pipeline();
        let mut rng = StdRng::seed_from_u64(4);
        let ch0 = ht_dsp::rng::white_noise(&mut rng, 4800);
        let ch1 = ht_dsp::signal::fractional_delay(&ch0, 2.0, 16);
        let d = ht.process_wake(&[ch0, ch1]).unwrap();
        assert!((0.0..=1.0).contains(&d.live_probability));
        assert!(d.facing_score.is_finite());
        assert_eq!(d.accepted(), d.live && d.facing);
    }

    #[test]
    fn empty_capture_is_rejected() {
        let ht = tiny_pipeline();
        assert!(ht.process_wake(&[]).is_err());
        assert!(ht.process_wake(&[vec![], vec![]]).is_err());
    }

    #[test]
    fn channel_count_mismatch_is_rejected_up_front() {
        let ht = tiny_pipeline(); // trained at the 2-channel feature width
        let mut rng = StdRng::seed_from_u64(8);
        let three: Vec<Vec<f64>> = (0..3)
            .map(|_| ht_dsp::rng::white_noise(&mut rng, 4800))
            .collect();
        let err = ht.process_wake(&three).unwrap_err();
        let msg = err.to_string();
        // Both widths are named so the mismatch is debuggable.
        let expected = crate::features::feature_width(2, ht.config());
        let got = crate::features::feature_width(3, ht.config());
        assert!(msg.contains("feature width"), "{msg}");
        assert!(msg.contains(&expected.to_string()), "{msg}");
        assert!(msg.contains(&got.to_string()), "{msg}");
        // A single-channel capture fails the same structured way.
        let one = vec![ht_dsp::rng::white_noise(&mut rng, 4800)];
        assert!(ht.process_wake(&one).is_err());
    }

    #[test]
    fn pathologically_short_capture_never_panics() {
        let ht = tiny_pipeline();
        let mut rng = StdRng::seed_from_u64(9);
        for len in [1usize, 3, 8, 37, 200] {
            let ch0 = ht_dsp::rng::white_noise(&mut rng, len);
            let ch1 = ch0.clone();
            // Ok or a structured error are both acceptable; a panic is the
            // bug this test guards against.
            let _ = ht.process_wake(&[ch0, ch1]);
        }
    }

    #[test]
    fn decision_requires_both_conditions() {
        let both = WakeDecision {
            live: true,
            live_probability: 0.9,
            facing: true,
            facing_score: 1.0,
        };
        assert!(both.accepted());
        for (live, facing) in [(true, false), (false, true), (false, false)] {
            let d = WakeDecision {
                live,
                facing,
                live_probability: 0.5,
                facing_score: 0.0,
            };
            assert!(!d.accepted());
        }
    }

    #[test]
    fn int8_mode_requires_calibration_then_tracks_reference() {
        let mut ht = tiny_pipeline();
        // Int8 cannot be selected before scales exist.
        assert!(ht.set_quant_mode(QuantMode::Int8).is_err());
        assert_eq!(ht.quant_mode(), QuantMode::Reference);

        let mut rng = StdRng::seed_from_u64(21);
        let captures: Vec<Vec<Vec<f64>>> = (0..4)
            .map(|_| {
                let ch0 = ht_dsp::rng::white_noise(&mut rng, 4800);
                let ch1 = ht_dsp::signal::fractional_delay(&ch0, 2.0, 16);
                vec![ch0, ch1]
            })
            .collect();
        let reference: Vec<WakeDecision> = captures
            .iter()
            .map(|c| ht.process_wake(c).unwrap())
            .collect();

        ht.enable_int8(&captures).unwrap();
        assert_eq!(ht.quant_mode(), QuantMode::Int8);
        for (c, r) in captures.iter().zip(&reference) {
            let q = ht.process_wake(c).unwrap();
            assert!(
                (q.live_probability - r.live_probability).abs() < 0.05,
                "int8 {} vs reference {}",
                q.live_probability,
                r.live_probability
            );
            assert_eq!(q.live, r.live, "liveness verdict agrees");
            // The kNN orientation model has no int8 backend, so facing is
            // the identical f64 path either way.
            assert_eq!(q.facing_score.to_bits(), r.facing_score.to_bits());
            assert_eq!(q.facing, r.facing);
        }

        // Switching back reproduces the pre-calibration reference bits:
        // calibration never perturbs the f64 models.
        ht.set_quant_mode(QuantMode::Reference).unwrap();
        for (c, r) in captures.iter().zip(&reference) {
            let q = ht.process_wake(c).unwrap();
            assert_eq!(
                q.live_probability.to_bits(),
                r.live_probability.to_bits(),
                "reference stays byte-stable after calibration"
            );
        }
    }

    #[test]
    fn enable_int8_rejects_an_empty_calibration_set() {
        let mut ht = tiny_pipeline();
        assert!(ht.enable_int8(&[]).is_err());
        assert_eq!(ht.quant_mode(), QuantMode::Reference, "mode unchanged");
    }

    #[test]
    fn helper_extractors_share_the_inference_path() {
        let config = PipelineConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        let ch0 = ht_dsp::rng::white_noise(&mut rng, 4800);
        let ch1 = ht_dsp::signal::fractional_delay(&ch0, 1.0, 16);
        let capture = vec![ch0, ch1];
        let fv = HeadTalk::orientation_features(&config, &capture).unwrap();
        assert_eq!(fv.len(), crate::features::feature_width(2, &config));
        let li = HeadTalk::liveness_input(&config, &capture).unwrap();
        assert_eq!(li.len(), config.liveness_input_len);
    }
}
