//! The privacy-control state machine of Fig. 1.
//!
//! A VA runs in one of three modes:
//!
//! * **Normal** — the stock behaviour: any detected wake word opens a cloud
//!   session;
//! * **Mute** — the physical mute button: microphones disabled, nothing is
//!   ever forwarded (and the VA loses its voice functionality entirely);
//! * **HeadTalk** — the paper's contribution: a wake word is accepted only
//!   when spoken by a live human facing the device. A rejected wake word
//!   leaves the device *soft-muted*: the microphones stay local, but device
//!   functions (music, news) keep running. Once a session is accepted, the
//!   user "does not need to continuously face the device for the remaining
//!   session" (§I).

/// The privacy mode the VA is operating in (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VaMode {
    /// Stock always-listening behaviour.
    #[default]
    Normal,
    /// Physical mute: microphones off.
    Mute,
    /// HeadTalk privacy control active.
    HeadTalk,
}

/// Events driving the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VaEvent {
    /// The local wake-word engine fired; `live` and `facing` are the
    /// HeadTalk pipeline's verdicts for this utterance.
    WakeDetected {
        /// Liveness verdict (human vs. mechanical speaker).
        live: bool,
        /// Orientation verdict (facing vs. not).
        facing: bool,
    },
    /// Voice command "Alexa, enter HeadTalk mode".
    EnterHeadTalkMode,
    /// Leave HeadTalk mode back to normal operation.
    ExitHeadTalkMode,
    /// Physical mute button pressed.
    MuteButton,
    /// Physical mute button pressed again (unmute).
    UnmuteButton,
    /// The active cloud session ended (command completed / timeout).
    SessionEnded,
}

/// What the VA does in response to an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VaResponse {
    /// Audio following the wake word is recorded and forwarded to the cloud.
    SessionOpened,
    /// Wake word ignored; microphones stay local (soft mute). Device
    /// functions (music, news) keep running.
    SoftMuted,
    /// Microphones are physically off; nothing was processed.
    HardMuted,
    /// Mode changed (or no session-related action).
    ModeChanged,
    /// Session closed.
    SessionClosed,
}

impl VaResponse {
    /// `true` when this response means audio left the device.
    pub fn audio_forwarded_to_cloud(self) -> bool {
        self == VaResponse::SessionOpened
    }
}

/// The privacy-control state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrivacyController {
    mode: VaMode,
    session_active: bool,
}

impl PrivacyController {
    /// A controller in [`VaMode::Normal`] with no active session.
    pub fn new() -> PrivacyController {
        PrivacyController::default()
    }

    /// Current mode.
    pub fn mode(&self) -> VaMode {
        self.mode
    }

    /// `true` while an accepted session is open (subsequent audio is
    /// forwarded without re-checking orientation).
    pub fn session_active(&self) -> bool {
        self.session_active
    }

    /// Processes one event and returns the VA's externally visible action.
    pub fn handle(&mut self, event: VaEvent) -> VaResponse {
        match event {
            VaEvent::MuteButton => {
                self.mode = VaMode::Mute;
                self.session_active = false;
                VaResponse::ModeChanged
            }
            VaEvent::UnmuteButton => {
                if self.mode == VaMode::Mute {
                    self.mode = VaMode::Normal;
                }
                VaResponse::ModeChanged
            }
            VaEvent::EnterHeadTalkMode => {
                if self.mode != VaMode::Mute {
                    self.mode = VaMode::HeadTalk;
                }
                VaResponse::ModeChanged
            }
            VaEvent::ExitHeadTalkMode => {
                if self.mode == VaMode::HeadTalk {
                    self.mode = VaMode::Normal;
                }
                VaResponse::ModeChanged
            }
            VaEvent::SessionEnded => {
                self.session_active = false;
                VaResponse::SessionClosed
            }
            VaEvent::WakeDetected { live, facing } => match self.mode {
                VaMode::Mute => VaResponse::HardMuted,
                VaMode::Normal => {
                    self.session_active = true;
                    VaResponse::SessionOpened
                }
                VaMode::HeadTalk => {
                    if self.session_active {
                        // Mid-session audio is already being forwarded; the
                        // user need not keep facing the device (§I).
                        return VaResponse::SessionOpened;
                    }
                    if live && facing {
                        self.session_active = true;
                        VaResponse::SessionOpened
                    } else {
                        VaResponse::SoftMuted
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wake(live: bool, facing: bool) -> VaEvent {
        VaEvent::WakeDetected { live, facing }
    }

    #[test]
    fn normal_mode_accepts_everything() {
        let mut va = PrivacyController::new();
        assert_eq!(va.mode(), VaMode::Normal);
        let r = va.handle(wake(false, false)); // even a replay!
        assert!(r.audio_forwarded_to_cloud());
    }

    #[test]
    fn headtalk_mode_requires_live_and_facing() {
        let mut va = PrivacyController::new();
        va.handle(VaEvent::EnterHeadTalkMode);
        assert_eq!(va.handle(wake(false, true)), VaResponse::SoftMuted);
        assert_eq!(va.handle(wake(true, false)), VaResponse::SoftMuted);
        assert_eq!(va.handle(wake(false, false)), VaResponse::SoftMuted);
        assert!(!va.session_active());
        assert_eq!(va.handle(wake(true, true)), VaResponse::SessionOpened);
        assert!(va.session_active());
    }

    #[test]
    fn session_persists_without_facing() {
        // §I: once accepted, the user does not need to keep facing the VA.
        let mut va = PrivacyController::new();
        va.handle(VaEvent::EnterHeadTalkMode);
        va.handle(wake(true, true));
        let r = va.handle(wake(true, false));
        assert!(r.audio_forwarded_to_cloud());
        va.handle(VaEvent::SessionEnded);
        assert!(!va.session_active());
        assert_eq!(va.handle(wake(true, false)), VaResponse::SoftMuted);
    }

    #[test]
    fn hard_mute_blocks_everything_and_clears_sessions() {
        let mut va = PrivacyController::new();
        va.handle(wake(true, true));
        assert!(va.session_active());
        va.handle(VaEvent::MuteButton);
        assert_eq!(va.mode(), VaMode::Mute);
        assert!(!va.session_active());
        assert_eq!(va.handle(wake(true, true)), VaResponse::HardMuted);
        // HeadTalk cannot be entered while hard-muted.
        va.handle(VaEvent::EnterHeadTalkMode);
        assert_eq!(va.mode(), VaMode::Mute);
        va.handle(VaEvent::UnmuteButton);
        assert_eq!(va.mode(), VaMode::Normal);
    }

    #[test]
    fn mode_transitions_round_trip() {
        let mut va = PrivacyController::new();
        va.handle(VaEvent::EnterHeadTalkMode);
        assert_eq!(va.mode(), VaMode::HeadTalk);
        va.handle(VaEvent::ExitHeadTalkMode);
        assert_eq!(va.mode(), VaMode::Normal);
        // Exit is a no-op outside HeadTalk mode.
        va.handle(VaEvent::ExitHeadTalkMode);
        assert_eq!(va.mode(), VaMode::Normal);
    }

    #[test]
    fn soft_mute_keeps_device_functional() {
        // Soft mute is observable as "no cloud forwarding" rather than
        // HardMuted: the device itself keeps running.
        let mut va = PrivacyController::new();
        va.handle(VaEvent::EnterHeadTalkMode);
        let r = va.handle(wake(true, false));
        assert_eq!(r, VaResponse::SoftMuted);
        assert_ne!(r, VaResponse::HardMuted);
        assert!(!r.audio_forwarded_to_cloud());
    }
}
