//! Liveness detection: human vs. mechanical speaker (§III-A).
//!
//! The paper fine-tunes wav2vec2 on ASVspoof 2019 and then incrementally
//! adapts it to its own Sony-speaker replays. The reproduction's
//! "wav2vec2-mini" network (see [`ht_ml::nn`]) keeps the same input
//! contract — raw 16 kHz audio, zero mean / unit variance — and the same
//! adaptation protocol ([`LivenessDetector::adapt`]).

use crate::config::PipelineConfig;
use crate::HeadTalkError;
use ht_dsp::resample::to_16k_from_48k;
use ht_dsp::QuantMode;
use ht_ml::dataset::Dataset;
use ht_ml::nn::{NeuralNet, NeuralNetConfig};
use ht_ml::quant::QuantizedNet;
use ht_ml::Classifier;

/// Labels used by the liveness task.
pub const LIVE_HUMAN: usize = 1;
/// Label for loudspeaker-replayed audio.
pub const REPLAYED: usize = 0;

/// Prepares a 48 kHz capture channel for the liveness network: downsample
/// to 16 kHz, center-crop or zero-pad to `target_len`, then normalize to
/// zero mean and unit variance (the wav2vec2 input contract).
///
/// # Errors
///
/// Returns [`HeadTalkError::InvalidInput`] for empty audio, and for silent
/// or DC-only audio: after resampling and cropping such a capture has
/// (numerically) zero variance, so z-scoring would hand the network an
/// all-zero — or rounding-noise-amplified — input instead of an utterance.
/// A capture with no AC energy is not a classifiable utterance; callers get
/// an error rather than a garbage verdict.
pub fn prepare_input(audio_48k: &[f64], target_len: usize) -> Result<Vec<f64>, HeadTalkError> {
    if audio_48k.is_empty() {
        return Err(HeadTalkError::InvalidInput("empty audio".into()));
    }
    let x16k = to_16k_from_48k(audio_48k)?;
    prepare_decimated(&x16k, target_len)
}

/// [`prepare_decimated_into`] returning a fresh vector.
///
/// # Errors
///
/// As for [`prepare_decimated_into`].
pub fn prepare_decimated(x16k: &[f64], target_len: usize) -> Result<Vec<f64>, HeadTalkError> {
    let mut out = Vec::with_capacity(target_len);
    prepare_decimated_into(x16k, target_len, &mut out)?;
    Ok(out)
}

/// The post-decimation core of [`prepare_input`]: center-crop or zero-pad
/// already-16 kHz audio to `target_len` into `out` (cleared first), guard
/// against zero variance, and z-score in place. Allocation-free once `out`
/// has capacity — the streaming finalize path calls this on a reused
/// scratch buffer with the decimated samples its stream accumulated, and
/// produces the very bits the batch path produces.
///
/// # Errors
///
/// Returns [`HeadTalkError::InvalidInput`] for silent or DC-only audio:
/// after cropping, such a capture has (numerically) zero variance, so
/// z-scoring would hand the network an all-zero — or
/// rounding-noise-amplified — input instead of an utterance.
pub fn prepare_decimated_into(
    x16k: &[f64],
    target_len: usize,
    out: &mut Vec<f64>,
) -> Result<(), HeadTalkError> {
    let _span = ht_obs::span("wake.liveness_prepare");
    out.clear();
    match x16k.len().cmp(&target_len) {
        std::cmp::Ordering::Greater => {
            let start = (x16k.len() - target_len) / 2;
            out.extend_from_slice(&x16k[start..start + target_len]);
        }
        std::cmp::Ordering::Less => {
            out.extend_from_slice(x16k);
            out.resize(target_len, 0.0);
        }
        std::cmp::Ordering::Equal => out.extend_from_slice(x16k),
    }
    // Zero-variance guard, relative to the DC level so a constant capture
    // whose cropped window differs from its mean only by float rounding is
    // still caught (an exact `== 0.0` would miss it).
    let mean = ht_dsp::stats::mean(out);
    let var = ht_dsp::stats::variance(out);
    if var <= 1e-20 * (1.0 + mean * mean) {
        return Err(HeadTalkError::InvalidInput(format!(
            "zero-variance liveness input after resampling (mean {mean:.3e}): \
             silent or DC-only audio is not a classifiable utterance"
        )));
    }
    ht_dsp::signal::normalize_zscore(out);
    Ok(())
}

/// A trained liveness detector.
#[derive(Debug, Clone)]
pub struct LivenessDetector {
    net: NeuralNet,
    input_len: usize,
    /// Int8 backend, built offline by [`LivenessDetector::calibrate_int8`].
    /// `None` until calibrated; the f64 net above stays the byte-stable
    /// reference either way.
    quantized: Option<QuantizedNet>,
}

impl LivenessDetector {
    /// Trains on a dataset of *prepared* inputs (see [`prepare_input`])
    /// labeled [`LIVE_HUMAN`] / [`REPLAYED`].
    ///
    /// # Errors
    ///
    /// Propagates network-training errors.
    pub fn fit(ds: &Dataset, epochs: usize, seed: u64) -> Result<LivenessDetector, HeadTalkError> {
        let mut config = NeuralNetConfig::wav2vec2_mini();
        config.epochs = epochs;
        config.seed = seed;
        Self::fit_with_config(ds, &config)
    }

    /// Trains with an explicit network configuration (smaller encoders for
    /// short inputs, ablations, …).
    ///
    /// # Errors
    ///
    /// Propagates network-training errors.
    pub fn fit_with_config(
        ds: &Dataset,
        config: &NeuralNetConfig,
    ) -> Result<LivenessDetector, HeadTalkError> {
        let net = NeuralNet::fit(ds, config)?;
        Ok(LivenessDetector {
            net,
            input_len: ds.dim(),
            quantized: None,
        })
    }

    /// The incremental adaptation protocol of §IV-A1: continue training on a
    /// (small) new labeled dataset for a few epochs. The paper recovers from
    /// 84.87 % to 98.68 % accuracy with 20 % new data and 10 epochs.
    ///
    /// # Errors
    ///
    /// Propagates network errors (e.g. input-length mismatch).
    pub fn adapt(&mut self, new_data: &Dataset, epochs: usize) -> Result<(), HeadTalkError> {
        self.net.fit_more(new_data, epochs)?;
        // The weights moved: any calibrated scales are stale. Drop the int8
        // backend; callers recalibrate when they re-enable it.
        self.quantized = None;
        Ok(())
    }

    /// Builds the int8 inference backend from *prepared* calibration inputs
    /// (the same representation the detector scores — see
    /// [`prepare_input`]). The f64 network is untouched.
    ///
    /// # Errors
    ///
    /// Propagates [`HeadTalkError::Ml`] for an empty calibration set or
    /// rows of the wrong width.
    pub fn calibrate_int8(&mut self, calib: &[&[f64]]) -> Result<(), HeadTalkError> {
        self.quantized = Some(QuantizedNet::from_net(&self.net, calib)?);
        Ok(())
    }

    /// `true` once [`calibrate_int8`](LivenessDetector::calibrate_int8) has
    /// built the quantized backend.
    pub fn has_int8(&self) -> bool {
        self.quantized.is_some()
    }

    /// Probability that a prepared input is live human speech.
    pub fn live_probability(&self, prepared: &[f64]) -> f64 {
        self.net.predict_proba(prepared)
    }

    /// Mode-dispatched [`live_probability`](LivenessDetector::live_probability):
    /// [`QuantMode::Int8`] runs the quantized backend when calibrated and
    /// falls back to the byte-stable f64 reference otherwise.
    pub fn live_probability_mode(&self, prepared: &[f64], mode: QuantMode) -> f64 {
        match (&self.quantized, mode) {
            (Some(q), QuantMode::Int8) => q.predict_proba(prepared),
            _ => self.net.predict_proba(prepared),
        }
    }

    /// Classifies a raw 48 kHz capture channel.
    ///
    /// # Errors
    ///
    /// Returns [`HeadTalkError::InvalidInput`] for empty audio.
    pub fn is_live_48k(
        &self,
        audio_48k: &[f64],
        _config: &PipelineConfig,
    ) -> Result<bool, HeadTalkError> {
        let x = prepare_input(audio_48k, self.input_len)?;
        Ok(self.net.predict(&x) == LIVE_HUMAN)
    }

    /// The expected prepared-input length.
    pub fn input_len(&self) -> usize {
        self.input_len
    }
}

impl Classifier for LivenessDetector {
    fn predict(&self, x: &[f64]) -> usize {
        self.net.predict(x)
    }

    fn decision_score(&self, x: &[f64]) -> f64 {
        self.net.decision_score(x)
    }
}

/// Per-frame liveness evidence for the streaming early-exit gate: the
/// frame's high/low band ratio — the paper's HLBR signature (Fig. 3).
/// Loudspeaker replays attenuate the 500–4000 Hz band relative to
/// 100–400 Hz, so persistently low values are replay-like. This is the
/// cheap incremental stand-in for the trained detector, which still issues
/// the final liveness verdict over the whole capture at stream
/// finalization.
pub fn frame_live_evidence(frame: &ht_stream::FrameFeatures) -> f64 {
    frame.band_ratio()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::rng::StdRng;
    use ht_dsp::rng::{Rng, SeedableRng};
    use ht_ml::nn::{ConvSpec, NeuralNetConfig};

    /// A miniature encoder that fits the short unit-test inputs (the real
    /// `wav2vec2_mini` stack needs ≥ ~1000-sample inputs).
    fn tiny_fit(ds: &Dataset, epochs: usize, seed: u64) -> LivenessDetector {
        let config = NeuralNetConfig {
            conv: vec![
                ConvSpec {
                    out_channels: 4,
                    kernel: 8,
                    stride: 4,
                },
                ConvSpec {
                    out_channels: 8,
                    kernel: 4,
                    stride: 2,
                },
            ],
            hidden: vec![8],
            learning_rate: 5e-3,
            epochs,
            batch: 8,
            seed,
        };
        LivenessDetector::fit_with_config(ds, &config).unwrap()
    }

    /// Miniature live-vs-replayed corpus: "live" has a high-frequency
    /// component, "replayed" is low-passed — the Fig. 3 signature scaled to
    /// a unit test.
    fn corpus(n_per: usize, seed: u64, len: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(len);
        for _ in 0..n_per {
            let live: Vec<f64> = (0..len)
                .map(|t| {
                    (t as f64 * 0.3).sin()
                        + 0.5 * (t as f64 * 2.8).sin()
                        + 0.1 * ht_dsp::rng::gaussian(&mut rng)
                })
                .collect();
            let mut live = live;
            ht_dsp::signal::normalize_zscore(&mut live);
            ds.push(live, LIVE_HUMAN).unwrap();
            let phase: f64 = rng.gen::<f64>() * 6.3;
            let replayed: Vec<f64> = (0..len)
                .map(|t| (t as f64 * 0.3 + phase).sin() + 0.1 * ht_dsp::rng::gaussian(&mut rng))
                .collect();
            let mut replayed = replayed;
            ht_dsp::signal::normalize_zscore(&mut replayed);
            ds.push(replayed, REPLAYED).unwrap();
        }
        ds
    }

    #[test]
    fn prepare_input_shapes_and_normalizes() {
        let audio = ht_dsp::signal::tone(440.0, 48_000.0, 48_000, 0.3);
        let x = prepare_input(&audio, 8_000).unwrap();
        assert_eq!(x.len(), 8_000);
        let mean = ht_dsp::stats::mean(&x);
        let var = ht_dsp::stats::variance(&x);
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-6);
        // Short audio is padded.
        let short = ht_dsp::signal::tone(440.0, 48_000.0, 6_000, 0.3);
        assert_eq!(prepare_input(&short, 8_000).unwrap().len(), 8_000);
        assert!(prepare_input(&[], 8_000).is_err());
    }

    #[test]
    fn silent_and_dc_only_audio_is_rejected() {
        // A soft-muted microphone delivers exact zeros.
        let err = prepare_input(&vec![0.0; 48_000], 8_000).unwrap_err();
        assert!(err.to_string().contains("zero-variance"), "{err}");
        // A DC offset survives the decimation FIR with rounding-level —
        // not exactly zero — variance; the relative threshold catches it.
        let err = prepare_input(&vec![0.75; 48_000], 8_000).unwrap_err();
        assert!(err.to_string().contains("zero-variance"), "{err}");
    }

    #[test]
    fn detector_separates_live_from_replayed() {
        let train = corpus(25, 1, 256);
        let test = corpus(25, 2, 256);
        let det = tiny_fit(&train, 25, 3);
        let preds = det.predict_batch(test.features());
        let acc = ht_ml::metrics::accuracy(test.labels(), &preds);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn probabilities_are_bounded() {
        let train = corpus(10, 4, 256);
        let det = tiny_fit(&train, 5, 5);
        for i in 0..train.len() {
            let p = det.live_probability(train.sample(i).0);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn adapt_improves_on_shifted_data() {
        let train = corpus(20, 6, 256);
        let mut det = tiny_fit(&train, 15, 7);
        // Shifted corpus: different noise level.
        let shifted = |seed| {
            let base = corpus(20, seed, 256);
            let feats: Vec<Vec<f64>> = base
                .features()
                .iter()
                .map(|f| {
                    let mut v: Vec<f64> = f.iter().map(|x| x * 0.3).collect();
                    ht_dsp::signal::normalize_zscore(&mut v);
                    v
                })
                .collect();
            Dataset::from_parts(feats, base.labels().to_vec()).unwrap()
        };
        let new_train = shifted(8);
        let new_test = shifted(9);
        let before =
            ht_ml::metrics::accuracy(new_test.labels(), &det.predict_batch(new_test.features()));
        det.adapt(&new_train, 10).unwrap();
        let after =
            ht_ml::metrics::accuracy(new_test.labels(), &det.predict_batch(new_test.features()));
        assert!(after >= before - 0.05, "before {before}, after {after}");
    }

    #[test]
    fn input_len_is_remembered() {
        let train = corpus(5, 10, 128);
        let det = tiny_fit(&train, 2, 11);
        assert_eq!(det.input_len(), 128);
    }
}
