//! Error type for the HeadTalk pipeline.

use std::error::Error;
use std::fmt;

/// Error returned by fallible HeadTalk routines.
#[derive(Debug, Clone, PartialEq)]
pub enum HeadTalkError {
    /// A DSP primitive failed.
    Dsp(ht_dsp::DspError),
    /// A machine-learning component failed.
    Ml(ht_ml::MlError),
    /// Invalid pipeline input (wrong channel count, empty audio, …).
    InvalidInput(String),
    /// A component was used before it was trained.
    NotTrained(&'static str),
    /// The streaming layer rejected an ingest (mid-stream geometry change,
    /// ragged chunk, bad frame/hop setup).
    Stream(ht_stream::StreamError),
}

impl fmt::Display for HeadTalkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeadTalkError::Dsp(e) => write!(f, "dsp error: {e}"),
            HeadTalkError::Ml(e) => write!(f, "ml error: {e}"),
            HeadTalkError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            HeadTalkError::NotTrained(c) => write!(f, "component not trained: {c}"),
            HeadTalkError::Stream(e) => write!(f, "stream error: {e}"),
        }
    }
}

impl Error for HeadTalkError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HeadTalkError::Dsp(e) => Some(e),
            HeadTalkError::Ml(e) => Some(e),
            HeadTalkError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ht_dsp::DspError> for HeadTalkError {
    fn from(e: ht_dsp::DspError) -> Self {
        HeadTalkError::Dsp(e)
    }
}

impl From<ht_ml::MlError> for HeadTalkError {
    fn from(e: ht_ml::MlError) -> Self {
        HeadTalkError::Ml(e)
    }
}

impl From<ht_stream::StreamError> for HeadTalkError {
    fn from(e: ht_stream::StreamError) -> Self {
        HeadTalkError::Stream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e: HeadTalkError = ht_dsp::DspError::param("x", "bad").into();
        assert!(e.to_string().contains("dsp error"));
        assert!(e.source().is_some());
        let e = HeadTalkError::NotTrained("liveness");
        assert!(e.to_string().contains("liveness"));
        assert!(e.source().is_none());
        let e: HeadTalkError = ht_stream::StreamError::ChannelCountChanged {
            expected: 4,
            got: 2,
        }
        .into();
        assert!(e.to_string().contains("stream error"));
        assert!(e.source().is_some());
    }
}
