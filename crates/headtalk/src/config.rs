//! Pipeline configuration.

use ht_acoustics::array::Device;

/// End-to-end pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Input sample rate in Hz (the prototype devices record at 48 kHz).
    pub sample_rate: f64,
    /// Pre-filter low corner in Hz (paper: 100 Hz).
    pub preprocess_lo_hz: f64,
    /// Pre-filter high corner in Hz (paper: 16 000 Hz).
    pub preprocess_hi_hz: f64,
    /// One-sided SRP/GCC lag window in samples (device dependent: ±12 for
    /// D1, ±13 for D2, ±10 for D3; §III-B3).
    pub max_lag: usize,
    /// Number of top SRP peaks kept as features (paper: 3).
    pub srp_peaks: usize,
    /// Number of low-band chunks for the directivity features (paper: 20).
    pub low_band_chunks: usize,
    /// Liveness input length in samples at 16 kHz (utterances are padded or
    /// center-cropped to this length).
    pub liveness_input_len: usize,
}

impl PipelineConfig {
    /// Configuration for one of the three prototype devices, matching the
    /// paper's per-device lag windows.
    pub fn for_device(device: Device) -> PipelineConfig {
        PipelineConfig {
            max_lag: device.srp_max_lag(),
            ..PipelineConfig::default()
        }
    }

    /// The analysis frame geometry `(frame_len, hop)` this configuration
    /// implies: 20 ms frames advancing by 10 ms (960/480 samples at the
    /// paper's 48 kHz), the classic speech-analysis framing. The streaming
    /// engine and the batch feature extractor both derive their framing
    /// from here, which is what makes the incremental finalize path
    /// bit-identical to [`HeadTalk::decide_batch`](crate::HeadTalk).
    pub fn analysis_frame_geometry(&self) -> (usize, usize) {
        let hop = (self.sample_rate / 100.0).round().max(1.0) as usize;
        (2 * hop, hop)
    }

    /// The directivity accumulation segment length in samples: the next
    /// power of two above half a second of audio (32 768 at the paper's
    /// 48 kHz, ≈683 ms — ≈1.5 Hz bins), long enough to resolve the voice's
    /// harmonic structure inside each 15 Hz low-band chunk. Shared by the
    /// batch extractor and the streaming engine so their Welch segment
    /// boundaries — and therefore their feature bits — coincide.
    pub fn directivity_segment_len(&self) -> usize {
        let half_second = (self.sample_rate * 0.5).ceil().max(1.0) as usize;
        half_second.next_power_of_two()
    }
}

impl Default for PipelineConfig {
    /// The paper's default setup: device D2 at 48 kHz.
    fn default() -> Self {
        PipelineConfig {
            sample_rate: 48_000.0,
            preprocess_lo_hz: 100.0,
            preprocess_hi_hz: 16_000.0,
            max_lag: Device::D2.srp_max_lag(),
            srp_peaks: 3,
            low_band_chunks: 20,
            liveness_input_len: 8_000, // 0.5 s at 16 kHz
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let c = PipelineConfig::default();
        assert_eq!(c.sample_rate, 48_000.0);
        assert_eq!(c.preprocess_lo_hz, 100.0);
        assert_eq!(c.preprocess_hi_hz, 16_000.0);
        assert_eq!(c.max_lag, 13); // D2
        assert_eq!(c.srp_peaks, 3);
        assert_eq!(c.low_band_chunks, 20);
    }

    #[test]
    fn per_device_lag_windows() {
        assert_eq!(PipelineConfig::for_device(Device::D1).max_lag, 12);
        assert_eq!(PipelineConfig::for_device(Device::D2).max_lag, 13);
        assert_eq!(PipelineConfig::for_device(Device::D3).max_lag, 10);
    }
}
