//! User-study analysis (§V): the SUS (System Usability Scale) scorer, the
//! encoded Table V survey responses, and the paper's reported aggregates.
//!
//! A human-subjects study cannot be simulated honestly, so this module
//! reproduces the *analysis*: the SUS scoring rule (Brooke 1996), the exact
//! response tallies the paper reports in Table V (from which the takeaway
//! percentages are recomputed), and the reported SUS confidence intervals.

/// One participant's answers to the 10 SUS items, each in `1..=5`
/// (1 = strong disagreement, 5 = strong agreement).
pub type SusResponse = [u8; 10];

/// Computes the SUS score (0–100) for one response.
///
/// Odd-numbered items (1-indexed: 1, 3, 5, 7, 9 — the positively-phrased
/// ones) contribute `answer − 1`; even items contribute `5 − answer`; the
/// sum is scaled by 2.5 (Brooke 1996).
///
/// # Panics
///
/// Panics if any answer is outside `1..=5`.
pub fn sus_score(response: &SusResponse) -> f64 {
    let mut total = 0i32;
    for (i, &a) in response.iter().enumerate() {
        assert!((1..=5).contains(&a), "SUS answers must be in 1..=5");
        let a = a as i32;
        total += if i % 2 == 0 { a - 1 } else { 5 - a };
    }
    total as f64 * 2.5
}

/// Mean SUS score and 95 % confidence half-width for a set of responses.
pub fn sus_summary(responses: &[SusResponse]) -> (f64, f64) {
    let scores: Vec<f64> = responses.iter().map(sus_score).collect();
    ht_dsp::stats::mean_ci95(&scores)
}

/// The SUS benchmark: scores above 68 are considered above average
/// (Brooke 1996 / §V).
pub const SUS_AVERAGE_THRESHOLD: f64 = 68.0;

/// One Table V question with its response option labels and counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurveyQuestion {
    /// The question as asked.
    pub question: &'static str,
    /// `(option label, respondent count)` pairs.
    pub responses: Vec<(&'static str, usize)>,
}

impl SurveyQuestion {
    /// Total respondents for this question.
    pub fn total(&self) -> usize {
        self.responses.iter().map(|(_, c)| c).sum()
    }

    /// Fraction of respondents choosing any of the named options.
    pub fn fraction_of(&self, options: &[&str]) -> f64 {
        let hit: usize = self
            .responses
            .iter()
            .filter(|(label, _)| options.contains(label))
            .map(|(_, c)| c)
            .sum();
        hit as f64 / self.total() as f64
    }
}

/// The five Table V questions with the paper's exact response counts.
pub fn table_v() -> Vec<SurveyQuestion> {
    vec![
        SurveyQuestion {
            question: "How many home voice assistants do you have at home?",
            responses: vec![("0", 5), ("1", 12), ("2", 2), ("above 2", 1)],
        },
        SurveyQuestion {
            question: "How often do you face the VA when you are interacting with the VA?",
            responses: vec![
                ("N/A", 5),
                ("Very less", 1),
                ("Less", 4),
                ("Often", 6),
                ("Very often", 4),
            ],
        },
        SurveyQuestion {
            question: "How easy was it to use HeadTalk compared with existing privacy controls?",
            responses: vec![
                ("Extremely easy", 10),
                ("Somewhat easy", 9),
                ("Neither easy nor difficult", 0),
                ("Somewhat difficult", 1),
                ("Extremely difficult", 0),
            ],
        },
        SurveyQuestion {
            question: "Would you deploy HeadTalk on your voice assistant?",
            responses: vec![
                ("Definitely yes", 7),
                ("Probably yes", 7),
                ("Might or might not", 5),
                ("Probably not", 0),
                ("Definitely not", 1),
            ],
        },
        SurveyQuestion {
            question: "Compare HeadTalk with the existing privacy control.",
            responses: vec![
                ("Much Better", 9),
                ("Somewhat better", 5),
                ("About the same", 5),
                ("Somewhat worse", 0),
                ("Much worse", 1),
            ],
        },
    ]
}

/// The paper's reported SUS aggregates (§V), as `(mean, 95 % CI
/// half-width)`.
pub const PAPER_SUS_HEADTALK: (f64, f64) = (77.38, 6.26);
/// SUS for the existing privacy control (physical mute button).
pub const PAPER_SUS_MUTE_BUTTON: (f64, f64) = (74.75, 8.12);

/// The §V takeaways recomputed from the Table V counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Takeaways {
    /// Fraction of VA owners who recall facing the device often/very often.
    pub owners_face_often: f64,
    /// Fraction rating HeadTalk extremely/somewhat easy.
    pub easy_to_use: f64,
    /// Fraction who would probably/definitely deploy it.
    pub would_deploy: f64,
    /// Fraction rating it better than existing controls.
    pub better_than_existing: f64,
}

/// Computes the takeaways from [`table_v`].
pub fn takeaways() -> Takeaways {
    let t = table_v();
    // Question 2 restricted to VA owners (total minus the 5 N/A).
    let face = &t[1];
    let owners = (face.total() - 5) as f64;
    let often = face.fraction_of(&["Often", "Very often"]) * face.total() as f64;
    Takeaways {
        owners_face_often: often / owners,
        easy_to_use: t[2].fraction_of(&["Extremely easy", "Somewhat easy"]),
        would_deploy: t[3].fraction_of(&["Definitely yes", "Probably yes"]),
        better_than_existing: t[4].fraction_of(&["Much Better", "Somewhat better"]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sus_extremes() {
        // Best possible answers: odd items 5, even items 1 -> 100.
        let best: SusResponse = [5, 1, 5, 1, 5, 1, 5, 1, 5, 1];
        assert_eq!(sus_score(&best), 100.0);
        let worst: SusResponse = [1, 5, 1, 5, 1, 5, 1, 5, 1, 5];
        assert_eq!(sus_score(&worst), 0.0);
        // All-neutral answers land at 50.
        assert_eq!(sus_score(&[3; 10]), 50.0);
    }

    #[test]
    #[should_panic(expected = "1..=5")]
    fn sus_rejects_out_of_range() {
        sus_score(&[0, 1, 1, 1, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn sus_summary_is_mean_and_ci() {
        let rs = [[5, 1, 5, 1, 5, 1, 5, 1, 5, 1], [3; 10]];
        let (mean, ci) = sus_summary(&rs);
        assert_eq!(mean, 75.0);
        assert!(ci > 0.0);
    }

    #[test]
    fn table_v_has_twenty_participants_per_question() {
        for q in table_v() {
            assert_eq!(q.total(), 20, "{}", q.question);
        }
    }

    #[test]
    fn takeaways_match_the_paper() {
        let t = takeaways();
        // §V: 66.67% (10/15) owners face the VA; 95% find it easy; 70%
        // would deploy; ~70% say it is better.
        assert!((t.owners_face_often - 10.0 / 15.0).abs() < 1e-9);
        assert!((t.easy_to_use - 0.95).abs() < 1e-9);
        assert!((t.would_deploy - 0.70).abs() < 1e-9);
        assert!((t.better_than_existing - 0.70).abs() < 1e-9);
    }

    #[test]
    fn paper_sus_scores_clear_the_benchmark() {
        assert!(PAPER_SUS_HEADTALK.0 > SUS_AVERAGE_THRESHOLD);
        assert!(PAPER_SUS_MUTE_BUTTON.0 > SUS_AVERAGE_THRESHOLD);
        assert!(PAPER_SUS_HEADTALK.0 > PAPER_SUS_MUTE_BUTTON.0);
    }

    #[test]
    fn fraction_of_unknown_option_is_zero() {
        let q = &table_v()[0];
        assert_eq!(q.fraction_of(&["nonexistent"]), 0.0);
    }
}
