//! Facing zones and training-label definitions.
//!
//! §III-B1 defines, from the human field of view and speech directivity
//! (Fig. 4b), a **facing zone** of −30°…30°, a **blind zone** of
//! 30°…90° on either side, and a **non-facing zone** beyond ±90°.
//! §IV-A2 / Table III then evaluates four ways of turning the collected
//! angles into binary training labels, differing in which borderline angles
//! are excluded; Definition-4 wins and is the paper's default.

/// The ground-truth zone of a speaker orientation angle (Fig. 4b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FacingZone {
    /// |angle| ≤ 30°: the speaker is facing the device.
    Facing,
    /// 30° < |angle| < 90°: the "blind zone" — a soft boundary.
    Blind,
    /// |angle| ≥ 90°: clearly not facing.
    NonFacing,
}

/// Classifies an orientation angle (degrees, any range) into its zone.
///
/// ```
/// use headtalk::facing::{zone_of, FacingZone};
///
/// assert_eq!(zone_of(0.0), FacingZone::Facing);
/// assert_eq!(zone_of(-30.0), FacingZone::Facing);
/// assert_eq!(zone_of(45.0), FacingZone::Blind);
/// assert_eq!(zone_of(180.0), FacingZone::NonFacing);
/// ```
pub fn zone_of(angle_deg: f64) -> FacingZone {
    let a = ht_acoustics::geometry::wrap_angle_deg(angle_deg).abs();
    // Boundaries carry the same 0.02° float-noise tolerance that the label
    // grid matching uses, so a grid angle of exactly 30° (or one representing
    // it after arithmetic) can never be labeled facing while falling in the
    // blind zone.
    if a <= 30.02 {
        FacingZone::Facing
    } else if a < 89.98 {
        FacingZone::Blind
    } else {
        FacingZone::NonFacing
    }
}

/// The four training-label definitions of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FacingDefinition {
    /// Facing {0, ±15, ±30, ±45}; non-facing {±60, ±75, ±90, ±135, 180}.
    Definition1,
    /// Facing {0, ±15, ±30}; non-facing {±60, ±75, ±90, ±135, 180}.
    Definition2,
    /// Facing {0, ±15, ±30}; non-facing {±75, ±90, ±135, 180}.
    Definition3,
    /// Facing {0, ±15, ±30}; non-facing {±90, ±135, 180} — the paper's
    /// best-performing definition, used for all further evaluation.
    Definition4,
}

impl FacingDefinition {
    /// All definitions, Table III order.
    pub const ALL: [FacingDefinition; 4] = [
        FacingDefinition::Definition1,
        FacingDefinition::Definition2,
        FacingDefinition::Definition3,
        FacingDefinition::Definition4,
    ];

    /// The display name used in Table III.
    pub fn name(self) -> &'static str {
        match self {
            FacingDefinition::Definition1 => "Definition-1",
            FacingDefinition::Definition2 => "Definition-2",
            FacingDefinition::Definition3 => "Definition-3",
            FacingDefinition::Definition4 => "Definition-4",
        }
    }

    /// Training label for a collected angle: `Some(1)` facing, `Some(0)`
    /// non-facing, or `None` when the angle is excluded from training under
    /// this definition.
    ///
    /// Angles are matched against the collection grid with a 0.01°
    /// float-noise tolerance (dataset specs carry exact grid angles; human
    /// placement error lives in the renderer, not in the labels).
    pub fn label(self, angle_deg: f64) -> Option<usize> {
        let a = ht_acoustics::geometry::wrap_angle_deg(angle_deg).abs();
        let is = |v: f64| (a - v).abs() < 0.01;
        let facing_set: &[f64] = match self {
            FacingDefinition::Definition1 => &[0.0, 15.0, 30.0, 45.0],
            _ => &[0.0, 15.0, 30.0],
        };
        let nonfacing_set: &[f64] = match self {
            FacingDefinition::Definition1 | FacingDefinition::Definition2 => {
                &[60.0, 75.0, 90.0, 135.0, 180.0]
            }
            FacingDefinition::Definition3 => &[75.0, 90.0, 135.0, 180.0],
            FacingDefinition::Definition4 => &[90.0, 135.0, 180.0],
        };
        if facing_set.iter().any(|&v| is(v)) {
            Some(1)
        } else if nonfacing_set.iter().any(|&v| is(v)) {
            Some(0)
        } else {
            None
        }
    }

    /// The *evaluation* ground truth for an angle: facing zone counts as
    /// positive, everything else negative. (Borderline angles excluded from
    /// training still get evaluated in Fig. 10.)
    pub fn ground_truth(angle_deg: f64) -> usize {
        usize::from(zone_of(angle_deg) == FacingZone::Facing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zones_match_fig4() {
        assert_eq!(zone_of(15.0), FacingZone::Facing);
        assert_eq!(zone_of(30.0), FacingZone::Facing);
        assert_eq!(zone_of(-29.9), FacingZone::Facing);
        assert_eq!(zone_of(31.0), FacingZone::Blind);
        assert_eq!(zone_of(-75.0), FacingZone::Blind);
        assert_eq!(zone_of(90.0), FacingZone::NonFacing);
        assert_eq!(zone_of(135.0), FacingZone::NonFacing);
        assert_eq!(zone_of(180.0), FacingZone::NonFacing);
        // Angles wrap.
        assert_eq!(zone_of(350.0), FacingZone::Facing);
        assert_eq!(zone_of(-350.0), FacingZone::Facing);
    }

    #[test]
    fn definition1_includes_45_as_facing() {
        assert_eq!(FacingDefinition::Definition1.label(45.0), Some(1));
        assert_eq!(FacingDefinition::Definition2.label(45.0), None);
        assert_eq!(FacingDefinition::Definition4.label(-45.0), None);
    }

    #[test]
    fn definition4_excludes_all_borderline_angles() {
        let d4 = FacingDefinition::Definition4;
        for a in [45.0, -45.0, 60.0, -60.0, 75.0, -75.0] {
            assert_eq!(d4.label(a), None, "angle {a}");
        }
        for a in [0.0, 15.0, -15.0, 30.0, -30.0] {
            assert_eq!(d4.label(a), Some(1), "angle {a}");
        }
        for a in [90.0, -90.0, 135.0, -135.0, 180.0] {
            assert_eq!(d4.label(a), Some(0), "angle {a}");
        }
    }

    #[test]
    fn definition2_and_3_differ_at_60() {
        assert_eq!(FacingDefinition::Definition2.label(60.0), Some(0));
        assert_eq!(FacingDefinition::Definition3.label(60.0), None);
        assert_eq!(FacingDefinition::Definition3.label(75.0), Some(0));
        assert_eq!(FacingDefinition::Definition4.label(75.0), None);
    }

    #[test]
    fn ground_truth_follows_the_facing_zone() {
        assert_eq!(FacingDefinition::ground_truth(0.0), 1);
        assert_eq!(FacingDefinition::ground_truth(30.0), 1);
        assert_eq!(FacingDefinition::ground_truth(45.0), 0);
        assert_eq!(FacingDefinition::ground_truth(180.0), 0);
    }

    #[test]
    fn names_are_table_iii_style() {
        assert_eq!(FacingDefinition::Definition4.name(), "Definition-4");
        assert_eq!(FacingDefinition::ALL.len(), 4);
    }
}
