//! Preprocessing: the paper's denoising block (§III).
//!
//! *"In order to remove low-frequency and high-frequency components
//! generated from the surrounding environment, we adopted the fifth-order
//! Butterworth bandpass filter to keep the audio within the frequency range
//! of 100∼16000 Hz."* Filtering is zero-phase so inter-channel delays (the
//! TDoA information) survive.

use crate::config::PipelineConfig;
use crate::HeadTalkError;
use ht_dsp::filter::{Butterworth, Sos};

/// The preprocessing stage: band-pass denoising plus amplitude
/// normalization.
#[derive(Debug, Clone)]
pub struct Preprocessor {
    filter: Sos,
}

impl Preprocessor {
    /// Builds the preprocessor for a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HeadTalkError::Dsp`] when the corners are invalid for the
    /// sample rate.
    pub fn new(config: &PipelineConfig) -> Result<Preprocessor, HeadTalkError> {
        let filter = Butterworth::bandpass(
            5,
            config.preprocess_lo_hz,
            config.preprocess_hi_hz,
            config.sample_rate,
        )?;
        Ok(Preprocessor { filter })
    }

    /// Denoises one channel (zero-phase band-pass).
    pub fn denoise(&self, x: &[f64]) -> Vec<f64> {
        self.filter.filtfilt(x)
    }

    /// The band-pass cascade itself, for callers that need to run it
    /// causally with carried state (`ht_dsp::filter::StreamingSos` on the
    /// streaming liveness branch).
    pub fn sos(&self) -> &Sos {
        &self.filter
    }

    /// Causal single-pass band-pass. Unlike [`denoise`](Self::denoise)
    /// (zero-phase forward–backward, a whole-capture operation), each
    /// output sample depends only on past inputs, so a chunked stream can
    /// compute this incrementally with carried per-section state and match
    /// the batch call bit for bit. The decision path's liveness branch uses
    /// this; the orientation features analyze raw frames, so no filter
    /// phase ever touches the TDoA evidence.
    pub fn filter_causal(&self, x: &[f64]) -> Vec<f64> {
        self.filter.filter(x)
    }

    /// Denoises all channels of a multichannel capture, applying one common
    /// gain afterwards so the *relative* channel levels (a directional cue)
    /// are preserved while the overall peak is normalized to ±1.
    ///
    /// # Errors
    ///
    /// Returns [`HeadTalkError::InvalidInput`] for an empty capture or
    /// mismatched channel lengths.
    pub fn denoise_channels(&self, channels: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, HeadTalkError> {
        let _span = ht_obs::span("wake.denoise");
        if channels.is_empty() || channels[0].is_empty() {
            return Err(HeadTalkError::InvalidInput(
                "capture must have at least one non-empty channel".into(),
            ));
        }
        let len = channels[0].len();
        if channels.iter().any(|c| c.len() != len) {
            return Err(HeadTalkError::InvalidInput(
                "all channels must share one length".into(),
            ));
        }
        // Per-channel denoising is a pure function of the channel, so the
        // parallel map is exactly the serial map; the common gain below is
        // computed after the barrier over all channels.
        let mut out: Vec<Vec<f64>> = ht_par::par_map(channels, |c| self.denoise(c));
        let peak = out
            .iter()
            .map(|c| ht_dsp::signal::peak(c))
            .fold(0.0f64, f64::max);
        if peak > 0.0 {
            let g = 1.0 / peak;
            for c in &mut out {
                for v in c.iter_mut() {
                    *v *= g;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::signal::{rms, tone};

    fn pre() -> Preprocessor {
        Preprocessor::new(&PipelineConfig::default()).unwrap()
    }

    #[test]
    fn rejects_out_of_band_noise() {
        let p = pre();
        // 30 Hz rumble is outside the 100–16k band.
        let rumble = tone(30.0, 48_000.0, 9600, 1.0);
        let out = p.denoise(&rumble);
        assert!(rms(&out[2400..7200]) < 0.05 * rms(&rumble[2400..7200]));
        // 1 kHz speech-band content passes.
        let speech = tone(1000.0, 48_000.0, 9600, 1.0);
        let out = p.denoise(&speech);
        assert!(rms(&out[2400..7200]) > 0.9 * rms(&speech[2400..7200]));
    }

    #[test]
    fn common_gain_preserves_channel_ratios() {
        let p = pre();
        let a = tone(1000.0, 48_000.0, 4800, 0.8);
        let b = tone(1000.0, 48_000.0, 4800, 0.4);
        let out = p.denoise_channels(&[a, b]).unwrap();
        let ratio = rms(&out[0][1200..3600]) / rms(&out[1][1200..3600]);
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
        // Normalized to peak 1 across the capture.
        let peak = out
            .iter()
            .map(|c| ht_dsp::signal::peak(c))
            .fold(0.0f64, f64::max);
        assert!((peak - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_captures_are_rejected() {
        let p = pre();
        assert!(p.denoise_channels(&[]).is_err());
        assert!(p.denoise_channels(&[vec![]]).is_err());
        assert!(p.denoise_channels(&[vec![0.0; 10], vec![0.0; 5]]).is_err());
    }

    #[test]
    fn silence_stays_silent() {
        let p = pre();
        let out = p.denoise_channels(&[vec![0.0; 256]]).unwrap();
        assert!(out[0].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bad_config_is_rejected() {
        let cfg = PipelineConfig {
            sample_rate: 8_000.0, // 16 kHz corner above Nyquist
            ..PipelineConfig::default()
        };
        assert!(Preprocessor::new(&cfg).is_err());
    }
}
