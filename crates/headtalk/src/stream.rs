//! The streaming wake engine: frame-by-frame ingest with an early-exit
//! soft-mute gate in front of the batch-identical final decision.
//!
//! [`WakeStream`] composes the `ht-stream` substrate (ring ingest, per-frame
//! STFT + sliding SRP-PHAT, evidence gate) with this crate's trained
//! models. While audio arrives, every frame is analyzed incrementally and
//! scored by the [`EarlyExitGate`] using the cheap per-frame evidence
//! ([`crate::liveness::frame_live_evidence`],
//! [`crate::orientation::frame_facing_evidence`]) — and, on the same
//! alloc-free scratch paths, the *batch* evidence accumulates too: per-pair
//! GCC lag sums and the directivity spectrum inside the analyzer, plus a
//! causally band-passed, streaming-decimated 16 kHz liveness branch in the
//! stream itself. [`finalize`](WakeStream::finalize) therefore assembles
//! the §III-B3 feature vector and the liveness input in O(features) — no
//! audio is stored or revisited — and at the default
//! [`PipelineConfig::analysis_frame_geometry`] the result is bit-identical
//! to [`HeadTalk::decide_batch`] for any chunking at any `HT_THREADS`; the
//! golden and property tests pin this.
//!
//! ```no_run
//! # fn main() -> Result<(), headtalk::HeadTalkError> {
//! # let ht: headtalk::HeadTalk = unimplemented!();
//! let mut stream = ht.streamer(4)?;
//! // Feed 10 ms chunks as the microphone delivers them:
//! # let chunk: Vec<&[f64]> = Vec::new();
//! let verdict = stream.push(&chunk)?;
//! if verdict == headtalk::stream::WakeVerdict::SoftMute {
//!     // the gate concluded mid-utterance: not live, or not facing
//! }
//! let outcome = stream.finalize()?;
//! # Ok(()) }
//! ```

use crate::config::PipelineConfig;
use crate::liveness::{frame_live_evidence, prepare_decimated_into};
use crate::orientation::frame_facing_evidence;
use crate::pipeline::{HeadTalk, WakeDecision};
use crate::{features, HeadTalkError};
use ht_dsp::filter::StreamingSos;
use ht_dsp::resample::StreamDecimator;
use ht_stream::{DirectivityAccum, EarlyExitGate, FrameAnalyzer, FrameRing};

pub use ht_stream::{
    AudioChunk, EarlyExit, ExitReason, GateConfig, GateMode, StreamError, WakeVerdict,
};

/// Geometry and gate tuning for a [`WakeStream`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Analysis frame length in samples.
    pub frame_len: usize,
    /// Hop between frames in samples (the real-time deadline: each frame's
    /// processing must finish within `hop / sample_rate` seconds).
    pub hop: usize,
    /// Early-exit gate tuning.
    pub gate: GateConfig,
    /// Expected capture length in samples (presizes the liveness branch so
    /// steady-state pushes don't reallocate it); 0 for a modest default.
    pub capacity_hint: usize,
}

impl StreamConfig {
    /// The default geometry for a pipeline configuration:
    /// [`PipelineConfig::analysis_frame_geometry`] (20 ms frames advancing
    /// by 10 ms — 960/480 samples at the paper's 48 kHz) with an advisory
    /// gate. Streams at this geometry finalize bit-identically to
    /// [`HeadTalk::decide_batch`]; a custom geometry still works but frames
    /// the capture differently than the batch reference.
    pub fn for_pipeline(config: &PipelineConfig) -> StreamConfig {
        let (frame_len, hop) = config.analysis_frame_geometry();
        StreamConfig {
            frame_len,
            hop,
            gate: GateConfig::default(),
            capacity_hint: 0,
        }
    }

    /// The per-frame real-time budget in seconds: one hop of audio.
    pub fn hop_deadline_secs(&self, sample_rate: f64) -> f64 {
        self.hop as f64 / sample_rate
    }
}

/// Everything a finished stream knows.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// The stream's verdict: [`WakeVerdict::Allow`] only when the finalized
    /// decision accepted; [`WakeVerdict::SoftMute`] when the decision
    /// rejected *or* an enforcing gate stopped the stream early.
    pub verdict: WakeVerdict,
    /// The decision over the accumulated evidence. `None` only when an
    /// enforcing gate stopped ingestion before a decidable capture
    /// accumulated.
    pub decision: Option<WakeDecision>,
    /// The orientation feature vector behind `decision` (empty when
    /// `decision` is `None`). Byte-identical to the batch path's features.
    pub features: Vec<f64>,
    /// The gate's early exit, if it fired (recorded in advisory mode,
    /// enforced in enforcing mode).
    pub early_exit: Option<EarlyExit>,
    /// Frames analyzed.
    pub frames: u64,
    /// Samples ingested per channel.
    pub samples_per_channel: usize,
}

/// The assembled decision evidence, borrowed from the stream's scratch
/// buffers: the fixed-width orientation feature vector and the prepared
/// liveness input. Feed them to [`HeadTalk::infer_assembled`] — or inspect
/// them — without any copy.
#[derive(Debug, Clone, Copy)]
pub struct AssembledEvidence<'s> {
    /// The §III-B3 orientation feature vector.
    pub features: &'s [f64],
    /// The z-scored fixed-width 16 kHz liveness input.
    pub liveness_input: &'s [f64],
}

/// A live streaming session borrowing a [`HeadTalk`] pipeline.
#[derive(Debug, Clone)]
pub struct WakeStream<'a> {
    ht: &'a HeadTalk,
    config: StreamConfig,
    ring: FrameRing,
    analyzer: FrameAnalyzer,
    gate: EarlyExitGate,
    /// Welch accumulator for the speech-directivity spectrum.
    dir: DirectivityAccum,
    /// Samples ingested per channel (the stream stores no audio beyond the
    /// ring's working window and the decimated liveness branch).
    samples: usize,
    /// Scratch frame the ring pops into.
    frame: Vec<Vec<f64>>,
    /// Carried band-pass state of the causal liveness filter (channel 0).
    liv_sos: StreamingSos,
    /// Per-chunk scratch for the filtered channel-0 samples.
    liv_filtered: Vec<f64>,
    /// Streaming ÷3 decimator carrying the anti-alias FIR tail.
    liv_dec: StreamDecimator,
    /// Decimated 16 kHz liveness samples emitted so far.
    liv_16k: Vec<f64>,
    /// Finalize-time scratch: `liv_16k` plus the decimator's flushed tail.
    liv_tail: Vec<f64>,
    /// Finalize-time scratch: the cropped/padded, z-scored liveness input.
    liv_prepared: Vec<f64>,
    /// Finalize-time scratch: the assembled feature vector.
    features: Vec<f64>,
    /// The liveness model's fixed input width in 16 kHz samples.
    liv_input_len: usize,
    /// `true` once an enforcing gate has stopped ingestion.
    muted: bool,
}

impl HeadTalk {
    /// Opens a streaming session for an `n_channels` microphone array with
    /// the default [`StreamConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`HeadTalkError::InvalidInput`] when `n_channels` gives a
    /// feature width the orientation model wasn't trained on (the same
    /// up-front check as [`process_wake`](HeadTalk::process_wake)), or
    /// [`HeadTalkError::Stream`] for bad geometry.
    pub fn streamer(&self, n_channels: usize) -> Result<WakeStream<'_>, HeadTalkError> {
        self.streamer_with(n_channels, StreamConfig::for_pipeline(self.config()))
    }

    /// Opens a streaming session with explicit geometry and gate tuning.
    ///
    /// # Errors
    ///
    /// As for [`streamer`](HeadTalk::streamer).
    pub fn streamer_with(
        &self,
        n_channels: usize,
        config: StreamConfig,
    ) -> Result<WakeStream<'_>, HeadTalkError> {
        self.validate_feature_width(n_channels)?;
        let ring = FrameRing::with_capacity(
            n_channels,
            config.frame_len,
            config.hop,
            config.frame_len + 2 * config.hop,
        )?;
        let mut analyzer = FrameAnalyzer::new(
            n_channels,
            config.frame_len,
            self.config().max_lag,
            self.config().sample_rate,
        )?;
        // The per-frame GCC kernels follow the pipeline's backend: fast
        // squared-magnitude whitening under Int8, byte-stable hypot
        // whitening under Reference.
        analyzer.set_quant_mode(self.quant_mode());
        let capacity = if config.capacity_hint > 0 {
            config.capacity_hint
        } else {
            // Default to 4 s of audio at the configured rate.
            (self.config().sample_rate * 4.0) as usize
        };
        let liv_input_len = self.liveness_input_len();
        let feature_cap = features::feature_width(n_channels, self.config());
        Ok(WakeStream {
            ht: self,
            ring,
            analyzer,
            gate: EarlyExitGate::new(config.gate),
            dir: DirectivityAccum::new(
                n_channels,
                self.config().directivity_segment_len(),
                self.config().sample_rate,
            )?,
            samples: 0,
            frame: vec![vec![0.0; config.frame_len]; n_channels],
            liv_sos: StreamingSos::new(self.preprocessor().sos().clone()),
            liv_filtered: Vec::with_capacity(2 * config.hop + 16),
            liv_dec: StreamDecimator::new(3)?,
            liv_16k: Vec::with_capacity(capacity / 3 + 64),
            liv_tail: Vec::with_capacity(capacity / 3 + 128),
            liv_prepared: Vec::with_capacity(liv_input_len),
            features: Vec::with_capacity(feature_cap),
            liv_input_len,
            muted: false,
            config,
        })
    }
}

impl WakeStream<'_> {
    /// Ingests one chunk (any length; hop-aligned or ragged) and processes
    /// every frame that becomes ready. Returns the rolling verdict.
    ///
    /// After an enforcing gate has fired, further pushes are dropped and
    /// return [`WakeVerdict::SoftMute`] immediately — the soft mute is the
    /// point: no more audio leaves the device.
    ///
    /// # Errors
    ///
    /// Returns [`HeadTalkError::Stream`] for a chunk whose channel count
    /// differs from the stream's or whose channels have unequal lengths;
    /// the stream state is untouched and subsequent valid pushes work.
    pub fn push(&mut self, chunk: &[&[f64]]) -> Result<WakeVerdict, HeadTalkError> {
        if self.muted {
            return Ok(WakeVerdict::SoftMute);
        }
        {
            let _ingest = ht_obs::span("stream.ingest");
            self.ring.push(chunk)?;
            self.dir.push(chunk)?;
            self.samples += chunk[0].len();
            // Liveness branch: causal band-pass with carried state, then
            // streaming decimation — bit-identical to filtering and
            // decimating the whole capture at once, at O(chunk) per push.
            self.liv_filtered.clear();
            self.liv_sos.process(chunk[0], &mut self.liv_filtered);
            self.liv_dec.push(&self.liv_filtered, &mut self.liv_16k);
        }
        while !self.muted && self.ring.pop_frame_into(&mut self.frame) {
            let _frame_span = ht_obs::span("stream.frame");
            let (rms, live_evidence, facing_evidence) = {
                let features = self.analyzer.analyze(&self.frame)?;
                let _score = ht_obs::span("stream.score");
                (
                    features.rms,
                    frame_live_evidence(features),
                    frame_facing_evidence(features),
                )
            };
            let verdict = {
                let _gate = ht_obs::span("stream.gate");
                self.gate.observe(rms, live_evidence, facing_evidence)
            };
            if verdict == WakeVerdict::SoftMute && self.config.gate.mode == GateMode::Enforcing {
                self.muted = true;
            }
        }
        Ok(self.verdict())
    }

    /// Like [`push`](WakeStream::push), but verifies the chunk's claimed
    /// sample rate against the pipeline's.
    ///
    /// # Errors
    ///
    /// Returns [`HeadTalkError::Stream`] with
    /// [`StreamError::SampleRateChanged`] for a rate mismatch (compared at
    /// integer-Hz resolution), plus everything [`push`](WakeStream::push)
    /// returns.
    pub fn push_audio(&mut self, chunk: AudioChunk<'_>) -> Result<WakeVerdict, HeadTalkError> {
        let expected_hz = self.ht.config().sample_rate.round() as u32;
        let got_hz = chunk.sample_rate.round() as u32;
        if got_hz != expected_hz {
            return Err(StreamError::SampleRateChanged {
                expected_hz,
                got_hz,
            }
            .into());
        }
        self.push(chunk.channels)
    }

    /// The rolling verdict: [`WakeVerdict::SoftMute`] once the gate has
    /// fired, [`WakeVerdict::Undecided`] otherwise. (An Allow only ever
    /// comes from [`finalize`](WakeStream::finalize) — the models, not the
    /// gate, grant it.)
    pub fn verdict(&self) -> WakeVerdict {
        if self.gate.fired().is_some() {
            WakeVerdict::SoftMute
        } else {
            WakeVerdict::Undecided
        }
    }

    /// The gate's early exit, if it has fired.
    pub fn early_exit(&self) -> Option<EarlyExit> {
        self.gate.fired()
    }

    /// `true` once an enforcing gate has stopped ingestion.
    pub fn is_muted(&self) -> bool {
        self.muted
    }

    /// Frames analyzed so far.
    pub fn frames(&self) -> u64 {
        self.analyzer.frames_analyzed()
    }

    /// Samples ingested per channel so far.
    pub fn samples_per_channel(&self) -> usize {
        self.samples
    }

    /// Forward FFTs the directivity accumulator's flush has performed
    /// since this stream was constructed (a repeat flush at an unchanged
    /// sample count hits the epoch cache and performs none). Survives
    /// [`reset`](WakeStream::reset), so a pooled slot keeps a running
    /// total — the serving layer's retry-hits-the-cache regression tests
    /// pin this.
    pub fn directivity_flush_ffts(&self) -> u64 {
        self.dir.flush_ffts()
    }

    /// The stream's hop in samples (the natural push granularity).
    pub fn hop(&self) -> usize {
        self.config.hop
    }

    /// The stream's configuration.
    pub fn stream_config(&self) -> &StreamConfig {
        &self.config
    }

    /// Assembles the decision evidence from the accumulated statistics into
    /// the stream's scratch buffers: the feature vector from the analyzer's
    /// Welch accumulators, and the liveness input from the decimated branch
    /// plus the decimator's flushed FIR tail. O(features), allocation-free
    /// once the scratch has grown, and non-destructive — analysis may
    /// continue and the evidence be assembled again.
    fn assemble_evidence(&mut self) -> Result<(), HeadTalkError> {
        self.features.clear();
        features::assemble_into(
            &mut self.analyzer,
            &mut self.dir,
            self.ht.config(),
            &mut self.features,
        )?;
        self.liv_tail.clear();
        self.liv_tail.extend_from_slice(&self.liv_16k);
        self.liv_dec.flush_into(&mut self.liv_tail);
        prepare_decimated_into(&self.liv_tail, self.liv_input_len, &mut self.liv_prepared)
    }

    /// Assembles and exposes the decision evidence without running the
    /// models (borrowed from internal scratch; the next push or assembly
    /// overwrites it). The serving layer uses this to batch model inference
    /// across sessions.
    ///
    /// # Errors
    ///
    /// As for [`finalize`](WakeStream::finalize).
    pub fn assemble(&mut self) -> Result<AssembledEvidence<'_>, HeadTalkError> {
        self.assemble_evidence()?;
        Ok(AssembledEvidence {
            features: &self.features,
            liveness_input: &self.liv_prepared,
        })
    }

    /// Finalizes the stream: assembles the feature vector and liveness
    /// input from the accumulated evidence — O(features), not O(capture) —
    /// runs the trained models, and folds in the gate's early exit.
    ///
    /// At the default [`PipelineConfig::analysis_frame_geometry`] the
    /// decision and features are bit-identical to
    /// [`HeadTalk::decide_batch`] over the same capture. In enforcing mode
    /// the evidence may have been truncated at the mute point; if too
    /// little audio accumulated to decide, the outcome carries the gate's
    /// soft-mute with `decision: None` instead of an error.
    ///
    /// # Errors
    ///
    /// Propagates assembly errors (short or silent/DC-only captures) when
    /// the gate did not stop the stream.
    pub fn finalize(mut self) -> Result<StreamOutcome, HeadTalkError> {
        self.outcome()
    }

    /// [`finalize`](WakeStream::finalize) without consuming the stream, so
    /// a pooled session slot can be [`reset`](WakeStream::reset) and reused
    /// afterwards (the multi-tenant server's steady state). Identical
    /// semantics and byte-identical results.
    ///
    /// # Errors
    ///
    /// As for [`finalize`](WakeStream::finalize).
    pub fn outcome(&mut self) -> Result<StreamOutcome, HeadTalkError> {
        let early_exit = self.gate.fired();
        let frames = self.analyzer.frames_analyzed();
        let samples_per_channel = self.samples;
        match self.assemble_evidence() {
            Ok(()) => {
                let decision = self.ht.infer_assembled(&self.features, &self.liv_prepared);
                Ok(StreamOutcome {
                    verdict: if self.muted || !decision.accepted() {
                        WakeVerdict::SoftMute
                    } else {
                        WakeVerdict::Allow
                    },
                    decision: Some(decision),
                    features: self.features.clone(),
                    early_exit,
                    frames,
                    samples_per_channel,
                })
            }
            Err(_) if self.muted => Ok(StreamOutcome {
                verdict: WakeVerdict::SoftMute,
                decision: None,
                features: Vec::new(),
                early_exit,
                frames,
                samples_per_channel,
            }),
            Err(e) => Err(e),
        }
    }

    /// Returns the stream to its just-opened state — empty ring, rewound
    /// analyzer, fresh gate and filter/decimator state, cleared liveness
    /// branch — while keeping every buffer at its grown capacity. A reset
    /// stream produces byte-identical results to a freshly opened one, but
    /// reusing it costs no heap allocations once its buffers have grown to
    /// the working capture length; the serving layer's session arenas
    /// depend on this.
    pub fn reset(&mut self) {
        self.ring.reset();
        self.analyzer.reset();
        self.gate.reset();
        self.dir.reset();
        self.samples = 0;
        self.liv_sos.reset();
        self.liv_dec.reset();
        self.liv_filtered.clear();
        self.liv_16k.clear();
        self.liv_tail.clear();
        self.liv_prepared.clear();
        self.features.clear();
        self.muted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_is_20ms_frames_10ms_hop() {
        let cfg = StreamConfig::for_pipeline(&PipelineConfig::default());
        assert_eq!(cfg.frame_len, 960);
        assert_eq!(cfg.hop, 480);
        assert!((cfg.hop_deadline_secs(48_000.0) - 0.010).abs() < 1e-12);
        assert_eq!(cfg.gate.mode, GateMode::Advisory);
    }

    #[test]
    fn odd_sample_rates_round_to_positive_hops() {
        let cfg = StreamConfig::for_pipeline(&PipelineConfig {
            sample_rate: 44_100.0,
            ..PipelineConfig::default()
        });
        assert_eq!(cfg.hop, 441);
        assert_eq!(cfg.frame_len, 882);
    }
}
