//! Instrumentation overhead of the ht-obs observability layer.
//!
//! The disabled-path contract (see `crates/obs`): with `HT_OBS=off` a span
//! is one relaxed atomic load plus a branch — no clock read, no lock. This
//! suite measures that path directly, the enabled path for comparison, and
//! an instrumented DSP workload under both modes so the end-to-end cost of
//! leaving spans compiled into the hot layers is a recorded number, not a
//! belief.
//!
//! The suite doubles as CI's overhead gate: a disabled span/counter whose
//! median exceeds [`DISABLED_NS_BOUND`] fails the run. The bound is 50 ns —
//! an order of magnitude above what an atomic load + branch costs on any
//! supported machine, low enough to catch an accidental clock read
//! (~20–60 ns) or lock acquisition sneaking onto the disabled path.

use ht_bench::{black_box, Suite};
use ht_dsp::rng::SeedableRng;
use ht_dsp::srp::srp_phat;

/// Upper bound (ns, median) for the disabled span and counter paths.
const DISABLED_NS_BOUND: f64 = 50.0;

fn bench_primitives(s: &mut Suite) {
    ht_obs::set_mode(ht_obs::Mode::Off);
    s.bench("obs/span_disabled", || ht_obs::span("bench.disabled"));
    s.bench("obs/counter_disabled", || {
        ht_obs::counter_add("bench.counter_disabled", 1)
    });

    ht_obs::set_mode(ht_obs::Mode::Json);
    ht_obs::registry().reset();
    s.bench("obs/span_enabled", || ht_obs::span("bench.enabled"));
    s.bench("obs/counter_enabled", || {
        ht_obs::counter_add("bench.counter_enabled", 1)
    });
    s.bench("obs/registry_snapshot", || ht_obs::registry().snapshot());
    ht_obs::set_mode(ht_obs::Mode::Off);
    ht_obs::registry().reset();
}

/// An instrumented hot-path workload (SRP-PHAT carries a span, and its
/// callees run under the pool counters) timed with observability off and
/// on: the delta is the real-world cost of recording.
fn bench_instrumented_workload(s: &mut Suite) {
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(0x0B5);
    let base = ht_dsp::rng::white_noise(&mut rng, 2048);
    let delayed = ht_dsp::signal::fractional_delay(&base, 1.5, 16);
    let channels: Vec<&[f64]> = vec![&base, &delayed];

    ht_obs::set_mode(ht_obs::Mode::Off);
    s.bench("obs/srp_phat_2ch_2048_obs_off", || {
        srp_phat(black_box(&channels), 13)
    });
    ht_obs::set_mode(ht_obs::Mode::Json);
    ht_obs::registry().reset();
    s.bench("obs/srp_phat_2ch_2048_obs_json", || {
        srp_phat(black_box(&channels), 13)
    });
    ht_obs::set_mode(ht_obs::Mode::Off);
    ht_obs::registry().reset();
}

fn main() {
    let mut s = Suite::new("obs");
    bench_primitives(&mut s);
    bench_instrumented_workload(&mut s);

    // Overhead gate: the disabled paths must stay branch-cheap.
    let mut violations = Vec::new();
    for m in s.results() {
        if m.name.ends_with("_disabled") && m.median_ns > DISABLED_NS_BOUND {
            violations.push(format!(
                "{}: median {:.1} ns exceeds the {DISABLED_NS_BOUND:.0} ns disabled-path bound",
                m.name, m.median_ns
            ));
        }
    }
    s.finish();
    assert!(
        violations.is_empty(),
        "ht-obs disabled-path overhead gate failed:\n{}",
        violations.join("\n")
    );
}
