//! One benchmark per reproduced *figure*: the computational kernel behind
//! each figure on a reduced workload (full regeneration = `headtalk-repro`).

use headtalk::orientation::{ModelKind, OrientationDetector};
use headtalk::PipelineConfig;
use ht_bench::{black_box, Suite};
use ht_datagen::CaptureSpec;
use ht_dsp::rng::SeedableRng;
use ht_ml::nn::{ConvSpec, NeuralNetConfig};
use ht_ml::{Classifier, Dataset};
use ht_speech::replay::SpeakerModel;
use ht_speech::utterance::WakeWord;
use ht_speech::voice::VoiceProfile;

fn blobs(n_per: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(dim);
    for _ in 0..n_per {
        for label in [0usize, 1] {
            let c = if label == 1 { 0.8 } else { -0.8 };
            ds.push(
                (0..dim)
                    .map(|k| {
                        if k < 6 {
                            c + 0.5 * ht_dsp::rng::gaussian(&mut rng)
                        } else {
                            ht_dsp::rng::gaussian(&mut rng)
                        }
                    })
                    .collect(),
                label,
            )
            .expect("fixed width");
        }
    }
    ds
}

/// Fig. 3: synthesis + loudspeaker playback chains.
fn bench_fig3(s: &mut Suite) {
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(3);
    let live = WakeWord::Computer.synthesize(&VoiceProfile::adult_male(), &mut rng, 48_000.0);
    let mut syn_rng = ht_dsp::rng::StdRng::seed_from_u64(4);
    s.bench("fig3/synthesize_computer", || {
        WakeWord::Computer.synthesize(&VoiceProfile::adult_male(), &mut syn_rng, 48_000.0)
    });
    let mut play_rng = ht_dsp::rng::StdRng::seed_from_u64(5);
    s.bench("fig3/sony_playback_chain", || {
        SpeakerModel::SonySrsX5.play(black_box(&live), &mut play_rng, 48_000.0)
    });
}

/// Fig. 5/6: orientation-dependent rendering + SRP analysis.
fn bench_fig5_fig6(s: &mut Suite) {
    let spec = CaptureSpec::baseline(0xF1_56);
    let channels = spec.render().expect("render");
    let refs: Vec<&[f64]> = channels.iter().map(|x| x.as_slice()).collect();
    s.bench("fig5_fig6/srp_analysis_of_capture", || {
        ht_dsp::srp::srp_phat(black_box(&refs), 13)
    });
    s.bench("fig5_fig6/spectrum_and_hlbr", || {
        let sp = ht_dsp::spectrum::Spectrum::of(black_box(&channels[0]), 48_000.0).unwrap();
        ht_dsp::spectrum::hlbr(&sp)
    });
}

/// Fig. 10/11: SVM training and per-angle prediction sweeps.
fn bench_fig10_fig11(s: &mut Suite) {
    let cfg = PipelineConfig::default();
    let width = headtalk::features::feature_width(4, &cfg);
    let full = blobs(120, width, 10);
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(11);
    s.bench("fig10_fig11/training_size_20_fit_and_eval", || {
        let (train, test) = full.split_per_class(20, &mut rng);
        let det = OrientationDetector::fit(&train, ModelKind::Svm, 7).expect("separable");
        det.predict_batch(test.features()).len()
    });
}

/// Fig. 12–14: one grid-cell evaluation (train one session, test the
/// other) — the unit the wake-word/device/room box plots are built from.
fn bench_fig12_13_14(s: &mut Suite) {
    let cfg = PipelineConfig::default();
    let width = headtalk::features::feature_width(4, &cfg);
    let train = blobs(90, width, 12);
    let test = blobs(90, width, 13);
    s.bench("fig12_13_14/one_grid_cell", || {
        let det =
            OrientationDetector::fit(black_box(&train), ModelKind::Svm, 7).expect("separable");
        det.predict_batch(test.features())
    });
}

/// Fig. 15: one incremental-learning round (self-label + refit).
fn bench_fig15(s: &mut Suite) {
    let width = 64;
    let base = blobs(60, width, 15);
    let aged = blobs(40, width, 16);
    let det = OrientationDetector::fit(&base, ModelKind::Svm, 7).expect("separable");
    s.bench("fig15/incremental_round", || {
        let confident =
            ht_ml::incremental::high_confidence_samples(&det, &aged, 0.8).expect("same width");
        let take = confident.len().min(20);
        let additions = confident.filter_indices(|i| i < take);
        let mut train = base.clone();
        if !additions.is_empty() {
            train.extend(&additions).expect("same width");
        }
        OrientationDetector::fit(&train, ModelKind::Svm, 7).expect("separable")
    });
}

/// Fig. 16: ADASYN up-sampling plus one leave-one-user-out fold.
fn bench_fig16(s: &mut Suite) {
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(16);
    // Imbalanced dataset: 3 facing angles vs 5 backward.
    let mut ds = Dataset::new(32);
    for i in 0..240 {
        let label = usize::from(i % 8 < 3);
        let center = if label == 1 { 0.8 } else { -0.8 };
        ds.push(
            (0..32)
                .map(|_| center + 0.6 * ht_dsp::rng::gaussian(&mut rng))
                .collect(),
            label,
        )
        .expect("fixed width");
    }
    let mut ada_rng = ht_dsp::rng::StdRng::seed_from_u64(17);
    s.bench("fig16/adasyn_upsample", || {
        ht_ml::sampling::adasyn(black_box(&ds), 5, &mut ada_rng).expect("binary data")
    });
    let mut smote_rng = ht_dsp::rng::StdRng::seed_from_u64(18);
    s.bench("fig16/smote_upsample", || {
        ht_ml::sampling::smote(black_box(&ds), 5, &mut smote_rng).expect("binary data")
    });
}

/// §IV-A1 liveness: one training epoch of wav2vec2-mini on short inputs.
fn bench_liveness(s: &mut Suite) {
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(19);
    let mut ds = Dataset::new(2048);
    for i in 0..24 {
        let fast = i % 2 == 0;
        let x: Vec<f64> = (0..2048)
            .map(|t| {
                let f = if fast { 2.5 } else { 0.1 };
                (t as f64 * f).sin() + 0.1 * ht_dsp::rng::gaussian(&mut rng)
            })
            .collect();
        ds.push(x, usize::from(fast)).expect("fixed width");
    }
    let config = NeuralNetConfig {
        conv: vec![
            ConvSpec {
                out_channels: 8,
                kernel: 16,
                stride: 8,
            },
            ConvSpec {
                out_channels: 16,
                kernel: 8,
                stride: 4,
            },
        ],
        hidden: vec![16],
        learning_rate: 3e-3,
        epochs: 1,
        batch: 8,
        seed: 7,
    };
    s.bench("liveness/wav2vec2_mini_one_epoch_24x2048", || {
        ht_ml::nn::NeuralNet::fit(black_box(&ds), &config).expect("valid config")
    });
}

fn main() {
    let mut s = Suite::new("figures");
    bench_fig3(&mut s);
    bench_fig5_fig6(&mut s);
    bench_fig10_fig11(&mut s);
    bench_fig12_13_14(&mut s);
    bench_fig15(&mut s);
    bench_fig16(&mut s);
    bench_liveness(&mut s);
    s.finish();
}
