//! Quantized/vectorized decision-path gate.
//!
//! The `QuantMode::Int8` backend only earns its complexity if it is both
//! fast and faithful, so this bench measures and CI-gates the contract
//! from both sides:
//!
//! * the vectorized squared-magnitude whitening kernel must beat the
//!   byte-stable reference kernel by the per-size floors of
//!   [`SPECTRUM_SIZES`] (2x at the batch-window size) at the SRP-PHAT
//!   cross-spectrum sizes the pipeline actually uses,
//! * int8 liveness inference ([`QuantizedNet`]) must run at least
//!   [`NET_SPEEDUP_FLOOR`]x the f64 wav2vec2-mini forward,
//! * on AVX2 machines, the `std::arch` i8 dot/dist2 backends must agree
//!   with the scalar reference **exactly** (i32 equality on every tested
//!   shape, ragged tails included) — runners without AVX2 log a notice
//!   and skip this gate instead of silently passing it,
//! * int8 accuracy must stay within [`ACCURACY_DELTA_MAX`] (0.5 pp) of the
//!   f64 reference on a held-out corpus, and
//! * the reference path must stay **byte-stable**: building the quantized
//!   backends must not perturb a single bit of the f64 models' outputs,
//!   and `srp_phat_mode(Int8)` must track the reference within tolerance.
//!
//! Writes `BENCH_quant.json` (timings, speedups, accuracy deltas) into
//! `HT_BENCH_DIR`.

use ht_bench::{black_box, Suite};
use ht_dsp::complex::Complex;
use ht_dsp::json::Json;
use ht_dsp::kernels::{cross_whiten_fast_into, cross_whiten_reference_into};
use ht_dsp::rng::{gaussian, Rng, SeedableRng, StdRng};
use ht_dsp::srp::srp_phat_mode;
use ht_dsp::QuantMode;
use ht_ml::nn::{NeuralNet, NeuralNetConfig};
use ht_ml::quant::{
    avx2_available, dist2_i8_avx2, dist2_i8_scalar, dot_i8_avx2, dot_i8_scalar, QuantScratch,
    QuantizedNet, QuantizedSvm,
};
use ht_ml::svm::{Svm, SvmParams};
use ht_ml::{Classifier, Dataset};

/// Minimum speedup of int8 liveness inference over the f64 forward.
const NET_SPEEDUP_FLOOR: f64 = 2.0;
/// Maximum tolerated accuracy difference between backends (0.5 pp).
const ACCURACY_DELTA_MAX: f64 = 0.005;
/// Cross-spectrum sizes to time with their speedup floors: the rFFT bin
/// counts the SRP path produces for one analysis frame (1024 + lag padding
/// → 2048-point FFT) and for a half-second batch window. At the frame size
/// the whole reference kernel runs in ~10 µs, so its median wobbles enough
/// on shared runners that the floor keeps noise headroom; the batch window
/// measures the asymptotic kernel speedup and carries the 2x contract.
const SPECTRUM_SIZES: [(usize, f64); 2] = [(1025, 1.3), (16385, 2.0)];

/// Liveness-style corpus at the pipeline's prepared-input width: "live" has
/// a high-frequency component, "replayed" is low-passed, both z-scored —
/// the Fig. 3 signature scaled to a bench.
fn liveness_corpus(n_per: usize, len: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(len);
    for _ in 0..n_per {
        let phase: f64 = rng.gen::<f64>() * 6.3;
        let mut live: Vec<f64> = (0..len)
            .map(|t| {
                (t as f64 * 0.3 + phase).sin()
                    + 0.5 * (t as f64 * 2.8).sin()
                    + 0.1 * gaussian(&mut rng)
            })
            .collect();
        ht_dsp::signal::normalize_zscore(&mut live);
        ds.push(live, 1).expect("width");
        let phase: f64 = rng.gen::<f64>() * 6.3;
        let mut replayed: Vec<f64> = (0..len)
            .map(|t| (t as f64 * 0.3 + phase).sin() + 0.1 * gaussian(&mut rng))
            .collect();
        ht_dsp::signal::normalize_zscore(&mut replayed);
        ds.push(replayed, 0).expect("width");
    }
    ds
}

fn random_spectra(n: usize, seed: u64) -> (Vec<Complex>, Vec<Complex>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xf: Vec<Complex> = (0..n)
        .map(|_| Complex::new(gaussian(&mut rng), gaussian(&mut rng)))
        .collect();
    let yf: Vec<Complex> = (0..n)
        .map(|_| Complex::new(gaussian(&mut rng), gaussian(&mut rng)))
        .collect();
    (xf, yf)
}

/// Fastest sample for a recorded bench. Speedup gates divide two of these:
/// scheduler noise only ever inflates a sample, so the minimum is the
/// least-biased estimate of each kernel's true cost and the ratio of
/// minimums is far more stable run-to-run than a ratio of medians.
fn min_of(suite: &Suite, name: &str) -> f64 {
    suite
        .results()
        .iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("benchmark {name} was not recorded"))
        .min_ns
}

fn accuracy(mut net_predict: impl FnMut(&[f64]) -> usize, ds: &Dataset) -> f64 {
    let correct = (0..ds.len())
        .filter(|&i| {
            let (x, y) = ds.sample(i);
            net_predict(x) == y
        })
        .count();
    correct as f64 / ds.len() as f64
}

fn main() {
    let mut suite = Suite::new("quant");
    let mut violations: Vec<String> = Vec::new();

    // --- Cross-spectrum whitening kernels -------------------------------
    let mut cross_speedups = Vec::new();
    for (k, &(n, floor)) in SPECTRUM_SIZES.iter().enumerate() {
        let (xf, yf) = random_spectra(n, 0xC0_55 + k as u64);
        let mut cross = vec![Complex::ZERO; n];
        let mut mags = vec![0.0; n];
        suite.bench(&format!("cross_whiten/reference_{n}"), || {
            cross_whiten_reference_into(black_box(&xf), black_box(&yf), &mut cross, &mut mags);
            cross[0]
        });
        suite.bench(&format!("cross_whiten/fast_{n}"), || {
            cross_whiten_fast_into(black_box(&xf), black_box(&yf), &mut cross, &mut mags);
            cross[0]
        });
        let speedup = min_of(&suite, &format!("cross_whiten/reference_{n}"))
            / min_of(&suite, &format!("cross_whiten/fast_{n}"));
        eprintln!("  cross_whiten n={n}: {speedup:.2}x (floor {floor}x)");
        if speedup < floor {
            violations.push(format!(
                "cross_whiten n={n}: {speedup:.2}x is below the {floor}x floor"
            ));
        }
        cross_speedups.push((n, speedup, floor));
    }

    // --- AVX2 i8 kernels: exact agreement + speedup ---------------------
    // The AVX2 dot/dist2 backends are pure integer arithmetic, so they
    // must agree with the scalar reference *exactly* — every i32 bit, on
    // every shape including ragged tails. A runner without AVX2 skips the
    // gate (and says so loudly) rather than silently passing it.
    let mut avx2_speedups: Option<(f64, f64)> = None;
    if avx2_available() {
        let mut rng = StdRng::seed_from_u64(0x51_D0);
        let mut rand_i8 =
            |n: usize| -> Vec<i8> { (0..n).map(|_| (rng.next_u64() % 255) as i8).collect() };
        for n in [1, 7, 15, 16, 17, 31, 32, 33, 64, 100, 128, 1000, 8000] {
            let a = rand_i8(n);
            let b = rand_i8(n);
            if dot_i8_avx2(&a, &b) != dot_i8_scalar(&a, &b) {
                violations.push(format!("avx2 dot_i8 disagreed with scalar at n={n}"));
            }
            if dist2_i8_avx2(&a, &b) != dist2_i8_scalar(&a, &b) {
                violations.push(format!("avx2 dist2_i8 disagreed with scalar at n={n}"));
            }
        }
        // Timing at the shapes inference actually runs: the mini encoder's
        // widest im2col row (128) dotted against many filter rows, and the
        // SVM's 64-dim distance against many support vectors.
        let rows: Vec<Vec<i8>> = (0..256).map(|_| rand_i8(128)).collect();
        let patch = rand_i8(128);
        suite.bench("i8_dot/scalar_128", || {
            rows.iter()
                .map(|w| dot_i8_scalar(black_box(w), black_box(&patch)))
                .sum::<i32>()
        });
        suite.bench("i8_dot/avx2_128", || {
            rows.iter()
                .map(|w| dot_i8_avx2(black_box(w), black_box(&patch)))
                .sum::<i32>()
        });
        let svs: Vec<Vec<i8>> = (0..256).map(|_| rand_i8(64)).collect();
        let x = rand_i8(64);
        suite.bench("i8_dist2/scalar_64", || {
            svs.iter()
                .map(|sv| dist2_i8_scalar(black_box(sv), black_box(&x)))
                .sum::<i32>()
        });
        suite.bench("i8_dist2/avx2_64", || {
            svs.iter()
                .map(|sv| dist2_i8_avx2(black_box(sv), black_box(&x)))
                .sum::<i32>()
        });
        let dot_speedup = min_of(&suite, "i8_dot/scalar_128") / min_of(&suite, "i8_dot/avx2_128");
        let dist2_speedup =
            min_of(&suite, "i8_dist2/scalar_64") / min_of(&suite, "i8_dist2/avx2_64");
        eprintln!(
            "  avx2 i8 kernels: exact agreement ok, dot {dot_speedup:.2}x, \
             dist2 {dist2_speedup:.2}x over autovectorized scalar"
        );
        avx2_speedups = Some((dot_speedup, dist2_speedup));
    } else {
        eprintln!(
            "  NOTICE: AVX2 unavailable on this runner — i8 SIMD agreement \
             gate skipped, scalar kernels serve the hot path"
        );
    }

    // --- Liveness network: f64 reference vs int8 ------------------------
    let input_len = 8_000; // PipelineConfig::default().liveness_input_len
    let train = liveness_corpus(8, input_len, 0xA11CE);
    let test = liveness_corpus(50, input_len, 0xB0B);
    let config = NeuralNetConfig {
        epochs: 6,
        ..NeuralNetConfig::wav2vec2_mini()
    };
    let net = NeuralNet::fit(&train, &config).expect("liveness training");

    // Byte-stability guard, part 1: snapshot reference outputs, build the
    // quantized backend, and re-run — calibration must not move a bit.
    let probe: Vec<&[f64]> = test.features().iter().map(Vec::as_slice).collect();
    let before: Vec<u64> = probe
        .iter()
        .map(|x| net.predict_proba(x).to_bits())
        .collect();
    let calib: Vec<&[f64]> = train.features().iter().map(Vec::as_slice).collect();
    let qnet = QuantizedNet::from_net(&net, &calib).expect("calibration");
    for (x, &bits) in probe.iter().zip(&before) {
        assert_eq!(
            net.predict_proba(x).to_bits(),
            bits,
            "building the int8 backend perturbed the f64 reference"
        );
    }

    suite.bench("liveness/reference_f64", || {
        probe
            .iter()
            .map(|x| net.predict_proba(black_box(x)))
            .sum::<f64>()
    });
    let mut scratch = QuantScratch::new();
    suite.bench("liveness/int8", || {
        probe
            .iter()
            .map(|x| {
                let logit = qnet.forward_with(black_box(x), &mut scratch);
                1.0 / (1.0 + (-logit).exp())
            })
            .sum::<f64>()
    });
    let net_speedup = min_of(&suite, "liveness/reference_f64") / min_of(&suite, "liveness/int8");
    eprintln!("  liveness int8: {net_speedup:.2}x");
    if net_speedup < NET_SPEEDUP_FLOOR {
        violations.push(format!(
            "liveness int8: {net_speedup:.2}x is below the {NET_SPEEDUP_FLOOR}x floor"
        ));
    }

    // Accuracy delta: the int8 backend must classify the held-out corpus
    // within 0.5 pp of the reference.
    let acc_ref = accuracy(|x| net.predict(x), &test);
    let mut scratch = QuantScratch::new();
    let acc_int8 = accuracy(
        |x| usize::from(qnet.forward_with(x, &mut scratch) >= 0.0),
        &test,
    );
    let acc_delta = (acc_ref - acc_int8).abs();
    let max_prob_delta = probe
        .iter()
        .map(|x| (net.predict_proba(x) - qnet.predict_proba(x)).abs())
        .fold(0.0f64, f64::max);
    eprintln!(
        "  liveness accuracy: reference {acc_ref:.4}, int8 {acc_int8:.4} \
         (delta {acc_delta:.4}, max prob delta {max_prob_delta:.2e})"
    );
    if acc_delta > ACCURACY_DELTA_MAX {
        violations.push(format!(
            "liveness accuracy delta {acc_delta:.4} exceeds {ACCURACY_DELTA_MAX}"
        ));
    }

    // --- Orientation SVM: f64 reference vs int8 (reported, ungated) -----
    let mut rng = StdRng::seed_from_u64(0x5F_ACE);
    let dim = 64;
    let mut orient = Dataset::new(dim);
    for i in 0..60 {
        let offset = if i % 2 == 0 { 1.0 } else { -1.0 };
        let row: Vec<f64> = (0..dim)
            .map(|_| offset + 0.4 * gaussian(&mut rng))
            .collect();
        orient.push(row, (i % 2 == 0) as usize).expect("width");
    }
    let svm = Svm::fit(&orient, &SvmParams::default()).expect("svm training");
    let svm_calib: Vec<&[f64]> = orient.features().iter().map(Vec::as_slice).collect();
    let qsvm = QuantizedSvm::from_svm(&svm, &svm_calib).expect("svm calibration");
    let svm_agree = orient
        .features()
        .iter()
        .all(|x| svm.predict(x) == qsvm.predict(x));
    assert!(svm_agree, "int8 SVM disagreed with the reference labels");
    suite.bench("orientation_svm/reference_f64", || {
        svm_calib
            .iter()
            .map(|x| svm.decision_score(black_box(x)))
            .sum::<f64>()
    });
    let mut svm_scratch: Vec<i8> = Vec::new();
    suite.bench("orientation_svm/int8", || {
        svm_calib
            .iter()
            .map(|x| qsvm.decision_score_with(black_box(x), &mut svm_scratch))
            .sum::<f64>()
    });
    let svm_speedup =
        min_of(&suite, "orientation_svm/reference_f64") / min_of(&suite, "orientation_svm/int8");
    eprintln!("  orientation svm int8: {svm_speedup:.2}x");

    // --- Byte-stability guard, part 2: SRP modes ------------------------
    let mut rng = StdRng::seed_from_u64(0x5B9);
    let channels: Vec<Vec<f64>> = (0..4)
        .map(|_| (0..1024).map(|_| gaussian(&mut rng)).collect())
        .collect();
    let views: Vec<&[f64]> = channels.iter().map(Vec::as_slice).collect();
    let reference = srp_phat_mode(&views, 16, QuantMode::Reference).expect("srp");
    let again = srp_phat_mode(&views, 16, QuantMode::Reference).expect("srp");
    for (a, b) in reference.srp.values.iter().zip(&again.srp.values) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "reference SRP must be byte-stable"
        );
    }
    let fast = srp_phat_mode(&views, 16, QuantMode::Int8).expect("srp int8");
    let srp_max_delta = reference
        .srp
        .values
        .iter()
        .zip(&fast.srp.values)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    eprintln!("  srp int8 vs reference: max delta {srp_max_delta:.2e}");
    if srp_max_delta > 1e-9 {
        violations.push(format!(
            "srp int8 whitening drifted {srp_max_delta:.2e} from the reference (> 1e-9)"
        ));
    }

    // --- Report + gate ---------------------------------------------------
    let json = suite
        .to_json()
        .set(
            "speedups",
            Json::obj()
                .set(
                    "cross_whiten",
                    Json::Arr(
                        cross_speedups
                            .iter()
                            .map(|&(n, s, floor)| {
                                Json::obj()
                                    .set("bins", n)
                                    .set("speedup", s)
                                    .set("floor", floor)
                            })
                            .collect(),
                    ),
                )
                .set("liveness_int8", net_speedup)
                .set("orientation_svm_int8", svm_speedup),
        )
        .set(
            "avx2",
            match avx2_speedups {
                Some((dot, dist2)) => Json::obj()
                    .set("available", true)
                    .set("dot_i8_speedup", dot)
                    .set("dist2_i8_speedup", dist2),
                None => Json::obj().set("available", false),
            },
        )
        .set(
            "accuracy",
            Json::obj()
                .set("reference", acc_ref)
                .set("int8", acc_int8)
                .set("delta", acc_delta)
                .set("max_prob_delta", max_prob_delta)
                .set("srp_max_delta", srp_max_delta),
        )
        .set(
            "floors",
            Json::obj()
                .set("net_speedup", NET_SPEEDUP_FLOOR)
                .set("accuracy_delta_max", ACCURACY_DELTA_MAX),
        );
    let dir = std::env::var("HT_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join("BENCH_quant.json");
    std::fs::write(&path, json.pretty() + "\n")
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("suite quant: wrote {}", path.display());

    assert!(
        violations.is_empty(),
        "quant gate failed:\n{}",
        violations.join("\n")
    );
    eprintln!(
        "suite quant: gate ok (cross kernels above their floors, int8 net {net_speedup:.2}x, \
         accuracy delta {acc_delta:.4} <= {ACCURACY_DELTA_MAX})"
    );
}
