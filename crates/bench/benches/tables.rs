//! One benchmark per reproduced *table*: the computational kernel behind
//! each table, on a reduced-but-representative workload. (Full-count
//! regeneration is the `headtalk-repro` binary's job; these track the cost
//! of the kernels that produce each table.)

use headtalk::facing::FacingDefinition;
use headtalk::orientation::{ModelKind, OrientationDetector};
use headtalk::userstudy;
use headtalk::PipelineConfig;
use ht_bench::{black_box, Suite};
use ht_datagen::{datasets, CaptureSpec};
use ht_dsp::rng::SeedableRng;
use ht_ml::{Classifier, Dataset};

/// A synthetic stand-in for a Definition-4 feature table: separable blobs
/// at the real feature width.
fn synthetic_features(n_per: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(dim);
    for _ in 0..n_per {
        for label in [0usize, 1] {
            let center = if label == 1 { 0.8 } else { -0.8 };
            let row: Vec<f64> = (0..dim)
                .map(|k| {
                    if k < 8 {
                        center + 0.5 * ht_dsp::rng::gaussian(&mut rng)
                    } else {
                        ht_dsp::rng::gaussian(&mut rng)
                    }
                })
                .collect();
            ds.push(row, label).expect("fixed width");
        }
    }
    ds
}

/// Table I/II: the dataset builders themselves (spec generation cost).
fn bench_table2(s: &mut Suite) {
    s.bench("table2/build_all_dataset_specs", || {
        black_box(datasets::dataset1().len())
            + black_box(datasets::dataset2().len())
            + black_box(datasets::dataset8().0.len())
    });
}

/// Table III: one cross-session train+evaluate pass for one definition.
fn bench_table3(s: &mut Suite) {
    let cfg = PipelineConfig::default();
    let width = headtalk::features::feature_width(4, &cfg);
    let train = synthetic_features(90, width, 1);
    let test = synthetic_features(90, width, 2);
    s.bench("table3/definition_train_and_eval", || {
        let det = OrientationDetector::fit(black_box(&train), ModelKind::Svm, 7)
            .expect("separable training set");
        det.predict_batch(test.features())
    });
    // The definitions' label mapping itself (pure code path).
    s.bench("table3/definition_labeling_14_angles", || {
        let mut n = 0usize;
        for def in FacingDefinition::ALL {
            for a in ht_acoustics::geometry::PAPER_ANGLES_DEG {
                if def.label(black_box(a)).is_some() {
                    n += 1;
                }
            }
        }
        n
    });
}

/// Table IV: feature extraction cost as the microphone count grows
/// (2 → 6 channels of one capture).
fn bench_table4(s: &mut Suite) {
    let cfg = PipelineConfig::default();
    let spec = CaptureSpec::baseline(0x7AB4);
    let channels = spec
        .render_mics(Some(&[0, 1, 2, 3, 4, 5]))
        .expect("six-mic render");
    let pre = headtalk::preprocess::Preprocessor::new(&cfg).expect("preprocessor");
    let denoised = pre.denoise_channels(&channels).expect("denoise");
    for n in [2usize, 4, 6] {
        let subset: Vec<Vec<f64>> = denoised[..n].to_vec();
        s.bench(&format!("table4_mic_count/features_{n}_mics"), || {
            headtalk::features::extract(black_box(&subset), &cfg)
        });
    }
}

/// Table V: the SUS scorer and survey tallies.
fn bench_table5(s: &mut Suite) {
    let responses: Vec<userstudy::SusResponse> = (0..20).map(|k| [(k % 5 + 1) as u8; 10]).collect();
    s.bench("table5/sus_summary_20_participants", || {
        userstudy::sus_summary(black_box(&responses))
    });
    s.bench("table5/takeaways", userstudy::takeaways);
}

fn main() {
    let mut s = Suite::new("tables");
    bench_table2(&mut s);
    bench_table3(&mut s);
    bench_table4(&mut s);
    bench_table5(&mut s);
    s.finish();
}
