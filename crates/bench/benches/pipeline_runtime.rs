//! §IV-B15 — run-time performance of the HeadTalk pipeline stages on one
//! wake-word capture (the paper: 42 ms liveness + 136 ms orientation on an
//! i7-2600; 527 ms on the ReSpeaker's Cortex-A7).

use headtalk::liveness::prepare_input;
use headtalk::preprocess::Preprocessor;
use headtalk::{HeadTalk, PipelineConfig};
use ht_bench::{black_box, Suite};
use ht_datagen::CaptureSpec;

fn bench_pipeline(s: &mut Suite) {
    let cfg = PipelineConfig::default();
    let capture = CaptureSpec::baseline(0xBEAC)
        .render()
        .expect("render succeeds");
    let pre = Preprocessor::new(&cfg).expect("preprocessor");
    let denoised = pre.denoise_channels(&capture).expect("denoise");

    s.bench("runtime_b15/preprocess_denoise_4ch", || {
        pre.denoise_channels(black_box(&capture))
    });
    s.bench("runtime_b15/liveness_input_preparation", || {
        prepare_input(black_box(&denoised[0]), cfg.liveness_input_len)
    });
    s.bench("runtime_b15/orientation_feature_extraction", || {
        headtalk::features::extract(black_box(&denoised), &cfg)
    });
    s.bench("runtime_b15/full_wake_capture_to_features", || {
        HeadTalk::orientation_features(&cfg, black_box(&capture))
    });
}

fn bench_render(s: &mut Suite) {
    // The simulator's own cost (not part of the paper's runtime; here for
    // reproduction-throughput tracking).
    let spec = CaptureSpec::baseline(0xBEAD);
    s.bench("simulator/render_one_capture_d2", || spec.render());
}

fn main() {
    let mut s = Suite::new("pipeline_runtime");
    bench_pipeline(&mut s);
    bench_render(&mut s);
    s.finish();
}
