//! §IV-B15 — run-time performance of the HeadTalk pipeline stages on one
//! wake-word capture (the paper: 42 ms liveness + 136 ms orientation on an
//! i7-2600; 527 ms on the ReSpeaker's Cortex-A7).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use headtalk::liveness::prepare_input;
use headtalk::preprocess::Preprocessor;
use headtalk::{HeadTalk, PipelineConfig};
use ht_datagen::CaptureSpec;

fn bench_pipeline(c: &mut Criterion) {
    let cfg = PipelineConfig::default();
    let capture = CaptureSpec::baseline(0xBEAC)
        .render()
        .expect("render succeeds");
    let pre = Preprocessor::new(&cfg).expect("preprocessor");
    let denoised = pre.denoise_channels(&capture).expect("denoise");

    let mut g = c.benchmark_group("runtime_b15");
    g.sample_size(20);
    g.bench_function("preprocess_denoise_4ch", |b| {
        b.iter(|| pre.denoise_channels(black_box(&capture)))
    });
    g.bench_function("liveness_input_preparation", |b| {
        b.iter(|| prepare_input(black_box(&denoised[0]), cfg.liveness_input_len))
    });
    g.bench_function("orientation_feature_extraction", |b| {
        b.iter(|| headtalk::features::extract(black_box(&denoised), &cfg))
    });
    g.bench_function("full_wake_capture_to_features", |b| {
        b.iter(|| HeadTalk::orientation_features(&cfg, black_box(&capture)))
    });
    g.finish();
}

fn bench_render(c: &mut Criterion) {
    // The simulator's own cost (not part of the paper's runtime; here for
    // reproduction-throughput tracking).
    let spec = CaptureSpec::baseline(0xBEAD);
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("render_one_capture_d2", |b| b.iter(|| spec.render()));
    g.finish();
}

criterion_group!(benches, bench_pipeline, bench_render);
criterion_main!(benches);
