//! Parallel scaling of the pipeline's hot paths on the ht-par runtime.
//!
//! Each workload runs under a dedicated 1-, 2-, and 4-thread
//! [`ht_par::Pool`] (via [`ht_par::Pool::install`], so every `par_*` call
//! inside the workload routes to that pool). By the ht-par determinism
//! contract the computed results are byte-identical across the widths —
//! only the wall-clock time may differ — so the suite doubles as a scaling
//! report: compare `…_w1` against `…_w4` in `BENCH_parallel.json`.
//!
//! The two workloads mirror the suites the paper's runtime discussion
//! cares about: the §IV-B15 wake-capture-to-features path (parallel per
//! mic / pair / channel) and the Table III train-and-evaluate kernel run
//! with the random-forest model (parallel per tree).

use headtalk::orientation::{ModelKind, OrientationDetector};
use headtalk::{HeadTalk, PipelineConfig};
use ht_bench::{black_box, Suite};
use ht_datagen::CaptureSpec;
use ht_dsp::rng::SeedableRng;
use ht_ml::{Classifier, Dataset};
use ht_par::Pool;

/// The thread widths every workload sweeps.
const WIDTHS: [usize; 3] = [1, 2, 4];

/// Separable blobs at the real 4-mic feature width (same generator as the
/// `tables` suite so the two suites stay comparable).
fn synthetic_features(n_per: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(dim);
    for _ in 0..n_per {
        for label in [0usize, 1] {
            let center = if label == 1 { 0.8 } else { -0.8 };
            let row: Vec<f64> = (0..dim)
                .map(|k| {
                    if k < 8 {
                        center + 0.5 * ht_dsp::rng::gaussian(&mut rng)
                    } else {
                        ht_dsp::rng::gaussian(&mut rng)
                    }
                })
                .collect();
            ds.push(row, label).expect("fixed width");
        }
    }
    ds
}

fn bench_full_wake(s: &mut Suite) {
    let cfg = PipelineConfig::default();
    let capture = CaptureSpec::baseline(0xBEAC)
        .render()
        .expect("render succeeds");
    for width in WIDTHS {
        let pool = Pool::new(width);
        s.bench(
            &format!("runtime_b15/full_wake_capture_to_features_w{width}"),
            || pool.install(|| HeadTalk::orientation_features(&cfg, black_box(&capture))),
        );
    }
}

fn bench_forest_train_eval(s: &mut Suite) {
    let cfg = PipelineConfig::default();
    let width = headtalk::features::feature_width(4, &cfg);
    let train = synthetic_features(90, width, 1);
    let test = synthetic_features(90, width, 2);
    for threads in WIDTHS {
        let pool = Pool::new(threads);
        s.bench(&format!("table3/forest_train_and_eval_w{threads}"), || {
            pool.install(|| {
                let det = OrientationDetector::fit(black_box(&train), ModelKind::RandomForest, 7)
                    .expect("separable training set");
                det.predict_batch(test.features())
            })
        });
    }
}

fn main() {
    let mut s = Suite::new("parallel");
    bench_full_wake(&mut s);
    bench_forest_train_eval(&mut s);
    s.finish();
}
