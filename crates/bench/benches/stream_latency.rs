//! Per-frame latency and allocation budget of the streaming wake pipeline.
//!
//! The real-time contract: each analysis frame (ingest → STFT → sliding
//! SRP-PHAT → evidence scoring → gate) must finish well inside one hop of
//! audio (10 ms at 48 kHz), and the steady-state loop must not touch the
//! heap. This bench drives [`headtalk::WakeStream`] over rendered
//! `ht-datagen` scenarios with observability on, reads the per-stage
//! latency histograms back out of the `ht-obs` registry, and doubles as
//! CI's gate on both budgets:
//!
//! * `stream.frame` p95 must stay under [`DEADLINE_FRACTION`] of the hop
//!   deadline (real-time with headroom),
//! * the post-warmup push loop must make **zero** heap allocations
//!   (counted by a wrapping global allocator, as in
//!   `crates/dsp/tests/alloc_free.rs`).
//!
//! Writes `BENCH_stream.json` (frame/stage percentiles, frames per
//! second, per-scenario early-exit indices) into `HT_BENCH_DIR`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use headtalk::liveness::LivenessDetector;
use headtalk::orientation::{ModelKind, OrientationDetector};
use headtalk::stream::ExitReason;
use headtalk::{HeadTalk, PipelineConfig, StreamConfig};
use ht_bench::format_ns;
use ht_datagen::{CaptureSpec, SourceKind};
use ht_dsp::json::Json;
use ht_dsp::rng::{gaussian, SeedableRng, StdRng};
use ht_ml::Dataset;
use ht_obs::HistSnapshot;
use ht_speech::replay::SpeakerModel;
use ht_speech::voice::VoiceProfile;

/// The frame p95 must fit in this fraction of the hop deadline. 0.5 keeps
/// half the budget as headroom for slower CI machines.
const DEADLINE_FRACTION: f64 = 0.5;

struct CountingAlloc;

thread_local! {
    // Const-initialized `Cell<u64>`: no lazy-init allocation and no
    // destructor, so the counter itself never perturbs the count.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocations made by `f` on this thread.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(|c| c.get());
    f();
    ALLOCS.with(|c| c.get()) - before
}

/// A pipeline with quickly trained stand-in models. The per-frame path
/// under test never consults the models (they only run at finalization),
/// but `WakeStream` borrows a full `HeadTalk`; training on tiny synthetic
/// datasets keeps bench startup in milliseconds instead of minutes.
fn toy_pipeline() -> HeadTalk {
    let config = PipelineConfig::default();
    let mut rng = StdRng::seed_from_u64(0x57EA);

    let width = headtalk::features::feature_width(4, &config);
    let mut orient = Dataset::new(width);
    for i in 0..12 {
        let offset = if i % 2 == 0 { 1.0 } else { -1.0 };
        let row: Vec<f64> = (0..width)
            .map(|_| offset + 0.3 * gaussian(&mut rng))
            .collect();
        orient.push(row, (i % 2 == 0) as usize).expect("push");
    }
    let orientation =
        OrientationDetector::fit(&orient, ModelKind::Svm, 7).expect("orientation training");

    let mut live = Dataset::new(config.liveness_input_len);
    for i in 0..8 {
        let offset = if i % 2 == 0 { 0.5 } else { -0.5 };
        let row: Vec<f64> = (0..config.liveness_input_len)
            .map(|_| offset + 0.1 * gaussian(&mut rng))
            .collect();
        live.push(row, (i % 2 == 0) as usize).expect("push");
    }
    let liveness = LivenessDetector::fit(&live, 8, 2).expect("liveness training");

    HeadTalk::new(config, liveness, orientation).expect("pipeline assembly")
}

struct ScenarioReport {
    name: &'static str,
    frames: u64,
    early_exit_frame: i64,
    early_exit_reason: &'static str,
    steady_allocs: u64,
}

/// Streams one capture `passes` times (pass 0 is warmup: it populates the
/// obs registry entries and the FFT plan cache). Later passes count heap
/// allocations over the post-warmup portion of the push loop.
fn run_scenario(
    ht: &HeadTalk,
    name: &'static str,
    channels: &[Vec<f64>],
    passes: usize,
) -> ScenarioReport {
    let len = channels[0].len();
    let config = StreamConfig {
        capacity_hint: len,
        ..StreamConfig::for_pipeline(ht.config())
    };
    let hop = config.hop;
    // Per-stream warmup: the first few chunks settle lazily sized scratch.
    let warm_chunks = 4;

    let mut steady_allocs = 0u64;
    let mut report = None;
    for pass in 0..passes.max(2) {
        let mut stream = ht.streamer_with(channels.len(), config).expect("streamer");
        let mut chunk: Vec<&[f64]> = Vec::with_capacity(channels.len());
        let mut push_range = |stream: &mut headtalk::WakeStream<'_>, from: usize, to: usize| {
            let mut pos = from;
            while pos < to {
                let end = (pos + hop).min(to);
                chunk.clear();
                chunk.extend(channels.iter().map(|c| &c[pos..end]));
                stream.push(&chunk).expect("push");
                pos = end;
            }
        };
        let warm_end = (warm_chunks * hop).min(len);
        push_range(&mut stream, 0, warm_end);
        let allocs = allocs_during(|| push_range(&mut stream, warm_end, len));
        if pass > 0 {
            steady_allocs = steady_allocs.max(allocs);
        }
        let (frame, reason) = match stream.early_exit() {
            Some(e) => (
                e.frame as i64,
                match e.reason {
                    ExitReason::NotLive => "not_live",
                    ExitReason::NotFacing => "not_facing",
                },
            ),
            None => (-1, "none"),
        };
        report = Some(ScenarioReport {
            name,
            frames: stream.frames(),
            early_exit_frame: frame,
            early_exit_reason: reason,
            steady_allocs,
        });
    }
    report.expect("at least one pass ran")
}

fn hist_json(name: &str, h: &HistSnapshot) -> Json {
    Json::obj()
        .set("name", name)
        .set("count", h.count)
        .set("mean_ns", h.mean_ns)
        .set("p50_ns", h.p50_ns)
        .set("p95_ns", h.p95_ns)
        .set("p99_ns", h.p99_ns)
        .set("min_ns", h.min_ns)
        .set("max_ns", h.max_ns)
}

fn main() {
    let fast = std::env::var("HT_BENCH_FAST").is_ok_and(|v| v != "0");
    let passes = if fast { 2 } else { 6 };

    let ht = toy_pipeline();
    let config = StreamConfig::for_pipeline(ht.config());
    let deadline_ns = config.hop_deadline_secs(ht.config().sample_rate) * 1e9;
    let budget_ns = DEADLINE_FRACTION * deadline_ns;
    eprintln!(
        "suite stream: frame {} / hop {} samples, {} hop deadline, {} frame p95 budget, {passes} passes",
        config.frame_len,
        config.hop,
        format_ns(deadline_ns),
        format_ns(budget_ns),
    );

    let scenarios: Vec<(&'static str, CaptureSpec)> = vec![
        ("facing_human", CaptureSpec::baseline(0x57E0)),
        (
            "backward_human",
            CaptureSpec {
                angle_deg: 180.0,
                ..CaptureSpec::baseline(0x57E1)
            },
        ),
        (
            "facing_replay",
            CaptureSpec {
                source: SourceKind::Replay {
                    model: SpeakerModel::SonySrsX5,
                    voice: VoiceProfile::adult_male(),
                },
                ..CaptureSpec::baseline(0x57E2)
            },
        ),
    ];

    ht_obs::set_mode(ht_obs::Mode::Json);
    ht_obs::registry().reset();

    let mut reports = Vec::new();
    for (name, spec) in scenarios {
        let channels = spec.render().expect("render");
        let r = run_scenario(&ht, name, &channels, passes);
        eprintln!(
            "  {:<16} {:>4} frames  early exit {}  steady allocs {}",
            r.name,
            r.frames,
            if r.early_exit_frame < 0 {
                "none".to_string()
            } else {
                format!("frame {} ({})", r.early_exit_frame, r.early_exit_reason)
            },
            r.steady_allocs,
        );
        reports.push(r);
    }

    let snapshot = ht_obs::registry().snapshot();
    ht_obs::set_mode(ht_obs::Mode::Off);

    let stage_names = [
        "stream.ingest",
        "stream.stft",
        "stream.srp",
        "stream.score",
        "stream.gate",
        "stream.frame",
    ];
    let mut stages = Vec::new();
    for name in stage_names {
        let h = snapshot
            .span(name)
            .unwrap_or_else(|| panic!("span {name} was never recorded"));
        eprintln!(
            "  {name:<16} p50 {:>10}  p95 {:>10}  p99 {:>10}  ({} samples)",
            format_ns(h.p50_ns as f64),
            format_ns(h.p95_ns as f64),
            format_ns(h.p99_ns as f64),
            h.count,
        );
        stages.push(hist_json(name, h));
    }

    let frame = *snapshot.span("stream.frame").expect("frame span");
    let frames_per_sec = if frame.mean_ns > 0.0 {
        1e9 / frame.mean_ns
    } else {
        0.0
    };
    eprintln!("  throughput       {frames_per_sec:.0} frames/s");

    let json = Json::obj()
        .set("suite", "stream")
        .set(
            "geometry",
            Json::obj()
                .set("frame_len", config.frame_len)
                .set("hop", config.hop)
                .set("sample_rate_hz", ht.config().sample_rate)
                .set("hop_deadline_ns", deadline_ns)
                .set("frame_p95_budget_ns", budget_ns),
        )
        .set("frames_per_sec", frames_per_sec)
        .set("stages", Json::Arr(stages))
        .set(
            "scenarios",
            Json::Arr(
                reports
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .set("name", r.name)
                            .set("frames", r.frames)
                            .set("early_exit_frame", r.early_exit_frame)
                            .set("early_exit_reason", r.early_exit_reason)
                            .set("steady_allocs", r.steady_allocs)
                    })
                    .collect(),
            ),
        );
    let dir = std::env::var("HT_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join("BENCH_stream.json");
    std::fs::write(&path, json.pretty() + "\n")
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("suite stream: wrote {}", path.display());

    // The CI gates: real-time with headroom, and a heap-silent loop.
    let mut violations = Vec::new();
    if (frame.p95_ns as f64) > budget_ns {
        violations.push(format!(
            "stream.frame p95 {} exceeds the {} budget ({DEADLINE_FRACTION} x {} hop deadline)",
            format_ns(frame.p95_ns as f64),
            format_ns(budget_ns),
            format_ns(deadline_ns),
        ));
    }
    for r in &reports {
        if r.steady_allocs > 0 {
            violations.push(format!(
                "{}: steady-state push loop made {} heap allocations (must be 0)",
                r.name, r.steady_allocs
            ));
        }
    }
    assert!(
        violations.is_empty(),
        "stream latency gate failed:\n{}",
        violations.join("\n")
    );
    eprintln!(
        "suite stream: gate ok (p95 {} < {} budget, 0 steady-state allocations)",
        format_ns(frame.p95_ns as f64),
        format_ns(budget_ns),
    );
}
