//! Sustained multi-tenant serving throughput and tail latency.
//!
//! Drives the deterministic load generator (`ht_serve::run_load`) over a
//! sharded [`WakeServer`] — thousands of sessions, ragged seeded
//! interleavings — with observability on, then reads the serving-layer
//! histograms back out of the `ht-obs` registry. Doubles as CI's gate on
//! the serving budgets:
//!
//! * sustained end-to-end wake decisions per second must stay above
//!   [`DECISIONS_PER_SEC_FLOOR`],
//! * the decision path itself (evidence assembly + model inference —
//!   the `serve.assemble` and `serve.decision` spans, measured at the
//!   median per session) must sustain
//!   [`FINALIZE_DECISIONS_PER_SEC_FLOOR`]: before the incremental
//!   finalize this path re-transformed the whole capture at
//!   ~4.5 ms/session (~144 decisions/s single-core); incremental
//!   assembly with f64 inference reached ~620/s; int8 decision
//!   backends ~930/s; the adaptive directivity flush and AVX2 i8 dot
//!   kernels put the measured path at ~1.8k/s, and the floor sits above
//!   every slower configuration so losing any of the optimizations
//!   cannot land,
//! * the median `serve.assemble` must stay under
//!   [`ASSEMBLE_P50_CEILING_NS`] — the directivity-flush half of the
//!   decision path, pinned separately so inference speed cannot mask a
//!   flush regression,
//! * the per-session finalize p99 (`serve.decision`) must stay under
//!   [`FINALIZE_P99_CEILING_NS`],
//! * the per-chunk `serve.push` p99 must stay under
//!   [`PUSH_P99_CEILING_NS`] (the tail a fleet feels as added wake
//!   latency).
//!
//! Writes `BENCH_server.json` (throughput, span percentiles, serve
//! counters, replay checksum) into `HT_BENCH_DIR`.

use std::time::Instant;

use ht_bench::format_ns;
use ht_dsp::json::Json;
use ht_obs::HistSnapshot;
use ht_serve::{
    noise_captures, run_load, toy_pipeline, LoadConfig, ServeConfig, TokenBucketConfig, WakeServer,
};

/// CI floor on sustained end-to-end wake decisions per second (pushes,
/// scheduling, and finalization all included). Measured ~530/s in fast
/// mode on a single core with prewarmed slots — per-frame analysis
/// happens on the push path, so this number is bounded by total DSP
/// work, not by finalize; the floor sits well below so only a serving
/// regression (lock contention, lost parallelism, per-session rebuild
/// costs, losing prewarm) can cross it, not machine noise.
const DECISIONS_PER_SEC_FLOOR: f64 = 150.0;

/// CI floor on decision-path throughput: the inverse of the median
/// per-session cost of `serve.assemble` + `serve.decision`. The
/// pre-incremental path re-ran the full STFT/SRP/feature pipeline at
/// finalize (~4.5 ms/session, ~144/s single-core); incremental assembly
/// is O(features) (~1.6 ms/session, ~620/s with f64 inference); int8
/// decision inference (`QuantMode::Int8`, calibrated below) cut the
/// `serve.decision` median from ~0.8 ms to ~0.25 ms (~930/s); the
/// adaptive directivity flush (partial captures transform at the next
/// power of two instead of the full 32k segment) plus the AVX2 i8 dot
/// kernels push the measured path to ~1.8k/s. 1200/s sits above
/// everything the old full-segment flush could reach, so regressing the
/// flush grid, the quantized backend, or the capture re-transform cannot
/// pass. Gated at the median so isolated scheduler stalls on a loaded
/// CI runner don't fail a healthy path.
const FINALIZE_DECISIONS_PER_SEC_FLOOR: f64 = 1200.0;

/// CI ceiling on the median `serve.assemble` cost in nanoseconds: the
/// evidence-assembly half of the decision path, dominated by the
/// directivity flush. With the adaptive flush the median sits at
/// ~180–280 µs for the bench's half-second captures; a regression back
/// to transforming the full 32k segment costs over a millisecond and
/// trips this even when `serve.decision` stays fast.
const ASSEMBLE_P50_CEILING_NS: u64 = 300_000;

/// CI ceiling on the per-session finalize (`serve.decision`) p99 in
/// nanoseconds. Measured ~0.8 ms (one conv-net forward + the facing
/// classifier); 4 ms sits under the old ~4.5 ms re-transform cost so a
/// regression to whole-capture finalization trips it even before the
/// throughput floor does.
const FINALIZE_P99_CEILING_NS: u64 = 4_000_000;

/// CI ceiling on the `serve.push` p99 in nanoseconds. Measured ~0.56 ms;
/// 5 ms (half a hop of audio) is the point where per-chunk tail latency
/// would threaten the real-time budget.
const PUSH_P99_CEILING_NS: u64 = 5_000_000;

fn hist_json(name: &str, h: &HistSnapshot) -> Json {
    Json::obj()
        .set("name", name)
        .set("count", h.count)
        .set("mean_ns", h.mean_ns)
        .set("p50_ns", h.p50_ns)
        .set("p95_ns", h.p95_ns)
        .set("p99_ns", h.p99_ns)
        .set("min_ns", h.min_ns)
        .set("max_ns", h.max_ns)
}

fn main() {
    let fast = std::env::var("HT_BENCH_FAST").is_ok_and(|v| v != "0");
    let n_sessions = if fast { 300 } else { 2000 };

    let mut ht = toy_pipeline();
    let serve_config = ServeConfig {
        n_shards: 4,
        sessions_per_shard: 32,
        // Build every slot at server construction: `serve.open` then never
        // pays first-session stream construction, which used to put tens
        // of milliseconds into the open p99 recorded below.
        prewarm_slots: 32,
        bucket: TokenBucketConfig {
            capacity: u64::MAX,
            refill_per_sec: 0,
        },
        ..ServeConfig::for_pipeline(ht.config())
    };
    let load_config = LoadConfig {
        seed: 0xBE7C,
        n_sessions,
        ..LoadConfig::default()
    };
    let captures = noise_captures(8, serve_config.n_channels, 4800, 0, 0x5E55);
    // Serve the way a deployed fleet would: int8 decision backends
    // calibrated offline on the drive's own capture family. The server
    // inherits the mode through `Pipeline::infer_assembled`, so the
    // decision-path floor below gates the quantized inference speedup
    // end-to-end, not just in a kernel microbench.
    ht.enable_int8(&captures).expect("int8 calibration");

    eprintln!(
        "suite server: {n_sessions} sessions, {} shards x {} slots, {} threads",
        serve_config.n_shards,
        serve_config.sessions_per_shard,
        ht_par::current_threads(),
    );

    // Warmup drive: builds the arena slots, grows every buffer, settles
    // the FFT plan cache — the steady state the throughput claim is about.
    {
        let server = WakeServer::new(&ht, serve_config);
        let warm = LoadConfig {
            n_sessions: 2 * serve_config.n_shards * serve_config.sessions_per_shard,
            ..load_config
        };
        run_load(&server, &captures, &warm).expect("warmup drive");
    }

    // Two measured drives; the faster one is gated. A single drive is
    // hostage to transient contention (fast mode is only ~1.5 s of work),
    // and both drives must replay to the same checksum anyway — asserted
    // below, making the bench double as a determinism check.
    let mut best: Option<(ht_serve::LoadReport, ht_obs::RegistrySnapshot, f64, usize)> = None;
    for _ in 0..2 {
        ht_obs::set_mode(ht_obs::Mode::Json);
        ht_obs::registry().reset();
        let server = WakeServer::new(&ht, serve_config);
        let start = Instant::now();
        let report = run_load(&server, &captures, &load_config).expect("measured drive");
        let elapsed = start.elapsed().as_secs_f64();
        let snapshot = ht_obs::registry().snapshot();
        ht_obs::set_mode(ht_obs::Mode::Off);
        let slots_built = server.stats().slots_built;
        match &best {
            Some((prev_report, _, prev_elapsed, _)) => {
                assert_eq!(
                    prev_report.checksum, report.checksum,
                    "two identical drives produced different checksums"
                );
                if elapsed < *prev_elapsed {
                    best = Some((report, snapshot, elapsed, slots_built));
                }
            }
            None => best = Some((report, snapshot, elapsed, slots_built)),
        }
    }
    let (report, snapshot, elapsed, slots_built) = best.expect("at least one drive");

    assert_eq!(report.decided, n_sessions, "every session must decide");
    let decisions_per_sec = report.decided as f64 / elapsed.max(1e-9);
    eprintln!(
        "  decided {} ({} accepted, {} muted) in {elapsed:.3} s  ->  {decisions_per_sec:.0} decisions/s",
        report.decided, report.accepted, report.soft_muted,
    );
    eprintln!("  checksum {:#018x}", report.checksum);

    let span_names = [
        "serve.open",
        "serve.push",
        "serve.assemble",
        "serve.decision",
    ];
    let mut spans = Vec::new();
    for name in span_names {
        let h = snapshot
            .span(name)
            .unwrap_or_else(|| panic!("span {name} was never recorded"));
        eprintln!(
            "  {name:<16} p50 {:>10}  p95 {:>10}  p99 {:>10}  ({} samples)",
            format_ns(h.p50_ns as f64),
            format_ns(h.p95_ns as f64),
            format_ns(h.p99_ns as f64),
            h.count,
        );
        spans.push(hist_json(name, h));
    }
    let open = *snapshot.span("serve.open").expect("open span");
    let push = *snapshot.span("serve.push").expect("push span");
    let assemble = *snapshot.span("serve.assemble").expect("assemble span");
    let decision = *snapshot.span("serve.decision").expect("decision span");

    // Decision-path throughput: time spent assembling evidence and
    // running models — the quantity the incremental finalize changed
    // (end-to-end decisions/s above is bounded by push-path DSP work and
    // machine parallelism). Two views: the mean-based total is reported,
    // the median-based typical cost is gated. The gate uses medians
    // because on a busy single-core CI runner a few scheduler/paging
    // stalls can drop 30+ ms into an assemble tail and triple the mean
    // while the typical per-session cost is untouched; a regression back
    // to re-transforming the capture moves the median itself (~4.5 ms),
    // so the floor still catches it.
    let decision_path_secs =
        (assemble.mean_ns * assemble.count as f64 + decision.mean_ns * decision.count as f64) / 1e9;
    let mean_decisions_per_sec = report.decided as f64 / decision_path_secs.max(1e-9);
    let typical_path_ns = (assemble.p50_ns + decision.p50_ns) as f64;
    let finalize_decisions_per_sec = 1e9 / typical_path_ns.max(1e-9);
    eprintln!(
        "  decision path: {decision_path_secs:.3} s total ({mean_decisions_per_sec:.0}/s mean)  ->  \
         {finalize_decisions_per_sec:.0} decisions/s typical"
    );

    let counters = Json::obj()
        .set("admitted", snapshot.counter("serve.admitted").unwrap_or(0))
        .set(
            "decisions",
            snapshot.counter("serve.decisions").unwrap_or(0),
        )
        .set(
            "shard_sessions_hwm",
            snapshot.counter("serve.shard_sessions_hwm").unwrap_or(0),
        )
        .set(
            "arena_slots_hwm",
            snapshot.counter("serve.arena_slots_hwm").unwrap_or(0),
        );

    let json = Json::obj()
        .set("suite", "server")
        .set(
            "config",
            Json::obj()
                .set("sessions", n_sessions)
                .set("n_shards", serve_config.n_shards)
                .set("sessions_per_shard", serve_config.sessions_per_shard)
                .set("threads", ht_par::current_threads())
                .set("seed", load_config.seed),
        )
        .set("decisions_per_sec", decisions_per_sec)
        .set("decisions_per_sec_floor", DECISIONS_PER_SEC_FLOOR)
        .set("finalize_decisions_per_sec", finalize_decisions_per_sec)
        .set("finalize_decisions_per_sec_mean", mean_decisions_per_sec)
        .set(
            "finalize_decisions_per_sec_floor",
            FINALIZE_DECISIONS_PER_SEC_FLOOR,
        )
        .set("finalize_p99_ceiling_ns", FINALIZE_P99_CEILING_NS)
        .set("assemble_p50_ns", assemble.p50_ns)
        .set("assemble_p50_ceiling_ns", ASSEMBLE_P50_CEILING_NS)
        .set("open_p99_ns", open.p99_ns)
        .set("push_p99_ceiling_ns", PUSH_P99_CEILING_NS)
        .set("elapsed_s", elapsed)
        .set("decided", report.decided)
        .set("accepted", report.accepted)
        .set("soft_muted", report.soft_muted)
        .set("frames", report.frames)
        .set("samples", report.samples)
        .set("checksum", format!("{:#018x}", report.checksum))
        .set("slots_built", slots_built)
        .set("spans", Json::Arr(spans))
        .set("counters", counters);
    let dir = std::env::var("HT_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join("BENCH_server.json");
    std::fs::write(&path, json.pretty() + "\n")
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("suite server: wrote {}", path.display());

    // The CI gates: sustained throughput, incremental finalize, and
    // bounded tails.
    let mut violations = Vec::new();
    if decisions_per_sec < DECISIONS_PER_SEC_FLOOR {
        violations.push(format!(
            "{decisions_per_sec:.0} decisions/s is under the {DECISIONS_PER_SEC_FLOOR:.0}/s floor"
        ));
    }
    if finalize_decisions_per_sec < FINALIZE_DECISIONS_PER_SEC_FLOOR {
        violations.push(format!(
            "decision path sustains {finalize_decisions_per_sec:.0} decisions/s at the median, \
             under the {FINALIZE_DECISIONS_PER_SEC_FLOOR:.0}/s floor (above the f64-inference \
             ceiling)"
        ));
    }
    if assemble.p50_ns > ASSEMBLE_P50_CEILING_NS {
        violations.push(format!(
            "serve.assemble p50 {} exceeds the {} ceiling",
            format_ns(assemble.p50_ns as f64),
            format_ns(ASSEMBLE_P50_CEILING_NS as f64),
        ));
    }
    if decision.p99_ns > FINALIZE_P99_CEILING_NS {
        violations.push(format!(
            "serve.decision p99 {} exceeds the {} ceiling",
            format_ns(decision.p99_ns as f64),
            format_ns(FINALIZE_P99_CEILING_NS as f64),
        ));
    }
    if push.p99_ns > PUSH_P99_CEILING_NS {
        violations.push(format!(
            "serve.push p99 {} exceeds the {} ceiling",
            format_ns(push.p99_ns as f64),
            format_ns(PUSH_P99_CEILING_NS as f64),
        ));
    }
    assert!(
        violations.is_empty(),
        "server throughput gate failed:\n{}",
        violations.join("\n")
    );
    eprintln!(
        "suite server: gate ok ({decisions_per_sec:.0} decisions/s >= {DECISIONS_PER_SEC_FLOOR:.0}, \
         decision path {finalize_decisions_per_sec:.0}/s >= {FINALIZE_DECISIONS_PER_SEC_FLOOR:.0}, \
         assemble p50 {} < {}, finalize p99 {} < {}, push p99 {} < {})",
        format_ns(assemble.p50_ns as f64),
        format_ns(ASSEMBLE_P50_CEILING_NS as f64),
        format_ns(decision.p99_ns as f64),
        format_ns(FINALIZE_P99_CEILING_NS as f64),
        format_ns(push.p99_ns as f64),
        format_ns(PUSH_P99_CEILING_NS as f64),
    );
}
