//! Sustained multi-tenant serving throughput and tail latency.
//!
//! Drives the deterministic load generator (`ht_serve::run_load`) over a
//! sharded [`WakeServer`] — thousands of sessions, ragged seeded
//! interleavings — with observability on, then reads the serving-layer
//! histograms back out of the `ht-obs` registry. Doubles as CI's gate on
//! the serving budgets:
//!
//! * sustained wake decisions per second must stay above
//!   [`DECISIONS_PER_SEC_FLOOR`],
//! * the per-chunk `serve.push` p99 must stay under
//!   [`PUSH_P99_CEILING_NS`] (the tail a fleet feels as added wake
//!   latency).
//!
//! Writes `BENCH_server.json` (throughput, span percentiles, serve
//! counters, replay checksum) into `HT_BENCH_DIR`.

use std::time::Instant;

use ht_bench::format_ns;
use ht_dsp::json::Json;
use ht_obs::HistSnapshot;
use ht_serve::{
    noise_captures, run_load, toy_pipeline, LoadConfig, ServeConfig, TokenBucketConfig, WakeServer,
};

/// CI floor on sustained wake decisions per second. Measured ~144/s in
/// fast mode on a single core (the finalize-time batch decision dominates
/// at ~4.5 ms per session); the floor sits well below so only a serving
/// regression (lock contention, lost parallelism, per-session rebuild
/// costs) can cross it, not machine noise.
const DECISIONS_PER_SEC_FLOOR: f64 = 50.0;

/// CI ceiling on the `serve.push` p99 in nanoseconds. Measured ~0.56 ms;
/// 5 ms (half a hop of audio) is the point where per-chunk tail latency
/// would threaten the real-time budget.
const PUSH_P99_CEILING_NS: u64 = 5_000_000;

fn hist_json(name: &str, h: &HistSnapshot) -> Json {
    Json::obj()
        .set("name", name)
        .set("count", h.count)
        .set("mean_ns", h.mean_ns)
        .set("p50_ns", h.p50_ns)
        .set("p95_ns", h.p95_ns)
        .set("p99_ns", h.p99_ns)
        .set("min_ns", h.min_ns)
        .set("max_ns", h.max_ns)
}

fn main() {
    let fast = std::env::var("HT_BENCH_FAST").is_ok_and(|v| v != "0");
    let n_sessions = if fast { 300 } else { 2000 };

    let ht = toy_pipeline();
    let serve_config = ServeConfig {
        n_shards: 4,
        sessions_per_shard: 32,
        bucket: TokenBucketConfig {
            capacity: u64::MAX,
            refill_per_sec: 0,
        },
        ..ServeConfig::for_pipeline(ht.config())
    };
    let load_config = LoadConfig {
        seed: 0xBE7C,
        n_sessions,
        ..LoadConfig::default()
    };
    let captures = noise_captures(8, serve_config.n_channels, 4800, 0, 0x5E55);

    eprintln!(
        "suite server: {n_sessions} sessions, {} shards x {} slots, {} threads",
        serve_config.n_shards,
        serve_config.sessions_per_shard,
        ht_par::current_threads(),
    );

    // Warmup drive: builds the arena slots, grows every buffer, settles
    // the FFT plan cache — the steady state the throughput claim is about.
    {
        let server = WakeServer::new(&ht, serve_config);
        let warm = LoadConfig {
            n_sessions: 2 * serve_config.n_shards * serve_config.sessions_per_shard,
            ..load_config
        };
        run_load(&server, &captures, &warm).expect("warmup drive");
    }

    ht_obs::set_mode(ht_obs::Mode::Json);
    ht_obs::registry().reset();

    let server = WakeServer::new(&ht, serve_config);
    let start = Instant::now();
    let report = run_load(&server, &captures, &load_config).expect("measured drive");
    let elapsed = start.elapsed().as_secs_f64();

    let snapshot = ht_obs::registry().snapshot();
    ht_obs::set_mode(ht_obs::Mode::Off);

    assert_eq!(report.decided, n_sessions, "every session must decide");
    let decisions_per_sec = report.decided as f64 / elapsed.max(1e-9);
    eprintln!(
        "  decided {} ({} accepted, {} muted) in {elapsed:.3} s  ->  {decisions_per_sec:.0} decisions/s",
        report.decided, report.accepted, report.soft_muted,
    );
    eprintln!("  checksum {:#018x}", report.checksum);

    let span_names = ["serve.open", "serve.push", "serve.decision"];
    let mut spans = Vec::new();
    for name in span_names {
        let h = snapshot
            .span(name)
            .unwrap_or_else(|| panic!("span {name} was never recorded"));
        eprintln!(
            "  {name:<16} p50 {:>10}  p95 {:>10}  p99 {:>10}  ({} samples)",
            format_ns(h.p50_ns as f64),
            format_ns(h.p95_ns as f64),
            format_ns(h.p99_ns as f64),
            h.count,
        );
        spans.push(hist_json(name, h));
    }
    let push = *snapshot.span("serve.push").expect("push span");

    let counters = Json::obj()
        .set("admitted", snapshot.counter("serve.admitted").unwrap_or(0))
        .set(
            "decisions",
            snapshot.counter("serve.decisions").unwrap_or(0),
        )
        .set(
            "shard_sessions_hwm",
            snapshot.counter("serve.shard_sessions_hwm").unwrap_or(0),
        )
        .set(
            "arena_slots_hwm",
            snapshot.counter("serve.arena_slots_hwm").unwrap_or(0),
        );

    let json = Json::obj()
        .set("suite", "server")
        .set(
            "config",
            Json::obj()
                .set("sessions", n_sessions)
                .set("n_shards", serve_config.n_shards)
                .set("sessions_per_shard", serve_config.sessions_per_shard)
                .set("threads", ht_par::current_threads())
                .set("seed", load_config.seed),
        )
        .set("decisions_per_sec", decisions_per_sec)
        .set("decisions_per_sec_floor", DECISIONS_PER_SEC_FLOOR)
        .set("push_p99_ceiling_ns", PUSH_P99_CEILING_NS)
        .set("elapsed_s", elapsed)
        .set("decided", report.decided)
        .set("accepted", report.accepted)
        .set("soft_muted", report.soft_muted)
        .set("frames", report.frames)
        .set("samples", report.samples)
        .set("checksum", format!("{:#018x}", report.checksum))
        .set("slots_built", server.stats().slots_built)
        .set("spans", Json::Arr(spans))
        .set("counters", counters);
    let dir = std::env::var("HT_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join("BENCH_server.json");
    std::fs::write(&path, json.pretty() + "\n")
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("suite server: wrote {}", path.display());

    // The CI gates: sustained throughput and bounded push tails.
    let mut violations = Vec::new();
    if decisions_per_sec < DECISIONS_PER_SEC_FLOOR {
        violations.push(format!(
            "{decisions_per_sec:.0} decisions/s is under the {DECISIONS_PER_SEC_FLOOR:.0}/s floor"
        ));
    }
    if push.p99_ns > PUSH_P99_CEILING_NS {
        violations.push(format!(
            "serve.push p99 {} exceeds the {} ceiling",
            format_ns(push.p99_ns as f64),
            format_ns(PUSH_P99_CEILING_NS as f64),
        ));
    }
    assert!(
        violations.is_empty(),
        "server throughput gate failed:\n{}",
        violations.join("\n")
    );
    eprintln!(
        "suite server: gate ok ({decisions_per_sec:.0} decisions/s >= {DECISIONS_PER_SEC_FLOOR:.0}, push p99 {} < {})",
        format_ns(push.p99_ns as f64),
        format_ns(PUSH_P99_CEILING_NS as f64),
    );
}
