//! Micro-benchmarks of the DSP primitives the per-wake-word latency is
//! built from (supporting data for the §IV-B15 runtime analysis).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ht_dsp::filter::Butterworth;
use ht_dsp::signal::fractional_delay;
use ht_dsp::srp::srp_phat;
use rand::SeedableRng;

fn signal(n: usize) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    ht_dsp::rng::white_noise(&mut rng, n)
}

fn bench_fft(c: &mut Criterion) {
    let x = signal(32_768);
    c.bench_function("fft/rfft_32768", |b| {
        b.iter(|| ht_dsp::fft::rfft(black_box(&x)))
    });
    let x = signal(48_000);
    c.bench_function("fft/rfft_48000_padded", |b| {
        b.iter(|| ht_dsp::fft::rfft(black_box(&x)))
    });
}

fn bench_filter(c: &mut Criterion) {
    let bp = Butterworth::headtalk_preprocess(48_000.0).unwrap();
    let x = signal(48_000);
    c.bench_function("filter/preprocess_filtfilt_1s", |b| {
        b.iter(|| bp.filtfilt(black_box(&x)))
    });
}

fn bench_gcc_srp(c: &mut Criterion) {
    let x = signal(32_768);
    let chans: Vec<Vec<f64>> = (0..4)
        .map(|k| fractional_delay(&x, k as f64 * 1.3, 16))
        .collect();
    let refs: Vec<&[f64]> = chans.iter().map(|c| c.as_slice()).collect();
    c.bench_function("srp/gcc_phat_pair_32768", |b| {
        b.iter(|| ht_dsp::correlate::gcc_phat(black_box(&chans[0]), black_box(&chans[1]), 13))
    });
    c.bench_function("srp/srp_phat_4mics_32768", |b| {
        b.iter(|| srp_phat(black_box(&refs), 13))
    });
}

fn bench_resample(c: &mut Criterion) {
    let x = signal(48_000);
    c.bench_function("resample/48k_to_16k_1s", |b| {
        b.iter(|| ht_dsp::resample::to_16k_from_48k(black_box(&x)))
    });
}

criterion_group!(
    benches,
    bench_fft,
    bench_filter,
    bench_gcc_srp,
    bench_resample
);
criterion_main!(benches);
