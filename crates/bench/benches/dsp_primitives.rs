//! Micro-benchmarks of the DSP primitives the per-wake-word latency is
//! built from (supporting data for the §IV-B15 runtime analysis).

use ht_bench::{black_box, Suite};
use ht_dsp::filter::Butterworth;
use ht_dsp::rng::SeedableRng;
use ht_dsp::signal::fractional_delay;
use ht_dsp::srp::srp_phat;

fn signal(n: usize) -> Vec<f64> {
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(1);
    ht_dsp::rng::white_noise(&mut rng, n)
}

fn bench_fft(s: &mut Suite) {
    let x = signal(32_768);
    s.bench("fft/rfft_32768", || ht_dsp::fft::rfft(black_box(&x)));
    let x = signal(48_000);
    s.bench("fft/rfft_48000_padded", || ht_dsp::fft::rfft(black_box(&x)));
}

fn bench_filter(s: &mut Suite) {
    let bp = Butterworth::headtalk_preprocess(48_000.0).unwrap();
    let x = signal(48_000);
    s.bench("filter/preprocess_filtfilt_1s", || {
        bp.filtfilt(black_box(&x))
    });
}

fn bench_gcc_srp(s: &mut Suite) {
    let x = signal(32_768);
    let chans: Vec<Vec<f64>> = (0..4)
        .map(|k| fractional_delay(&x, k as f64 * 1.3, 16))
        .collect();
    let refs: Vec<&[f64]> = chans.iter().map(|c| c.as_slice()).collect();
    s.bench("srp/gcc_phat_pair_32768", || {
        ht_dsp::correlate::gcc_phat(black_box(&chans[0]), black_box(&chans[1]), 13)
    });
    s.bench("srp/srp_phat_4mics_32768", || {
        srp_phat(black_box(&refs), 13)
    });
}

fn bench_resample(s: &mut Suite) {
    let x = signal(48_000);
    s.bench("resample/48k_to_16k_1s", || {
        ht_dsp::resample::to_16k_from_48k(black_box(&x))
    });
}

fn main() {
    let mut s = Suite::new("dsp_primitives");
    bench_fft(&mut s);
    bench_filter(&mut s);
    bench_gcc_srp(&mut s);
    bench_resample(&mut s);
    s.finish();
}
