//! Planned-vs-legacy FFT engine comparison (`BENCH_fft.json`), plus the
//! plan-cache gate: after a warm-up pass, a steady-state workload touching
//! a fixed set of transform sizes must add **zero** cache misses (misses
//! are bounded by the number of distinct sizes), asserted through the
//! `fft.plan_hits` / `fft.plan_misses` ht-obs counters. `ci.sh` runs this
//! bench, so a regression that rebuilds plans per call fails CI.

use ht_bench::{black_box, Suite};
use ht_dsp::fft;
use ht_dsp::rng::SeedableRng;
use ht_dsp::Complex;

fn signal(n: usize) -> Vec<f64> {
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(7);
    ht_dsp::rng::white_noise(&mut rng, n)
}

fn complex_signal(n: usize) -> Vec<Complex> {
    signal(n).into_iter().map(Complex::from_real).collect()
}

/// Legacy (per-call recurrence twiddles, full complex transform on real
/// input) vs planned (cached tables, one-sided half-size transform).
fn bench_real_fft(s: &mut Suite) {
    for &n in &[32_768usize, 48_000] {
        let x = signal(n);
        s.bench(&format!("fft/legacy_rfft_{n}"), || {
            fft::legacy::rfft(black_box(&x))
        });
        // The planned hot path: plan and scratch held across calls, output
        // written into a reused buffer (this is what StftProcessor and
        // Correlator do per frame).
        let plan = fft::rfft_plan(n);
        let mut scratch = fft::RealFftScratch::new();
        let mut out = vec![Complex::ZERO; plan.onesided_len()];
        s.bench(&format!("fft/planned_rfft_onesided_{n}"), || {
            plan.forward_into(black_box(&x), &mut out, &mut scratch);
            out[1]
        });
        // The source-compatible wrapper (allocates its full-spectrum
        // output, shares the cached plan).
        s.bench(&format!("fft/planned_rfft_full_{n}"), || {
            fft::rfft(black_box(&x))
        });
    }
}

fn bench_inverse(s: &mut Suite) {
    let n = 32_768usize;
    let spec_full = fft::rfft(&signal(n));
    s.bench("fft/legacy_irfft_32768", || {
        fft::legacy::ifft(black_box(&spec_full))
    });
    let plan = fft::rfft_plan(n);
    let mut scratch = fft::RealFftScratch::new();
    let onesided = spec_full[..plan.onesided_len()].to_vec();
    let mut out = vec![0.0; n];
    s.bench("fft/planned_irfft_onesided_32768", || {
        plan.inverse_into(black_box(&onesided), &mut out, &mut scratch);
        out[0]
    });
}

/// Bluestein sizes: the legacy path rebuilds the chirp and its filter
/// spectrum every call; the plan precomputes both.
fn bench_bluestein(s: &mut Suite) {
    let n = 12_000usize;
    let x = complex_signal(n);
    s.bench("fft/legacy_bluestein_12000", || {
        fft::legacy::fft(black_box(&x))
    });
    s.bench("fft/planned_bluestein_12000", || fft::fft(black_box(&x)));
}

/// The steady-state plan-cache gate (not a timing — a correctness check on
/// the caching layer, run under `HT_OBS` recording).
fn cache_gate() {
    ht_obs::set_mode(ht_obs::Mode::Json);
    ht_obs::registry().reset();

    let frame = signal(480);
    let seg = signal(1024);
    let long = signal(2048);
    let a = signal(2048);
    let b = signal(2048);
    let nonpow2 = complex_signal(600);
    // Distinct transform sizes this workload can request from the cache:
    // real plans 512 (480-sample frames), 1024, 2048, 4096 (GCC padding of
    // 2048 + 13 + 1) and the complex plan 600.
    const DISTINCT_SIZES: u64 = 5;
    let workload = || {
        for _ in 0..10 {
            black_box(fft::rfft(&frame));
            black_box(fft::rfft_onesided(&seg));
            black_box(fft::rfft_magnitude(&long));
            black_box(ht_dsp::correlate::gcc_phat(&a, &b, 13).expect("valid pair"));
            black_box(fft::fft(&nonpow2));
        }
    };

    workload();
    let warm_misses = ht_obs::registry()
        .snapshot()
        .counter("fft.plan_misses")
        .unwrap_or(0);

    workload();
    let snap = ht_obs::registry().snapshot();
    let misses = snap.counter("fft.plan_misses").unwrap_or(0);
    let hits = snap.counter("fft.plan_hits").unwrap_or(0);
    ht_obs::set_mode(ht_obs::Mode::Off);

    assert!(
        warm_misses <= DISTINCT_SIZES,
        "plan cache missed {warm_misses} times on a workload with only \
         {DISTINCT_SIZES} distinct sizes — misses must be bounded by the \
         number of distinct sizes"
    );
    assert!(
        misses == warm_misses,
        "steady-state workload rebuilt plans: {} new misses after warm-up",
        misses - warm_misses
    );
    assert!(hits > 0, "workload never hit the plan cache");
    eprintln!(
        "cache gate: ok ({warm_misses} misses for {DISTINCT_SIZES} distinct \
         sizes, {hits} hits, 0 steady-state misses)"
    );
}

fn main() {
    let mut s = Suite::new("fft");
    bench_real_fft(&mut s);
    bench_inverse(&mut s);
    bench_bluestein(&mut s);
    s.finish();
    cache_gate();
}
