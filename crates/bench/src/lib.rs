//! # ht-bench — the workspace's built-in benchmark harness
//!
//! A dependency-free replacement for Criterion: each file in `benches/`
//! (still `harness = false`) builds a [`Suite`], registers benchmarks with
//! [`Suite::bench`], and calls [`Suite::finish`], which prints a table and
//! writes `BENCH_<suite>.json` so successive runs are diffable.
//!
//! Methodology: every benchmark is warmed up, then timed as `samples`
//! wall-clock samples of `iters` iterations each (`iters` auto-sized so a
//! sample takes ≥ ~5 ms); the reported statistic is the **median**
//! per-iteration time, which is robust against scheduler noise. Use
//! `HT_BENCH_SAMPLES` / `HT_BENCH_FAST=1` to trade precision for speed and
//! `HT_BENCH_DIR` to redirect the JSON output (default: current
//! directory — run `cargo bench` from the repo root).
//!
//! The perf-trajectory contract: `BENCH_baseline.json` at the repo root
//! records the anchor run; later performance PRs compare their
//! `BENCH_*.json` against it.

use ht_dsp::json::{Json, ToJson};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time of one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLES: usize = 15;

/// The result of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Median per-iteration time in nanoseconds (the headline statistic).
    pub median_ns: f64,
    /// Fastest sample's per-iteration time in nanoseconds.
    pub min_ns: f64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: usize,
}

impl ToJson for Measurement {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("name", self.name.as_str())
            .set("median_ns", self.median_ns)
            .set("min_ns", self.min_ns)
            .set("mean_ns", self.mean_ns)
            .set("samples", self.samples)
            .set("iters_per_sample", self.iters_per_sample)
    }
}

/// A named collection of benchmarks that reports as one JSON artifact.
pub struct Suite {
    name: String,
    samples: usize,
    results: Vec<Measurement>,
}

impl Suite {
    /// A suite named `name` (controls the `BENCH_<name>.json` filename).
    pub fn new(name: &str) -> Suite {
        let fast = std::env::var("HT_BENCH_FAST").is_ok_and(|v| v != "0");
        let samples = std::env::var("HT_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if fast { 5 } else { DEFAULT_SAMPLES })
            .max(1);
        eprintln!("suite {name}: {samples} samples per benchmark");
        Suite {
            name: name.to_string(),
            samples,
            results: Vec::new(),
        }
    }

    /// Times `f` (warmup, then `samples` timed samples) and records the
    /// result. The closure's return value is black-boxed so the work
    /// cannot be optimized away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        // Warmup: run until the workload has executed for ≥ one sample
        // target (fills caches, resolves lazy statics) and estimate cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= SAMPLE_TARGET || warm_iters >= 1000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters;
        let iters = if per_iter >= SAMPLE_TARGET {
            1
        } else {
            // Aim for SAMPLE_TARGET per sample, capped to keep total
            // bench time bounded for very cheap workloads.
            ((SAMPLE_TARGET.as_nanos() / per_iter.as_nanos().max(1)) as usize).clamp(1, 100_000)
        };

        let mut per_iter_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t0.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(f64::total_cmp);
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let m = Measurement {
            name: name.to_string(),
            median_ns: median,
            min_ns: per_iter_ns[0],
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
            samples: self.samples,
            iters_per_sample: iters,
        };
        eprintln!(
            "  {name:<44} median {:>12}  min {:>12}  ({} x {} iters)",
            format_ns(m.median_ns),
            format_ns(m.min_ns),
            m.samples,
            m.iters_per_sample,
        );
        self.results.push(m);
    }

    /// The measurements so far (for tests and custom reporting).
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Serializes the suite (shared by [`Suite::finish`] and the baseline
    /// merge tooling).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("suite", self.name.as_str())
            .set("benches", self.results.to_json())
    }

    /// Writes `BENCH_<suite>.json` into `HT_BENCH_DIR` (default `.`).
    ///
    /// # Panics
    ///
    /// Panics when the output file cannot be written (a bench run that
    /// cannot record its results should fail loudly).
    pub fn finish(self) {
        let dir = std::env::var("HT_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let _ = std::fs::create_dir_all(&dir);
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json().pretty() + "\n")
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("suite {}: wrote {}", self.name, path.display());
    }
}

/// Human-readable nanoseconds (`412 ns`, `1.73 µs`, `2.10 ms`, `4.20 s`).
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_sane_numbers() {
        std::env::set_var("HT_BENCH_SAMPLES", "3");
        let mut suite = Suite::new("selftest");
        suite.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        std::env::remove_var("HT_BENCH_SAMPLES");
        let m = &suite.results()[0];
        assert_eq!(m.name, "spin");
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns);
        assert!(m.samples == 3);
    }

    #[test]
    fn suite_json_shape() {
        let suite = Suite {
            name: "shape".into(),
            samples: 1,
            results: vec![Measurement {
                name: "a".into(),
                median_ns: 10.0,
                min_ns: 9.0,
                mean_ns: 10.5,
                samples: 1,
                iters_per_sample: 100,
            }],
        };
        let v = suite.to_json();
        assert_eq!(v.get("suite").and_then(Json::as_str), Some("shape"));
        let benches = v.get("benches").unwrap().as_array().unwrap();
        assert_eq!(benches[0].get("name").and_then(Json::as_str), Some("a"));
    }

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(412.0), "412 ns");
        assert_eq!(format_ns(1_730.0), "1.73 µs");
        assert_eq!(format_ns(2_100_000.0), "2.10 ms");
        assert_eq!(format_ns(4_200_000_000.0), "4.20 s");
    }
}
