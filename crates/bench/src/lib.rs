//! # ht-bench — benchmark support crate
//!
//! The Criterion benchmarks live in `benches/`; this library only re-exports
//! the workspace crates so the benches share one dependency point.

pub use ht_acoustics as acoustics;
pub use ht_datagen as datagen;
pub use ht_dsp as dsp;
pub use ht_experiments as experiments;
pub use ht_ml as ml;
pub use ht_speech as speech;
