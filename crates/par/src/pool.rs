//! The persistent work-stealing pool.
//!
//! Threads are spawned **once** (per [`Pool`]) and parked on a condvar
//! between jobs; a job is a lifetime-erased `Fn(worker_index)` that every
//! participant (the submitting thread included) runs to completion before
//! the submitting call returns, which is what makes borrowing from the
//! caller's stack sound.

use crate::deque::IndexDeque;
use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// One worker's lifetime counters (see [`PoolStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Items this worker executed.
    pub tasks: u64,
    /// Successful back-half steals this worker performed.
    pub steals: u64,
    /// High-water mark of this worker's deque depth (items), observed at
    /// initial partition and after every refill.
    pub queue_hwm: u64,
}

/// A snapshot of a pool's scheduling counters since construction (or the
/// last [`Pool::reset_stats`]).
///
/// The *sum* of per-worker task counts always equals the total number of
/// items submitted — work stealing moves items between workers but never
/// duplicates or drops them — so the total is identical for any thread
/// count; only the per-worker split varies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Total participants (worker threads + the submitting thread).
    pub threads: usize,
    /// Jobs (one `par_*` dispatch each) the pool has run.
    pub jobs: u64,
    /// Per-worker counters, indexed by worker id (0 = the submitting
    /// thread).
    pub per_worker: Vec<WorkerStats>,
}

impl PoolStats {
    /// Total items executed across all workers.
    pub fn total_tasks(&self) -> u64 {
        self.per_worker.iter().map(|w| w.tasks).sum()
    }

    /// Total successful steals across all workers.
    pub fn total_steals(&self) -> u64 {
        self.per_worker.iter().map(|w| w.steals).sum()
    }
}

/// Lock-free scheduling counters, bumped with relaxed atomics on the job
/// paths (one add per popped chunk, not per item, so the hot loop stays
/// hot).
struct StatsCells {
    jobs: AtomicU64,
    tasks: Vec<AtomicU64>,
    steals: Vec<AtomicU64>,
    queue_hwm: Vec<AtomicU64>,
}

impl StatsCells {
    fn new(threads: usize) -> StatsCells {
        StatsCells {
            jobs: AtomicU64::new(0),
            tasks: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            steals: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            queue_hwm: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// A lifetime-erased pointer to the current job's worker body.
///
/// Soundness: the pointer is only dereferenced by pool workers between job
/// publication and the final `active == 0` handshake, and `run_job` does
/// not return (keeping the pointee alive on its stack) until that handshake
/// completes.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared-called from many threads) and the
// pool's completion handshake bounds its lifetime; sending the pointer to
// worker threads is therefore sound.
unsafe impl Send for Job {}

struct State {
    /// Bumped for every published job so parked workers can tell a fresh
    /// job from the one they last ran.
    seq: u64,
    job: Option<Job>,
    /// Pool workers still running the current job.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    job_ready: Condvar,
    job_done: Condvar,
}

thread_local! {
    /// Set while a thread is executing inside a pool job; nested `par_*`
    /// calls run inline (serial) instead of deadlocking on busy workers.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
    /// The pool [`Pool::install`] made current on this thread, if any.
    static CURRENT: Cell<*const Pool> = const { Cell::new(std::ptr::null()) };
}

/// Restores a thread-local `Cell` on drop (panic-safe).
struct Restore<T: Copy + 'static> {
    cell: &'static std::thread::LocalKey<Cell<T>>,
    prev: T,
}

impl<T: Copy + 'static> Drop for Restore<T> {
    fn drop(&mut self) {
        self.cell.with(|c| c.set(self.prev));
    }
}

fn set_tls<T: Copy + 'static>(
    cell: &'static std::thread::LocalKey<Cell<T>>,
    value: T,
) -> Restore<T> {
    let prev = cell.with(|c| c.replace(value));
    Restore { cell, prev }
}

/// A persistent work-stealing thread pool.
///
/// `Pool::new(t)` spawns `t - 1` worker threads; the thread that submits a
/// job participates as worker 0, so `t` is the total parallelism. All
/// `par_*` results are **independent of the thread count and of work-
/// stealing order**: each item's result is written to its input index, and
/// reductions use fixed chunk boundaries, so a pool of 8 produces bytes
/// identical to a pool of 1.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
    /// Serializes concurrent job submissions from different threads.
    submit: Mutex<()>,
    stats: StatsCells,
}

impl Pool {
    /// A pool with `threads` total participants (clamped to ≥ 1; 1 means
    /// every `par_*` call runs inline).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                seq: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ht-par-{w}"))
                    .spawn(move || worker_loop(w, &shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            handles,
            threads,
            submit: Mutex::new(()),
            stats: StatsCells::new(threads),
        }
    }

    /// A snapshot of the pool's scheduling counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.threads,
            jobs: self.stats.jobs.load(Ordering::Relaxed),
            per_worker: (0..self.threads)
                .map(|w| WorkerStats {
                    tasks: self.stats.tasks[w].load(Ordering::Relaxed),
                    steals: self.stats.steals[w].load(Ordering::Relaxed),
                    queue_hwm: self.stats.queue_hwm[w].load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Zeroes the scheduling counters (per-phase attribution in benches and
    /// tests).
    pub fn reset_stats(&self) {
        self.stats.jobs.store(0, Ordering::Relaxed);
        for w in 0..self.threads {
            self.stats.tasks[w].store(0, Ordering::Relaxed);
            self.stats.steals[w].store(0, Ordering::Relaxed);
            self.stats.queue_hwm[w].store(0, Ordering::Relaxed);
        }
    }

    /// The global pool: sized by `HT_THREADS` when set (parsed, clamped to
    /// ≥ 1), otherwise the machine's available parallelism minus one core
    /// for the system. Initialized on first use; the env var is read once.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(default_threads()))
    }

    /// Total participants (worker threads + the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with this pool as the thread's current pool: free-function
    /// `par_*` calls inside `f` (on this thread) dispatch here instead of
    /// the global pool. Restored on exit, panic included.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _restore = set_tls(&CURRENT, self as *const Pool);
        f()
    }

    /// Applies `f` to every item, preserving input order in the output.
    ///
    /// The output is identical to `items.iter().map(&f).collect()` for any
    /// thread count (determinism contract).
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `f`.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.par_map_indexed(items, |_, item| f(item))
    }

    /// [`Pool::par_map`] where `f` also receives the item index — the hook
    /// for deterministic per-item RNG streams
    /// (`ht_dsp::rng::split_stream(seed, index)`).
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `f`.
    pub fn par_map_indexed<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let n = items.len();
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        {
            let slots = SlotWriter(out.as_mut_ptr());
            self.run_indexed(n, |i| {
                let value = f(i, &items[i]);
                // SAFETY: `run_indexed` executes every index exactly once,
                // and distinct indices address distinct slots.
                unsafe { slots.write(i, value) };
            });
        }
        out.into_iter()
            .map(|slot| slot.expect("run_indexed fills every slot"))
            .collect()
    }

    /// Applies `f` to consecutive chunks of at most `chunk` items (the last
    /// chunk may be short), preserving chunk order. `f` receives the chunk
    /// index and the chunk.
    ///
    /// # Panics
    ///
    /// Panics when `chunk == 0`; propagates panics from `f`.
    pub fn par_chunks<T, U, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &[T]) -> U + Sync,
    {
        assert!(chunk > 0, "par_chunks requires a non-zero chunk size");
        let n_chunks = items.len().div_ceil(chunk);
        let mut out: Vec<Option<U>> = Vec::with_capacity(n_chunks);
        out.resize_with(n_chunks, || None);
        {
            let slots = SlotWriter(out.as_mut_ptr());
            self.run_indexed(n_chunks, |ci| {
                let lo = ci * chunk;
                let hi = (lo + chunk).min(items.len());
                let value = f(ci, &items[lo..hi]);
                // SAFETY: every chunk index is executed exactly once.
                unsafe { slots.write(ci, value) };
            });
        }
        out.into_iter()
            .map(|slot| slot.expect("run_indexed fills every slot"))
            .collect()
    }

    /// Map-reduce with **fixed** chunk boundaries: items are split into
    /// chunks of [`REDUCE_CHUNK`], each chunk is folded left-to-right from
    /// a fresh `init.clone()`, and the per-chunk partials are folded
    /// left-to-right in chunk order. The grouping depends only on
    /// `items.len()`, never on the thread count, so floating-point results
    /// are bit-identical for any parallelism (though not necessarily equal
    /// to a single serial fold — the grouping differs).
    ///
    /// # Panics
    ///
    /// Propagates panics from `map` and `fold`.
    pub fn par_reduce<T, A, M, F>(&self, items: &[T], init: A, map: M, fold: F) -> A
    where
        T: Sync,
        A: Send + Clone + Sync,
        M: Fn(&T) -> A + Sync,
        F: Fn(A, A) -> A + Sync,
    {
        let partials = self.par_chunks(items, REDUCE_CHUNK, |_, chunk| {
            chunk
                .iter()
                .fold(init.clone(), |acc, item| fold(acc, map(item)))
        });
        partials.into_iter().fold(init, &fold)
    }

    /// Executes `f(i)` exactly once for every `i in 0..n`, distributing
    /// indices over the pool with chunked deques and back-half stealing.
    fn run_indexed<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        // Inline paths: trivial input, a serial pool, or a nested call from
        // inside a pool job (workers must not wait on their own pool). The
        // inline work is attributed to worker 0 so total task counts match
        // the parallel path exactly.
        if n == 1 || self.threads == 1 || IN_POOL.with(Cell::get) {
            self.stats.jobs.fetch_add(1, Ordering::Relaxed);
            self.stats.queue_hwm[0].fetch_max(n as u64, Ordering::Relaxed);
            for i in 0..n {
                f(i);
            }
            self.stats.tasks[0].fetch_add(n as u64, Ordering::Relaxed);
            publish_obs(n);
            return;
        }

        let p = self.threads;
        self.stats.jobs.fetch_add(1, Ordering::Relaxed);
        // Even initial partition: one contiguous range per participant.
        let deques: Vec<IndexDeque> = (0..p)
            .map(|w| {
                let (lo, hi) = (w * n / p, (w + 1) * n / p);
                self.stats.queue_hwm[w].fetch_max((hi - lo) as u64, Ordering::Relaxed);
                IndexDeque::new(lo, hi)
            })
            .collect();
        // Owner pop granularity: coarse enough to amortize the CAS, fine
        // enough to leave work stealable.
        let grain = (n / (p * 8)).max(1);
        let panicked = AtomicBool::new(false);
        let payload: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

        let worker = |w: usize| loop {
            while let Some((lo, hi)) = deques[w].pop_chunk(grain) {
                for i in lo..hi {
                    if panicked.load(Ordering::Relaxed) {
                        return;
                    }
                    if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(i))) {
                        // Keep the first payload; later panics (if any
                        // slip through before the flag lands) are dropped.
                        let mut slot = payload.lock().expect("panic slot");
                        if slot.is_none() {
                            *slot = Some(p);
                        }
                        panicked.store(true, Ordering::Relaxed);
                        return;
                    }
                }
                self.stats.tasks[w].fetch_add((hi - lo) as u64, Ordering::Relaxed);
            }
            if panicked.load(Ordering::Relaxed) {
                return;
            }
            // Own deque empty: steal the back half of the fullest victim.
            let victim = (0..p)
                .filter(|&v| v != w)
                .map(|v| (deques[v].remaining(), v))
                .max();
            match victim {
                Some((remaining, v)) if remaining > 0 => {
                    if let Some((lo, hi)) = deques[v].steal_half() {
                        deques[w].refill(lo, hi);
                        self.stats.steals[w].fetch_add(1, Ordering::Relaxed);
                        self.stats.queue_hwm[w].fetch_max((hi - lo) as u64, Ordering::Relaxed);
                    }
                    // Raced steal: rescan.
                }
                _ => return, // nothing left anywhere
            }
        };

        self.run_job(&worker);
        publish_obs(n);

        if panicked.load(Ordering::Relaxed) {
            let p = payload
                .lock()
                .expect("panic slot")
                .take()
                .expect("panicked flag implies a stored payload");
            resume_unwind(p);
        }
    }

    /// Publishes `task` to the worker threads, participates as worker 0,
    /// and blocks until every worker has finished it.
    fn run_job(&self, task: &(dyn Fn(usize) + Sync)) {
        let _submit = self.submit.lock().expect("submit lock");
        let n_workers = self.handles.len();
        // SAFETY: pure lifetime erasure on a fat pointer (layout is
        // unchanged); the completion handshake below keeps the pointee
        // alive for as long as any worker can dereference it.
        let erased: *const (dyn Fn(usize) + Sync + 'static) = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(task as *const _)
        };
        {
            let mut st = self.shared.state.lock().expect("pool state");
            st.seq += 1;
            st.active = n_workers;
            st.job = Some(Job(erased));
            self.shared.job_ready.notify_all();
        }
        {
            let _inside = set_tls(&IN_POOL, true);
            task(0);
        }
        let mut st = self.shared.state.lock().expect("pool state");
        while st.active > 0 {
            st = self.shared.job_done.wait(st).expect("pool state");
        }
        st.job = None;
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state");
            st.shutdown = true;
            self.shared.job_ready.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Items per [`Pool::par_reduce`] chunk — fixed so reduction grouping (and
/// therefore floating-point results) never depends on the thread count.
pub const REDUCE_CHUNK: usize = 1024;

/// The parked-worker loop: wait for a fresh job, run it, hand shake, park.
fn worker_loop(w: usize, shared: &Shared) {
    let mut last_seq = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state");
            loop {
                if st.shutdown {
                    return;
                }
                if st.seq != last_seq {
                    if let Some(job) = st.job {
                        last_seq = st.seq;
                        break job;
                    }
                }
                st = shared.job_ready.wait(st).expect("pool state");
            }
        };
        {
            let _inside = set_tls(&IN_POOL, true);
            // SAFETY: `run_job` keeps the pointee alive until `active`
            // reaches 0, which only happens after this call returns.
            unsafe { (*job.0)(w) };
        }
        let mut st = shared.state.lock().expect("pool state");
        st.active -= 1;
        if st.active == 0 {
            shared.job_done.notify_all();
        }
    }
}

/// A `Sync` wrapper over the output slot array: each executed index writes
/// its own slot exactly once, so concurrent writers never alias.
struct SlotWriter<U>(*mut Option<U>);

// SAFETY: distinct indices address distinct slots and `run_indexed`
// executes each index exactly once; `U: Send` moves values across threads.
unsafe impl<U: Send> Sync for SlotWriter<U> {}

impl<U> SlotWriter<U> {
    /// # Safety
    ///
    /// `i` must be in bounds and written at most once across all threads.
    unsafe fn write(&self, i: usize, value: U) {
        *self.0.add(i) = Some(value);
    }
}

/// Mirrors a finished job into the ht-obs registry (no-op when `HT_OBS` is
/// off). Per-worker detail stays in [`PoolStats`]; the registry gets the
/// aggregate counters every layer shares.
fn publish_obs(n: usize) {
    ht_obs::counter_add("par.jobs", 1);
    ht_obs::counter_add("par.tasks", n as u64);
}

/// The default pool width: `HT_THREADS` when set, otherwise the machine's
/// available parallelism minus one core for the system.
pub fn default_threads() -> usize {
    if let Ok(s) = std::env::var("HT_THREADS") {
        if let Ok(v) = s.trim().parse::<usize>() {
            return v.max(1);
        }
        eprintln!("[ht-par] ignoring unparseable HT_THREADS={s:?}");
    }
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(4)
}

/// The pool free `par_*` functions dispatch to: the innermost
/// [`Pool::install`] on this thread, else the global pool.
pub fn current() -> &'static Pool {
    let ptr = CURRENT.with(Cell::get);
    if ptr.is_null() {
        Pool::global()
    } else {
        // SAFETY: `install` borrows the pool for the closure's duration and
        // restores the previous pointer on exit, so a non-null pointer is
        // always live on this thread. The `'static` return is a lie only in
        // lifetime position; the pointer is never retained past the
        // `install` scope by the free functions.
        unsafe { &*ptr }
    }
}
