//! # ht-par — deterministic data parallelism for the workspace
//!
//! A zero-dependency, persistent work-stealing thread pool powering the
//! reproduction's hot paths (image-source rendering, GCC-PHAT pair
//! extraction, random-forest training, fold evaluation) **without breaking
//! the determinism contract**: for a fixed input and seed, every `par_*`
//! result is byte-identical for any thread count, because
//!
//! * results are written to their input index (scheduling never reorders
//!   outputs),
//! * reductions use fixed chunk boundaries independent of the thread count,
//! * per-item randomness comes from `ht_dsp::rng::split_stream(seed, index)`
//!   — a deterministic fork per index, never a shared sequential stream.
//!
//! The pool spawns its threads once and parks them between jobs, so a
//! `par_map` over four items costs a condvar wake, not four `thread::spawn`s.
//! Worker counts come from `HT_THREADS` (read once, at global-pool
//! initialization) or the machine's available parallelism; tests and
//! benches that need a specific width create a dedicated [`Pool`] and run
//! under [`Pool::install`].
//!
//! # Example
//!
//! ```
//! let squares = ht_par::par_map(&[1i64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // A dedicated 3-thread pool, results identical to serial:
//! let pool = ht_par::Pool::new(3);
//! let serial: Vec<i64> = (0..100).map(|x| x * 2).collect();
//! let input: Vec<i64> = (0..100).collect();
//! assert_eq!(pool.par_map(&input, |&x| x * 2), serial);
//! ```

mod deque;
mod pool;

pub use pool::{default_threads, Pool, PoolStats, WorkerStats, REDUCE_CHUNK};

/// [`Pool::par_map`] on the current pool (the innermost [`Pool::install`]
/// on this thread, else the global pool).
///
/// # Panics
///
/// Propagates the first panic raised by `f`.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    pool::current().par_map(items, f)
}

/// [`Pool::par_map_indexed`] on the current pool.
///
/// # Panics
///
/// Propagates the first panic raised by `f`.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    pool::current().par_map_indexed(items, f)
}

/// [`Pool::par_chunks`] on the current pool.
///
/// # Panics
///
/// Panics when `chunk == 0`; propagates panics from `f`.
pub fn par_chunks<T, U, F>(items: &[T], chunk: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> U + Sync,
{
    pool::current().par_chunks(items, chunk, f)
}

/// [`Pool::par_reduce`] on the current pool.
///
/// # Panics
///
/// Propagates panics from `map` and `fold`.
pub fn par_reduce<T, A, M, F>(items: &[T], init: A, map: M, fold: F) -> A
where
    T: Sync,
    A: Send + Clone + Sync,
    M: Fn(&T) -> A + Sync,
    F: Fn(A, A) -> A + Sync,
{
    pool::current().par_reduce(items, init, map, fold)
}

/// The current pool's total parallelism (≥ 1).
pub fn current_threads() -> usize {
    pool::current().threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order_for_every_width() {
        let items: Vec<usize> = (0..257).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            assert_eq!(pool.par_map(&items, |&x| x * 3 + 1), serial, "{threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::new(4);
        let empty: Vec<i32> = Vec::new();
        assert!(pool.par_map(&empty, |&x| x).is_empty());
        assert_eq!(pool.par_map(&[9], |&x| x + 1), vec![10]);
    }

    #[test]
    fn indexed_map_sees_the_input_index() {
        let pool = Pool::new(3);
        let items = vec![10usize; 40];
        let out = pool.par_map_indexed(&items, |i, &x| i * 100 + x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 100 + 10);
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let pool = Pool::new(4);
        let out = pool.par_map(&items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out, items);
    }

    #[test]
    fn par_chunks_matches_serial_chunking() {
        let items: Vec<usize> = (0..103).collect();
        let serial: Vec<usize> = items.chunks(10).map(|c| c.iter().sum()).collect();
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let par = pool.par_chunks(&items, 10, |_, c| c.iter().sum::<usize>());
            assert_eq!(par, serial);
        }
        let pool = Pool::new(2);
        let idx = pool.par_chunks(&items, 25, |ci, _| ci);
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "non-zero chunk")]
    fn zero_chunk_is_rejected() {
        Pool::new(1).par_chunks(&[1, 2], 0, |_, c| c.len());
    }

    #[test]
    fn par_reduce_is_thread_count_independent() {
        // Floating-point sum: grouping is fixed, so all widths agree bit
        // for bit.
        let items: Vec<f64> = (0..5000).map(|i| (i as f64) * 0.1 + 0.3).collect();
        let reference = Pool::new(1).par_reduce(&items, 0.0, |&x| x / 7.0, |a, b| a + b);
        for threads in [2, 3, 8] {
            let got = Pool::new(threads).par_reduce(&items, 0.0, |&x| x / 7.0, |a, b| a + b);
            assert_eq!(got.to_bits(), reference.to_bits(), "{threads} threads");
        }
        // Integer sum equals the plain serial fold exactly.
        let ints: Vec<u64> = (0..3000).collect();
        let total = Pool::new(5).par_reduce(&ints, 0u64, |&x| x, |a, b| a + b);
        assert_eq!(total, ints.iter().sum::<u64>());
    }

    #[test]
    fn panics_propagate_with_payload() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&items, |&x| {
                if x == 37 {
                    panic!("item 37 exploded");
                }
                x
            })
        }));
        let payload = result.expect_err("the panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_else(|| {
            payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .unwrap()
        });
        assert!(msg.contains("item 37 exploded"));
        // The pool survives a panicked job.
        assert_eq!(pool.par_map(&[1, 2, 3], |&x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn nested_calls_run_inline_without_deadlock() {
        let pool = Pool::new(4);
        let outer: Vec<usize> = (0..16).collect();
        let out = pool.par_map(&outer, |&x| {
            // Nested par_map (free function → global pool) must not block
            // on this pool's busy workers.
            let inner: Vec<usize> = (0..8).collect();
            par_map(&inner, |&y| y + x).iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..16).map(|x| (0..8).map(|y| y + x).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn install_routes_free_functions() {
        let pool = Pool::new(2);
        let (width, out) =
            pool.install(|| (current_threads(), par_map(&[1, 2, 3], |&x: &i32| x * 10)));
        assert_eq!(width, 2);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn many_threads_few_items_is_fine() {
        let pool = Pool::new(16);
        assert_eq!(pool.par_map(&[5, 6], |&x| x), vec![5, 6]);
    }

    #[test]
    fn stats_totals_are_identical_across_thread_counts() {
        let items: Vec<usize> = (0..500).collect();
        let mut totals = Vec::new();
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let _ = pool.par_map(&items, |&x| x * 2);
            let _ = pool.par_chunks(&items, 32, |_, c| c.len());
            let stats = pool.stats();
            assert_eq!(stats.threads, threads);
            assert_eq!(stats.jobs, 2);
            assert_eq!(stats.per_worker.len(), threads);
            // Stealing moves items between workers but never duplicates or
            // drops them, so the totals must not depend on the width.
            totals.push((stats.total_tasks(), stats.jobs));
        }
        assert_eq!(totals[0], totals[1]);
        // 500 map items plus ceil(500/32) = 16 chunk tasks.
        assert_eq!(totals[0].0, 516);
    }

    #[test]
    fn reset_stats_zeroes_every_counter() {
        let items: Vec<usize> = (0..100).collect();
        let pool = Pool::new(2);
        let _ = pool.par_map(&items, |&x| x);
        assert!(pool.stats().total_tasks() > 0);
        pool.reset_stats();
        let s = pool.stats();
        assert_eq!(s.jobs, 0);
        assert_eq!(s.total_tasks(), 0);
        assert_eq!(s.total_steals(), 0);
        assert!(s.per_worker.iter().all(|w| w.queue_hwm == 0));
    }
}
