//! Per-worker chunked index deques.
//!
//! A deque holds a half-open index range `[head, tail)` packed into one
//! `AtomicU64` (head in the high 32 bits, tail in the low 32), so both the
//! owner's chunked pop and a thief's steal are single CAS operations with no
//! locks and no per-item allocation. Index ranges are bounded by `u32::MAX`
//! items, far above any workload in this workspace.

use std::sync::atomic::{AtomicU64, Ordering};

/// Packs `[head, tail)` into one word.
fn pack(head: u32, tail: u32) -> u64 {
    (u64::from(head) << 32) | u64::from(tail)
}

/// Unpacks a word into `(head, tail)`.
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// A lock-free deque of *indices* `[head, tail)`.
///
/// The owning worker pops chunks from the front; thieves atomically carve
/// off the back half. Ownership is cooperative — any participant may call
/// any method; "owner"/"thief" only describe the intended access pattern.
pub(crate) struct IndexDeque {
    range: AtomicU64,
}

impl IndexDeque {
    /// A deque holding `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics when an index exceeds `u32::MAX` (workloads here are orders
    /// of magnitude smaller).
    pub(crate) fn new(start: usize, end: usize) -> IndexDeque {
        let (s, e) = (
            u32::try_from(start).expect("index fits u32"),
            u32::try_from(end).expect("index fits u32"),
        );
        IndexDeque {
            range: AtomicU64::new(pack(s, e)),
        }
    }

    /// Pops up to `max` indices from the front; `None` when empty.
    pub(crate) fn pop_chunk(&self, max: usize) -> Option<(usize, usize)> {
        let max = u32::try_from(max.max(1)).unwrap_or(u32::MAX);
        loop {
            let cur = self.range.load(Ordering::Acquire);
            let (h, t) = unpack(cur);
            if h >= t {
                return None;
            }
            let take = max.min(t - h);
            if self
                .range
                .compare_exchange_weak(cur, pack(h + take, t), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some((h as usize, (h + take) as usize));
            }
        }
    }

    /// Steals the back half (rounded down, so the victim keeps at least as
    /// much as the thief takes); `None` when fewer than two indices remain.
    pub(crate) fn steal_half(&self) -> Option<(usize, usize)> {
        loop {
            let cur = self.range.load(Ordering::Acquire);
            let (h, t) = unpack(cur);
            if t.saturating_sub(h) < 2 {
                return None;
            }
            let mid = h + (t - h).div_ceil(2);
            if self
                .range
                .compare_exchange_weak(cur, pack(h, mid), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some((mid as usize, t as usize));
            }
        }
    }

    /// Refills an **empty** deque with a stolen range so further thieves
    /// can redistribute it. Only the owner calls this, and only when its
    /// deque is empty, so the plain store cannot lose a concurrent steal
    /// (thieves CAS against the exact current word and bail on empty).
    pub(crate) fn refill(&self, start: usize, end: usize) {
        debug_assert_eq!(self.remaining(), 0, "refill requires an empty deque");
        let (s, e) = (
            u32::try_from(start).expect("index fits u32"),
            u32::try_from(end).expect("index fits u32"),
        );
        self.range.store(pack(s, e), Ordering::Release);
    }

    /// How many indices are currently queued.
    pub(crate) fn remaining(&self) -> usize {
        let (h, t) = unpack(self.range.load(Ordering::Acquire));
        t.saturating_sub(h) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_drains_in_order() {
        let d = IndexDeque::new(0, 10);
        assert_eq!(d.pop_chunk(4), Some((0, 4)));
        assert_eq!(d.pop_chunk(4), Some((4, 8)));
        assert_eq!(d.pop_chunk(4), Some((8, 10)));
        assert_eq!(d.pop_chunk(4), None);
    }

    #[test]
    fn steal_takes_back_half() {
        let d = IndexDeque::new(0, 10);
        assert_eq!(d.steal_half(), Some((5, 10)));
        assert_eq!(d.remaining(), 5);
        assert_eq!(d.pop_chunk(100), Some((0, 5)));
    }

    #[test]
    fn singleton_is_not_stealable() {
        let d = IndexDeque::new(3, 4);
        assert_eq!(d.steal_half(), None);
        assert_eq!(d.pop_chunk(1), Some((3, 4)));
    }

    #[test]
    fn refill_after_drain() {
        let d = IndexDeque::new(0, 2);
        assert!(d.pop_chunk(2).is_some());
        d.refill(7, 9);
        assert_eq!(d.remaining(), 2);
        assert_eq!(d.pop_chunk(10), Some((7, 9)));
    }
}
