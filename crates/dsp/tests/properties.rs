//! Property-based tests for the DSP crate's numerical invariants.
#![allow(clippy::manual_range_contains)]

use ht_dsp::filter::Butterworth;
use ht_dsp::window::Window;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn convolution_is_linear(
        a in prop::collection::vec(-1.0..1.0f64, 4..64),
        b in prop::collection::vec(-1.0..1.0f64, 4..64),
        k in prop::collection::vec(-1.0..1.0f64, 2..16),
    ) {
        // conv(a + b, k) == conv(a, k) + conv(b, k) for equal-length a, b.
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let sum: Vec<f64> = a.iter().zip(b).map(|(x, y)| x + y).collect();
        let lhs = ht_dsp::convolve::convolve_direct(&sum, &k);
        let ca = ht_dsp::convolve::convolve_direct(a, &k);
        let cb = ht_dsp::convolve::convolve_direct(b, &k);
        for ((l, x), y) in lhs.iter().zip(ca.iter()).zip(cb.iter()) {
            prop_assert!((l - (x + y)).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_and_direct_convolution_agree(
        x in prop::collection::vec(-1.0..1.0f64, 8..128),
        h in prop::collection::vec(-1.0..1.0f64, 2..32),
    ) {
        let direct = ht_dsp::convolve::convolve_direct(&x, &h);
        let fft = ht_dsp::convolve::convolve_fft(&x, &h);
        prop_assert_eq!(direct.len(), fft.len());
        for (d, f) in direct.iter().zip(fft.iter()) {
            prop_assert!((d - f).abs() < 1e-8);
        }
    }

    #[test]
    fn decimation_preserves_dc(
        level in -2.0..2.0f64,
        factor in 1usize..5,
    ) {
        // A constant signal stays (approximately) constant after the
        // anti-aliased decimator, away from the edges.
        let x = vec![level; 600];
        let y = ht_dsp::resample::decimate(&x, factor).unwrap();
        let mid = &y[y.len() / 4..y.len() * 3 / 4];
        for v in mid {
            prop_assert!((v - level).abs() < 0.02 * level.abs().max(0.1));
        }
    }

    #[test]
    fn filters_are_stable(
        order in 1usize..8,
        fc in 100.0..20_000.0f64,
        x in prop::collection::vec(-1.0..1.0f64, 32..256),
    ) {
        let f = Butterworth::lowpass(order, fc, 48_000.0).unwrap();
        let y = f.filter(&x);
        // Bounded input, bounded output: no blow-ups for any valid design.
        prop_assert!(y.iter().all(|v| v.is_finite() && v.abs() < 100.0));
    }

    #[test]
    fn windows_never_amplify(
        n in 1usize..512,
    ) {
        for w in [Window::Hann, Window::Hamming, Window::Blackman, Window::Rect] {
            let c = w.coefficients(n);
            prop_assert_eq!(c.len(), n);
            prop_assert!(c.iter().all(|&v| v <= 1.0 + 1e-12 && v >= -1e-12));
        }
    }

    #[test]
    fn statistics_shift_invariance(
        x in prop::collection::vec(-10.0..10.0f64, 3..64),
        shift in -100.0..100.0f64,
    ) {
        let shifted: Vec<f64> = x.iter().map(|v| v + shift).collect();
        prop_assert!((ht_dsp::stats::std_dev(&x) - ht_dsp::stats::std_dev(&shifted)).abs() < 1e-8);
        prop_assert!((ht_dsp::stats::mad(&x) - ht_dsp::stats::mad(&shifted)).abs() < 1e-8);
        prop_assert!(
            (ht_dsp::stats::skewness(&x) - ht_dsp::stats::skewness(&shifted)).abs() < 1e-6
        );
        prop_assert!(
            (ht_dsp::stats::kurtosis(&x) - ht_dsp::stats::kurtosis(&shifted)).abs() < 1e-6
        );
    }

    #[test]
    fn percentile_is_monotone(
        mut x in prop::collection::vec(-10.0..10.0f64, 2..64),
        p1 in 0.0..100.0f64,
        p2 in 0.0..100.0f64,
    ) {
        x.sort_by(f64::total_cmp);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(ht_dsp::stats::percentile(&x, lo) <= ht_dsp::stats::percentile(&x, hi) + 1e-12);
    }

    #[test]
    fn zscore_is_idempotent_in_distribution(
        x in prop::collection::vec(-5.0..5.0f64, 8..128),
    ) {
        // Skip near-constant inputs (z-scoring maps them to zero).
        prop_assume!(ht_dsp::stats::std_dev(&x) > 1e-6);
        let mut once = x.clone();
        ht_dsp::signal::normalize_zscore(&mut once);
        let mut twice = once.clone();
        ht_dsp::signal::normalize_zscore(&mut twice);
        for (a, b) in once.iter().zip(twice.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn srp_width_is_invariant_to_channel_count(
        n_ch in 2usize..6,
        max_lag in 1usize..16,
    ) {
        let x: Vec<f64> = (0..256).map(|k| ((k * k) as f64 * 1e-3).sin()).collect();
        let chans: Vec<Vec<f64>> = (0..n_ch).map(|_| x.clone()).collect();
        let refs: Vec<&[f64]> = chans.iter().map(|c| c.as_slice()).collect();
        let a = ht_dsp::srp::srp_phat(&refs, max_lag).unwrap();
        prop_assert_eq!(a.srp.values.len(), 2 * max_lag + 1);
        prop_assert_eq!(a.pairs.len(), n_ch * (n_ch - 1) / 2);
    }
}
