//! Property-based tests for the DSP crate's numerical invariants, running
//! on the in-repo `ht_dsp::check` harness (deterministic per-case seeds,
//! `HT_CHECK_SEED=…` replay).
#![allow(clippy::manual_range_contains)]

use ht_dsp::check::property;
use ht_dsp::filter::Butterworth;
use ht_dsp::window::Window;

#[test]
fn convolution_is_linear() {
    property("convolution_is_linear").run(|g| {
        let a = g.vec_f64(-1.0..1.0, 4..64);
        let b = g.vec_f64(-1.0..1.0, 4..64);
        let k = g.vec_f64(-1.0..1.0, 2..16);
        // conv(a + b, k) == conv(a, k) + conv(b, k) for equal-length a, b.
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let sum: Vec<f64> = a.iter().zip(b).map(|(x, y)| x + y).collect();
        let lhs = ht_dsp::convolve::convolve_direct(&sum, &k);
        let ca = ht_dsp::convolve::convolve_direct(a, &k);
        let cb = ht_dsp::convolve::convolve_direct(b, &k);
        for ((l, x), y) in lhs.iter().zip(ca.iter()).zip(cb.iter()) {
            assert!((l - (x + y)).abs() < 1e-9);
        }
    });
}

#[test]
fn fft_and_direct_convolution_agree() {
    property("fft_and_direct_convolution_agree").run(|g| {
        let x = g.vec_f64(-1.0..1.0, 8..128);
        let h = g.vec_f64(-1.0..1.0, 2..32);
        let direct = ht_dsp::convolve::convolve_direct(&x, &h);
        let fft = ht_dsp::convolve::convolve_fft(&x, &h);
        assert_eq!(direct.len(), fft.len());
        for (d, f) in direct.iter().zip(fft.iter()) {
            assert!((d - f).abs() < 1e-8);
        }
    });
}

#[test]
fn decimation_preserves_dc() {
    property("decimation_preserves_dc").run(|g| {
        let level = g.f64_in(-2.0..2.0);
        let factor = g.usize_in(1..5);
        // A constant signal stays (approximately) constant after the
        // anti-aliased decimator, away from the edges.
        let x = vec![level; 600];
        let y = ht_dsp::resample::decimate(&x, factor).unwrap();
        let mid = &y[y.len() / 4..y.len() * 3 / 4];
        for v in mid {
            assert!((v - level).abs() < 0.02 * level.abs().max(0.1));
        }
    });
}

#[test]
fn filters_are_stable() {
    property("filters_are_stable").run(|g| {
        let order = g.usize_in(1..8);
        let fc = g.f64_in(100.0..20_000.0);
        let x = g.vec_f64(-1.0..1.0, 32..256);
        let f = Butterworth::lowpass(order, fc, 48_000.0).unwrap();
        let y = f.filter(&x);
        // Bounded input, bounded output: no blow-ups for any valid design.
        assert!(y.iter().all(|v| v.is_finite() && v.abs() < 100.0));
    });
}

#[test]
fn windows_never_amplify() {
    property("windows_never_amplify").run(|g| {
        let n = g.usize_in(1..512);
        for w in [
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::Rect,
        ] {
            let c = w.coefficients(n);
            assert_eq!(c.len(), n);
            assert!(c.iter().all(|&v| v <= 1.0 + 1e-12 && v >= -1e-12));
        }
    });
}

#[test]
fn statistics_shift_invariance() {
    property("statistics_shift_invariance").run(|g| {
        let x = g.vec_f64(-10.0..10.0, 3..64);
        let shift = g.f64_in(-100.0..100.0);
        let shifted: Vec<f64> = x.iter().map(|v| v + shift).collect();
        assert!((ht_dsp::stats::std_dev(&x) - ht_dsp::stats::std_dev(&shifted)).abs() < 1e-8);
        assert!((ht_dsp::stats::mad(&x) - ht_dsp::stats::mad(&shifted)).abs() < 1e-8);
        assert!((ht_dsp::stats::skewness(&x) - ht_dsp::stats::skewness(&shifted)).abs() < 1e-6);
        assert!((ht_dsp::stats::kurtosis(&x) - ht_dsp::stats::kurtosis(&shifted)).abs() < 1e-6);
    });
}

#[test]
fn percentile_is_monotone() {
    property("percentile_is_monotone").run(|g| {
        let mut x = g.vec_f64(-10.0..10.0, 2..64);
        let p1 = g.f64_in(0.0..100.0);
        let p2 = g.f64_in(0.0..100.0);
        x.sort_by(f64::total_cmp);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        assert!(ht_dsp::stats::percentile(&x, lo) <= ht_dsp::stats::percentile(&x, hi) + 1e-12);
    });
}

#[test]
fn zscore_is_idempotent_in_distribution() {
    property("zscore_is_idempotent_in_distribution").run(|g| {
        let x = g.vec_f64(-5.0..5.0, 8..128);
        // Skip near-constant inputs (z-scoring maps them to zero).
        if ht_dsp::stats::std_dev(&x) <= 1e-6 {
            return;
        }
        let mut once = x.clone();
        ht_dsp::signal::normalize_zscore(&mut once);
        let mut twice = once.clone();
        ht_dsp::signal::normalize_zscore(&mut twice);
        for (a, b) in once.iter().zip(twice.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    });
}

#[test]
fn srp_width_is_invariant_to_channel_count() {
    property("srp_width_is_invariant_to_channel_count").run(|g| {
        let n_ch = g.usize_in(2..6);
        let max_lag = g.usize_in(1..16);
        let x: Vec<f64> = (0..256).map(|k| ((k * k) as f64 * 1e-3).sin()).collect();
        let chans: Vec<Vec<f64>> = (0..n_ch).map(|_| x.clone()).collect();
        let refs: Vec<&[f64]> = chans.iter().map(|c| c.as_slice()).collect();
        let a = ht_dsp::srp::srp_phat(&refs, max_lag).unwrap();
        assert_eq!(a.srp.values.len(), 2 * max_lag + 1);
        assert_eq!(a.pairs.len(), n_ch * (n_ch - 1) / 2);
    });
}
