//! Property-based tests for the `ht-par` determinism contract, running on
//! the in-repo `ht_dsp::check` harness (deterministic per-case seeds,
//! `HT_CHECK_SEED=…` replay).
//!
//! The contract under test: for any input and any thread count, every
//! `par_*` operation returns exactly what the serial equivalent returns —
//! including outputs driven by per-index RNG streams — and panics inside
//! worker closures surface to the caller with their payload intact.

use ht_dsp::check::property;
use ht_dsp::rng::{split_stream, Rng};
use ht_par::Pool;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The thread widths every property sweeps: serial, even, odd, and
/// oversubscribed relative to the test inputs.
const WIDTHS: [usize; 4] = [1, 2, 3, 8];

#[test]
fn par_map_equals_serial_map() {
    property("par_map_equals_serial_map").run(|g| {
        let xs = g.vec_f64(-1e6..1e6, 0..200);
        let serial: Vec<f64> = xs.iter().map(|&x| (x * 1.5).sin() + x).collect();
        for threads in WIDTHS {
            let par = Pool::new(threads).par_map(&xs, |&x| (x * 1.5).sin() + x);
            // Bit-exact, not approximately equal: scheduling must never
            // change what is computed, only when.
            assert_eq!(
                par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{threads} threads"
            );
        }
    });
}

#[test]
fn par_map_indexed_with_split_stream_is_width_independent() {
    property("par_map_indexed_with_split_stream_is_width_independent").run(|g| {
        let seed = g.u64_in(0..u64::MAX);
        let n = g.usize_in(0..120);
        let items: Vec<usize> = (0..n).collect();
        // Per-item RNG forked from (seed, index): the canonical pattern the
        // workspace uses for deterministic parallel randomness.
        let draw = |i: usize| split_stream(seed, i as u64).next_u64();
        let serial: Vec<u64> = items.iter().map(|&i| draw(i)).collect();
        for threads in WIDTHS {
            let par = Pool::new(threads).par_map_indexed(&items, |i, _| draw(i));
            assert_eq!(par, serial, "{threads} threads");
        }
    });
}

#[test]
fn par_chunks_and_par_reduce_match_serial() {
    property("par_chunks_and_par_reduce_match_serial").run(|g| {
        let xs = g.vec_f64(-100.0..100.0, 1..300);
        let chunk = g.usize_in(1..40);
        let serial_chunks: Vec<f64> = xs.chunks(chunk).map(|c| c.iter().sum()).collect();
        let serial_reduce = {
            // Mirror par_reduce's fixed grouping: chunked left folds, then a
            // fold over the partials in chunk order.
            let partials: Vec<f64> = xs
                .chunks(ht_par::REDUCE_CHUNK)
                .map(|c| c.iter().fold(0.0f64, |a, &x| a + x / 3.0))
                .collect();
            partials.into_iter().fold(0.0f64, |a, b| a + b)
        };
        for threads in WIDTHS {
            let pool = Pool::new(threads);
            let pc = pool.par_chunks(&xs, chunk, |_, c| c.iter().sum::<f64>());
            assert_eq!(
                pc.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                serial_chunks
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "par_chunks, {threads} threads"
            );
            let pr = pool.par_reduce(&xs, 0.0f64, |&x| x / 3.0, |a, b| a + b);
            assert_eq!(
                pr.to_bits(),
                serial_reduce.to_bits(),
                "par_reduce, {threads} threads"
            );
        }
    });
}

#[test]
fn empty_and_singleton_inputs_for_every_width() {
    property("empty_and_singleton_inputs_for_every_width").run(|g| {
        let lone = g.f64_in(-10.0..10.0);
        for threads in WIDTHS {
            let pool = Pool::new(threads);
            let empty: Vec<f64> = Vec::new();
            assert!(pool.par_map(&empty, |&x| x * 2.0).is_empty());
            assert_eq!(pool.par_map(&[lone], |&x| x * 2.0), vec![lone * 2.0]);
            assert_eq!(
                pool.par_reduce(&empty, 1.5, |&x: &f64| x, |a, b| a + b),
                1.5
            );
            assert_eq!(pool.par_chunks(&[lone], 4, |_, c| c.len()), vec![1]);
        }
    });
}

#[test]
fn panics_propagate_from_any_item_and_width() {
    property("panics_propagate_from_any_item_and_width").run(|g| {
        let n = g.usize_in(1..80);
        let bomb = g.usize_in(0..n);
        let items: Vec<usize> = (0..n).collect();
        for threads in WIDTHS {
            let pool = Pool::new(threads);
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.par_map(&items, |&x| {
                    assert!(x != bomb, "bomb at {x}");
                    x
                })
            }));
            let payload = result.expect_err("panic must reach the caller");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .expect("assert! payload is a String");
            assert!(msg.contains("bomb"), "unexpected payload: {msg}");
            // The pool stays usable after a panicked job.
            assert_eq!(pool.par_map(&items, |&x| x + 1).len(), n);
        }
    });
}
