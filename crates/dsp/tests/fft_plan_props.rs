//! Property tests for the planned FFT engine: agreement with the legacy
//! recurrence implementation, real-FFT round-trips over random lengths, and
//! race-free deterministic plan-cache sharing across `ht-par` workers.

use ht_dsp::check::property;
use ht_dsp::fft;
use ht_dsp::Complex;
use ht_par::Pool;

fn random_complex(g: &mut ht_dsp::check::Gen, len: usize) -> Vec<Complex> {
    (0..len)
        .map(|_| Complex::new(g.f64_in(-1.0..1.0), g.f64_in(-1.0..1.0)))
        .collect()
}

#[test]
fn planned_fft_matches_legacy_on_pow2_sizes() {
    property("planned_fft_matches_legacy_on_pow2_sizes").run(|g| {
        let n = 1usize << g.usize_in(0..12);
        let x = random_complex(g, n);
        let planned = fft::fft(&x);
        let legacy = fft::legacy::fft(&x);
        for (p, l) in planned.iter().zip(&legacy) {
            // Identical butterfly structure; only the twiddle rounding
            // differs (tables vs recurrence).
            assert!((*p - *l).abs() < 1e-8 * (n as f64).max(1.0), "n = {n}");
        }
        let back = fft::ifft(&planned);
        for (b, orig) in back.iter().zip(&x) {
            assert!((*b - *orig).abs() < 1e-9, "round trip at n = {n}");
        }
    });
}

#[test]
fn planned_fft_matches_legacy_on_bluestein_sizes() {
    property("planned_fft_matches_legacy_on_bluestein_sizes").run(|g| {
        // Skew towards awkward sizes: odd, prime-ish, just-off-pow2.
        let n = g.usize_in(2..2500);
        let x = random_complex(g, n);
        let planned = fft::fft(&x);
        let legacy = fft::legacy::fft(&x);
        for (k, (p, l)) in planned.iter().zip(&legacy).enumerate() {
            assert!(
                (*p - *l).abs() < 1e-7 * (n as f64),
                "n = {n}, bin {k}: planned {p:?} vs legacy {l:?}"
            );
        }
    });
}

#[test]
fn irfft_real_round_trips_rfft_over_random_lengths() {
    property("irfft_real_round_trips_rfft_over_random_lengths").run(|g| {
        let x = g.vec_f64(-2.0..2.0, 1..1500);
        let spec = fft::rfft(&x);
        assert_eq!(spec.len(), fft::rfft_len(x.len()));
        let back = fft::irfft_real(&spec);
        for (k, (b, orig)) in back.iter().zip(&x).enumerate() {
            assert!(
                (b - orig).abs() < 1e-9,
                "sample {k} of {}: {b} vs {orig}",
                x.len()
            );
        }
        // The zero-padded tail comes back as (numerical) zeros.
        for (k, b) in back.iter().enumerate().skip(x.len()) {
            assert!(b.abs() < 1e-9, "tail sample {k} is {b}");
        }
    });
}

#[test]
fn real_plan_inverse_inverts_forward_over_random_lengths() {
    property("real_plan_inverse_inverts_forward_over_random_lengths").run(|g| {
        let n = 1usize << g.usize_in(0..13);
        let plan = fft::rfft_plan(n);
        let x: Vec<f64> = (0..n).map(|_| g.f64_in(-1.0..1.0)).collect();
        let mut scratch = fft::RealFftScratch::new();
        let mut spec = vec![Complex::ZERO; plan.onesided_len()];
        plan.forward_into(&x, &mut spec, &mut scratch);
        // Edge bins of a real signal's spectrum are real.
        assert_eq!(spec[0].im, 0.0);
        assert_eq!(spec[plan.onesided_len() - 1].im, 0.0);
        let mut back = vec![0.0; n];
        plan.inverse_into(&spec, &mut back, &mut scratch);
        for (k, (b, orig)) in back.iter().zip(&x).enumerate() {
            assert!((b - orig).abs() < 1e-10, "n = {n}, sample {k}");
        }
    });
}

#[test]
fn one_sided_rfft_matches_full_spectrum_prefix() {
    property("one_sided_rfft_matches_full_spectrum_prefix").run(|g| {
        let x = g.vec_f64(-1.0..1.0, 1..2000);
        let full = fft::rfft(&x);
        let onesided = fft::rfft_onesided(&x);
        assert_eq!(onesided.len(), fft::rfft_onesided_len(x.len()));
        for (k, (o, f)) in onesided.iter().zip(&full).enumerate() {
            assert_eq!(*o, *f, "bin {k}: one-sided and full prefix diverge");
        }
    });
}

/// Plan-cache sharing across a 4-worker pool must be race-free and produce
/// bit-identical results to the serial path, including when the workers all
/// miss (and build) the same sizes simultaneously.
#[test]
fn plan_cache_is_race_free_and_deterministic_across_workers() {
    // Sizes chosen to overlap heavily across workers; a fresh test binary
    // means a cold cache, so the first wave of lookups races on building.
    let sizes = [
        256usize, 300, 256, 1024, 300, 777, 1024, 256, 777, 300, 512, 512,
    ];
    let signals: Vec<Vec<f64>> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            (0..n)
                .map(|k| ((k * (i + 3)) as f64 * 0.01).sin())
                .collect()
        })
        .collect();

    let serial = Pool::new(1).install(|| ht_par::par_map(&signals, |x| fft::rfft(x)));
    for _ in 0..3 {
        let parallel = Pool::new(4).install(|| ht_par::par_map(&signals, |x| fft::rfft(x)));
        assert_eq!(serial, parallel, "thread count changed rfft results");
    }

    // The cache hands every worker the same shared plan instance.
    let arcs = Pool::new(4).install(|| ht_par::par_map(&sizes, |&n| fft::rfft_plan(n)));
    for (a, &n) in arcs.iter().zip(&sizes) {
        assert!(
            std::sync::Arc::ptr_eq(a, &fft::rfft_plan(n)),
            "size {n} not served from the shared cache"
        );
    }
}
