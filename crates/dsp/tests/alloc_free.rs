//! Proof that the steady-state STFT and GCC-PHAT paths make zero heap
//! allocations per frame: a counting global allocator wraps `System`, and
//! after one warm-up call (which sizes the plan scratch) repeated
//! `process_into` / `gcc_phat_into` calls must not allocate at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use ht_dsp::correlate::Correlator;
use ht_dsp::stft::StftProcessor;
use ht_dsp::window::Window;
use ht_dsp::Complex;

struct CountingAlloc;

thread_local! {
    // Const-initialized `Cell<u64>`: no lazy-init allocation and no
    // destructor, so the counter itself never perturbs the count.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocations made by `f` on this thread.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(|c| c.get());
    f();
    ALLOCS.with(|c| c.get()) - before
}

#[test]
fn stft_processor_is_allocation_free_after_warmup() {
    // Keep observability recording on: counters and spans must stay out of
    // the per-frame path, so the guarantee holds in instrumented runs too.
    ht_obs::set_mode(ht_obs::Mode::Json);
    let frame: Vec<f64> = (0..480).map(|k| (k as f64 * 0.07).sin()).collect();
    let mut processor = StftProcessor::new(480, Window::Hann);
    let mut out = vec![Complex::ZERO; processor.onesided_len()];
    // Warm-up: builds/fetches the plan and sizes the packed scratch.
    processor.process_into(&frame, &mut out);

    let n = allocs_during(|| {
        for _ in 0..64 {
            processor.process_into(&frame, &mut out);
        }
    });
    ht_obs::set_mode(ht_obs::Mode::Off);
    assert_eq!(n, 0, "steady-state STFT frames allocated {n} times");
}

#[test]
fn gcc_phat_is_allocation_free_after_warmup() {
    ht_obs::set_mode(ht_obs::Mode::Json);
    let x: Vec<f64> = (0..2048).map(|k| ((k * k) as f64 * 0.001).sin()).collect();
    let y: Vec<f64> = (0..2048).map(|k| ((k * k) as f64 * 0.001).cos()).collect();
    let mut correlator = Correlator::new(2048, 13).unwrap();
    let mut values = vec![0.0; correlator.window_len()];
    correlator.gcc_phat_into(&x, &y, &mut values).unwrap();

    let n = allocs_during(|| {
        for _ in 0..64 {
            correlator.gcc_phat_into(&x, &y, &mut values).unwrap();
            correlator.xcorr_into(&x, &y, &mut values).unwrap();
        }
    });
    ht_obs::set_mode(ht_obs::Mode::Off);
    assert_eq!(n, 0, "steady-state GCC-PHAT frames allocated {n} times");
}

#[test]
fn warmed_plan_forward_into_is_allocation_free() {
    let plan = ht_dsp::fft::rfft_plan(4096);
    let x: Vec<f64> = (0..4096).map(|k| (k as f64 * 0.013).cos()).collect();
    let mut spec = vec![Complex::ZERO; plan.onesided_len()];
    let mut back = vec![0.0; plan.len()];
    let mut scratch = ht_dsp::fft::RealFftScratch::new();
    plan.forward_into(&x, &mut spec, &mut scratch);
    plan.inverse_into(&spec, &mut back, &mut scratch);

    let n = allocs_during(|| {
        for _ in 0..64 {
            plan.forward_into(&x, &mut spec, &mut scratch);
            plan.inverse_into(&spec, &mut back, &mut scratch);
        }
    });
    assert_eq!(n, 0, "warmed real-FFT plan allocated {n} times");
}
