//! SRP-PHAT: Steered Response Power with Phase Transform (DiBiase 2000),
//! Eq. 2–6 of the paper.
//!
//! The paper expresses SRP as the sum of the pairwise GCC-PHAT curves over
//! all microphone pairs (Eq. 6) and restricts it to the physically feasible
//! lag window of the array aperture (±0.2–0.27 ms depending on the device).
//! The top peak values of this summed curve, together with the raw pairwise
//! GCC values and TDoAs, form the speech-reverberation feature set (§III-B3).

use crate::complex::Complex;
use crate::correlate::{gcc_phat_from_spectra_into_mode, LagCurve, SpectraGccScratch};
use crate::error::DspError;
use crate::fft;
use crate::kernels::QuantMode;

/// Result of an SRP-PHAT analysis over a multichannel frame.
#[derive(Debug, Clone, PartialEq)]
pub struct SrpAnalysis {
    /// The summed (weighted) SRP curve over lags `±max_lag` (Eq. 6).
    pub srp: LagCurve,
    /// Pairwise GCC-PHAT curves, indexed by the microphone pair returned in
    /// [`SrpAnalysis::pairs`].
    pub gccs: Vec<LagCurve>,
    /// Microphone index pairs `(i, j)` with `i < j`, in the same order as
    /// [`SrpAnalysis::gccs`].
    pub pairs: Vec<(usize, usize)>,
}

impl SrpAnalysis {
    /// The TDoA (in samples, interpolated) of each microphone pair.
    pub fn tdoas(&self) -> Vec<f64> {
        self.gccs
            .iter()
            .map(|g| g.peak_lag_interpolated())
            .collect()
    }

    /// The `k` largest SRP peak values, zero-padded to length `k`
    /// ("we rank the top three peak values as one feature", §III-B3).
    pub fn top_peaks(&self, k: usize) -> Vec<f64> {
        crate::peak::top_k_peak_values(&self.srp.values, k)
    }
}

/// Computes SRP-PHAT over all `C(n, 2)` microphone pairs of a multichannel
/// frame, restricted to lags `±max_lag` samples.
///
/// `channels` holds one equal-length slice per microphone.
///
/// # Errors
///
/// Returns [`DspError::InvalidLength`] if fewer than two channels are given
/// or the channels have mismatched/empty lengths.
///
/// # Example
///
/// ```
/// use ht_dsp::signal::fractional_delay;
/// use ht_dsp::srp::srp_phat;
///
/// # fn main() -> Result<(), ht_dsp::DspError> {
/// let x: Vec<f64> = (0..1024).map(|n| ((n * n) as f64 * 1e-3).sin()).collect();
/// let mics = vec![x.clone(), fractional_delay(&x, 2.0, 16), fractional_delay(&x, 4.0, 16)];
/// let refs: Vec<&[f64]> = mics.iter().map(|c| c.as_slice()).collect();
/// let analysis = srp_phat(&refs, 8)?;
/// assert_eq!(analysis.pairs.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn srp_phat(channels: &[&[f64]], max_lag: usize) -> Result<SrpAnalysis, DspError> {
    srp_phat_mode(channels, max_lag, QuantMode::Reference)
}

/// [`srp_phat`] with an explicit whitening-kernel selection:
/// [`QuantMode::Reference`] is byte-stable and identical to [`srp_phat`];
/// [`QuantMode::Int8`] runs the vectorized squared-magnitude whitening
/// kernel per pair (within tolerance of the reference, not bitwise).
///
/// # Errors
///
/// As for [`srp_phat`].
pub fn srp_phat_mode(
    channels: &[&[f64]],
    max_lag: usize,
    mode: QuantMode,
) -> Result<SrpAnalysis, DspError> {
    let _span = ht_obs::span("dsp.srp_phat");
    if channels.len() < 2 {
        return Err(DspError::length(
            "channels",
            format!("need at least 2 microphones, got {}", channels.len()),
        ));
    }
    let n = channels[0].len();
    if n == 0 {
        return Err(DspError::length("channels", "channels must be non-empty"));
    }
    if channels.iter().any(|c| c.len() != n) {
        return Err(DspError::length(
            "channels",
            "all channels must have equal length",
        ));
    }

    let mut pairs = Vec::new();
    for i in 0..channels.len() {
        for j in (i + 1)..channels.len() {
            pairs.push((i, j));
        }
    }
    // Forward-FFT every channel exactly once (parallel per channel): the
    // C(n, 2) pairs below would otherwise recompute each channel's spectrum
    // n − 1 times. Same padded size and plan as `gcc_phat` on the raw
    // channels, so the per-pair curves are bit-identical to the pairwise
    // path.
    let max_lag = max_lag.min(n - 1);
    let size = fft::next_pow2(n + max_lag + 1);
    let plan = fft::rfft_plan(size);
    let specs: Vec<Vec<Complex>> = ht_par::par_map(channels, |c| plan.forward(c));
    // One whitened cross-spectrum + inverse per pair, in parallel. Each
    // curve lands at its pair's index, and the SRP sum below runs over that
    // fixed order, so the result is byte-identical to the serial loop for
    // any thread count.
    let gccs: Vec<LagCurve> = ht_par::par_map(&pairs, |&(i, j)| {
        let mut scratch = SpectraGccScratch::new();
        let mut values = vec![0.0; 2 * max_lag + 1];
        gcc_phat_from_spectra_into_mode(
            &specs[i],
            &specs[j],
            &plan,
            max_lag,
            &mut scratch,
            &mut values,
            mode,
        );
        LagCurve { values, max_lag }
    });
    let width = gccs[0].values.len();
    let mut srp_values = vec![0.0; width];
    for g in &gccs {
        for (s, v) in srp_values.iter_mut().zip(g.values.iter()) {
            *s += v;
        }
    }
    Ok(SrpAnalysis {
        srp: LagCurve {
            values: srp_values,
            max_lag: gccs[0].max_lag,
        },
        gccs,
        pairs,
    })
}

/// Maximum physically meaningful inter-microphone delay for an aperture of
/// `distance_m` meters at `sample_rate` Hz, in samples (the paper's
/// `N = d · f / c` with `c = 340 m/s`, §III-B3).
pub fn max_delay_samples(distance_m: f64, sample_rate: f64) -> usize {
    const SPEED_OF_SOUND: f64 = 340.0;
    // Guard the exact-integer case (e.g. 8.5 cm at 48 kHz is exactly 12
    // samples) against float round-up.
    (distance_m * sample_rate / SPEED_OF_SOUND - 1e-9).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::fractional_delay;

    fn chirp(n: usize) -> Vec<f64> {
        (0..n)
            .map(|k| {
                let t = k as f64 / n as f64;
                (2.0 * std::f64::consts::PI * (80.0 * t + 600.0 * t * t)).sin()
            })
            .collect()
    }

    #[test]
    fn pair_enumeration_is_complete() {
        let x = chirp(512);
        let mics: Vec<Vec<f64>> = (0..4).map(|k| fractional_delay(&x, k as f64, 16)).collect();
        let refs: Vec<&[f64]> = mics.iter().map(|m| m.as_slice()).collect();
        let a = srp_phat(&refs, 8).unwrap();
        assert_eq!(a.pairs.len(), 6); // C(4,2)
        assert_eq!(a.pairs[0], (0, 1));
        assert_eq!(a.pairs[5], (2, 3));
    }

    #[test]
    fn srp_is_sum_of_gccs() {
        let x = chirp(512);
        let mics = [
            x.clone(),
            fractional_delay(&x, 1.0, 16),
            fractional_delay(&x, 2.0, 16),
        ];
        let refs: Vec<&[f64]> = mics.iter().map(|m| m.as_slice()).collect();
        let a = srp_phat(&refs, 6).unwrap();
        for k in 0..a.srp.values.len() {
            let s: f64 = a.gccs.iter().map(|g| g.values[k]).sum();
            assert!((a.srp.values[k] - s).abs() < 1e-12);
        }
    }

    #[test]
    fn coincident_mics_peak_at_zero_lag() {
        let x = chirp(1024);
        let mics = [x.clone(), x.clone(), x.clone()];
        let refs: Vec<&[f64]> = mics.iter().map(|m| m.as_slice()).collect();
        let a = srp_phat(&refs, 8).unwrap();
        assert_eq!(a.srp.peak_lag(), 0);
        assert!(a.tdoas().iter().all(|t| t.abs() < 0.1));
    }

    #[test]
    fn tdoas_reflect_inter_channel_delays() {
        let x = chirp(2048);
        let mics = [x.clone(), fractional_delay(&x, 3.0, 16)];
        let refs: Vec<&[f64]> = mics.iter().map(|m| m.as_slice()).collect();
        let a = srp_phat(&refs, 8).unwrap();
        assert!((a.tdoas()[0] + 3.0).abs() < 0.2);
    }

    #[test]
    fn top_peaks_pad_to_requested_width() {
        let x = chirp(512);
        let mics = [x.clone(), x.clone()];
        let refs: Vec<&[f64]> = mics.iter().map(|m| m.as_slice()).collect();
        let a = srp_phat(&refs, 4).unwrap();
        assert_eq!(a.top_peaks(3).len(), 3);
    }

    #[test]
    fn too_few_channels_is_rejected() {
        let x = chirp(128);
        assert!(srp_phat(&[x.as_slice()], 4).is_err());
        assert!(srp_phat(&[], 4).is_err());
    }

    #[test]
    fn mismatched_channels_are_rejected() {
        let a = chirp(128);
        let b = chirp(64);
        assert!(srp_phat(&[a.as_slice(), b.as_slice()], 4).is_err());
    }

    #[test]
    fn shared_spectra_match_pairwise_gcc_phat_bitwise() {
        // The forward-once optimization must be invisible: every per-pair
        // curve equals the standalone GCC-PHAT of that pair, bit for bit.
        let x = chirp(1024);
        let mics: Vec<Vec<f64>> = (0..4)
            .map(|k| fractional_delay(&x, k as f64 * 1.3, 16))
            .collect();
        let refs: Vec<&[f64]> = mics.iter().map(|m| m.as_slice()).collect();
        let a = srp_phat(&refs, 8).unwrap();
        for (g, &(i, j)) in a.gccs.iter().zip(&a.pairs) {
            let direct = crate::correlate::gcc_phat(refs[i], refs[j], 8).unwrap();
            assert_eq!(g.values, direct.values, "pair ({i}, {j})");
        }
    }

    #[test]
    fn top_peaks_never_panics_for_oversized_or_zero_k() {
        // k far beyond the number of detectable peaks in the curve must
        // zero-pad, not panic; k = 0 is the empty feature set.
        let x = chirp(256);
        let mics = [x.clone(), x.clone()];
        let refs: Vec<&[f64]> = mics.iter().map(|m| m.as_slice()).collect();
        let a = srp_phat(&refs, 2).unwrap();
        assert_eq!(a.top_peaks(0), Vec::<f64>::new());
        let padded = a.top_peaks(50);
        assert_eq!(padded.len(), 50);
        // The lag window only holds 5 values; once peaks and then the
        // largest remaining samples are exhausted, the tail is the
        // documented zero padding.
        assert!(padded[5..].iter().all(|&v| v == 0.0));
        // The leading entries are the window's samples, largest first.
        let mut window = a.srp.values.clone();
        window.sort_by(|x, y| y.total_cmp(x));
        assert_eq!(&padded[..5], window.as_slice());
    }

    #[test]
    fn int8_mode_srp_agrees_with_reference() {
        let x = chirp(1024);
        let mics: Vec<Vec<f64>> = (0..3)
            .map(|k| fractional_delay(&x, k as f64 * 1.7, 16))
            .collect();
        let refs: Vec<&[f64]> = mics.iter().map(|m| m.as_slice()).collect();
        let reference = srp_phat(&refs, 8).unwrap();
        let fast = srp_phat_mode(&refs, 8, QuantMode::Int8).unwrap();
        assert_eq!(fast.pairs, reference.pairs);
        assert_eq!(fast.srp.peak_lag(), reference.srp.peak_lag());
        for (a, b) in fast.srp.values.iter().zip(&reference.srp.values) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        // Reference mode through the explicit entry point is bitwise the
        // default path.
        let explicit = srp_phat_mode(&refs, 8, QuantMode::Reference).unwrap();
        assert_eq!(explicit, reference);
    }

    #[test]
    fn max_delay_samples_rounding_is_pinned_at_sample_boundaries() {
        // d·f/c landing exactly on an integer must stay there (8.5 cm at
        // 48 kHz is exactly 12.0 samples), not round up to 13.
        assert_eq!(max_delay_samples(0.085, 48_000.0), 12);
        // A hair above the boundary (beyond the 1e-9 guard) rounds up: the
        // lag window must cover the full physical aperture.
        let just_above = 12.001 * 340.0 / 48_000.0;
        assert_eq!(max_delay_samples(just_above, 48_000.0), 13);
        // The half-sample point rounds up (ceil covers the aperture).
        let half = 11.5 * 340.0 / 48_000.0;
        assert_eq!(max_delay_samples(half, 48_000.0), 12);
        // Degenerate apertures collapse to the zero-lag window.
        assert_eq!(max_delay_samples(0.0, 48_000.0), 0);
    }

    #[test]
    fn max_delay_samples_matches_paper_values() {
        // §III-B3: D3 has d = 6.5 cm at 48 kHz -> ~10 samples (paper: 10).
        assert_eq!(max_delay_samples(0.065, 48_000.0), 10);
        // D1: 8.5 cm -> 12 samples (paper rounds the window to ±0.25 ms,
        // i.e. 12 one-sided samples -> 25-sample window).
        assert_eq!(max_delay_samples(0.085, 48_000.0), 12);
        // D2: 9 cm -> 13 samples (paper: 13 -> 27-sample window).
        assert_eq!(max_delay_samples(0.09, 48_000.0), 13);
    }
}
