//! Window functions for spectral analysis and FIR design.

/// Supported window shapes.
///
/// # Example
///
/// ```
/// use ht_dsp::window::Window;
///
/// let w = Window::Hann.coefficients(8);
/// assert_eq!(w.len(), 8);
/// // Hann endpoints are zero.
/// assert!(w[0].abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// Rectangular (no tapering).
    Rect,
    /// Hann (raised cosine); the default for STFT work.
    #[default]
    Hann,
    /// Hamming.
    Hamming,
    /// Blackman.
    Blackman,
}

impl Window {
    /// Generates the window coefficients for a window of length `n`.
    ///
    /// Uses the periodic ("DFT-even") convention for `n > 1`, which is the
    /// right choice for STFT analysis with overlap-add.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let nf = n as f64;
        (0..n)
            .map(|i| {
                let x = 2.0 * std::f64::consts::PI * i as f64 / nf;
                match self {
                    Window::Rect => 1.0,
                    Window::Hann => 0.5 - 0.5 * x.cos(),
                    Window::Hamming => 0.54 - 0.46 * x.cos(),
                    Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
                }
            })
            .collect()
    }

    /// Applies the window to `signal` in place.
    ///
    /// Allocates the coefficient table per call; repeated framing should
    /// precompute [`coefficients`](Window::coefficients) once and use
    /// [`apply_coefficients`] (as [`crate::stft::StftProcessor`] does).
    pub fn apply(self, signal: &mut [f64]) {
        let coeffs = self.coefficients(signal.len());
        apply_coefficients(&coeffs, signal);
    }

    /// Sum of the window coefficients (used for amplitude normalization of
    /// spectra). Evaluated directly — no coefficient table is materialized.
    pub fn coherent_gain(self, n: usize) -> f64 {
        match n {
            // `iter::Sum` for f64 folds from -0.0; keep the historical bits.
            0 => -0.0,
            1 => 1.0,
            _ => {
                let nf = n as f64;
                (0..n)
                    .map(|i| {
                        let x = 2.0 * std::f64::consts::PI * i as f64 / nf;
                        match self {
                            Window::Rect => 1.0,
                            Window::Hann => 0.5 - 0.5 * x.cos(),
                            Window::Hamming => 0.54 - 0.46 * x.cos(),
                            Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
                        }
                    })
                    .sum()
            }
        }
    }
}

/// Multiplies `signal` by a precomputed coefficient table in place — the
/// flat element-wise loop every framing hot path should sit on (the
/// compiler autovectorizes it; no per-call allocation).
///
/// Trailing samples beyond `coeffs.len()` are left untouched, matching the
/// historical zip semantics of [`Window::apply`].
pub fn apply_coefficients(coeffs: &[f64], signal: &mut [f64]) {
    for (s, w) in signal.iter_mut().zip(coeffs) {
        *s *= w;
    }
}

/// Symmetric windowed-sinc low-pass FIR prototype with `taps` coefficients
/// and cutoff `fc` (normalized to the sample rate, 0 < fc < 0.5), windowed by
/// `window`. Used by the resampler's anti-alias filter.
///
/// The kernel is normalized to unit DC gain.
pub fn sinc_lowpass(taps: usize, fc: f64, window: Window) -> Vec<f64> {
    assert!(taps >= 1, "FIR length must be at least 1");
    assert!(fc > 0.0 && fc < 0.5, "cutoff must be in (0, 0.5)");
    let m = (taps - 1) as f64 / 2.0;
    let w = symmetric_coefficients(window, taps);
    let mut h: Vec<f64> = (0..taps)
        .map(|i| {
            let t = i as f64 - m;
            let sinc = if t.abs() < 1e-12 {
                2.0 * fc
            } else {
                (2.0 * std::f64::consts::PI * fc * t).sin() / (std::f64::consts::PI * t)
            };
            sinc * w[i]
        })
        .collect();
    let sum: f64 = h.iter().sum();
    for v in &mut h {
        *v /= sum;
    }
    h
}

/// Symmetric (filter-design) variant of the window coefficients.
fn symmetric_coefficients(window: Window, n: usize) -> Vec<f64> {
    if n <= 1 {
        return vec![1.0; n];
    }
    let nf = (n - 1) as f64;
    (0..n)
        .map(|i| {
            let x = 2.0 * std::f64::consts::PI * i as f64 / nf;
            match window {
                Window::Rect => 1.0,
                Window::Hann => 0.5 - 0.5 * x.cos(),
                Window::Hamming => 0.54 - 0.46 * x.cos(),
                Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_edges() {
        for w in [
            Window::Rect,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
        ] {
            assert!(w.coefficients(0).is_empty());
            assert_eq!(w.coefficients(1), vec![1.0]);
            assert_eq!(w.coefficients(64).len(), 64);
        }
    }

    #[test]
    fn windows_are_bounded_by_unity() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            for c in w.coefficients(128) {
                assert!((-1e-12..=1.0 + 1e-12).contains(&c), "{w:?} produced {c}");
            }
        }
    }

    #[test]
    fn hann_peak_is_at_center() {
        let c = Window::Hann.coefficients(64);
        let (imax, _) = c
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert_eq!(imax, 32); // periodic convention peaks at n/2
    }

    #[test]
    fn rect_is_all_ones() {
        assert!(Window::Rect.coefficients(10).iter().all(|&c| c == 1.0));
    }

    #[test]
    fn apply_windows_in_place() {
        let mut x = vec![1.0; 8];
        Window::Hann.apply(&mut x);
        assert!(x[0].abs() < 1e-12);
        assert!((x[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coherent_gain_of_rect_is_n() {
        assert_eq!(Window::Rect.coherent_gain(37), 37.0);
    }

    #[test]
    fn coherent_gain_matches_coefficient_sum_bitwise() {
        for w in [
            Window::Rect,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
        ] {
            for n in [0usize, 1, 2, 17, 128] {
                let direct = w.coherent_gain(n);
                let summed: f64 = w.coefficients(n).iter().sum();
                assert_eq!(direct.to_bits(), summed.to_bits(), "{w:?} n={n}");
            }
        }
    }

    #[test]
    fn apply_coefficients_matches_apply() {
        let mut a = vec![0.5; 33];
        let mut b = a.clone();
        Window::Blackman.apply(&mut a);
        apply_coefficients(&Window::Blackman.coefficients(33), &mut b);
        assert_eq!(a, b);
        // A short table leaves the tail untouched.
        let mut c = vec![2.0; 4];
        apply_coefficients(&[0.5, 0.5], &mut c);
        assert_eq!(c, vec![1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn sinc_lowpass_has_unit_dc_gain() {
        let h = sinc_lowpass(63, 0.15, Window::Hamming);
        let dc: f64 = h.iter().sum();
        assert!((dc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sinc_lowpass_attenuates_high_frequency() {
        let h = sinc_lowpass(127, 0.1, Window::Blackman);
        // Evaluate |H(f)| at f = 0.05 (passband) and f = 0.25 (stopband).
        let mag = |f: f64| {
            let (mut re, mut im) = (0.0, 0.0);
            for (n, &c) in h.iter().enumerate() {
                let p = -2.0 * std::f64::consts::PI * f * n as f64;
                re += c * p.cos();
                im += c * p.sin();
            }
            (re * re + im * im).sqrt()
        };
        assert!(mag(0.05) > 0.9);
        assert!(mag(0.25) < 1e-3);
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn sinc_lowpass_rejects_bad_cutoff() {
        sinc_lowpass(11, 0.6, Window::Hann);
    }
}
