//! Error type shared by fallible DSP routines.

use std::error::Error;
use std::fmt;

/// Error returned by fallible routines in this crate.
///
/// # Example
///
/// ```
/// use ht_dsp::{filter::Butterworth, DspError};
///
/// // A corner frequency at or above Nyquist is rejected.
/// let err = Butterworth::lowpass(5, 30_000.0, 48_000.0).unwrap_err();
/// assert!(matches!(err, DspError::InvalidParameter { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DspError {
    /// A numeric parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// An input slice had an unusable length (empty, mismatched, …).
    InvalidLength {
        /// Name of the offending input.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
}

impl DspError {
    /// Convenience constructor for [`DspError::InvalidParameter`].
    pub fn param(name: &'static str, reason: impl Into<String>) -> Self {
        DspError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`DspError::InvalidLength`].
    pub fn length(name: &'static str, reason: impl Into<String>) -> Self {
        DspError::InvalidLength {
            name,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DspError::InvalidLength { name, reason } => {
                write!(f, "invalid length for `{name}`: {reason}")
            }
        }
    }
}

impl Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = DspError::param("order", "must be at least 1");
        assert_eq!(
            e.to_string(),
            "invalid parameter `order`: must be at least 1"
        );
        let e = DspError::length("signal", "must be non-empty");
        assert!(e.to_string().contains("signal"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
