//! Peak detection over sampled curves (SRP lag windows, spectra).

/// A detected local maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Index of the peak within the input slice.
    pub index: usize,
    /// Value at the peak.
    pub value: f64,
}

/// Finds local maxima of `x`: samples strictly greater than their left
/// neighbour and at least as great as their right neighbour. Endpoints count
/// as peaks when they dominate their single neighbour — the SRP lag window is
/// a truncated curve, so its physical maximum can sit on the boundary.
///
/// # Example
///
/// ```
/// use ht_dsp::peak::local_maxima;
///
/// let x = [0.0, 2.0, 1.0, 3.0, 0.5];
/// let peaks = local_maxima(&x);
/// let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
/// assert_eq!(idx, vec![1, 3]);
/// ```
pub fn local_maxima(x: &[f64]) -> Vec<Peak> {
    let n = x.len();
    match n {
        0 => return Vec::new(),
        1 => {
            return vec![Peak {
                index: 0,
                value: x[0],
            }]
        }
        _ => {}
    }
    let mut peaks = Vec::new();
    if x[0] > x[1] {
        peaks.push(Peak {
            index: 0,
            value: x[0],
        });
    }
    for i in 1..n - 1 {
        if x[i] > x[i - 1] && x[i] >= x[i + 1] {
            peaks.push(Peak {
                index: i,
                value: x[i],
            });
        }
    }
    if x[n - 1] > x[n - 2] {
        peaks.push(Peak {
            index: n - 1,
            value: x[n - 1],
        });
    }
    peaks
}

/// The `k` largest local maxima, sorted by descending value. When fewer than
/// `k` local maxima exist the list is padded with the globally largest
/// remaining samples so that feature vectors keep a fixed width (§III-B3
/// ranks "the top three peak values as one feature").
pub fn top_k_peaks(x: &[f64], k: usize) -> Vec<Peak> {
    let mut peaks = local_maxima(x);
    peaks.sort_by(|a, b| b.value.total_cmp(&a.value));
    peaks.truncate(k);
    if peaks.len() < k && !x.is_empty() {
        let taken: Vec<usize> = peaks.iter().map(|p| p.index).collect();
        let mut rest: Vec<Peak> = x
            .iter()
            .enumerate()
            .filter(|(i, _)| !taken.contains(i))
            .map(|(index, &value)| Peak { index, value })
            .collect();
        rest.sort_by(|a, b| b.value.total_cmp(&a.value));
        peaks.extend(rest.into_iter().take(k - peaks.len()));
    }
    peaks
}

/// The values of the `k` largest peaks, zero-padded to exactly `k` entries
/// (fixed-width feature helper).
pub fn top_k_peak_values(x: &[f64], k: usize) -> Vec<f64> {
    let mut vals: Vec<f64> = top_k_peaks(x, k).into_iter().map(|p| p.value).collect();
    vals.resize(k, 0.0);
    vals
}

/// Allocation-free equivalent of [`top_k_peak_values`]: appends exactly `k`
/// values to `out` — peak values sorted descending, then the largest
/// non-peak samples if fewer than `k` peaks exist, then zeros — bit- and
/// order-identical to the allocating helper. Used on the streaming
/// finalize path, where the feature vector is assembled into a reused
/// scratch buffer.
pub fn push_top_k_peak_values(x: &[f64], k: usize, out: &mut Vec<f64>) {
    let start = out.len();
    if k == 0 {
        return;
    }
    let n = x.len();
    // Mirrors `local_maxima` exactly: singletons and dominating endpoints
    // count as peaks.
    let is_peak = |i: usize| -> bool {
        if n == 1 {
            return true;
        }
        if i == 0 {
            return x[0] > x[1];
        }
        if i == n - 1 {
            return x[n - 1] > x[n - 2];
        }
        x[i] > x[i - 1] && x[i] >= x[i + 1]
    };
    if n > 0 {
        for (i, &v) in x.iter().enumerate() {
            if is_peak(i) {
                insert_desc(out, start, k, v);
            }
        }
        let peaks_taken = out.len() - start;
        if peaks_taken < k {
            // `top_k_peaks` only pads when NO peak was truncated, so the
            // pad candidates are exactly the non-peak samples.
            let mid = out.len();
            for (i, &v) in x.iter().enumerate() {
                if !is_peak(i) {
                    insert_desc(out, mid, k - peaks_taken, v);
                }
            }
        }
    }
    while out.len() < start + k {
        out.push(0.0);
    }
}

/// Bounded descending insertion into `out[from..]`, keeping at most `cap`
/// values. Ties keep first-seen order — the same order the stable sort in
/// [`top_k_peaks`] produces for equal values.
fn insert_desc(out: &mut Vec<f64>, from: usize, cap: usize, v: f64) {
    if cap == 0 {
        return;
    }
    let mut pos = out.len();
    while pos > from && v.total_cmp(&out[pos - 1]) == std::cmp::Ordering::Greater {
        pos -= 1;
    }
    if out.len() - from < cap {
        out.insert(pos, v);
    } else if pos < out.len() {
        let end = out.len();
        out.copy_within(pos..end - 1, pos + 1);
        out[pos] = v;
    }
}

/// Index of the global maximum, or `None` for an empty slice.
pub fn argmax(x: &[f64]) -> Option<usize> {
    x.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        assert!(local_maxima(&[]).is_empty());
        let p = local_maxima(&[7.0]);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].value, 7.0);
    }

    #[test]
    fn boundary_peaks_are_detected() {
        let x = [5.0, 1.0, 0.0, 4.0];
        let idx: Vec<usize> = local_maxima(&x).iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![0, 3]);
    }

    #[test]
    fn plateau_counts_once() {
        // [0, 2, 2, 0]: index 1 satisfies (strict left, >= right); index 2
        // does not satisfy strict left. Exactly one peak.
        let x = [0.0, 2.0, 2.0, 0.0];
        assert_eq!(local_maxima(&x).len(), 1);
    }

    #[test]
    fn top_k_orders_by_value() {
        let x = [0.0, 3.0, 0.0, 5.0, 0.0, 1.0, 0.0];
        let top = top_k_peaks(&x, 2);
        assert_eq!(top[0].value, 5.0);
        assert_eq!(top[1].value, 3.0);
    }

    #[test]
    fn top_k_pads_with_largest_samples() {
        // Monotone ramp has a single local max (the right endpoint).
        let x = [1.0, 2.0, 3.0, 4.0];
        let vals = top_k_peak_values(&x, 3);
        assert_eq!(vals, vec![4.0, 3.0, 2.0]);
    }

    #[test]
    fn top_k_zero_pads_short_inputs() {
        assert_eq!(top_k_peak_values(&[2.0], 3), vec![2.0, 0.0, 0.0]);
        assert_eq!(top_k_peak_values(&[], 2), vec![0.0, 0.0]);
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0, 9.0, 3.0]), Some(1));
    }

    #[test]
    fn push_variant_matches_allocating_helper() {
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..200 {
            let n = (next() % 40) as usize;
            // Quantized values force frequent ties, exercising the stable
            // ordering contract.
            let x: Vec<f64> = (0..n).map(|_| (next() % 7) as f64 - 3.0).collect();
            let k = (next() % 8) as usize;
            let want = top_k_peak_values(&x, k);
            let mut got = vec![f64::NAN; 2]; // existing prefix must survive
            got.reserve(k);
            push_top_k_peak_values(&x, k, &mut got);
            assert_eq!(got.len(), 2 + k, "trial {trial}");
            for (i, w) in want.iter().enumerate() {
                assert_eq!(got[2 + i].to_bits(), w.to_bits(), "trial {trial} slot {i}");
            }
        }
    }

    #[test]
    fn push_variant_edge_cases() {
        let mut out = Vec::new();
        push_top_k_peak_values(&[], 3, &mut out);
        assert_eq!(out, vec![0.0, 0.0, 0.0]);

        out.clear();
        push_top_k_peak_values(&[1.0, 5.0, 2.0], 0, &mut out);
        assert!(out.is_empty());

        out.clear();
        push_top_k_peak_values(&[7.0], 2, &mut out);
        assert_eq!(out, vec![7.0, 0.0]);

        // Monotone ramp: single endpoint peak, padded with largest samples.
        out.clear();
        push_top_k_peak_values(&[1.0, 2.0, 3.0, 4.0], 3, &mut out);
        assert_eq!(out, vec![4.0, 3.0, 2.0]);
    }
}
