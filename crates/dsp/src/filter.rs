//! IIR filtering: biquad sections and Butterworth designs.
//!
//! The paper's preprocessing stage applies a *fifth-order Butterworth
//! band-pass filter* keeping 100–16 000 Hz (§III). We realize Butterworth
//! low-/high-pass designs of arbitrary order as cascaded second-order
//! sections (the numerically robust factored form), and the band-pass as a
//! high-pass/low-pass cascade, which has the same pass band and monotone
//! Butterworth roll-off on both skirts.

use crate::error::DspError;

/// One second-order IIR section (biquad) in direct form I coefficients,
/// normalized so `a0 == 1`:
///
/// `y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]`
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    /// Feed-forward coefficients.
    pub b: [f64; 3],
    /// Feedback coefficients `[a1, a2]` (with `a0` normalized to 1).
    pub a: [f64; 2],
}

impl Biquad {
    /// Identity (pass-through) section.
    pub const IDENTITY: Biquad = Biquad {
        b: [1.0, 0.0, 0.0],
        a: [0.0, 0.0],
    };

    /// RBJ-cookbook second-order Butterworth-style low-pass with quality `q`.
    fn lowpass_q(fc: f64, fs: f64, q: f64) -> Biquad {
        let w0 = 2.0 * std::f64::consts::PI * fc / fs;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Biquad {
            b: [
                (1.0 - cw) / 2.0 / a0,
                (1.0 - cw) / a0,
                (1.0 - cw) / 2.0 / a0,
            ],
            a: [-2.0 * cw / a0, (1.0 - alpha) / a0],
        }
    }

    /// RBJ-cookbook second-order high-pass with quality `q`.
    fn highpass_q(fc: f64, fs: f64, q: f64) -> Biquad {
        let w0 = 2.0 * std::f64::consts::PI * fc / fs;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Biquad {
            b: [
                (1.0 + cw) / 2.0 / a0,
                -(1.0 + cw) / a0,
                (1.0 + cw) / 2.0 / a0,
            ],
            a: [-2.0 * cw / a0, (1.0 - alpha) / a0],
        }
    }

    /// First-order low-pass realized as a biquad (bilinear transform).
    fn lowpass_first_order(fc: f64, fs: f64) -> Biquad {
        let k = (std::f64::consts::PI * fc / fs).tan();
        let norm = 1.0 / (k + 1.0);
        Biquad {
            b: [k * norm, k * norm, 0.0],
            a: [(k - 1.0) * norm, 0.0],
        }
    }

    /// First-order high-pass realized as a biquad (bilinear transform).
    fn highpass_first_order(fc: f64, fs: f64) -> Biquad {
        let k = (std::f64::consts::PI * fc / fs).tan();
        let norm = 1.0 / (k + 1.0);
        Biquad {
            b: [norm, -norm, 0.0],
            a: [(k - 1.0) * norm, 0.0],
        }
    }

    /// Complex frequency response `H(e^{jω})` magnitude at frequency `f` Hz.
    pub fn magnitude_at(&self, f: f64, fs: f64) -> f64 {
        let w = 2.0 * std::f64::consts::PI * f / fs;
        let z1 = crate::Complex::from_angle(-w);
        let z2 = crate::Complex::from_angle(-2.0 * w);
        let num = crate::Complex::from_real(self.b[0]) + z1 * self.b[1] + z2 * self.b[2];
        let den = crate::Complex::ONE + z1 * self.a[0] + z2 * self.a[1];
        (num / den).abs()
    }
}

/// A cascade of second-order sections with per-section state, i.e. a complete
/// IIR filter.
///
/// # Example
///
/// ```
/// use ht_dsp::filter::Butterworth;
///
/// # fn main() -> Result<(), ht_dsp::DspError> {
/// // The paper's pre-filter: 5th-order band-pass keeping 100–16 000 Hz.
/// let bp = Butterworth::bandpass(5, 100.0, 16_000.0, 48_000.0)?;
/// let noisy: Vec<f64> = (0..4800).map(|n| (n as f64 * 0.001).sin()).collect();
/// let clean = bp.filtfilt(&noisy);
/// assert_eq!(clean.len(), noisy.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sos {
    sections: Vec<Biquad>,
}

impl Sos {
    /// Builds a cascade from explicit sections.
    pub fn new(sections: Vec<Biquad>) -> Self {
        Sos { sections }
    }

    /// The individual second-order sections.
    pub fn sections(&self) -> &[Biquad] {
        &self.sections
    }

    /// Filters `x` (zero initial state), returning a signal of equal length.
    pub fn filter(&self, x: &[f64]) -> Vec<f64> {
        let mut y = x.to_vec();
        for s in &self.sections {
            let mut x1 = 0.0;
            let mut x2 = 0.0;
            let mut y1 = 0.0;
            let mut y2 = 0.0;
            for v in y.iter_mut() {
                let xin = *v;
                let yout = s.b[0] * xin + s.b[1] * x1 + s.b[2] * x2 - s.a[0] * y1 - s.a[1] * y2;
                x2 = x1;
                x1 = xin;
                y2 = y1;
                y1 = yout;
                *v = yout;
            }
        }
        y
    }

    /// Zero-phase filtering: forward pass, time reversal, second pass,
    /// reversal again. Edge transients are reduced by odd-reflection padding.
    ///
    /// Zero phase matters for the orientation features: a phase-warping
    /// pre-filter would shift the inter-microphone delays that GCC-PHAT
    /// measures.
    pub fn filtfilt(&self, x: &[f64]) -> Vec<f64> {
        if x.is_empty() {
            return Vec::new();
        }
        let pad = (6 * (self.sections.len() + 1)).min(x.len().saturating_sub(1));
        // Odd reflection: 2*x[0] - x[pad..1], signal, 2*x[last] - x[n-2..].
        let mut ext = Vec::with_capacity(x.len() + 2 * pad);
        for i in (1..=pad).rev() {
            ext.push(2.0 * x[0] - x[i]);
        }
        ext.extend_from_slice(x);
        let n = x.len();
        for i in 1..=pad {
            ext.push(2.0 * x[n - 1] - x[n - 1 - i]);
        }
        let mut y = self.filter(&ext);
        y.reverse();
        let mut y = self.filter(&y);
        y.reverse();
        y[pad..pad + n].to_vec()
    }

    /// Cascade magnitude response at frequency `f` Hz.
    pub fn magnitude_at(&self, f: f64, fs: f64) -> f64 {
        self.sections
            .iter()
            .map(|s| s.magnitude_at(f, fs))
            .product()
    }
}

/// A causal, chunk-streaming view of an [`Sos`] cascade.
///
/// [`Sos::filter`] runs section-major over a whole signal from zero state.
/// This wrapper carries each section's direct-form-I state across calls
/// instead, so a signal fed chunk by chunk — any chunk boundaries —
/// produces exactly the bytes one `Sos::filter` call produces on the
/// concatenation: every output sample is computed by the same recurrence
/// expression from the same operand values (each section is an independent
/// causal recurrence, so sample-major vs. section-major visiting order
/// changes nothing), and no accumulation is reassociated.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingSos {
    sos: Sos,
    /// Per-section `[x1, x2, y1, y2]` direct-form-I state.
    state: Vec<[f64; 4]>,
}

impl StreamingSos {
    /// Wraps a cascade with zeroed state.
    pub fn new(sos: Sos) -> StreamingSos {
        let n = sos.sections().len();
        StreamingSos {
            sos,
            state: vec![[0.0; 4]; n],
        }
    }

    /// The wrapped cascade.
    pub fn sos(&self) -> &Sos {
        &self.sos
    }

    /// Filters one chunk, appending the output samples to `out`.
    /// Allocation-free once `out` has capacity for the chunk.
    pub fn process(&mut self, x: &[f64], out: &mut Vec<f64>) {
        out.reserve(x.len());
        for &sample in x {
            let mut v = sample;
            for (s, st) in self.sos.sections().iter().zip(self.state.iter_mut()) {
                let [x1, x2, y1, y2] = *st;
                let yout = s.b[0] * v + s.b[1] * x1 + s.b[2] * x2 - s.a[0] * y1 - s.a[1] * y2;
                *st = [v, x1, yout, y1];
                v = yout;
            }
            out.push(v);
        }
    }

    /// Zeroes the carried state: a reset filter is bit-identical to a
    /// freshly built one (pooled stream slots depend on this).
    pub fn reset(&mut self) {
        for st in &mut self.state {
            *st = [0.0; 4];
        }
    }
}

/// Butterworth filter designs, realized as [`Sos`] cascades.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Butterworth;

impl Butterworth {
    fn validate(order: usize, fc: f64, fs: f64, name: &'static str) -> Result<(), DspError> {
        if order == 0 {
            return Err(DspError::param("order", "must be at least 1"));
        }
        if fs <= 0.0 || fs.is_nan() {
            return Err(DspError::param("sample_rate", "must be positive"));
        }
        if fc <= 0.0 || fc.is_nan() || fc >= fs / 2.0 {
            return Err(DspError::param(
                name,
                format!("must be in (0, fs/2) = (0, {}), got {fc}", fs / 2.0),
            ));
        }
        Ok(())
    }

    /// Quality factors of the second-order sections of an `order`-N
    /// Butterworth filter; `(qs, has_first_order)`.
    fn section_qs(order: usize) -> (Vec<f64>, bool) {
        let n = order;
        let pairs = n / 2;
        let odd = n % 2 == 1;
        let qs = (0..pairs)
            .map(|k| {
                // Pole-pair angle off the negative real axis.
                let theta = std::f64::consts::PI * (2.0 * k as f64 + 1.0) / (2.0 * n as f64);
                let theta = if odd {
                    // For odd orders, pairs sit at k*pi/n off the real axis.
                    std::f64::consts::PI * (k as f64 + 1.0) / n as f64
                } else {
                    theta
                };
                1.0 / (2.0 * theta.cos())
            })
            .collect();
        (qs, odd)
    }

    /// Designs an `order`-N Butterworth low-pass with corner `fc` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `order == 0`, `fs <= 0`, or
    /// `fc` is not strictly between 0 and Nyquist.
    pub fn lowpass(order: usize, fc: f64, fs: f64) -> Result<Sos, DspError> {
        Self::validate(order, fc, fs, "fc")?;
        let (qs, odd) = Self::section_qs(order);
        let mut sections: Vec<Biquad> = qs
            .into_iter()
            .map(|q| Biquad::lowpass_q(fc, fs, q))
            .collect();
        if odd {
            sections.push(Biquad::lowpass_first_order(fc, fs));
        }
        Ok(Sos::new(sections))
    }

    /// Designs an `order`-N Butterworth high-pass with corner `fc` Hz.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Butterworth::lowpass`].
    pub fn highpass(order: usize, fc: f64, fs: f64) -> Result<Sos, DspError> {
        Self::validate(order, fc, fs, "fc")?;
        let (qs, odd) = Self::section_qs(order);
        let mut sections: Vec<Biquad> = qs
            .into_iter()
            .map(|q| Biquad::highpass_q(fc, fs, q))
            .collect();
        if odd {
            sections.push(Biquad::highpass_first_order(fc, fs));
        }
        Ok(Sos::new(sections))
    }

    /// Designs the band-pass used by the paper's preprocessing block: an
    /// `order`-N Butterworth high-pass at `f_lo` cascaded with an `order`-N
    /// Butterworth low-pass at `f_hi`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if either corner is invalid or
    /// `f_lo >= f_hi`.
    pub fn bandpass(order: usize, f_lo: f64, f_hi: f64, fs: f64) -> Result<Sos, DspError> {
        if f_lo >= f_hi {
            return Err(DspError::param(
                "f_lo",
                format!("low corner {f_lo} must be below high corner {f_hi}"),
            ));
        }
        let hp = Self::highpass(order, f_lo, fs)?;
        let lp = Self::lowpass(order, f_hi, fs)?;
        let mut sections = hp.sections;
        sections.extend(lp.sections);
        Ok(Sos::new(sections))
    }

    /// The exact preprocessing filter from §III of the paper: 5th-order
    /// band-pass keeping 100–16 000 Hz at the given sample rate.
    ///
    /// # Errors
    ///
    /// Returns an error if `fs` is too low for the 16 kHz corner
    /// (`fs <= 32 kHz`).
    pub fn headtalk_preprocess(fs: f64) -> Result<Sos, DspError> {
        Self::bandpass(5, 100.0, 16_000.0, fs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{rms, tone};

    const FS: f64 = 48_000.0;

    #[test]
    fn lowpass_magnitude_response_is_butterworth() {
        for order in [1usize, 2, 3, 5, 8] {
            let f = Butterworth::lowpass(order, 1000.0, FS).unwrap();
            // -3 dB at the corner.
            let hc = f.magnitude_at(1000.0, FS);
            assert!(
                (hc - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01,
                "order {order}: |H(fc)| = {hc}"
            );
            // Unit gain at DC-ish, monotone decay beyond the corner.
            assert!((f.magnitude_at(1.0, FS) - 1.0).abs() < 1e-3);
            assert!(f.magnitude_at(4000.0, FS) < f.magnitude_at(2000.0, FS));
        }
    }

    #[test]
    fn lowpass_rolloff_scales_with_order() {
        // One octave above the corner, an order-N Butterworth is ~6N dB down.
        for order in [2usize, 5] {
            let f = Butterworth::lowpass(order, 1000.0, FS).unwrap();
            let db = 20.0 * f.magnitude_at(2000.0, FS).log10();
            let expect = -10.0 * (1.0 + 2f64.powi(2 * order as i32)).log10();
            assert!((db - expect).abs() < 0.5, "order {order}: {db} vs {expect}");
        }
    }

    #[test]
    fn highpass_mirror_behaviour() {
        let f = Butterworth::highpass(5, 1000.0, FS).unwrap();
        assert!((f.magnitude_at(1000.0, FS) - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01);
        assert!(f.magnitude_at(100.0, FS) < 0.01);
        assert!((f.magnitude_at(10_000.0, FS) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn bandpass_passes_speech_band_and_rejects_outside() {
        let f = Butterworth::headtalk_preprocess(FS).unwrap();
        // Mid band: close to unity.
        assert!((f.magnitude_at(1000.0, FS) - 1.0).abs() < 0.01);
        // Well below the low corner and near DC: strongly attenuated.
        assert!(f.magnitude_at(10.0, FS) < 0.01);
        // Above the high corner: attenuated.
        assert!(f.magnitude_at(22_000.0, FS) < 0.1);
    }

    #[test]
    fn bandpass_rejects_inverted_corners() {
        assert!(Butterworth::bandpass(5, 2000.0, 100.0, FS).is_err());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Butterworth::lowpass(0, 100.0, FS).is_err());
        assert!(Butterworth::lowpass(5, 0.0, FS).is_err());
        assert!(Butterworth::lowpass(5, 24_000.0, FS).is_err());
        assert!(Butterworth::lowpass(5, 100.0, 0.0).is_err());
        assert!(Butterworth::headtalk_preprocess(30_000.0).is_err());
    }

    #[test]
    fn filter_attenuates_out_of_band_tone() {
        let f = Butterworth::lowpass(5, 1000.0, FS).unwrap();
        let hi = tone(8000.0, FS, 4800, 1.0);
        let lo = tone(200.0, FS, 4800, 1.0);
        let hi_out = f.filter(&hi);
        let lo_out = f.filter(&lo);
        assert!(rms(&hi_out[2400..]) < 0.01);
        assert!(rms(&lo_out[2400..]) > 0.65);
    }

    #[test]
    fn filtfilt_is_zero_phase() {
        // A zero-phase filter must not shift a mid-band tone; correlate the
        // in-band output against the input and check the lag-0 alignment.
        let f = Butterworth::lowpass(4, 2000.0, FS).unwrap();
        let x = tone(500.0, FS, 4096, 1.0);
        let y = f.filtfilt(&x);
        assert_eq!(y.len(), x.len());
        // At 500 Hz (passband) gain ~1 and phase ~0: samples nearly match.
        let err: f64 = (1000..3000)
            .map(|i| (y[i] - x[i]).abs())
            .fold(0.0, f64::max);
        assert!(err < 0.01, "max passband deviation {err}");
    }

    #[test]
    fn filtfilt_handles_short_and_empty_inputs() {
        let f = Butterworth::lowpass(3, 1000.0, FS).unwrap();
        assert!(f.filtfilt(&[]).is_empty());
        let y = f.filtfilt(&[1.0, 0.5]);
        assert_eq!(y.len(), 2);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn identity_biquad_passes_through() {
        let sos = Sos::new(vec![Biquad::IDENTITY]);
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(sos.filter(&x), x);
    }

    /// Deterministic noise in [-1, 1) (xorshift; tests must not use wall
    /// clocks or OS entropy).
    fn noise(n: usize, mut seed: u64) -> Vec<f64> {
        (0..n)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn streaming_sos_matches_batch_for_any_chunking() {
        let sos = Butterworth::headtalk_preprocess(FS).unwrap();
        for (len, seed) in [(1usize, 1u64), (7, 2), (960, 3), (4801, 4)] {
            let x = noise(len, seed);
            let want = sos.filter(&x);
            for chunk in [1usize, 2, 13, 480, 5000] {
                let mut stream = StreamingSos::new(sos.clone());
                let mut got = Vec::new();
                for c in x.chunks(chunk) {
                    stream.process(c, &mut got);
                }
                assert_eq!(got.len(), want.len());
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "len {len} chunk {chunk} sample {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn streaming_sos_reset_matches_fresh() {
        let sos = Butterworth::bandpass(3, 200.0, 4000.0, FS).unwrap();
        let x = noise(500, 7);
        let want = sos.filter(&x);
        let mut stream = StreamingSos::new(sos);
        let mut scratch = Vec::new();
        stream.process(&noise(123, 8), &mut scratch);
        stream.reset();
        let mut got = Vec::new();
        stream.process(&x, &mut got);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
        assert_eq!(stream.sos().sections().len(), 4);
    }
}
