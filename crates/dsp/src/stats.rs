//! Descriptive statistics used as feature summaries.
//!
//! §III-B3 of the paper summarizes SRP and GCC vectors with kurtosis,
//! skewness, maximum, mean absolute deviation (MAD) and standard deviation;
//! those are exactly the functions provided here.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Population variance (0 for slices shorter than 1).
pub fn variance(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Root mean square.
pub fn rms(x: &[f64]) -> f64 {
    crate::signal::rms(x)
}

/// Maximum value (`-inf` for an empty slice).
pub fn max(x: &[f64]) -> f64 {
    x.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
}

/// Minimum value (`+inf` for an empty slice).
pub fn min(x: &[f64]) -> f64 {
    x.iter().fold(f64::INFINITY, |m, &v| m.min(v))
}

/// Mean absolute deviation around the mean.
pub fn mad(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m).abs()).sum::<f64>() / x.len() as f64
}

/// Sample skewness (third standardized moment). Returns 0 when the variance
/// is 0 (a constant signal has no asymmetry to measure).
pub fn skewness(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    let sd = std_dev(x);
    if sd == 0.0 {
        return 0.0;
    }
    let n = x.len() as f64;
    x.iter().map(|v| ((v - m) / sd).powi(3)).sum::<f64>() / n
}

/// Kurtosis (fourth standardized moment, *not* excess kurtosis — a normal
/// distribution scores 3). Returns 0 when the variance is 0.
pub fn kurtosis(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    let sd = std_dev(x);
    if sd == 0.0 {
        return 0.0;
    }
    let n = x.len() as f64;
    x.iter().map(|v| ((v - m) / sd).powi(4)).sum::<f64>() / n
}

/// Linearly interpolated percentile, `p` in `[0, 100]`. Returns 0 for an
/// empty slice — the function is total so feature paths fed degenerate
/// SRP/GCC vectors summarize to zeros instead of panicking. NaNs sort last
/// under `total_cmp`, so a NaN-bearing slice has NaN in its top
/// percentiles, never an unordered comparison.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` (a caller bug: `p` is a constant at
/// every call site, never data).
pub fn percentile(x: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if x.is_empty() {
        return 0.0;
    }
    let mut sorted = x.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median (50th percentile). Returns 0 for an empty slice (see
/// [`percentile`]).
pub fn median(x: &[f64]) -> f64 {
    percentile(x, 50.0)
}

/// The five summary statistics the paper attaches to SRP/GCC feature vectors:
/// `[kurtosis, skewness, max, mad, std_dev]` (§III-B3).
///
/// Total: an empty slice summarizes to all zeros (no `-inf` max, no panic),
/// so a degenerate capture yields a well-formed — if uninformative — feature
/// vector instead of taking the pipeline down.
pub fn feature_summary(x: &[f64]) -> [f64; 5] {
    if x.is_empty() {
        return [0.0; 5];
    }
    [kurtosis(x), skewness(x), max(x), mad(x), std_dev(x)]
}

/// Mean and the half-width of a 95% normal-approximation confidence interval
/// (`1.96 · s/√n`), as used for the SUS scores in §V. Returns `(mean, 0.0)`
/// for fewer than 2 samples.
pub fn mean_ci95(x: &[f64]) -> (f64, f64) {
    let m = mean(x);
    if x.len() < 2 {
        return (m, 0.0);
    }
    let n = x.len() as f64;
    // Sample (n-1) variance for the CI.
    let var = x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (n - 1.0);
    (m, 1.96 * (var / n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&x) - 5.0).abs() < 1e-12);
        assert!((variance(&x) - 4.0).abs() < 1e-12);
        assert!((std_dev(&x) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_handled() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(mad(&[]), 0.0);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
        assert_eq!(min(&[]), f64::INFINITY);
    }

    #[test]
    fn mad_of_symmetric_data() {
        let x = [1.0, 3.0]; // mean 2, |dev| = 1
        assert!((mad(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewness_sign_follows_tail() {
        let right_tail = [1.0, 1.0, 1.0, 1.0, 10.0];
        let left_tail = [-10.0, 1.0, 1.0, 1.0, 1.0];
        assert!(skewness(&right_tail) > 0.5);
        assert!(skewness(&left_tail) < -0.5);
        assert_eq!(skewness(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn kurtosis_of_two_point_distribution_is_one() {
        // Symmetric two-point distribution has kurtosis exactly 1.
        let x = [-1.0, 1.0, -1.0, 1.0];
        assert!((kurtosis(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kurtosis_increases_with_outliers() {
        let flat = [-1.0, 1.0, -1.0, 1.0];
        let peaky = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 5.0];
        assert!(kurtosis(&peaky) > kurtosis(&flat));
    }

    #[test]
    fn percentile_interpolates() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&x, 0.0), 1.0);
        assert_eq!(percentile(&x, 100.0), 4.0);
        assert!((median(&x) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_and_median_are_total_on_empty() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[], 0.0), 0.0);
        assert_eq!(percentile(&[], 100.0), 0.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "[0, 100]")]
    fn percentile_still_rejects_out_of_range_p() {
        percentile(&[1.0, 2.0], 101.0);
    }

    #[test]
    fn feature_summary_of_empty_is_zeroed() {
        assert_eq!(feature_summary(&[]), [0.0; 5]);
    }

    #[test]
    fn single_element_moments_are_zero() {
        // One observation has no spread: both standardized moments are
        // defined as 0, not NaN from a 0/0.
        assert_eq!(skewness(&[5.0]), 0.0);
        assert_eq!(kurtosis(&[5.0]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn nan_sorts_last_under_total_cmp() {
        let x = [1.0, f64::NAN, 2.0];
        assert_eq!(percentile(&x, 0.0), 1.0);
        assert_eq!(percentile(&x, 50.0), 2.0);
        assert!(percentile(&x, 100.0).is_nan());
    }

    #[test]
    fn feature_summary_layout() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let s = feature_summary(&x);
        assert_eq!(s[2], 3.0); // max
        assert!((s[4] - std_dev(&x)).abs() < 1e-12);
    }

    #[test]
    fn ci95_shrinks_with_sample_size() {
        let small = vec![1.0, 2.0, 3.0, 4.0];
        let big: Vec<f64> = small.iter().cycle().take(400).copied().collect();
        let (_, ci_small) = mean_ci95(&small);
        let (_, ci_big) = mean_ci95(&big);
        assert!(ci_big < ci_small);
        assert_eq!(mean_ci95(&[5.0]).1, 0.0);
    }
}
