//! A lightweight in-repo property-testing harness (the workspace's
//! dependency-free replacement for `proptest`).
//!
//! A property is a closure over a [`Gen`] of random inputs. The harness
//! runs it for a configurable number of cases, each with a deterministic
//! per-case seed derived from the property name, so failures are
//! reproducible:
//!
//! * on failure the panic message names the failing seed and the exact
//!   `HT_CHECK_SEED=…` incantation that replays only that case;
//! * `HT_CHECK_SEED=<seed>` (decimal or `0x…`) replays one case;
//! * `HT_CHECK_CASES=<n>` overrides the case count globally;
//! * seeds that once failed can be pinned with [`Property::regression`] so
//!   they run first on every future execution.
//!
//! # Example
//!
//! ```
//! use ht_dsp::check::property;
//!
//! property("reverse_is_involutive").cases(64).run(|g| {
//!     let xs = g.vec_f64(-1.0..1.0, 0..32);
//!     let mut twice = xs.clone();
//!     twice.reverse();
//!     twice.reverse();
//!     assert_eq!(xs, twice);
//! });
//! ```

use crate::rng::{Rng, SampleRange, SeedableRng, SliceRandom, StdRng};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default number of random cases per property.
const DEFAULT_CASES: usize = 48;

/// A deterministic input generator handed to each property case.
pub struct Gen {
    rng: StdRng,
    seed: u64,
}

impl Gen {
    /// A generator for the given case seed.
    pub fn new(seed: u64) -> Gen {
        Gen {
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The case seed (for labeling artifacts derived from this case).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Direct access to the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// A uniform sample from a half-open range (`int` or `f64`).
    pub fn in_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        self.rng.gen_range(range)
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, range: std::ops::Range<f64>) -> f64 {
        self.rng.gen_range(range)
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        self.rng.gen_range(range)
    }

    /// A uniform `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, range: std::ops::Range<u64>) -> u64 {
        self.rng.gen_range(range)
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.rng.gen::<bool>()
    }

    /// A vector of uniform `f64`s; the length is drawn from `len`.
    pub fn vec_f64(
        &mut self,
        values: std::ops::Range<f64>,
        len: std::ops::Range<usize>,
    ) -> Vec<f64> {
        let n = self.rng.gen_range(len);
        (0..n).map(|_| self.rng.gen_range(values.clone())).collect()
    }

    /// A vector of uniform `usize`s; the length is drawn from `len`.
    pub fn vec_usize(
        &mut self,
        values: std::ops::Range<usize>,
        len: std::ops::Range<usize>,
    ) -> Vec<usize> {
        let n = self.rng.gen_range(len);
        (0..n).map(|_| self.rng.gen_range(values.clone())).collect()
    }

    /// A vector of fair coin flips; the length is drawn from `len`.
    pub fn vec_bool(&mut self, len: std::ops::Range<usize>) -> Vec<bool> {
        let n = self.rng.gen_range(len);
        (0..n).map(|_| self.rng.gen::<bool>()).collect()
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics when `items` is empty (a property authoring error).
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        items
            .choose(&mut self.rng)
            .expect("choose from empty slice")
    }
}

/// A named property ready to be configured and run.
pub struct Property {
    name: &'static str,
    cases: usize,
    regression_seeds: Vec<u64>,
}

/// Starts building a property check named `name` (use the test function's
/// name so replay instructions point at the right test).
pub fn property(name: &'static str) -> Property {
    Property {
        name,
        cases: DEFAULT_CASES,
        regression_seeds: Vec::new(),
    }
}

impl Property {
    /// Sets the number of random cases (default 48).
    #[must_use]
    pub fn cases(mut self, n: usize) -> Property {
        self.cases = n;
        self
    }

    /// Pins seeds that failed in the past; they run before the random
    /// cases on every execution so fixed bugs stay fixed.
    #[must_use]
    pub fn regression(mut self, seeds: &[u64]) -> Property {
        self.regression_seeds.extend_from_slice(seeds);
        self
    }

    /// Runs the property over the regression seeds plus `cases` random
    /// cases.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing test) on the first case whose closure
    /// panics, after printing the failing seed and replay instructions.
    pub fn run(self, prop: impl Fn(&mut Gen)) {
        if let Some(seed) = env_seed() {
            eprintln!(
                "[check] {}: replaying single case HT_CHECK_SEED={seed:#x}",
                self.name
            );
            let mut g = Gen::new(seed);
            prop(&mut g);
            return;
        }
        let cases = env_cases().unwrap_or(self.cases);
        // Per-case seeds are derived from the property name so two
        // properties in one binary never share input streams.
        let mut seeder = StdRng::seed_from_u64(fnv1a(self.name.as_bytes()));
        let seeds: Vec<u64> = self
            .regression_seeds
            .iter()
            .copied()
            .chain((0..cases).map(|_| seeder.next_u64()))
            .collect();
        for (i, seed) in seeds.iter().copied().enumerate() {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut g = Gen::new(seed);
                prop(&mut g);
            }));
            if let Err(payload) = outcome {
                let kind = if i < self.regression_seeds.len() {
                    "regression seed"
                } else {
                    "case"
                };
                eprintln!(
                    "[check] property `{}` failed ({kind} {i} of {}, seed {seed:#x}).\n\
                     [check] replay just this case with:\n\
                     [check]   HT_CHECK_SEED={seed:#x} cargo test -q {}",
                    self.name,
                    seeds.len(),
                    self.name,
                );
                resume_unwind(payload);
            }
        }
    }
}

fn env_seed() -> Option<u64> {
    let raw = std::env::var("HT_CHECK_SEED").ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => {
            eprintln!("[check] ignoring unparseable HT_CHECK_SEED={raw:?}");
            None
        }
    }
}

fn env_cases() -> Option<usize> {
    std::env::var("HT_CHECK_CASES").ok()?.trim().parse().ok()
}

/// FNV-1a, used only to turn property names into seed-stream offsets
/// (stable across platforms and runs, unlike `std`'s `DefaultHasher`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0usize);
        property("always_true").cases(10).run(|g| {
            let _ = g.f64_in(0.0..1.0);
            count.set(count.get() + 1);
        });
        assert_eq!(count.get(), 10);
    }

    #[test]
    fn regression_seeds_run_first_and_get_exact_seed() {
        let seen = std::cell::RefCell::new(Vec::new());
        property("records_seeds")
            .cases(2)
            .regression(&[0xDEAD, 0xBEEF])
            .run(|g| seen.borrow_mut().push(g.seed()));
        let seen = seen.borrow();
        assert_eq!(seen.len(), 4);
        assert_eq!(&seen[..2], &[0xDEAD, 0xBEEF]);
    }

    #[test]
    fn failing_property_panics_and_reports() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            property("always_fails").cases(3).run(|_| {
                panic!("intentional");
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn same_name_gives_identical_inputs_across_runs() {
        let collect = || {
            let xs = std::cell::RefCell::new(Vec::new());
            property("stable_stream").cases(5).run(|g| {
                xs.borrow_mut().push(g.u64_in(0..1_000_000));
            });
            xs.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn generators_respect_bounds() {
        property("generator_bounds").cases(20).run(|g| {
            let v = g.vec_f64(-2.0..2.0, 1..50);
            assert!(!v.is_empty() && v.len() < 50);
            assert!(v.iter().all(|x| (-2.0..2.0).contains(x)));
            let u = g.vec_usize(3..9, 0..10);
            assert!(u.iter().all(|x| (3..9).contains(x)));
            let b = g.vec_bool(0..4);
            assert!(b.len() < 4);
            let pick = *g.choose(&[1, 2, 3]);
            assert!((1..=3).contains(&pick));
        });
    }
}
