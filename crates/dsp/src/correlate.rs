//! Cross-correlation and GCC-PHAT (Generalized Cross-Correlation with Phase
//! Transform, Knapp & Carter 1976), Eq. 5 of the paper.
//!
//! GCC-PHAT whitens the cross-power spectrum so that the correlation peak
//! reflects pure time delay rather than spectral coloration — this is what
//! makes it usable for time-difference-of-arrival (TDoA) estimation in
//! reverberant rooms.

use crate::complex::Complex;
use crate::error::DspError;
use crate::fft::{self, RealFftPlan, RealFftScratch};
use crate::kernels::{self, QuantMode};
use std::sync::Arc;

/// A lag-domain correlation curve restricted to `±max_lag` samples.
///
/// `values[k]` corresponds to lag `k as isize - max_lag as isize`; positive
/// lag means the first signal *leads* (the second is a delayed copy).
#[derive(Debug, Clone, PartialEq)]
pub struct LagCurve {
    /// Correlation values for lags `-max_lag ..= +max_lag`.
    pub values: Vec<f64>,
    /// Half-width of the lag window in samples.
    pub max_lag: usize,
}

impl LagCurve {
    /// The lag (in samples, possibly negative) with the largest value.
    pub fn peak_lag(&self) -> isize {
        let idx = crate::peak::argmax(&self.values).unwrap_or(self.max_lag);
        idx as isize - self.max_lag as isize
    }

    /// Sub-sample peak location via parabolic interpolation around the
    /// discrete maximum. Falls back to the discrete lag at the window edges.
    pub fn peak_lag_interpolated(&self) -> f64 {
        let idx = crate::peak::argmax(&self.values).unwrap_or(self.max_lag);
        let coarse = idx as f64 - self.max_lag as f64;
        if idx == 0 || idx + 1 >= self.values.len() {
            return coarse;
        }
        let (ym1, y0, yp1) = (self.values[idx - 1], self.values[idx], self.values[idx + 1]);
        let denom = ym1 - 2.0 * y0 + yp1;
        if denom.abs() < 1e-15 {
            coarse
        } else {
            coarse + 0.5 * (ym1 - yp1) / denom
        }
    }

    /// Value at an explicit lag.
    ///
    /// # Panics
    ///
    /// Panics if `|lag| > max_lag`.
    pub fn at(&self, lag: isize) -> f64 {
        assert!(
            lag.unsigned_abs() <= self.max_lag,
            "lag {lag} outside ±{}",
            self.max_lag
        );
        self.values[(lag + self.max_lag as isize) as usize]
    }
}

fn validate_pair(x: &[f64], y: &[f64]) -> Result<(), DspError> {
    if x.is_empty() || y.is_empty() {
        return Err(DspError::length("signal", "must be non-empty"));
    }
    if x.len() != y.len() {
        return Err(DspError::length(
            "signal",
            format!("channel lengths differ: {} vs {}", x.len(), y.len()),
        ));
    }
    Ok(())
}

/// Copies the circular correlation `r` into the `±max_lag` window: lag
/// `l >= 0` lives at index `l`, lag `l < 0` at index `r.len() + l`.
fn extract_lags(r: &[f64], max_lag: usize, values: &mut [f64]) {
    let total = r.len();
    let lags = -(max_lag as isize)..=(max_lag as isize);
    for (slot, l) in values.iter_mut().zip(lags) {
        let idx = if l >= 0 {
            l as usize
        } else {
            (total as isize + l) as usize
        };
        *slot = r[idx];
    }
}

/// A reusable correlation engine for one channel length and lag window:
/// the FFT plan and every intermediate buffer are allocated once, so each
/// [`gcc_phat_into`](Correlator::gcc_phat_into) /
/// [`xcorr_into`](Correlator::xcorr_into) call is allocation-free — the
/// right shape for per-frame streaming use.
///
/// The one-shot free functions ([`gcc_phat`], [`xcorr`]) build a throwaway
/// `Correlator` per call (sharing the cached plan) and produce identical
/// values.
#[derive(Debug, Clone)]
pub struct Correlator {
    plan: Arc<RealFftPlan>,
    n: usize,
    max_lag: usize,
    scratch: RealFftScratch,
    xf: Vec<Complex>,
    yf: Vec<Complex>,
    cross: Vec<Complex>,
    mags: Vec<f64>,
    r: Vec<f64>,
}

impl Correlator {
    /// Builds a correlator for equal-length channels of `n` samples over
    /// lags `±max_lag` (clamped to `n − 1`).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] if `n == 0`.
    pub fn new(n: usize, max_lag: usize) -> Result<Correlator, DspError> {
        if n == 0 {
            return Err(DspError::length("signal", "must be non-empty"));
        }
        let max_lag = max_lag.min(n - 1);
        // Pad to avoid circular aliasing of lags we care about.
        let size = fft::next_pow2(n + max_lag + 1);
        let plan = fft::rfft_plan(size);
        let bins = plan.onesided_len();
        Ok(Correlator {
            n,
            max_lag,
            scratch: RealFftScratch::new(),
            xf: vec![Complex::ZERO; bins],
            yf: vec![Complex::ZERO; bins],
            cross: vec![Complex::ZERO; bins],
            mags: vec![0.0; bins],
            r: vec![0.0; plan.len()],
            plan,
        })
    }

    /// The channel length this correlator was built for.
    pub fn channel_len(&self) -> usize {
        self.n
    }

    /// The effective half-width of the lag window (after clamping).
    pub fn max_lag(&self) -> usize {
        self.max_lag
    }

    /// Length of the lag window, `2 · max_lag + 1` — the required size of
    /// the `values` buffer passed to the `_into` methods.
    pub fn window_len(&self) -> usize {
        2 * self.max_lag + 1
    }

    /// GCC-PHAT into a caller-provided lag window (allocation-free).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] for empty, mismatched, or
    /// wrong-length inputs.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.window_len()`.
    pub fn gcc_phat_into(
        &mut self,
        x: &[f64],
        y: &[f64],
        values: &mut [f64],
    ) -> Result<(), DspError> {
        self.correlate_into(x, y, true, values)
    }

    /// Plain cross-correlation into a caller-provided lag window
    /// (allocation-free).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] for empty, mismatched, or
    /// wrong-length inputs.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.window_len()`.
    pub fn xcorr_into(&mut self, x: &[f64], y: &[f64], values: &mut [f64]) -> Result<(), DspError> {
        self.correlate_into(x, y, false, values)
    }

    fn correlate_into(
        &mut self,
        x: &[f64],
        y: &[f64],
        phat: bool,
        values: &mut [f64],
    ) -> Result<(), DspError> {
        validate_pair(x, y)?;
        if x.len() != self.n {
            return Err(DspError::length(
                "signal",
                format!("correlator built for length {}, got {}", self.n, x.len()),
            ));
        }
        assert_eq!(values.len(), self.window_len(), "lag window length");
        self.plan.forward_into(x, &mut self.xf, &mut self.scratch);
        self.plan.forward_into(y, &mut self.yf, &mut self.scratch);
        if phat {
            // Fused product + whiten kernel: bit-identical to the separate
            // loops, one magnitude evaluation per bin instead of two.
            kernels::cross_whiten_reference_into(
                &self.xf,
                &self.yf,
                &mut self.cross,
                &mut self.mags,
            );
        } else {
            for ((c, a), b) in self.cross.iter_mut().zip(&self.xf).zip(&self.yf) {
                *c = *a * b.conj();
            }
        }
        // The cross spectrum of two real signals is conjugate-symmetric, so
        // its inverse is real and the one-sided inverse applies directly.
        self.plan
            .inverse_into(&self.cross, &mut self.r, &mut self.scratch);
        extract_lags(&self.r, self.max_lag, values);
        Ok(())
    }
}

/// Reusable working storage for [`gcc_phat_from_spectra_into`]: the cross
/// spectrum, the lag-domain inverse and the FFT scratch. Buffers grow to the
/// plan's size on first use and are reused verbatim afterwards, so a warmed
/// scratch makes every subsequent call allocation-free — the shape per-frame
/// streaming needs.
#[derive(Debug, Clone)]
pub struct SpectraGccScratch {
    cross: Vec<Complex>,
    mags: Vec<f64>,
    r: Vec<f64>,
    fft: RealFftScratch,
}

impl SpectraGccScratch {
    /// An empty scratch; buffers are sized lazily by the first call.
    pub fn new() -> SpectraGccScratch {
        SpectraGccScratch {
            cross: Vec::new(),
            mags: Vec::new(),
            r: Vec::new(),
            fft: RealFftScratch::new(),
        }
    }
}

impl Default for SpectraGccScratch {
    fn default() -> Self {
        SpectraGccScratch::new()
    }
}

/// GCC-PHAT from two already-transformed one-sided spectra (as produced by
/// `plan.forward_into` on the padded channels) into a caller-provided
/// `±max_lag` window. Lets SRP-PHAT and the streaming frame analyzer forward
/// each channel once instead of once per pair; values are identical to
/// [`gcc_phat`] on the time-domain channels. Allocation-free once `scratch`
/// has warmed up to the plan's size.
///
/// # Panics
///
/// Panics if a spectrum's length differs from `plan.onesided_len()`, if
/// `values.len() != 2 * max_lag + 1`, or if `max_lag >= plan.len()` (the
/// circular correlation has no such lag).
pub fn gcc_phat_from_spectra_into(
    xf: &[Complex],
    yf: &[Complex],
    plan: &RealFftPlan,
    max_lag: usize,
    scratch: &mut SpectraGccScratch,
    values: &mut [f64],
) {
    gcc_phat_from_spectra_into_mode(xf, yf, plan, max_lag, scratch, values, QuantMode::Reference);
}

/// [`gcc_phat_from_spectra_into`] with an explicit kernel selection: under
/// [`QuantMode::Reference`] the fused byte-stable whitening kernel runs
/// (identical to [`gcc_phat`] on the time-domain channels); under
/// [`QuantMode::Int8`] the vectorized squared-magnitude kernel runs,
/// agreeing within tolerance but not bitwise. The streaming frame analyzer
/// dispatches here from its configured mode.
///
/// # Panics
///
/// As for [`gcc_phat_from_spectra_into`].
#[allow(clippy::too_many_arguments)]
pub fn gcc_phat_from_spectra_into_mode(
    xf: &[Complex],
    yf: &[Complex],
    plan: &RealFftPlan,
    max_lag: usize,
    scratch: &mut SpectraGccScratch,
    values: &mut [f64],
    mode: QuantMode,
) {
    let bins = plan.onesided_len();
    assert_eq!(xf.len(), bins, "x spectrum length");
    assert_eq!(yf.len(), bins, "y spectrum length");
    assert_eq!(values.len(), 2 * max_lag + 1, "lag window length");
    assert!(
        max_lag < plan.len(),
        "max_lag {} outside the {}-point circular correlation",
        max_lag,
        plan.len()
    );
    scratch.cross.resize(bins, Complex::ZERO);
    scratch.mags.resize(bins, 0.0);
    scratch.r.resize(plan.len(), 0.0);
    match mode {
        QuantMode::Reference => {
            kernels::cross_whiten_reference_into(xf, yf, &mut scratch.cross, &mut scratch.mags);
        }
        QuantMode::Int8 => {
            kernels::cross_whiten_fast_into(xf, yf, &mut scratch.cross, &mut scratch.mags);
        }
    }
    plan.inverse_into(&scratch.cross, &mut scratch.r, &mut scratch.fft);
    extract_lags(&scratch.r, max_lag, values);
}

/// Allocating convenience wrapper around [`gcc_phat_from_spectra_into`].
pub fn gcc_phat_from_spectra(
    xf: &[Complex],
    yf: &[Complex],
    plan: &RealFftPlan,
    max_lag: usize,
) -> LagCurve {
    let mut scratch = SpectraGccScratch::new();
    let mut values = vec![0.0; 2 * max_lag + 1];
    gcc_phat_from_spectra_into(xf, yf, plan, max_lag, &mut scratch, &mut values);
    LagCurve { values, max_lag }
}

/// Computes the whitened (`phat = true`) or plain cross-correlation of two
/// equal-length channels over lags `±max_lag`.
///
/// # Errors
///
/// Returns [`DspError::InvalidLength`] for empty or length-mismatched inputs.
fn cross_correlate(x: &[f64], y: &[f64], max_lag: usize, phat: bool) -> Result<LagCurve, DspError> {
    validate_pair(x, y)?;
    let mut correlator = Correlator::new(x.len(), max_lag)?;
    let mut values = vec![0.0; correlator.window_len()];
    correlator.correlate_into(x, y, phat, &mut values)?;
    Ok(LagCurve {
        values,
        max_lag: correlator.max_lag(),
    })
}

/// Plain cross-correlation over lags `±max_lag`.
///
/// # Errors
///
/// Returns [`DspError::InvalidLength`] for empty or mismatched inputs.
pub fn xcorr(x: &[f64], y: &[f64], max_lag: usize) -> Result<LagCurve, DspError> {
    cross_correlate(x, y, max_lag, false)
}

/// GCC-PHAT of two equal-length channels over lags `±max_lag` (Eq. 5).
///
/// # Errors
///
/// Returns [`DspError::InvalidLength`] for empty or mismatched inputs.
///
/// # Example
///
/// ```
/// use ht_dsp::correlate::gcc_phat;
/// use ht_dsp::signal::fractional_delay;
///
/// # fn main() -> Result<(), ht_dsp::DspError> {
/// // y is x delayed by 4 samples; the GCC-PHAT peak sits at lag -4
/// // (negative lag: the first argument is the earlier signal).
/// # let mut s = 1234567u64;
/// # let mut next = move || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1); ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0 };
/// let x: Vec<f64> = (0..512).map(|_| next()).collect();
/// let y = fractional_delay(&x, 4.0, 16);
/// let gcc = gcc_phat(&x, &y, 10)?;
/// assert_eq!(gcc.peak_lag(), -4);
/// # Ok(())
/// # }
/// ```
pub fn gcc_phat(x: &[f64], y: &[f64], max_lag: usize) -> Result<LagCurve, DspError> {
    cross_correlate(x, y, max_lag, true)
}

/// Estimates the TDoA between two channels in samples (positive when `x`
/// arrives later than `y`), using GCC-PHAT with parabolic refinement.
///
/// # Errors
///
/// Returns [`DspError::InvalidLength`] for empty or mismatched inputs.
pub fn tdoa_samples(x: &[f64], y: &[f64], max_lag: usize) -> Result<f64, DspError> {
    Ok(gcc_phat(x, y, max_lag)?.peak_lag_interpolated())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::fractional_delay;

    fn chirp(n: usize) -> Vec<f64> {
        (0..n)
            .map(|k| {
                let t = k as f64 / n as f64;
                (2.0 * std::f64::consts::PI * (50.0 * t + 400.0 * t * t)).sin()
            })
            .collect()
    }

    /// Deterministic broadband test signal (LCG white noise) — sub-sample
    /// delay estimation needs energy across the whole band.
    fn broadband(n: usize) -> Vec<f64> {
        let mut state = 0x2545F4914F6CDD1Du64;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn autocorrelation_peaks_at_zero() {
        let x = chirp(1024);
        let c = xcorr(&x, &x, 20).unwrap();
        assert_eq!(c.peak_lag(), 0);
        let g = gcc_phat(&x, &x, 20).unwrap();
        assert_eq!(g.peak_lag(), 0);
    }

    #[test]
    fn integer_delay_is_recovered() {
        let x = chirp(2048);
        for d in [1usize, 3, 7, 12] {
            let y = fractional_delay(&x, d as f64, 16);
            let g = gcc_phat(&x, &y, 16).unwrap();
            assert_eq!(g.peak_lag(), -(d as isize), "delay {d}");
            // Swapped arguments flip the sign.
            let g2 = gcc_phat(&y, &x, 16).unwrap();
            assert_eq!(g2.peak_lag(), d as isize);
        }
    }

    #[test]
    fn fractional_delay_is_recovered_subsample() {
        let x = broadband(4096);
        let d = 3.4;
        let y = fractional_delay(&x, d, 24);
        let est = tdoa_samples(&y, &x, 16).unwrap();
        assert!((est - d).abs() < 0.2, "estimated {est}, expected {d}");
    }

    #[test]
    fn phat_is_robust_to_spectral_coloring() {
        // Color one channel with a strong zero-phase low-pass; PHAT should
        // still find the true delay while keeping a sharp peak.
        let x = broadband(4096);
        let lp = crate::filter::Butterworth::lowpass(4, 2_000.0, 48_000.0).unwrap();
        let y = lp.filtfilt(&fractional_delay(&x, 5.0, 16));
        let g = gcc_phat(&x, &y, 16).unwrap();
        assert_eq!(g.peak_lag(), -5);
    }

    #[test]
    fn lag_window_clamps_to_signal_length() {
        let x = vec![1.0, 0.0, 0.0];
        let c = xcorr(&x, &x, 100).unwrap();
        assert_eq!(c.max_lag, 2);
        assert_eq!(c.values.len(), 5);
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        assert!(gcc_phat(&[1.0, 2.0], &[1.0], 1).is_err());
        assert!(gcc_phat(&[], &[], 1).is_err());
    }

    #[test]
    fn at_indexes_by_lag() {
        let x = chirp(512);
        let y = fractional_delay(&x, 2.0, 16);
        let g = gcc_phat(&x, &y, 8).unwrap();
        let m = crate::stats::max(&g.values);
        assert!((g.at(-2) - m).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn at_rejects_out_of_window_lag() {
        let x = chirp(256);
        let g = gcc_phat(&x, &x, 4).unwrap();
        g.at(5);
    }

    #[test]
    fn silence_produces_flat_curve_not_nan() {
        let z = vec![0.0; 256];
        let g = gcc_phat(&z, &z, 8).unwrap();
        assert!(g.values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn reused_correlator_matches_one_shot_bit_for_bit() {
        let x = chirp(1024);
        let y = fractional_delay(&x, 4.0, 16);
        let mut c = Correlator::new(1024, 12).unwrap();
        let mut values = vec![0.0; c.window_len()];
        for _ in 0..3 {
            c.gcc_phat_into(&x, &y, &mut values).unwrap();
            let one_shot = gcc_phat(&x, &y, 12).unwrap();
            assert_eq!(values, one_shot.values, "reused buffers changed the result");
            c.xcorr_into(&x, &y, &mut values).unwrap();
            let one_shot = xcorr(&x, &y, 12).unwrap();
            assert_eq!(values, one_shot.values);
        }
    }

    #[test]
    fn correlator_rejects_wrong_channel_length() {
        let mut c = Correlator::new(256, 8).unwrap();
        assert_eq!(c.channel_len(), 256);
        let short = vec![1.0; 128];
        let mut values = vec![0.0; c.window_len()];
        assert!(c.gcc_phat_into(&short, &short, &mut values).is_err());
        assert!(Correlator::new(0, 8).is_err());
    }

    #[test]
    fn spectra_gcc_matches_time_domain_gcc_bitwise() {
        // The streaming path (shared forward FFTs + scratch reuse) must be
        // indistinguishable from the one-shot time-domain GCC-PHAT.
        let x = chirp(960);
        let y = fractional_delay(&x, 6.0, 16);
        let max_lag = 13;
        let plan = fft::rfft_plan(fft::next_pow2(x.len() + max_lag + 1));
        let xf = plan.forward(&x);
        let yf = plan.forward(&y);
        let reference = gcc_phat(&x, &y, max_lag).unwrap();
        let curve = gcc_phat_from_spectra(&xf, &yf, &plan, max_lag);
        assert_eq!(curve, reference);
        // Scratch reuse across calls changes nothing.
        let mut scratch = SpectraGccScratch::new();
        let mut values = vec![0.0; 2 * max_lag + 1];
        for _ in 0..3 {
            gcc_phat_from_spectra_into(&xf, &yf, &plan, max_lag, &mut scratch, &mut values);
            assert_eq!(values, reference.values);
        }
    }

    #[test]
    fn int8_mode_gcc_agrees_with_reference_within_tolerance() {
        let x = broadband(960);
        let y = fractional_delay(&x, 6.0, 16);
        let max_lag = 13;
        let plan = fft::rfft_plan(fft::next_pow2(x.len() + max_lag + 1));
        let xf = plan.forward(&x);
        let yf = plan.forward(&y);
        let reference = gcc_phat(&x, &y, max_lag).unwrap();
        let mut scratch = SpectraGccScratch::new();
        let mut values = vec![0.0; 2 * max_lag + 1];
        gcc_phat_from_spectra_into_mode(
            &xf,
            &yf,
            &plan,
            max_lag,
            &mut scratch,
            &mut values,
            QuantMode::Int8,
        );
        for (got, want) in values.iter().zip(&reference.values) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
        // The peak — the TDoA evidence — lands on the same lag.
        let fast = LagCurve {
            values: values.clone(),
            max_lag,
        };
        assert_eq!(fast.peak_lag(), reference.peak_lag());
    }

    #[test]
    #[should_panic(expected = "lag window length")]
    fn spectra_gcc_rejects_wrong_window_length() {
        let x = chirp(256);
        let plan = fft::rfft_plan(512);
        let xf = plan.forward(&x);
        let mut scratch = SpectraGccScratch::new();
        let mut values = vec![0.0; 3];
        gcc_phat_from_spectra_into(&xf, &xf, &plan, 8, &mut scratch, &mut values);
    }

    #[test]
    fn correlator_clamps_lag_window() {
        let c = Correlator::new(3, 100).unwrap();
        assert_eq!(c.max_lag(), 2);
        assert_eq!(c.window_len(), 5);
    }
}
