//! Fast Fourier transform: iterative radix-2 with a Bluestein fallback for
//! arbitrary lengths, executed through cached [plans](plan).
//!
//! All transforms are unnormalized in the forward direction; the inverse
//! divides by the length, so `ifft(fft(x)) == x`.
//!
//! The free functions here are thin wrappers over the process-wide plan
//! cache ([`plan::fft_plan`] / [`plan::rfft_plan`]) plus a thread-local
//! scratch, so repeated transforms of the same size recompute no twiddles
//! and allocate only their output. Hot loops that cannot afford even the
//! output allocation should hold a plan and scratch directly — see
//! [`plan::RealFftPlan::forward_into`], [`crate::stft::StftProcessor`] and
//! [`crate::correlate::Correlator`].

pub mod plan;

use crate::complex::Complex;
use crate::error::DspError;

pub use plan::{fft_plan, rfft_plan, FftPlan, FftScratch, RealFftPlan, RealFftScratch};

/// Returns the smallest power of two `>= n` (and at least 1).
///
/// # Example
///
/// ```
/// assert_eq!(ht_dsp::fft::next_pow2(1000), 1024);
/// assert_eq!(ht_dsp::fft::next_pow2(1024), 1024);
/// assert_eq!(ht_dsp::fft::next_pow2(0), 1);
/// ```
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Forward FFT of a complex buffer of arbitrary length.
///
/// Power-of-two lengths use radix-2 directly; other lengths use Bluestein's
/// algorithm (chirp-z), so the result is the exact N-point DFT, not a padded
/// approximation.
///
/// # Example
///
/// ```
/// use ht_dsp::{fft, Complex};
///
/// let x: Vec<Complex> = (0..6).map(|k| Complex::from_real(k as f64)).collect();
/// let spec = fft::fft(&x);
/// // DC bin equals the sum of the samples.
/// assert!((spec[0].re - 15.0).abs() < 1e-9);
/// ```
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let p = plan::fft_plan(input.len());
    let mut buf = input.to_vec();
    plan::with_tls_scratch(|cpx, _| p.forward(&mut buf, cpx));
    buf
}

/// Inverse FFT of a complex buffer of arbitrary length (normalized by `1/N`).
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let p = plan::fft_plan(input.len());
    let mut buf = input.to_vec();
    plan::with_tls_scratch(|cpx, _| p.inverse(&mut buf, cpx));
    buf
}

/// Expands a one-sided spectrum already written to `out[..n/2 + 1]` into the
/// full conjugate-symmetric spectrum of length `n = out.len()`.
fn mirror_onesided(out: &mut [Complex]) {
    let n = out.len();
    for k in 1..n / 2 {
        out[n - k] = out[k].conj();
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
///
/// Returns the full complex spectrum of length `next_pow2(x.len())`. Use
/// [`rfft_len`] to get the padded length up front, and [`rfft_onesided`]
/// when only the non-redundant `n/2 + 1` bins are needed (half the work,
/// half the memory).
pub fn rfft(x: &[f64]) -> Vec<Complex> {
    let p = plan::rfft_plan(x.len());
    let mut out = vec![Complex::ZERO; p.len()];
    let bins = p.onesided_len();
    plan::with_tls_scratch(|_, real| p.forward_into(x, &mut out[..bins], real));
    mirror_onesided(&mut out);
    out
}

/// One-sided forward FFT of a real signal, zero-padded to the next power of
/// two: bins `0 ..= n/2` of the `n = next_pow2(x.len())`-point DFT. The
/// remaining bins are redundant for real input (conjugate symmetry).
pub fn rfft_onesided(x: &[f64]) -> Vec<Complex> {
    let p = plan::rfft_plan(x.len());
    let mut out = vec![Complex::ZERO; p.onesided_len()];
    plan::with_tls_scratch(|_, real| p.forward_into(x, &mut out, real));
    out
}

/// Forward FFT of a real signal zero-padded to exactly `n_fft` points
/// (`n_fft` is rounded up to a power of two).
///
/// # Errors
///
/// Returns [`DspError::InvalidLength`] when `x` is longer than the rounded
/// transform size. (This used to silently compute a larger transform, which
/// shifted every bin frequency a caller derived from `n_fft` via
/// `k · fs / n_fft`.)
pub fn rfft_n(x: &[f64], n_fft: usize) -> Result<Vec<Complex>, DspError> {
    let n = next_pow2(n_fft);
    if x.len() > n {
        return Err(DspError::length(
            "x",
            format!(
                "input length {} exceeds the requested transform size {n} \
                 (n_fft = {n_fft}); bins derived from n_fft would be wrong",
                x.len()
            ),
        ));
    }
    let p = plan::rfft_plan(n);
    let mut out = vec![Complex::ZERO; n];
    let bins = p.onesided_len();
    plan::with_tls_scratch(|_, real| p.forward_into(x, &mut out[..bins], real));
    mirror_onesided(&mut out);
    Ok(out)
}

/// Length of the full spectrum produced by [`rfft`] (and [`rfft_n`]) for an
/// input/request of length `n`.
pub fn rfft_len(n: usize) -> usize {
    next_pow2(n)
}

/// Number of one-sided bins ([`rfft_onesided`], [`rfft_magnitude`]) for an
/// input/request of length `n`: `next_pow2(n)/2 + 1`. Bin `k` corresponds
/// to frequency `k · sample_rate / next_pow2(n)`; the last bin is exactly
/// Nyquist.
pub fn rfft_onesided_len(n: usize) -> usize {
    next_pow2(n) / 2 + 1
}

/// One-sided magnitude spectrum of a real signal: `|X[0..=N/2]|`.
///
/// The length is [`rfft_onesided_len`]`(x.len())`; bin `k` corresponds to
/// frequency `k * sample_rate / next_pow2(x.len())`.
pub fn rfft_magnitude(x: &[f64]) -> Vec<f64> {
    rfft_onesided(x).into_iter().map(|z| z.abs()).collect()
}

/// Inverse FFT returning only the real parts (for spectra known to be
/// conjugate-symmetric, e.g. produced from real signals).
pub fn irfft_real(spec: &[Complex]) -> Vec<f64> {
    ifft(spec).into_iter().map(|z| z.re).collect()
}

/// The pre-plan FFT implementation: full complex transforms with the
/// `w *= wlen` twiddle recurrence, recomputed per call.
///
/// Kept (hidden from the docs) as the comparison baseline for the
/// `fft_plans` benchmark suite and the accuracy/property tests that prove
/// the planned engine matches — and out-performs — the original.
#[doc(hidden)]
pub mod legacy {
    use super::next_pow2;
    use crate::complex::Complex;

    /// In-place iterative radix-2 Cooley–Tukey FFT with the error-
    /// accumulating `w *= wlen` twiddle recurrence.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `buf.len()` is not a power of two.
    pub fn fft_pow2_in_place(buf: &mut [Complex], inverse: bool) {
        let n = buf.len();
        debug_assert!(n.is_power_of_two());
        if n <= 1 {
            return;
        }

        // Bit-reversal permutation.
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            if i < j {
                buf.swap(i, j);
            }
        }

        let sign = if inverse { 1.0 } else { -1.0 };
        let mut len = 2;
        while len <= n {
            let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
            let wlen = Complex::from_angle(ang);
            let half = len / 2;
            let mut i = 0;
            while i < n {
                let mut w = Complex::ONE;
                for k in 0..half {
                    let u = buf[i + k];
                    let v = buf[i + k + half] * w;
                    buf[i + k] = u + v;
                    buf[i + k + half] = u - v;
                    w *= wlen;
                }
                i += len;
            }
            len <<= 1;
        }
    }

    /// Legacy forward FFT of arbitrary length (radix-2 or per-call
    /// Bluestein).
    pub fn fft(input: &[Complex]) -> Vec<Complex> {
        let mut buf = input.to_vec();
        fft_in_place(&mut buf, false);
        buf
    }

    /// Legacy inverse FFT (normalized by `1/N`).
    pub fn ifft(input: &[Complex]) -> Vec<Complex> {
        let mut buf = input.to_vec();
        fft_in_place(&mut buf, true);
        let n = buf.len() as f64;
        for z in &mut buf {
            *z = *z / n;
        }
        buf
    }

    fn fft_in_place(buf: &mut [Complex], inverse: bool) {
        let n = buf.len();
        if n <= 1 {
            return;
        }
        if n.is_power_of_two() {
            fft_pow2_in_place(buf, inverse);
        } else {
            let out = bluestein(buf, inverse);
            buf.copy_from_slice(&out);
        }
    }

    /// Legacy Bluestein chirp-z transform, rebuilding the chirp and its
    /// filter spectrum on every call.
    fn bluestein(input: &[Complex], inverse: bool) -> Vec<Complex> {
        let n = input.len();
        let sign = if inverse { 1.0 } else { -1.0 };
        let m = next_pow2(2 * n - 1);

        let chirp: Vec<Complex> = (0..n)
            .map(|k| {
                let k2 = (k as u128 * k as u128) % (2 * n as u128);
                Complex::from_angle(sign * std::f64::consts::PI * k2 as f64 / n as f64)
            })
            .collect();

        let mut a = vec![Complex::ZERO; m];
        for k in 0..n {
            a[k] = input[k] * chirp[k];
        }
        let mut b = vec![Complex::ZERO; m];
        b[0] = chirp[0].conj();
        for k in 1..n {
            let c = chirp[k].conj();
            b[k] = c;
            b[m - k] = c;
        }

        fft_pow2_in_place(&mut a, false);
        fft_pow2_in_place(&mut b, false);
        for (av, bv) in a.iter_mut().zip(b.iter()) {
            *av *= *bv;
        }
        fft_pow2_in_place(&mut a, true);
        let scale = 1.0 / m as f64;
        (0..n).map(|k| a[k] * chirp[k] * scale).collect()
    }

    /// Legacy full-spectrum real FFT: zero-pads into a full complex buffer
    /// and runs the complex transform (2× the necessary work).
    pub fn rfft(x: &[f64]) -> Vec<Complex> {
        let n = next_pow2(x.len());
        let mut buf = vec![Complex::ZERO; n];
        for (b, &v) in buf.iter_mut().zip(x.iter()) {
            b.re = v;
        }
        fft_pow2_in_place(&mut buf, false);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    /// Exact DFT bin `X[k]` by compensated (Kahan) summation over an
    /// independently rounded twiddle table, so the reference error stays
    /// near machine epsilon even for long transforms.
    fn dft_bin(x: &[Complex], table: &[Complex], k: usize) -> Complex {
        let n = x.len();
        let (mut sr, mut si, mut cr, mut ci) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (j, xj) in x.iter().enumerate() {
            let p = *xj * table[(k * j) % n];
            let yr = p.re - cr;
            let tr = sr + yr;
            cr = (tr - sr) - yr;
            sr = tr;
            let yi = p.im - ci;
            let ti = si + yi;
            ci = (ti - si) - yi;
            si = ti;
        }
        Complex::new(sr, si)
    }

    fn twiddle_table(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|t| Complex::from_angle(-2.0 * std::f64::consts::PI * t as f64 / n as f64))
            .collect()
    }

    /// Naive O(N²) DFT used as ground truth for small sizes.
    fn dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        if n == 0 {
            return Vec::new();
        }
        let table = twiddle_table(n);
        (0..n).map(|k| dft_bin(x, &table, k)).collect()
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|k| Complex::new(k as f64 * 0.5 - 1.0, (k as f64 * 0.3).sin()))
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft_pow2() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let x = ramp(n);
            assert!(max_err(&fft(&x), &dft(&x)) < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn fft_matches_naive_dft_non_pow2() {
        for n in [3usize, 5, 6, 7, 12, 15, 100] {
            let x = ramp(n);
            assert!(max_err(&fft(&x), &dft(&x)) < 1e-8, "n = {n}");
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        for n in [8usize, 13, 48, 1000] {
            let x = ramp(n);
            let back = ifft(&fft(&x));
            assert!(max_err(&x, &back) < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        for bin in fft(&x) {
            assert!((bin.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x = ramp(64);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = fft(&x).iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn rfft_spectrum_is_conjugate_symmetric() {
        let x: Vec<f64> = (0..100).map(|k| (k as f64 * 0.17).sin()).collect();
        let spec = rfft(&x);
        let n = spec.len();
        for k in 1..n / 2 {
            let d = spec[k] - spec[n - k].conj();
            assert!(d.abs() < 1e-9);
        }
    }

    #[test]
    fn rfft_matches_complex_fft_of_padded_input() {
        for len in [1usize, 2, 5, 17, 100, 260] {
            let x: Vec<f64> = (0..len).map(|k| ((k * k) as f64 * 0.013).sin()).collect();
            let mut padded: Vec<Complex> = x.iter().map(|&v| Complex::from_real(v)).collect();
            padded.resize(next_pow2(len), Complex::ZERO);
            let via_complex = fft(&padded);
            let via_real = rfft(&x);
            assert!(
                max_err(&via_real, &via_complex) < 1e-9,
                "full spectra disagree at len {len}"
            );
            let onesided = rfft_onesided(&x);
            assert_eq!(onesided.len(), rfft_onesided_len(len));
            assert!(
                max_err(&onesided, &via_complex[..onesided.len()]) < 1e-9,
                "one-sided spectrum disagrees at len {len}"
            );
        }
    }

    #[test]
    fn rfft_magnitude_locates_tone() {
        let sr = 48_000.0;
        let f = 3000.0;
        let x: Vec<f64> = (0..4096)
            .map(|n| (2.0 * std::f64::consts::PI * f * n as f64 / sr).sin())
            .collect();
        let mag = rfft_magnitude(&x);
        let peak = mag
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let hz_per_bin = sr / 4096.0;
        assert!((peak as f64 * hz_per_bin - f).abs() <= hz_per_bin);
    }

    #[test]
    fn rfft_n_pads_to_requested_size() {
        let x = vec![1.0; 10];
        assert_eq!(rfft_n(&x, 64).unwrap().len(), 64);
        assert_eq!(rfft_n(&x, 16).unwrap().len(), 16);
        // A non-power-of-two request rounds up.
        assert_eq!(rfft_n(&x, 48).unwrap().len(), 64);
    }

    #[test]
    fn rfft_n_rejects_input_longer_than_transform() {
        // The old behavior silently computed a 16-point transform for
        // n_fft = 4, shifting every bin frequency derived from n_fft.
        let x = vec![1.0; 10];
        let err = rfft_n(&x, 4).unwrap_err();
        assert!(matches!(err, DspError::InvalidLength { .. }), "{err}");
        // The boundary case is fine: 10 samples fit the rounded-up
        // 16-point transform of a 10-point request.
        assert!(rfft_n(&x, 10).is_ok());
    }

    #[test]
    fn onesided_len_matches_magnitude_output() {
        for n in [1usize, 5, 16, 1000] {
            let x = vec![0.25; n];
            assert_eq!(rfft_magnitude(&x).len(), rfft_onesided_len(n), "n = {n}");
            assert_eq!(rfft_len(n), next_pow2(n));
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(fft(&[]).is_empty());
        let one = fft(&[Complex::new(2.5, 0.0)]);
        assert_eq!(one, vec![Complex::new(2.5, 0.0)]);
        assert_eq!(rfft_onesided(&[]), vec![Complex::ZERO]);
    }

    #[test]
    fn linearity_of_transform() {
        let a = ramp(32);
        let b: Vec<Complex> = ramp(32)
            .iter()
            .map(|z| *z * Complex::new(0.3, 0.7))
            .collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let lhs = fft(&sum);
        let fa = fft(&a);
        let fb = fft(&b);
        let rhs: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&lhs, &rhs) < 1e-9);
    }

    /// Accuracy regression at n = 16384 against the exact DFT, evaluated on
    /// a strided sample of bins (the recurrence drift spreads over the
    /// whole spectrum, so a sample captures it; the full O(N²) reference
    /// would take minutes in a debug build).
    ///
    /// The legacy engine's `w *= wlen` recurrence accumulates rounding
    /// error across each stage's butterflies; its worst-case error is
    /// pinned by `LEGACY_CEILING` so the baseline can never silently get
    /// worse. The planned engine reads independently rounded table entries,
    /// so it must stay below the much tighter `PLANNED_CEILING` — and below
    /// the legacy error, proving the accuracy fix rather than asserting it.
    #[test]
    fn table_twiddles_beat_recurrence_at_16384() {
        const N: usize = 16384;
        // Regression pin for the legacy recurrence path.
        const LEGACY_CEILING: f64 = 1e-9;
        // The planned table path must be at least an order of magnitude
        // tighter than the pinned recurrence ceiling.
        const PLANNED_CEILING: f64 = 1e-10;

        let x: Vec<Complex> = (0..N)
            .map(|k| {
                let t = k as f64 * 0.001;
                Complex::new((3.1 * t).sin() + 0.25 * (17.0 * t).cos(), (0.7 * t).sin())
            })
            .collect();
        let planned = fft(&x);
        let legacy = legacy::fft(&x);

        let table = twiddle_table(N);
        // Stride coprime to N so the sampled bins sweep the whole spectrum,
        // plus the edge bins.
        let bins: Vec<usize> = (0..N).step_by(67).chain([1, N / 2, N - 1]).collect();
        let mut scale = 0.0f64;
        let mut planned_err = 0.0f64;
        let mut legacy_err = 0.0f64;
        for &k in &bins {
            let exact = dft_bin(&x, &table, k);
            scale = scale.max(exact.abs());
            planned_err = planned_err.max((planned[k] - exact).abs());
            legacy_err = legacy_err.max((legacy[k] - exact).abs());
        }
        let planned_err = planned_err / scale;
        let legacy_err = legacy_err / scale;

        assert!(
            legacy_err < LEGACY_CEILING,
            "legacy recurrence error regressed: {legacy_err:.3e}"
        );
        assert!(
            planned_err < PLANNED_CEILING,
            "planned table error too large: {planned_err:.3e}"
        );
        assert!(
            planned_err < legacy_err,
            "tables should beat the recurrence: planned {planned_err:.3e} \
             vs legacy {legacy_err:.3e}"
        );
    }

    #[test]
    fn real_plan_round_trips_through_scratch() {
        let p = plan::RealFftPlan::new(256);
        let mut scratch = plan::RealFftScratch::new();
        let x: Vec<f64> = (0..256).map(|k| ((k * 7) as f64 * 0.02).sin()).collect();
        let mut spec = vec![Complex::ZERO; p.onesided_len()];
        p.forward_into(&x, &mut spec, &mut scratch);
        let mut back = vec![0.0; p.len()];
        p.inverse_into(&spec, &mut back, &mut scratch);
        for (a, b) in x.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn plan_cache_returns_shared_instances() {
        let a = plan::rfft_plan(1024);
        let b = plan::rfft_plan(1000); // rounds up to the same 1024 entry
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        let c = plan::fft_plan(48_000);
        let d = plan::fft_plan(48_000);
        assert!(std::sync::Arc::ptr_eq(&c, &d));
    }
}
