//! Planned FFTs: precomputed bit-reversal permutations and per-stage
//! twiddle tables, executed into caller-provided scratch so the hot path is
//! allocation-free after warm-up.
//!
//! The free functions in [`crate::fft`] recompute nothing per call except
//! the transform itself because they run on plans from the process-wide
//! [size-keyed cache](fft_plan). A plan is immutable once built (tables
//! only), so one `Arc<FftPlan>` can be shared freely across `ht-par`
//! workers; all mutable state lives in the per-caller [`FftScratch`] /
//! [`RealFftScratch`].
//!
//! Two properties distinguish the planned engine from the legacy
//! recurrence-based one (kept as `fft::legacy` for comparison):
//!
//! * **Accuracy** — every twiddle factor is an independently rounded
//!   `sin`/`cos` table entry instead of the `w *= wlen` running product,
//!   whose rounding error compounds over each butterfly stage. At
//!   `n = 16384` this tightens the worst-case error against the exact DFT
//!   by several orders of magnitude (see the accuracy regression test in
//!   `fft::tests`).
//! * **Real-input cost** — [`RealFftPlan`] computes the one-sided spectrum
//!   of a length-`n` real signal with a single complex FFT of length `n/2`
//!   (pack-even/odd trick) plus an `O(n)` reconstruction, roughly halving
//!   the work of the full complex transform the legacy `rfft` ran.
//!
//! Determinism: a plan of size `n` always contains the same tables no
//! matter which thread builds it or in which order sizes are first
//! requested, so the cache is a pure wall-clock optimization — results are
//! run-to-run deterministic and thread-count invariant. Cache traffic is
//! observable through the `fft.plan_hits` / `fft.plan_misses` counters.

use crate::complex::Complex;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use super::next_pow2;

/// Reusable scratch for [`FftPlan`] execution. Only non-power-of-two
/// (Bluestein) plans need it; power-of-two transforms run fully in place.
/// Buffers grow on first use and are reused afterwards.
#[derive(Debug, Clone, Default)]
pub struct FftScratch {
    conv: Vec<Complex>,
}

impl FftScratch {
    /// An empty scratch; buffers are sized lazily by the first transform.
    pub fn new() -> FftScratch {
        FftScratch::default()
    }
}

/// Reusable scratch for [`RealFftPlan`] execution: the packed half-size
/// complex buffer. Grows on first use and is reused afterwards.
#[derive(Debug, Clone, Default)]
pub struct RealFftScratch {
    packed: Vec<Complex>,
}

impl RealFftScratch {
    /// An empty scratch; buffers are sized lazily by the first transform.
    pub fn new() -> RealFftScratch {
        RealFftScratch::default()
    }
}

/// A planned complex DFT of one fixed length.
///
/// Power-of-two lengths execute the iterative radix-2 butterflies over
/// precomputed tables; other lengths use Bluestein's chirp-z algorithm with
/// the chirp and its convolution-filter spectrum precomputed at plan time.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    kind: Kind,
}

#[derive(Debug, Clone)]
enum Kind {
    /// `n <= 1`: the transform is the identity.
    Trivial,
    Pow2(Pow2Tables),
    Bluestein(Box<BluesteinTables>),
}

#[derive(Debug, Clone)]
struct Pow2Tables {
    /// Index pairs `(i, j)` with `i < j` of the bit-reversal permutation.
    swaps: Vec<(u32, u32)>,
    /// Forward twiddles `e^{-2πik/len}` for `k < len/2`, concatenated over
    /// the stages `len = 2, 4, …, n` (`n − 1` entries in total). The
    /// inverse transform conjugates them on the fly.
    twiddles: Vec<Complex>,
}

#[derive(Debug, Clone)]
struct BluesteinTables {
    /// The inner power-of-two plan of length `m = next_pow2(2n − 1)`.
    inner: FftPlan,
    /// Forward chirp `w_k = e^{-iπk²/n}` (the inverse uses its conjugate).
    chirp: Vec<Complex>,
    /// `FFT_m` of the forward chirp filter `b` (unit-scaled).
    filter_fwd: Vec<Complex>,
    /// `FFT_m` of the inverse-direction chirp filter.
    filter_inv: Vec<Complex>,
}

impl Pow2Tables {
    fn build(n: usize) -> Pow2Tables {
        debug_assert!(n.is_power_of_two() && n >= 2);
        let mut swaps = Vec::new();
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            if i < j {
                swaps.push((i as u32, j as u32));
            }
        }
        let mut twiddles = Vec::with_capacity(n - 1);
        let mut len = 2usize;
        while len <= n {
            let step = -2.0 * std::f64::consts::PI / len as f64;
            for k in 0..len / 2 {
                twiddles.push(Complex::from_angle(step * k as f64));
            }
            len <<= 1;
        }
        Pow2Tables { swaps, twiddles }
    }

    /// Unnormalized in-place radix-2 pass over the precomputed tables.
    fn process(&self, buf: &mut [Complex], inverse: bool) {
        let n = buf.len();
        for &(i, j) in &self.swaps {
            buf.swap(i as usize, j as usize);
        }
        let mut tables = self.twiddles.as_slice();
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let (stage, rest) = tables.split_at(half);
            tables = rest;
            for chunk in buf.chunks_exact_mut(len) {
                let (lo, hi) = chunk.split_at_mut(half);
                for k in 0..half {
                    let w = if inverse { stage[k].conj() } else { stage[k] };
                    let u = lo[k];
                    let v = hi[k] * w;
                    lo[k] = u + v;
                    hi[k] = u - v;
                }
            }
            len <<= 1;
        }
    }
}

impl BluesteinTables {
    fn build(n: usize) -> BluesteinTables {
        debug_assert!(n >= 2 && !n.is_power_of_two());
        let m = next_pow2(2 * n - 1);
        // Inner plans are built directly (not through the cache) so cache
        // lookups never re-enter the cache lock.
        let inner = FftPlan::new(m);
        let chirp: Vec<Complex> = (0..n)
            .map(|k| {
                // Reduce k² mod 2n before the float multiply to keep
                // precision for long transforms.
                let k2 = (k as u128 * k as u128) % (2 * n as u128);
                Complex::from_angle(-std::f64::consts::PI * k2 as f64 / n as f64)
            })
            .collect();
        let filter_of = |chirp_dir: &dyn Fn(usize) -> Complex| {
            let mut b = vec![Complex::ZERO; m];
            b[0] = chirp_dir(0).conj();
            for k in 1..n {
                let c = chirp_dir(k).conj();
                b[k] = c;
                b[m - k] = c;
            }
            match &inner.kind {
                Kind::Pow2(t) => t.process(&mut b, false),
                _ => unreachable!("inner Bluestein plan is always pow2"),
            }
            b
        };
        let filter_fwd = filter_of(&|k| chirp[k]);
        let filter_inv = filter_of(&|k| chirp[k].conj());
        BluesteinTables {
            inner,
            chirp,
            filter_fwd,
            filter_inv,
        }
    }

    /// Unnormalized chirp-z transform of `buf` through the inner plan.
    fn process(&self, buf: &mut [Complex], scratch: &mut FftScratch, inverse: bool) {
        let n = buf.len();
        let m = self.inner.len();
        let tables = match &self.inner.kind {
            Kind::Pow2(t) => t,
            _ => unreachable!("inner Bluestein plan is always pow2"),
        };
        let chirp_at = |k: usize| {
            if inverse {
                self.chirp[k].conj()
            } else {
                self.chirp[k]
            }
        };
        let a = &mut scratch.conv;
        a.clear();
        a.resize(m, Complex::ZERO);
        for k in 0..n {
            a[k] = buf[k] * chirp_at(k);
        }
        tables.process(a, false);
        let filter = if inverse {
            &self.filter_inv
        } else {
            &self.filter_fwd
        };
        for (av, bv) in a.iter_mut().zip(filter.iter()) {
            *av *= *bv;
        }
        tables.process(a, true);
        let scale = 1.0 / m as f64;
        for k in 0..n {
            buf[k] = a[k] * chirp_at(k) * scale;
        }
    }
}

impl FftPlan {
    /// Builds a plan for exact-length-`n` complex DFTs (any `n`; `n <= 1`
    /// plans are identity transforms).
    pub fn new(n: usize) -> FftPlan {
        let kind = if n <= 1 {
            Kind::Trivial
        } else if n.is_power_of_two() {
            Kind::Pow2(Pow2Tables::build(n))
        } else {
            Kind::Bluestein(Box::new(BluesteinTables::build(n)))
        };
        FftPlan { n, kind }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the degenerate zero-length plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward DFT of `buf` in place (unnormalized, like [`crate::fft::fft`]).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn forward(&self, buf: &mut [Complex], scratch: &mut FftScratch) {
        self.process(buf, scratch, false);
    }

    /// Inverse DFT of `buf` in place, normalized by `1/n`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn inverse(&self, buf: &mut [Complex], scratch: &mut FftScratch) {
        self.process(buf, scratch, true);
        let inv_n = 1.0 / self.n as f64;
        for z in buf.iter_mut() {
            *z = *z * inv_n;
        }
    }

    fn process(&self, buf: &mut [Complex], scratch: &mut FftScratch, inverse: bool) {
        assert_eq!(
            buf.len(),
            self.n,
            "buffer length must match the planned size"
        );
        match &self.kind {
            Kind::Trivial => {}
            Kind::Pow2(t) => t.process(buf, inverse),
            Kind::Bluestein(t) => t.process(buf, scratch, inverse),
        }
    }
}

/// A planned one-sided real FFT of one fixed power-of-two length `n`,
/// implemented as a complex FFT of length `n/2` over the even/odd-packed
/// input plus an `O(n)` split step — about half the work of a full complex
/// transform. The matching [`inverse`](RealFftPlan::inverse_into)
/// reconstructs the packed spectrum and round-trips bit-for-bit
/// deterministically.
#[derive(Debug, Clone)]
pub struct RealFftPlan {
    n: usize,
    /// Complex plan of length `n/2` (`None` for the trivial `n == 1`).
    half: Option<FftPlan>,
    /// Split twiddles `e^{-2πik/n}` for `k < n/2`.
    split: Vec<Complex>,
}

impl RealFftPlan {
    /// Builds a plan for real FFTs of length `n`.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two (use [`next_pow2`] — the cached
    /// entry point [`rfft_plan`] rounds up for you).
    pub fn new(n: usize) -> RealFftPlan {
        assert!(
            n.is_power_of_two(),
            "real FFT plans require a power-of-two length, got {n}"
        );
        if n == 1 {
            return RealFftPlan {
                n,
                half: None,
                split: Vec::new(),
            };
        }
        let h = n / 2;
        let step = -2.0 * std::f64::consts::PI / n as f64;
        RealFftPlan {
            n,
            half: Some(FftPlan::new(h)),
            split: (0..h)
                .map(|k| Complex::from_angle(step * k as f64))
                .collect(),
        }
    }

    /// The real transform length `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never true: plans are at least length 1.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of one-sided output bins, `n/2 + 1`.
    pub fn onesided_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Forward one-sided real FFT: `out[k] = X[k]` for `k <= n/2`, where
    /// `X` is the unnormalized `n`-point DFT of `x` zero-padded to `n`.
    ///
    /// Allocation-free once `scratch` has warmed up to this size.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() > self.len()` (the input would be silently
    /// truncated) or `out.len() != self.onesided_len()`.
    pub fn forward_into(&self, x: &[f64], out: &mut [Complex], scratch: &mut RealFftScratch) {
        assert!(
            x.len() <= self.n,
            "input length {} exceeds the planned real FFT length {}",
            x.len(),
            self.n
        );
        assert_eq!(out.len(), self.onesided_len(), "one-sided output length");
        let Some(half) = &self.half else {
            out[0] = Complex::from_real(x.first().copied().unwrap_or(0.0));
            return;
        };
        let h = self.n / 2;
        let z = &mut scratch.packed;
        z.clear();
        z.resize(h, Complex::ZERO);
        let pairs = x.len() / 2;
        for (k, zk) in z.iter_mut().enumerate().take(pairs) {
            *zk = Complex::new(x[2 * k], x[2 * k + 1]);
        }
        if x.len() % 2 == 1 {
            z[pairs] = Complex::from_real(x[x.len() - 1]);
        }
        match &half.kind {
            Kind::Pow2(t) => t.process(z, false),
            Kind::Trivial => {}
            Kind::Bluestein(_) => unreachable!("half plan of a pow2 real plan is pow2"),
        }
        // Split the packed spectrum: with Fe/Fo the DFTs of the even/odd
        // samples, X[k] = Fe[k] + e^{-2πik/n}·Fo[k].
        out[0] = Complex::from_real(z[0].re + z[0].im);
        out[h] = Complex::from_real(z[0].re - z[0].im);
        for k in 1..h {
            let a = z[k];
            let b = z[h - k].conj();
            let fe = (a + b).scale(0.5);
            let fo = (a - b) * Complex::new(0.0, -0.5);
            out[k] = fe + self.split[k] * fo;
        }
    }

    /// Inverse of [`forward_into`](RealFftPlan::forward_into): reconstructs
    /// the length-`n` real signal from its one-sided spectrum, normalized
    /// by `1/n` so the pair round-trips.
    ///
    /// The imaginary parts of `spec[0]` and `spec[n/2]` (which are zero for
    /// any spectrum of a real signal) are ignored.
    ///
    /// Allocation-free once `scratch` has warmed up to this size.
    ///
    /// # Panics
    ///
    /// Panics if `spec.len() != self.onesided_len()` or
    /// `out.len() != self.len()`.
    pub fn inverse_into(&self, spec: &[Complex], out: &mut [f64], scratch: &mut RealFftScratch) {
        assert_eq!(spec.len(), self.onesided_len(), "one-sided input length");
        assert_eq!(out.len(), self.n, "output length");
        let Some(half) = &self.half else {
            out[0] = spec[0].re;
            return;
        };
        let h = self.n / 2;
        let z = &mut scratch.packed;
        z.clear();
        z.resize(h, Complex::ZERO);
        // Rebuild the packed spectrum: Fe[k] = (X[k] + conj(X[h−k]))/2,
        // Fo[k] = (X[k] − conj(X[h−k]))/2 · e^{+2πik/n}, Z[k] = Fe[k] + i·Fo[k].
        // k = 0 uses only the real parts of X[0] and X[h], which is where
        // the "imaginary parts of the edge bins are ignored" contract comes
        // from.
        z[0] = Complex::new(
            (spec[0].re + spec[h].re) * 0.5,
            (spec[0].re - spec[h].re) * 0.5,
        );
        for (k, zk) in z.iter_mut().enumerate().skip(1) {
            let a = spec[k];
            let b = spec[h - k].conj();
            let fe = (a + b).scale(0.5);
            let fo = (a - b).scale(0.5) * self.split[k].conj();
            *zk = fe + Complex::I * fo;
        }
        match &half.kind {
            Kind::Pow2(t) => t.process(z, true),
            Kind::Trivial => {}
            Kind::Bluestein(_) => unreachable!("half plan of a pow2 real plan is pow2"),
        }
        let inv_h = 1.0 / h as f64;
        for k in 0..h {
            out[2 * k] = z[k].re * inv_h;
            out[2 * k + 1] = z[k].im * inv_h;
        }
    }

    /// Allocating convenience wrapper around
    /// [`forward_into`](RealFftPlan::forward_into).
    pub fn forward(&self, x: &[f64]) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; self.onesided_len()];
        let mut scratch = RealFftScratch::new();
        self.forward_into(x, &mut out, &mut scratch);
        out
    }

    /// Allocating convenience wrapper around
    /// [`inverse_into`](RealFftPlan::inverse_into).
    pub fn inverse(&self, spec: &[Complex]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        let mut scratch = RealFftScratch::new();
        self.inverse_into(spec, &mut out, &mut scratch);
        out
    }
}

type PlanCache<P> = OnceLock<Mutex<BTreeMap<usize, Arc<P>>>>;

static COMPLEX_PLANS: PlanCache<FftPlan> = OnceLock::new();
static REAL_PLANS: PlanCache<RealFftPlan> = OnceLock::new();

fn cached<P>(cache: &PlanCache<P>, n: usize, build: impl FnOnce(usize) -> P) -> Arc<P> {
    let map = cache.get_or_init(|| Mutex::new(BTreeMap::new()));
    // A plan of a given size is the same value no matter who builds it, so
    // a poisoned lock (a panicking caller elsewhere) leaves nothing to
    // repair — recover the map and keep serving.
    let mut map = map.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(p) = map.get(&n) {
        ht_obs::counter_add("fft.plan_hits", 1);
        return Arc::clone(p);
    }
    // Building inside the lock keeps the miss count exactly "one per
    // distinct size" (the CI cache gate asserts this bound); plans build in
    // O(n log n), so the briefly-held lock is not a contention concern.
    ht_obs::counter_add("fft.plan_misses", 1);
    let p = Arc::new(build(n));
    map.insert(n, Arc::clone(&p));
    p
}

/// The process-wide plan for exact-length-`n` complex DFTs (built on first
/// request, shared afterwards). Cache traffic is counted in
/// `fft.plan_hits` / `fft.plan_misses`.
pub fn fft_plan(n: usize) -> Arc<FftPlan> {
    cached(&COMPLEX_PLANS, n, FftPlan::new)
}

/// The process-wide plan for real FFTs of length `next_pow2(n)` (real
/// plans are power-of-two only; the requested length rounds up). Cache
/// traffic is counted in `fft.plan_hits` / `fft.plan_misses`.
pub fn rfft_plan(n: usize) -> Arc<RealFftPlan> {
    cached(&REAL_PLANS, next_pow2(n), RealFftPlan::new)
}

thread_local! {
    static TLS_SCRATCH: std::cell::RefCell<(FftScratch, RealFftScratch)> =
        std::cell::RefCell::new((FftScratch::new(), RealFftScratch::new()));
}

/// Runs `f` with this thread's reusable scratch pair, so the free-function
/// wrappers in [`crate::fft`] stop allocating scratch once warm.
pub(crate) fn with_tls_scratch<R>(f: impl FnOnce(&mut FftScratch, &mut RealFftScratch) -> R) -> R {
    TLS_SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        let (cpx, real) = &mut *s;
        f(cpx, real)
    })
}
