//! # ht-dsp — signal-processing primitives for the HeadTalk reproduction
//!
//! This crate is the digital-signal-processing substrate of the HeadTalk
//! (DSN 2023) reproduction. It is a dependency-free (apart from `std`)
//! implementation of everything the paper's pipeline needs:
//!
//! * complex arithmetic and a radix-2 / Bluestein [FFT](fft),
//! * [window functions](window) and the [short-time Fourier transform](stft),
//! * [Butterworth IIR filters](filter) (the paper's 5th-order 100–16 000 Hz
//!   band-pass pre-filter) with zero-phase `filtfilt`,
//! * [resampling](resample) (the 48 kHz → 16 kHz decimation feeding liveness
//!   detection),
//! * [cross-correlation and GCC-PHAT](correlate) and the
//!   [SRP-PHAT](srp) steered-response power used as orientation features,
//! * [spectral analysis](spectrum) (band energies, Welch PSD, the high/low
//!   band ratio of §III-B3),
//! * [descriptive statistics](stats) (kurtosis, skewness, MAD, …) used as
//!   feature summaries, and
//! * [peak picking](peak).
//!
//! Because the workspace builds fully offline with zero external crates,
//! this crate also hosts the shared infrastructure the other crates lean
//! on: deterministic [random number generation](rng) (SplitMix64 +
//! xoshiro256++), a minimal [JSON](json) reader/writer for reports and
//! caches, byte-stable [JSON export of observability snapshots](obs), and a
//! small [property-testing harness](check).
//!
//! # Example
//!
//! ```
//! use ht_dsp::{fft, signal};
//!
//! // A 1 kHz tone sampled at 48 kHz shows a spectral peak near 1 kHz.
//! let sr = 48_000.0;
//! let tone: Vec<f64> = (0..48_000)
//!     .map(|n| (2.0 * std::f64::consts::PI * 1000.0 * n as f64 / sr).sin())
//!     .collect();
//! let spec = fft::rfft_magnitude(&tone);
//! let peak_bin = spec
//!     .iter()
//!     .enumerate()
//!     .max_by(|a, b| a.1.total_cmp(b.1))
//!     .map(|(i, _)| i)
//!     .unwrap();
//! let n_fft = (spec.len() - 1) * 2;
//! let bin_hz = sr / n_fft as f64;
//! assert!((peak_bin as f64 * bin_hz - 1000.0).abs() < 5.0);
//! assert!(signal::rms(&tone) > 0.5);
//! ```

pub mod check;
pub mod complex;
pub mod convolve;
pub mod correlate;
pub mod error;
pub mod fft;
pub mod filter;
pub mod json;
pub mod kernels;
pub mod obs;
pub mod peak;
pub mod resample;
pub mod rng;
pub mod signal;
pub mod spectrum;
pub mod srp;
pub mod stats;
pub mod stft;
pub mod window;

pub use complex::Complex;
pub use error::DspError;
pub use kernels::QuantMode;
