//! Flat, chunked, autovectorizable kernels for the decision hot path, and
//! the [`QuantMode`] switch that selects between the byte-stable f64
//! reference kernels and the faster approximate variants backing the int8
//! quantized inference path.
//!
//! Two whitening kernels implement the GCC-PHAT cross-spectrum product:
//!
//! * [`cross_whiten_reference_into`] fuses the product, magnitude and
//!   running-max passes of the historical `product loop + whiten` sequence
//!   into one streaming pass over contiguous scratch. It is **bit-identical**
//!   to the original (same `hypot` magnitudes, same sequential max fold,
//!   same per-component division) while computing each magnitude once
//!   instead of twice — the reference path's golden reports stay
//!   byte-stable.
//! * [`cross_whiten_fast_into`] works in squared magnitudes (`re² + im²`,
//!   no `hypot` libm call), takes the bin maximum with a chunked
//!   multi-accumulator fold, and normalizes via `1/√m²` — every loop is a
//!   flat FMA-able sweep the compiler autovectorizes. Values agree with the
//!   reference to ~1e-12 relative but are *not* bit-identical, so this
//!   kernel is only reachable under [`QuantMode::Int8`].

use crate::complex::Complex;

/// Which numeric backend the decision hot path runs on.
///
/// `Reference` is the byte-stable f64 path every golden report is pinned
/// against; `Int8` selects the vectorized whitening kernels here plus the
/// int8 quantized model forwards in `ht-ml` (calibrated offline, accuracy
/// gated within 0.5 pp of the reference in CI). Training, calibration and
/// report-producing experiment paths always use `Reference`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QuantMode {
    /// The f64 reference path: byte-stable, golden-report pinned.
    #[default]
    Reference,
    /// The quantized/vectorized fast path: int8 model forwards plus the
    /// squared-magnitude whitening kernel. Logits and features agree with
    /// the reference within tested tolerance bounds but are not
    /// bit-identical.
    Int8,
}

impl QuantMode {
    /// `true` for the byte-stable reference backend.
    pub fn is_reference(self) -> bool {
        matches!(self, QuantMode::Reference)
    }
}

/// Relative silence floor of the PHAT whitening: bins more than 80 dB below
/// the strongest bin are zeroed (PHAT would amplify round-off to unit
/// weight).
const PHAT_REL_FLOOR: f64 = 1e-4;
/// Absolute magnitude floor guarding all-silent spectra.
const PHAT_ABS_FLOOR: f64 = 1e-15;

/// Fused cross-power product + PHAT whitening, reference flavour.
///
/// Computes `cross[i] = xf[i] · conj(yf[i])` whitened to unit magnitude
/// (silencing bins below the relative/absolute floors), using `mags` as
/// magnitude scratch so each bin's `hypot` is evaluated exactly once. The
/// result is bit-identical to the separate product-then-whiten loops this
/// replaces: magnitudes, the sequential `f64::max` fold and the
/// per-component division are evaluated on the same values in the same
/// order.
///
/// # Panics
///
/// Panics if the four slices disagree in length.
pub fn cross_whiten_reference_into(
    xf: &[Complex],
    yf: &[Complex],
    cross: &mut [Complex],
    mags: &mut [f64],
) {
    let n = cross.len();
    assert_eq!(xf.len(), n, "x spectrum length");
    assert_eq!(yf.len(), n, "y spectrum length");
    assert_eq!(mags.len(), n, "magnitude scratch length");
    let mut max_mag = 0.0f64;
    for i in 0..n {
        let c = xf[i] * yf[i].conj();
        cross[i] = c;
        let m = c.abs();
        mags[i] = m;
        max_mag = max_mag.max(m);
    }
    let floor = max_mag * PHAT_REL_FLOOR;
    for i in 0..n {
        let m = mags[i];
        cross[i] = if m > floor && m > PHAT_ABS_FLOOR {
            cross[i] / m
        } else {
            Complex::ZERO
        };
    }
}

/// Accumulator lanes of the fast kernel's chunked max fold — wide enough to
/// fill a 256-bit vector of f64, small enough to stay in registers.
const MAX_LANES: usize = 4;

/// Fused cross-power product + PHAT whitening, vectorized flavour
/// ([`QuantMode::Int8`] only).
///
/// Identical contract to [`cross_whiten_reference_into`] but works in
/// squared magnitudes throughout: the product pass stores `re² + im²` into
/// `m2s` (no `hypot`), the maximum is folded over [`MAX_LANES`] independent
/// accumulators so the compiler can keep it in one vector register, and the
/// normalize pass multiplies by `1/√m²`. The floors are squared
/// (`(max·1e-4)² = max²·1e-8`, `(1e-15)² = 1e-30`), preserving the
/// reference predicate in exact arithmetic; float rounding can flip bins
/// sitting exactly on the floor, which is covered by the Int8 tolerance
/// gate rather than byte-stability.
///
/// # Panics
///
/// Panics if the four slices disagree in length.
pub fn cross_whiten_fast_into(
    xf: &[Complex],
    yf: &[Complex],
    cross: &mut [Complex],
    m2s: &mut [f64],
) {
    let n = cross.len();
    assert_eq!(xf.len(), n, "x spectrum length");
    assert_eq!(yf.len(), n, "y spectrum length");
    assert_eq!(m2s.len(), n, "magnitude scratch length");
    for i in 0..n {
        let c = xf[i] * yf[i].conj();
        cross[i] = c;
        m2s[i] = c.norm_sqr();
    }
    let mut lanes = [0.0f64; MAX_LANES];
    let chunks = m2s.chunks_exact(MAX_LANES);
    let tail = chunks.remainder();
    for chunk in chunks {
        for (acc, &m2) in lanes.iter_mut().zip(chunk) {
            *acc = acc.max(m2);
        }
    }
    let mut max_m2 = tail.iter().fold(0.0f64, |acc, &m2| acc.max(m2));
    for acc in lanes {
        max_m2 = max_m2.max(acc);
    }
    let floor2 = max_m2 * (PHAT_REL_FLOOR * PHAT_REL_FLOOR);
    let abs_floor2 = PHAT_ABS_FLOOR * PHAT_ABS_FLOOR;
    for i in 0..n {
        let m2 = m2s[i];
        cross[i] = if m2 > floor2 && m2 > abs_floor2 {
            cross[i].scale(1.0 / m2.sqrt())
        } else {
            Complex::ZERO
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The historical two-loop implementation the fused reference kernel
    /// replaces, kept here verbatim as the bit-identity oracle.
    fn naive_product_then_whiten(xf: &[Complex], yf: &[Complex]) -> Vec<Complex> {
        let mut cross: Vec<Complex> = xf.iter().zip(yf).map(|(a, b)| *a * b.conj()).collect();
        let max_mag = cross.iter().map(|c| c.abs()).fold(0.0, f64::max);
        let floor = max_mag * 1e-4;
        for c in cross.iter_mut() {
            let m = c.abs();
            *c = if m > floor && m > 1e-15 {
                *c / m
            } else {
                Complex::ZERO
            };
        }
        cross
    }

    fn spectra(n: usize, seed: u64) -> (Vec<Complex>, Vec<Complex>) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let xf: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
        let yf: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
        (xf, yf)
    }

    #[test]
    fn reference_kernel_is_bit_identical_to_naive_loops() {
        for n in [1usize, 3, 4, 7, 64, 129, 513] {
            let (xf, yf) = spectra(n, 0x9E3779B97F4A7C15 ^ n as u64);
            let expected = naive_product_then_whiten(&xf, &yf);
            let mut cross = vec![Complex::ZERO; n];
            let mut mags = vec![0.0; n];
            cross_whiten_reference_into(&xf, &yf, &mut cross, &mut mags);
            assert_eq!(cross, expected, "n = {n}");
        }
    }

    #[test]
    fn fast_kernel_matches_reference_within_tolerance() {
        for n in [1usize, 5, 64, 257, 1024] {
            let (xf, yf) = spectra(n, 0xD1B54A32D192ED03 ^ n as u64);
            let expected = naive_product_then_whiten(&xf, &yf);
            let mut cross = vec![Complex::ZERO; n];
            let mut m2s = vec![0.0; n];
            cross_whiten_fast_into(&xf, &yf, &mut cross, &mut m2s);
            for (got, want) in cross.iter().zip(&expected) {
                assert!(
                    (got.re - want.re).abs() < 1e-10 && (got.im - want.im).abs() < 1e-10,
                    "n = {n}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn both_kernels_silence_an_all_zero_spectrum() {
        let zeros = vec![Complex::ZERO; 33];
        let mut cross = vec![Complex::ONE; 33];
        let mut mags = vec![1.0; 33];
        cross_whiten_reference_into(&zeros, &zeros, &mut cross, &mut mags);
        assert!(cross.iter().all(|c| *c == Complex::ZERO));
        let mut cross = vec![Complex::ONE; 33];
        cross_whiten_fast_into(&zeros, &zeros, &mut cross, &mut mags);
        assert!(cross.iter().all(|c| *c == Complex::ZERO));
    }

    #[test]
    fn whitened_bins_have_unit_magnitude() {
        let (xf, yf) = spectra(100, 42);
        let mut cross = vec![Complex::ZERO; 100];
        let mut mags = vec![0.0; 100];
        cross_whiten_reference_into(&xf, &yf, &mut cross, &mut mags);
        for c in &cross {
            let m = c.abs();
            assert!(m == 0.0 || (m - 1.0).abs() < 1e-12, "|c| = {m}");
        }
    }

    #[test]
    fn quant_mode_defaults_to_reference() {
        assert_eq!(QuantMode::default(), QuantMode::Reference);
        assert!(QuantMode::Reference.is_reference());
        assert!(!QuantMode::Int8.is_reference());
    }
}
