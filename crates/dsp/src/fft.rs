//! Fast Fourier transform: iterative radix-2 with a Bluestein fallback for
//! arbitrary lengths.
//!
//! All transforms are unnormalized in the forward direction; the inverse
//! divides by the length, so `ifft(fft(x)) == x`.

use crate::complex::Complex;

/// Returns the smallest power of two `>= n` (and at least 1).
///
/// # Example
///
/// ```
/// assert_eq!(ht_dsp::fft::next_pow2(1000), 1024);
/// assert_eq!(ht_dsp::fft::next_pow2(1024), 1024);
/// assert_eq!(ht_dsp::fft::next_pow2(0), 1);
/// ```
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// `inverse` selects the conjugate transform; normalization by `1/N` for the
/// inverse is applied by the caller-facing wrappers.
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two (internal invariant; public
/// entry points pad or use Bluestein).
fn fft_pow2_in_place(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }

    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        let half = len / 2;
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..half {
                let u = buf[i + k];
                let v = buf[i + k + half] * w;
                buf[i + k] = u + v;
                buf[i + k + half] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Forward FFT of a complex buffer of arbitrary length.
///
/// Power-of-two lengths use radix-2 directly; other lengths use Bluestein's
/// algorithm (chirp-z), so the result is the exact N-point DFT, not a padded
/// approximation.
///
/// # Example
///
/// ```
/// use ht_dsp::{fft, Complex};
///
/// let x: Vec<Complex> = (0..6).map(|k| Complex::from_real(k as f64)).collect();
/// let spec = fft::fft(&x);
/// // DC bin equals the sum of the samples.
/// assert!((spec[0].re - 15.0).abs() < 1e-9);
/// ```
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    fft_in_place(&mut buf, false);
    buf
}

/// Inverse FFT of a complex buffer of arbitrary length (normalized by `1/N`).
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    fft_in_place(&mut buf, true);
    let n = buf.len() as f64;
    for z in &mut buf {
        *z = *z / n;
    }
    buf
}

/// Dispatches between radix-2 and Bluestein. Inverse is unnormalized.
fn fft_in_place(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        fft_pow2_in_place(buf, inverse);
    } else {
        let out = bluestein(buf, inverse);
        buf.copy_from_slice(&out);
    }
}

/// Bluestein chirp-z transform: computes the exact N-point DFT for arbitrary
/// N using three power-of-two FFTs.
fn bluestein(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let m = next_pow2(2 * n - 1);

    // Chirp: w_k = exp(sign * i * pi * k^2 / n)
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            // Reduce k^2 mod 2n before the float multiply to keep precision
            // for long transforms.
            let k2 = (k as u128 * k as u128) % (2 * n as u128);
            Complex::from_angle(sign * std::f64::consts::PI * k2 as f64 / n as f64)
        })
        .collect();

    let mut a = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
    }
    let mut b = vec![Complex::ZERO; m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        let c = chirp[k].conj();
        b[k] = c;
        b[m - k] = c;
    }

    fft_pow2_in_place(&mut a, false);
    fft_pow2_in_place(&mut b, false);
    for (av, bv) in a.iter_mut().zip(b.iter()) {
        *av *= *bv;
    }
    fft_pow2_in_place(&mut a, true);
    let scale = 1.0 / m as f64;
    (0..n).map(|k| a[k] * chirp[k] * scale).collect()
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
///
/// Returns the full complex spectrum of length `next_pow2(x.len())`. Use
/// [`rfft_len`] to get the padded length up front.
pub fn rfft(x: &[f64]) -> Vec<Complex> {
    let n = next_pow2(x.len());
    let mut buf = vec![Complex::ZERO; n];
    for (b, &v) in buf.iter_mut().zip(x.iter()) {
        b.re = v;
    }
    fft_pow2_in_place(&mut buf, false);
    buf
}

/// Forward FFT of a real signal zero-padded to exactly `n_fft` points
/// (`n_fft` is rounded up to a power of two).
pub fn rfft_n(x: &[f64], n_fft: usize) -> Vec<Complex> {
    let n = next_pow2(n_fft.max(x.len()));
    let mut buf = vec![Complex::ZERO; n];
    for (b, &v) in buf.iter_mut().zip(x.iter()) {
        b.re = v;
    }
    fft_pow2_in_place(&mut buf, false);
    buf
}

/// Length of the spectrum produced by [`rfft`] for an input of length `n`.
pub fn rfft_len(n: usize) -> usize {
    next_pow2(n)
}

/// One-sided magnitude spectrum of a real signal: `|X[0..=N/2]|`.
///
/// The length is `next_pow2(x.len())/2 + 1`; bin `k` corresponds to frequency
/// `k * sample_rate / next_pow2(x.len())`.
pub fn rfft_magnitude(x: &[f64]) -> Vec<f64> {
    let spec = rfft(x);
    let half = spec.len() / 2;
    spec[..=half].iter().map(|z| z.abs()).collect()
}

/// Inverse FFT returning only the real parts (for spectra known to be
/// conjugate-symmetric, e.g. produced from real signals).
pub fn irfft_real(spec: &[Complex]) -> Vec<f64> {
    ifft(spec).into_iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    /// Naive O(N^2) DFT used as ground truth.
    fn dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|j| {
                        x[j] * Complex::from_angle(
                            -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64,
                        )
                    })
                    .sum()
            })
            .collect()
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|k| Complex::new(k as f64 * 0.5 - 1.0, (k as f64 * 0.3).sin()))
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft_pow2() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let x = ramp(n);
            assert!(max_err(&fft(&x), &dft(&x)) < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn fft_matches_naive_dft_non_pow2() {
        for n in [3usize, 5, 6, 7, 12, 15, 100] {
            let x = ramp(n);
            assert!(max_err(&fft(&x), &dft(&x)) < 1e-8, "n = {n}");
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        for n in [8usize, 13, 48, 1000] {
            let x = ramp(n);
            let back = ifft(&fft(&x));
            assert!(max_err(&x, &back) < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        for bin in fft(&x) {
            assert!((bin.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x = ramp(64);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = fft(&x).iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn rfft_spectrum_is_conjugate_symmetric() {
        let x: Vec<f64> = (0..100).map(|k| (k as f64 * 0.17).sin()).collect();
        let spec = rfft(&x);
        let n = spec.len();
        for k in 1..n / 2 {
            let d = spec[k] - spec[n - k].conj();
            assert!(d.abs() < 1e-9);
        }
    }

    #[test]
    fn rfft_magnitude_locates_tone() {
        let sr = 48_000.0;
        let f = 3000.0;
        let x: Vec<f64> = (0..4096)
            .map(|n| (2.0 * std::f64::consts::PI * f * n as f64 / sr).sin())
            .collect();
        let mag = rfft_magnitude(&x);
        let peak = mag
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let hz_per_bin = sr / 4096.0;
        assert!((peak as f64 * hz_per_bin - f).abs() <= hz_per_bin);
    }

    #[test]
    fn rfft_n_pads_to_requested_size() {
        let x = vec![1.0; 10];
        assert_eq!(rfft_n(&x, 64).len(), 64);
        // Requested size below input length still covers the whole input.
        assert_eq!(rfft_n(&x, 4).len(), 16);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(fft(&[]).is_empty());
        let one = fft(&[Complex::new(2.5, 0.0)]);
        assert_eq!(one, vec![Complex::new(2.5, 0.0)]);
    }

    #[test]
    fn linearity_of_transform() {
        let a = ramp(32);
        let b: Vec<Complex> = ramp(32)
            .iter()
            .map(|z| *z * Complex::new(0.3, 0.7))
            .collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let lhs = fft(&sum);
        let fa = fft(&a);
        let fb = fft(&b);
        let rhs: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&lhs, &rhs) < 1e-9);
    }
}
