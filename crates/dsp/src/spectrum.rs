//! Spectral analysis: band energies, Welch PSD, and the paper's speech
//! directivity features (high/low band ratio and low-band chunk statistics,
//! §III-B3).

use crate::error::DspError;
use crate::fft;
use crate::stft;
use crate::window::Window;

/// A one-sided magnitude spectrum with its frequency axis metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    /// Magnitudes `|X[k]|` for bins `0 ..= n_fft/2`.
    pub magnitudes: Vec<f64>,
    /// Sample rate of the analyzed signal in Hz.
    pub sample_rate: f64,
    /// FFT length used for the analysis.
    pub n_fft: usize,
}

impl Spectrum {
    /// Computes the one-sided magnitude spectrum of `x` (zero-padded to the
    /// next power of two).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] for an empty signal and
    /// [`DspError::InvalidParameter`] for a non-positive sample rate.
    pub fn of(x: &[f64], sample_rate: f64) -> Result<Spectrum, DspError> {
        if x.is_empty() {
            return Err(DspError::length("x", "must be non-empty"));
        }
        if sample_rate <= 0.0 || sample_rate.is_nan() {
            return Err(DspError::param("sample_rate", "must be positive"));
        }
        let n_fft = fft::next_pow2(x.len());
        Ok(Spectrum {
            magnitudes: fft::rfft_magnitude(x),
            sample_rate,
            n_fft,
        })
    }

    /// Frequency (Hz) of bin `k`.
    pub fn bin_to_hz(&self, k: usize) -> f64 {
        k as f64 * self.sample_rate / self.n_fft as f64
    }

    /// Bin index closest to frequency `hz` (clamped to the valid range).
    pub fn hz_to_bin(&self, hz: f64) -> usize {
        let k = (hz * self.n_fft as f64 / self.sample_rate).round() as usize;
        k.min(self.magnitudes.len() - 1)
    }

    /// The slice of magnitudes spanning `[lo_hz, hi_hz)`, except that an
    /// upper edge at or above Nyquist includes the Nyquist bin — a band
    /// "up to sr/2" means the whole remaining spectrum, and there is no
    /// higher band for the edge to be exclusive against. (This used to
    /// silently drop the top bin for any `hi_hz >= sr/2`.)
    pub fn band(&self, lo_hz: f64, hi_hz: f64) -> &[f64] {
        let lo = self.hz_to_bin(lo_hz);
        let hi = if hi_hz >= self.sample_rate / 2.0 {
            self.magnitudes.len()
        } else {
            self.hz_to_bin(hi_hz)
        };
        &self.magnitudes[lo..hi.max(lo)]
    }

    /// Mean magnitude over `[lo_hz, hi_hz)` (0 if the band is empty).
    pub fn band_mean(&self, lo_hz: f64, hi_hz: f64) -> f64 {
        crate::stats::mean(self.band(lo_hz, hi_hz))
    }

    /// Energy (sum of squared magnitudes) over `[lo_hz, hi_hz)`.
    pub fn band_energy(&self, lo_hz: f64, hi_hz: f64) -> f64 {
        self.band(lo_hz, hi_hz).iter().map(|m| m * m).sum()
    }

    /// Magnitudes normalized to a unit maximum (as plotted in Fig. 3/5 of
    /// the paper). A silent spectrum stays zero.
    pub fn normalized(&self) -> Vec<f64> {
        let m = crate::stats::max(&self.magnitudes).max(0.0);
        if m == 0.0 {
            return self.magnitudes.clone();
        }
        self.magnitudes.iter().map(|v| v / m).collect()
    }
}

/// The paper's low band for speech directivity analysis: 100–400 Hz.
pub const LOW_BAND_HZ: (f64, f64) = (100.0, 400.0);
/// The paper's high band for speech directivity analysis: 500–4000 Hz.
pub const HIGH_BAND_HZ: (f64, f64) = (500.0, 4000.0);

/// High/low band ratio (HLBR): mean magnitude of the 500–4000 Hz band over
/// the mean magnitude of the 100–400 Hz band (§III-B3). Returns 0 when the
/// low band is silent.
pub fn hlbr(spectrum: &Spectrum) -> f64 {
    let low = spectrum.band_mean(LOW_BAND_HZ.0, LOW_BAND_HZ.1);
    let high = spectrum.band_mean(HIGH_BAND_HZ.0, HIGH_BAND_HZ.1);
    if low <= 0.0 {
        0.0
    } else {
        high / low
    }
}

/// Per-chunk statistics of the low band, divided into `chunks` equal
/// frequency sub-bands: `(mean, rms, std_dev)` for each chunk (§III-B3 uses
/// 20 chunks).
pub fn low_band_chunk_stats(spectrum: &Spectrum, chunks: usize) -> Vec<(f64, f64, f64)> {
    assert!(chunks >= 1, "need at least one chunk");
    let (lo, hi) = LOW_BAND_HZ;
    let step = (hi - lo) / chunks as f64;
    (0..chunks)
        .map(|c| {
            let b = spectrum.band(lo + c as f64 * step, lo + (c + 1) as f64 * step);
            (
                crate::stats::mean(b),
                crate::stats::rms(b),
                crate::stats::std_dev(b),
            )
        })
        .collect()
}

/// Allocation-free flattening of [`low_band_chunk_stats`]: appends
/// `(mean, rms, std_dev)` per chunk, in chunk order, to `out`. Bit-identical
/// to the tupled helper; used on the streaming finalize path where the
/// feature vector is assembled into a reused scratch buffer.
pub fn push_low_band_chunk_stats(spectrum: &Spectrum, chunks: usize, out: &mut Vec<f64>) {
    assert!(chunks >= 1, "need at least one chunk");
    let (lo, hi) = LOW_BAND_HZ;
    let step = (hi - lo) / chunks as f64;
    for c in 0..chunks {
        let b = spectrum.band(lo + c as f64 * step, lo + (c + 1) as f64 * step);
        out.push(crate::stats::mean(b));
        out.push(crate::stats::rms(b));
        out.push(crate::stats::std_dev(b));
    }
}

/// Welch power-spectral-density estimate: mean periodogram over Hann-windowed
/// half-overlapping segments of length `segment`.
///
/// # Errors
///
/// Returns [`DspError::InvalidLength`] if the signal is shorter than one
/// segment, and [`DspError::InvalidParameter`] for a zero segment length.
pub fn welch_psd(x: &[f64], segment: usize, sample_rate: f64) -> Result<Spectrum, DspError> {
    if segment == 0 {
        return Err(DspError::param("segment", "must be at least 1"));
    }
    if x.len() < segment {
        return Err(DspError::length(
            "x",
            format!("signal ({}) shorter than segment ({segment})", x.len()),
        ));
    }
    let frames = stft::frames(x, segment, segment / 2);
    let w = Window::Hann.coefficients(segment);
    let wnorm: f64 = w.iter().map(|v| v * v).sum();
    // One windowing processor reused across segments: the plan, window and
    // working buffers are allocated once for the whole estimate.
    let mut processor = stft::StftProcessor::new(segment, Window::Hann);
    let n_fft = processor.n_fft();
    let mut acc = vec![0.0; processor.onesided_len()];
    let mut spec = vec![crate::complex::Complex::ZERO; processor.onesided_len()];
    for frame in &frames {
        processor.process_into(frame, &mut spec);
        for (a, z) in acc.iter_mut().zip(spec.iter()) {
            *a += z.norm_sqr();
        }
    }
    let scale = 1.0 / (frames.len() as f64 * wnorm * sample_rate);
    for a in &mut acc {
        *a *= scale;
    }
    Ok(Spectrum {
        magnitudes: acc,
        sample_rate,
        n_fft,
    })
}

/// Log-spaced band energies of a signal — the compact spectral signature fed
/// to the liveness network's input layer (see `headtalk::liveness`).
///
/// Produces `bands` energies covering `[f_lo, f_hi]` with logarithmic band
/// edges, each in log-power (`ln(energy + eps)`).
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] for invalid band counts/edges and
/// [`DspError::InvalidLength`] for an empty signal.
pub fn log_band_energies(
    x: &[f64],
    sample_rate: f64,
    bands: usize,
    f_lo: f64,
    f_hi: f64,
) -> Result<Vec<f64>, DspError> {
    if bands == 0 {
        return Err(DspError::param("bands", "must be at least 1"));
    }
    if f_lo <= 0.0 || f_lo.is_nan() || f_hi <= f_lo || f_hi > sample_rate / 2.0 {
        return Err(DspError::param(
            "f_lo/f_hi",
            format!("band edges must satisfy 0 < f_lo < f_hi <= fs/2, got [{f_lo}, {f_hi}]"),
        ));
    }
    let spec = Spectrum::of(x, sample_rate)?;
    let log_lo = f_lo.ln();
    let log_hi = f_hi.ln();
    let eps = 1e-12;
    Ok((0..bands)
        .map(|b| {
            let lo = (log_lo + (log_hi - log_lo) * b as f64 / bands as f64).exp();
            let hi = (log_lo + (log_hi - log_lo) * (b + 1) as f64 / bands as f64).exp();
            (spec.band_energy(lo, hi) + eps).ln()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::tone;

    const FS: f64 = 48_000.0;

    #[test]
    fn bin_frequency_round_trip() {
        let x = tone(1000.0, FS, 4096, 1.0);
        let s = Spectrum::of(&x, FS).unwrap();
        let k = s.hz_to_bin(1000.0);
        assert!((s.bin_to_hz(k) - 1000.0).abs() < FS / 4096.0);
    }

    #[test]
    fn tone_energy_lands_in_its_band() {
        let x = tone(1000.0, FS, 8192, 1.0);
        let s = Spectrum::of(&x, FS).unwrap();
        assert!(s.band_energy(900.0, 1100.0) > 100.0 * s.band_energy(2000.0, 3000.0));
    }

    #[test]
    fn hlbr_distinguishes_bright_from_dull() {
        // Equal-amplitude components in low and high bands -> HLBR ~ band
        // width effects aside, removing the high tone drops HLBR sharply.
        let mut bright = tone(250.0, FS, 8192, 1.0);
        let high = tone(2000.0, FS, 8192, 1.0);
        for (b, h) in bright.iter_mut().zip(high.iter()) {
            *b += h;
        }
        let dull = tone(250.0, FS, 8192, 1.0);
        let hb = hlbr(&Spectrum::of(&bright, FS).unwrap());
        let hd = hlbr(&Spectrum::of(&dull, FS).unwrap());
        assert!(hb > 5.0 * hd, "bright {hb} vs dull {hd}");
    }

    #[test]
    fn hlbr_of_silence_is_zero() {
        let s = Spectrum::of(&[0.0; 1024], FS).unwrap();
        assert_eq!(hlbr(&s), 0.0);
    }

    #[test]
    fn chunk_stats_have_requested_layout() {
        let x = tone(250.0, FS, 8192, 1.0);
        let s = Spectrum::of(&x, FS).unwrap();
        let stats = low_band_chunk_stats(&s, 20);
        assert_eq!(stats.len(), 20);
        // The 250 Hz tone falls in chunk 10 of [100, 400) split into 20.
        let loudest = stats
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
            .unwrap()
            .0;
        assert_eq!(loudest, 10);
    }

    #[test]
    fn push_chunk_stats_matches_tupled_helper() {
        let x = tone(250.0, FS, 8192, 1.0);
        let s = Spectrum::of(&x, FS).unwrap();
        for chunks in [1usize, 3, 20] {
            let want = low_band_chunk_stats(&s, chunks);
            let mut got = vec![f64::NAN]; // existing prefix must survive
            push_low_band_chunk_stats(&s, chunks, &mut got);
            assert_eq!(got.len(), 1 + 3 * chunks);
            for (c, (m, r, sd)) in want.iter().enumerate() {
                assert_eq!(got[1 + 3 * c].to_bits(), m.to_bits());
                assert_eq!(got[2 + 3 * c].to_bits(), r.to_bits());
                assert_eq!(got[3 + 3 * c].to_bits(), sd.to_bits());
            }
        }
    }

    #[test]
    fn welch_psd_peaks_at_tone() {
        let x = tone(3000.0, FS, 48_000, 1.0);
        let psd = welch_psd(&x, 2048, FS).unwrap();
        let peak = crate::peak::argmax(&psd.magnitudes).unwrap();
        assert!((psd.bin_to_hz(peak) - 3000.0).abs() < 50.0);
    }

    #[test]
    fn welch_rejects_short_signal() {
        assert!(welch_psd(&[1.0; 10], 64, FS).is_err());
        assert!(welch_psd(&[1.0; 10], 0, FS).is_err());
    }

    #[test]
    fn normalized_peak_is_one() {
        let x = tone(500.0, FS, 2048, 3.0);
        let s = Spectrum::of(&x, FS).unwrap();
        let n = s.normalized();
        assert!((crate::stats::max(&n) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_band_energies_shape_and_order() {
        let x = tone(1000.0, 16_000.0, 8000, 1.0);
        let e = log_band_energies(&x, 16_000.0, 32, 50.0, 8000.0).unwrap();
        assert_eq!(e.len(), 32);
        assert!(e.iter().all(|v| v.is_finite()));
        // The band containing 1 kHz dominates.
        let imax = crate::peak::argmax(&e).unwrap();
        let lo = (50f64.ln() + (8000f64 / 50.0).ln() * imax as f64 / 32.0).exp();
        let hi = (50f64.ln() + (8000f64 / 50.0).ln() * (imax + 1) as f64 / 32.0).exp();
        assert!(lo <= 1000.0 && 1000.0 <= hi, "peak band [{lo}, {hi}]");
    }

    #[test]
    fn log_band_energies_validates_edges() {
        let x = vec![0.1; 100];
        assert!(log_band_energies(&x, 16_000.0, 0, 50.0, 8000.0).is_err());
        assert!(log_band_energies(&x, 16_000.0, 8, 0.0, 8000.0).is_err());
        assert!(log_band_energies(&x, 16_000.0, 8, 100.0, 9000.0).is_err());
    }

    #[test]
    fn empty_signal_is_rejected() {
        assert!(Spectrum::of(&[], FS).is_err());
        assert!(Spectrum::of(&[1.0], 0.0).is_err());
    }

    #[test]
    fn band_ending_at_nyquist_includes_nyquist_bin() {
        // An alternating ±1 signal has all its energy in the Nyquist bin,
        // so any band that claims to reach sr/2 must see it.
        let x: Vec<f64> = (0..1024)
            .map(|k| if k % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let s = Spectrum::of(&x, FS).unwrap();
        let nyq = FS / 2.0;
        // Ending exactly at Nyquist: covers the full one-sided spectrum.
        assert_eq!(s.band(0.0, nyq).len(), s.magnitudes.len());
        assert!(s.band_energy(nyq * 0.9, nyq) > 1e5);
        // Ending above Nyquist behaves the same (no bins exist up there).
        assert_eq!(s.band(0.0, FS).len(), s.magnitudes.len());
        assert!(s.band_energy(nyq * 0.9, nyq * 1.5) > 1e5);
        // A band straddling Nyquist from just below it still ends at (and
        // includes) the top bin.
        let straddle = s.band(nyq - 3.0 * FS / 1024.0, nyq + 100.0);
        assert_eq!(straddle.last(), s.magnitudes.last());
    }

    #[test]
    fn band_below_nyquist_keeps_exclusive_upper_edge() {
        let x = tone(1000.0, FS, 4096, 1.0);
        let s = Spectrum::of(&x, FS).unwrap();
        // [lo, hi) below Nyquist: the bin at hi itself is excluded.
        let lo = s.hz_to_bin(500.0);
        let hi = s.hz_to_bin(2000.0);
        assert_eq!(s.band(500.0, 2000.0).len(), hi - lo);
    }
}
