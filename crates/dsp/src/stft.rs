//! Framing and the short-time Fourier transform.

use crate::complex::Complex;
use crate::fft;
use crate::window::Window;

/// Splits `x` into frames of `size` samples advancing by `hop` samples.
/// The final partial frame is zero-padded. Returns no frames for an empty
/// signal.
///
/// # Panics
///
/// Panics if `size == 0` or `hop == 0`.
pub fn frames(x: &[f64], size: usize, hop: usize) -> Vec<Vec<f64>> {
    assert!(size > 0, "frame size must be positive");
    assert!(hop > 0, "hop must be positive");
    if x.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut start = 0;
    while start < x.len() {
        let end = (start + size).min(x.len());
        let mut frame = x[start..end].to_vec();
        frame.resize(size, 0.0);
        out.push(frame);
        start += hop;
    }
    out
}

/// A streaming single-frame STFT engine: window coefficients, the FFT plan
/// and all working buffers are allocated once at construction, so
/// [`process_into`](StftProcessor::process_into) is allocation-free — one
/// processor serves every frame of a capture (and the next capture of the
/// same geometry).
#[derive(Debug, Clone)]
pub struct StftProcessor {
    plan: std::sync::Arc<fft::RealFftPlan>,
    window: Vec<f64>,
    buf: Vec<f64>,
    scratch: fft::RealFftScratch,
}

impl StftProcessor {
    /// Builds a processor for frames of `frame_size` samples, zero-padded
    /// to `next_pow2(frame_size)` and weighted by `window`.
    ///
    /// # Panics
    ///
    /// Panics if `frame_size == 0`.
    pub fn new(frame_size: usize, window: Window) -> StftProcessor {
        StftProcessor::with_n_fft(frame_size, frame_size, window)
    }

    /// Builds a processor whose frames are zero-padded to at least `n_fft`
    /// samples (rounded up to a power of two by the plan cache) instead of
    /// the default `next_pow2(frame_size)`. Streaming correlation wants the
    /// extra pad margin: circular GCC lags up to `±max_lag` only stay
    /// alias-free when `n_fft ≥ frame_size + max_lag + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `frame_size == 0` or `n_fft < frame_size`.
    pub fn with_n_fft(frame_size: usize, n_fft: usize, window: Window) -> StftProcessor {
        assert!(frame_size > 0, "frame size must be positive");
        assert!(
            n_fft >= frame_size,
            "n_fft {n_fft} must cover the frame size {frame_size}"
        );
        StftProcessor {
            plan: fft::rfft_plan(n_fft),
            window: window.coefficients(frame_size),
            buf: vec![0.0; frame_size],
            scratch: fft::RealFftScratch::new(),
        }
    }

    /// The frame size the window was built for.
    pub fn frame_size(&self) -> usize {
        self.window.len()
    }

    /// The FFT length frames are zero-padded to.
    pub fn n_fft(&self) -> usize {
        self.plan.len()
    }

    /// Number of one-sided output bins, `n_fft/2 + 1` — the required
    /// length of the `out` buffer for
    /// [`process_into`](StftProcessor::process_into).
    pub fn onesided_len(&self) -> usize {
        self.plan.onesided_len()
    }

    /// Windows one frame and writes its one-sided spectrum into `out`.
    /// Frames shorter than [`frame_size`](StftProcessor::frame_size) are
    /// zero-padded. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `frame.len() > self.frame_size()` or
    /// `out.len() != self.onesided_len()`.
    pub fn process_into(&mut self, frame: &[f64], out: &mut [Complex]) {
        assert!(
            frame.len() <= self.frame_size(),
            "frame length {} exceeds the processor's frame size {}",
            frame.len(),
            self.frame_size()
        );
        for ((b, w), s) in self.buf.iter_mut().zip(&self.window).zip(frame) {
            *b = s * w;
        }
        self.buf[frame.len()..].fill(0.0);
        self.plan.forward_into(&self.buf, out, &mut self.scratch);
    }
}

/// A complex STFT matrix: `bins[t][k]` is frequency bin `k` of frame `t`
/// (one-sided, `n_fft/2 + 1` bins).
#[derive(Debug, Clone, PartialEq)]
pub struct Stft {
    /// One-sided complex bins per frame.
    pub bins: Vec<Vec<Complex>>,
    /// FFT length (frames are zero-padded to this power of two).
    pub n_fft: usize,
    /// Hop size in samples.
    pub hop: usize,
    /// Sample rate in Hz.
    pub sample_rate: f64,
}

impl Stft {
    /// Computes the STFT of `x` with the given window, frame size and hop.
    ///
    /// # Panics
    ///
    /// Panics if `frame_size == 0` or `hop == 0`.
    pub fn compute(
        x: &[f64],
        sample_rate: f64,
        frame_size: usize,
        hop: usize,
        window: Window,
    ) -> Stft {
        // One processor (plan + window + scratch) shared by every frame.
        let mut processor = StftProcessor::new(frame_size, window);
        let bins = frames(x, frame_size, hop)
            .into_iter()
            .map(|frame| {
                let mut row = vec![Complex::ZERO; processor.onesided_len()];
                processor.process_into(&frame, &mut row);
                row
            })
            .collect();
        Stft {
            bins,
            n_fft: processor.n_fft(),
            hop,
            sample_rate,
        }
    }

    /// Magnitude spectrogram: `|bins[t][k]|`.
    pub fn magnitudes(&self) -> Vec<Vec<f64>> {
        self.bins
            .iter()
            .map(|row| row.iter().map(|z| z.abs()).collect())
            .collect()
    }

    /// Mean magnitude over time per frequency bin (a long-term average
    /// spectrum).
    pub fn mean_magnitude(&self) -> Vec<f64> {
        if self.bins.is_empty() {
            return Vec::new();
        }
        let k = self.bins[0].len();
        let mut acc = vec![0.0; k];
        for row in &self.bins {
            for (a, z) in acc.iter_mut().zip(row.iter()) {
                *a += z.abs();
            }
        }
        let n = self.bins.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }

    /// Frequency (Hz) of bin `k`.
    pub fn bin_to_hz(&self, k: usize) -> f64 {
        k as f64 * self.sample_rate / self.n_fft as f64
    }

    /// Number of frames.
    pub fn n_frames(&self) -> usize {
        self.bins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::tone;

    #[test]
    fn frame_count_and_padding() {
        let x = vec![1.0; 10];
        let f = frames(&x, 4, 2);
        assert_eq!(f.len(), 5); // starts at 0,2,4,6,8
        assert_eq!(f[4], vec![1.0, 1.0, 0.0, 0.0]);
        assert!(frames(&[], 4, 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "hop")]
    fn zero_hop_panics() {
        frames(&[1.0], 4, 0);
    }

    #[test]
    fn stft_tone_concentrates_in_one_bin() {
        let sr = 16_000.0;
        let x = tone(2000.0, sr, 16_000, 1.0);
        let s = Stft::compute(&x, sr, 512, 256, Window::Hann);
        let avg = s.mean_magnitude();
        let peak = crate::peak::argmax(&avg).unwrap();
        assert!((s.bin_to_hz(peak) - 2000.0).abs() < sr / 512.0);
    }

    #[test]
    fn stft_dimensions() {
        let x = vec![0.5; 1000];
        let s = Stft::compute(&x, 8000.0, 256, 128, Window::Hamming);
        assert_eq!(s.n_fft, 256);
        assert_eq!(s.bins[0].len(), 129);
        assert_eq!(s.n_frames(), frames(&x, 256, 128).len());
        assert_eq!(s.magnitudes().len(), s.n_frames());
    }

    #[test]
    fn empty_signal_yields_no_frames() {
        let s = Stft::compute(&[], 8000.0, 256, 128, Window::Hann);
        assert_eq!(s.n_frames(), 0);
        assert!(s.mean_magnitude().is_empty());
    }

    #[test]
    fn reused_processor_matches_batch_compute_bitwise() {
        let sr = 16_000.0;
        let x = tone(1200.0, sr, 2000, 0.8);
        let s = Stft::compute(&x, sr, 512, 256, Window::Hann);
        let mut p = StftProcessor::new(512, Window::Hann);
        assert_eq!(p.n_fft(), 512);
        assert_eq!(p.onesided_len(), 257);
        let mut out = vec![Complex::ZERO; p.onesided_len()];
        for (t, frame) in frames(&x, 512, 256).iter().enumerate() {
            p.process_into(frame, &mut out);
            assert_eq!(out, s.bins[t], "frame {t} diverged on buffer reuse");
        }
    }

    #[test]
    fn with_n_fft_adds_pad_margin_without_changing_covered_bins() {
        // A 960-sample frame padded to 1024 (the streaming geometry: pad
        // margin ≥ max_lag keeps circular GCC lags alias-free).
        let mut p = StftProcessor::with_n_fft(960, 1024, Window::Hann);
        assert_eq!(p.frame_size(), 960);
        assert_eq!(p.n_fft(), 1024);
        // Identical to hand-padding the windowed frame through the plan.
        let x = tone(997.0, 48_000.0, 960, 0.7);
        let mut out = vec![Complex::ZERO; p.onesided_len()];
        p.process_into(&x, &mut out);
        let coeffs = Window::Hann.coefficients(960);
        let windowed: Vec<f64> = x.iter().zip(&coeffs).map(|(s, w)| s * w).collect();
        let expect = crate::fft::rfft_plan(1024).forward(&windowed);
        assert_eq!(out, expect);
    }

    #[test]
    #[should_panic(expected = "must cover")]
    fn with_n_fft_rejects_short_fft() {
        StftProcessor::with_n_fft(960, 512, Window::Hann);
    }

    #[test]
    fn processor_zero_pads_short_frames() {
        let mut p = StftProcessor::new(64, Window::Rect);
        let mut out = vec![Complex::ZERO; p.onesided_len()];
        // A half-filled frame equals a fully zero-padded one.
        p.process_into(&[1.0; 32], &mut out);
        let mut padded = [0.0; 64];
        padded[..32].fill(1.0);
        let mut expect = vec![Complex::ZERO; p.onesided_len()];
        p.process_into(&padded, &mut expect);
        assert_eq!(out, expect);
    }
}
