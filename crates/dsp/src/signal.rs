//! Basic time-domain signal utilities: normalization, mixing, delays, gain.

/// Root-mean-square amplitude of `x` (0 for an empty slice).
///
/// # Example
///
/// ```
/// let x = [3.0, -3.0, 3.0, -3.0];
/// assert!((ht_dsp::signal::rms(&x) - 3.0).abs() < 1e-12);
/// ```
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

/// Peak absolute amplitude of `x` (0 for an empty slice).
pub fn peak(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// Scales `x` in place so its peak absolute amplitude is `target` (the
/// paper normalizes utterances to ±1). A silent signal is left untouched.
pub fn normalize_peak(x: &mut [f64], target: f64) {
    let p = peak(x);
    if p > 0.0 {
        let g = target / p;
        for v in x.iter_mut() {
            *v *= g;
        }
    }
}

/// Scales `x` in place to zero mean and unit variance — the wav2vec2 input
/// contract used by the liveness detector (§III-A). A constant signal
/// becomes all zeros.
pub fn normalize_zscore(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let n = x.len() as f64;
    let mean = x.iter().sum::<f64>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let sd = var.sqrt();
    if sd > 0.0 {
        for v in x.iter_mut() {
            *v = (*v - mean) / sd;
        }
    } else {
        for v in x.iter_mut() {
            *v = 0.0;
        }
    }
}

/// Converts a decibel gain to a linear amplitude factor.
///
/// ```
/// assert!((ht_dsp::signal::db_to_amplitude(20.0) - 10.0).abs() < 1e-12);
/// ```
#[inline]
pub fn db_to_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Converts a linear amplitude factor to decibels. Returns `-inf` for 0.
#[inline]
pub fn amplitude_to_db(a: f64) -> f64 {
    20.0 * a.log10()
}

/// Adds `src` into `dst` sample by sample, starting at `offset` in `dst`.
/// Samples that would fall past the end of `dst` are dropped.
pub fn mix_into(dst: &mut [f64], src: &[f64], offset: usize, gain: f64) {
    if offset >= dst.len() {
        return;
    }
    for (d, s) in dst[offset..].iter_mut().zip(src.iter()) {
        *d += s * gain;
    }
}

/// Delays `x` by a fractional number of samples using windowed-sinc
/// interpolation, returning a signal of the same length.
///
/// Sub-sample delays matter here: microphone-pair time differences in the
/// simulated arrays are fractions of a 48 kHz sample (a 6.5 cm aperture is
/// only ~9 samples across), so rounding to integer delays would destroy the
/// TDoA patterns that GCC-PHAT measures.
pub fn fractional_delay(x: &[f64], delay: f64, half_width: usize) -> Vec<f64> {
    assert!(delay >= 0.0, "delay must be non-negative");
    let int_part = delay.floor() as usize;
    let frac = delay - delay.floor();
    let n = x.len();
    let mut out = vec![0.0; n];
    if frac < 1e-9 {
        // Pure integer delay.
        out[int_part..n].copy_from_slice(&x[..n - int_part]);
        return out;
    }
    let hw = half_width.max(1) as isize;
    for (i, o) in out.iter_mut().enumerate() {
        let center = i as f64 - delay;
        let c0 = center.floor() as isize;
        let mut acc = 0.0;
        for k in (c0 - hw + 1)..=(c0 + hw) {
            if k < 0 || k >= n as isize {
                continue;
            }
            let t = center - k as f64;
            let sinc = if t.abs() < 1e-12 {
                1.0
            } else {
                (std::f64::consts::PI * t).sin() / (std::f64::consts::PI * t)
            };
            // Hann taper over the interpolation kernel.
            let w = 0.5 + 0.5 * (std::f64::consts::PI * t / hw as f64).cos();
            acc += x[k as usize] * sinc * w;
        }
        *o = acc;
    }
    out
}

/// Generates `n` samples of a pure sine tone.
pub fn tone(freq: f64, sample_rate: f64, n: usize, amplitude: f64) -> Vec<f64> {
    (0..n)
        .map(|k| amplitude * (2.0 * std::f64::consts::PI * freq * k as f64 / sample_rate).sin())
        .collect()
}

/// Signal-to-noise ratio in dB given a clean signal and the noise that was
/// added to it. Returns `+inf` when the noise is silent.
pub fn snr_db(signal: &[f64], noise: &[f64]) -> f64 {
    let ns = rms(noise);
    if ns == 0.0 {
        return f64::INFINITY;
    }
    amplitude_to_db(rms(signal) / ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rms_and_peak_basics() {
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(peak(&[]), 0.0);
        assert!((rms(&[1.0, -1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(peak(&[0.5, -2.0, 1.0]), 2.0);
    }

    #[test]
    fn normalize_peak_hits_target() {
        let mut x = vec![0.1, -0.4, 0.2];
        normalize_peak(&mut x, 1.0);
        assert!((peak(&x) - 1.0).abs() < 1e-12);
        // Silence stays silent instead of dividing by zero.
        let mut z = vec![0.0; 4];
        normalize_peak(&mut z, 1.0);
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zscore_gives_zero_mean_unit_variance() {
        let mut x: Vec<f64> = (0..100).map(|k| (k as f64 * 0.37).sin() + 3.0).collect();
        normalize_zscore(&mut x);
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        let var = x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zscore_of_constant_is_zero() {
        let mut x = vec![5.0; 8];
        normalize_zscore(&mut x);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn db_round_trip() {
        for db in [-40.0, -6.0, 0.0, 12.0] {
            assert!((amplitude_to_db(db_to_amplitude(db)) - db).abs() < 1e-9);
        }
    }

    #[test]
    fn mix_into_respects_offset_and_bounds() {
        let mut dst = vec![0.0; 5];
        mix_into(&mut dst, &[1.0, 1.0, 1.0, 1.0], 3, 2.0);
        assert_eq!(dst, vec![0.0, 0.0, 0.0, 2.0, 2.0]);
        // Offset past the end is a no-op.
        mix_into(&mut dst, &[9.0], 10, 1.0);
        assert_eq!(dst.len(), 5);
    }

    #[test]
    fn integer_fractional_delay_shifts_exactly() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = fractional_delay(&x, 2.0, 8);
        assert_eq!(y, vec![0.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn fractional_delay_shifts_tone_phase() {
        let sr = 48_000.0;
        let f = 1000.0;
        let x = tone(f, sr, 4096, 1.0);
        let d = 2.5;
        let y = fractional_delay(&x, d, 16);
        // Compare against an analytically delayed tone in the steady-state
        // middle of the buffer.
        let expected: Vec<f64> = (0..4096)
            .map(|k| (2.0 * std::f64::consts::PI * f * (k as f64 - d) / sr).sin())
            .collect();
        let err: f64 = (500..3500)
            .map(|i| (y[i] - expected[i]).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-3, "max steady-state error {err}");
    }

    #[test]
    fn snr_db_matches_definition() {
        let s = vec![1.0; 100];
        let n = vec![0.1; 100];
        assert!((snr_db(&s, &n) - 20.0).abs() < 1e-9);
        assert_eq!(snr_db(&s, &[0.0; 10]), f64::INFINITY);
    }
}
