//! Linear convolution, both direct and FFT-based.
//!
//! The room simulator convolves utterances with per-band room impulse
//! responses (Eq. 1 of the paper: `y(t) = h(t) * x(t)`), which for second-long
//! signals at 48 kHz requires the FFT path.

use crate::complex::Complex;
use crate::fft;

/// Full linear convolution of `x` and `h` (output length
/// `x.len() + h.len() - 1`), computed directly. Efficient for short kernels.
pub fn convolve_direct(x: &[f64], h: &[f64]) -> Vec<f64> {
    if x.is_empty() || h.is_empty() {
        return Vec::new();
    }
    let n = x.len() + h.len() - 1;
    let mut y = vec![0.0; n];
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        for (j, &hj) in h.iter().enumerate() {
            y[i + j] += xi * hj;
        }
    }
    y
}

/// Full linear convolution via FFT (output length `x.len() + h.len() - 1`).
///
/// Both inputs are real, so this runs on the one-sided real-FFT plan: two
/// half-size forward transforms, a one-sided pointwise product (the product
/// of two conjugate-symmetric spectra is conjugate-symmetric), and one real
/// inverse — about half the work of the full complex path.
pub fn convolve_fft(x: &[f64], h: &[f64]) -> Vec<f64> {
    if x.is_empty() || h.is_empty() {
        return Vec::new();
    }
    let out_len = x.len() + h.len() - 1;
    let plan = fft::rfft_plan(out_len);
    let xf = plan.forward(x);
    let hf = plan.forward(h);
    let prod: Vec<Complex> = xf.iter().zip(hf.iter()).map(|(a, b)| *a * *b).collect();
    let mut y = plan.inverse(&prod);
    y.truncate(out_len);
    y
}

/// Picks the faster of direct and FFT convolution based on sizes.
pub fn convolve(x: &[f64], h: &[f64]) -> Vec<f64> {
    // Direct is O(N·K); FFT is O(M log M) with M ≈ N+K. Crossover around
    // K ≈ 64 for realistic N.
    if x.len().min(h.len()) <= 64 {
        convolve_direct(x, h)
    } else {
        convolve_fft(x, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn direct_matches_hand_computation() {
        let y = convolve_direct(&[1.0, 2.0, 3.0], &[1.0, -1.0]);
        assert_eq!(y, vec![1.0, 1.0, 1.0, -3.0]);
    }

    #[test]
    fn identity_kernel_is_pass_through() {
        let x = vec![0.5, -1.5, 2.0];
        assert_eq!(convolve_direct(&x, &[1.0]), x);
    }

    #[test]
    fn delayed_impulse_shifts() {
        let x = vec![1.0, 2.0, 3.0];
        let y = convolve_direct(&x, &[0.0, 0.0, 1.0]);
        assert_eq!(y, vec![0.0, 0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn fft_matches_direct() {
        let x: Vec<f64> = (0..257)
            .map(|k| ((k * 37 % 101) as f64 - 50.0) / 50.0)
            .collect();
        let h: Vec<f64> = (0..93)
            .map(|k| ((k * 13 % 29) as f64 - 14.0) / 14.0)
            .collect();
        assert_close(&convolve_fft(&x, &h), &convolve_direct(&x, &h), 1e-9);
    }

    #[test]
    fn dispatcher_matches_both_paths() {
        let x: Vec<f64> = (0..200).map(|k| (k as f64 * 0.1).sin()).collect();
        let short = vec![0.25; 4];
        let long: Vec<f64> = (0..100).map(|k| (k as f64 * 0.2).cos()).collect();
        assert_close(&convolve(&x, &short), &convolve_direct(&x, &short), 1e-9);
        assert_close(&convolve(&x, &long), &convolve_direct(&x, &long), 1e-9);
    }

    #[test]
    fn empty_inputs_give_empty_output() {
        assert!(convolve(&[], &[1.0]).is_empty());
        assert!(convolve(&[1.0], &[]).is_empty());
    }

    #[test]
    fn convolution_is_commutative() {
        let a = vec![1.0, 0.5, -0.25, 0.125];
        let b = vec![2.0, -1.0, 0.5];
        assert_close(&convolve_direct(&a, &b), &convolve_direct(&b, &a), 1e-12);
    }
}
