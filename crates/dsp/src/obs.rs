//! Byte-stable JSON export of [`ht_obs`] registry snapshots and
//! [`ht_par`] pool statistics.
//!
//! `ht-obs` is a `std`-only leaf crate (every layer of the workspace links
//! it, so it cannot depend on anything), which is why its serialization
//! lives here, next to the [`crate::json`] machinery it uses. Snapshots
//! iterate name-sorted maps and [`crate::json::Json`] objects preserve
//! insertion order, so serializing the same snapshot twice produces
//! byte-identical text — the same contract experiment reports rely on.

use crate::json::{Json, ToJson};
use ht_obs::{HistSnapshot, RegistrySnapshot};
use ht_par::{PoolStats, WorkerStats};

impl ToJson for HistSnapshot {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("count", self.count)
            .set("mean_ns", self.mean_ns)
            .set("p50_ns", self.p50_ns)
            .set("p95_ns", self.p95_ns)
            .set("p99_ns", self.p99_ns)
            .set("min_ns", self.min_ns)
            .set("max_ns", self.max_ns)
    }
}

impl ToJson for RegistrySnapshot {
    fn to_json(&self) -> Json {
        let mut spans = Json::obj();
        for (name, h) in &self.spans {
            spans = spans.set(name, h.to_json());
        }
        let mut counters = Json::obj();
        for (name, v) in &self.counters {
            counters = counters.set(name, *v);
        }
        Json::obj().set("spans", spans).set("counters", counters)
    }
}

impl ToJson for WorkerStats {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("tasks", self.tasks)
            .set("steals", self.steals)
            .set("queue_hwm", self.queue_hwm)
    }
}

impl ToJson for PoolStats {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("threads", self.threads)
            .set("jobs", self.jobs)
            .set("total_tasks", self.total_tasks())
            .set("total_steals", self.total_steals())
            .set("per_worker", self.per_worker.clone().to_json())
    }
}

/// Serializes a registry snapshot as a pretty-printed observability report,
/// ready to drop next to an experiment's result JSON.
pub fn obs_report(snapshot: &RegistrySnapshot) -> String {
    snapshot.to_json().pretty() + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> RegistrySnapshot {
        RegistrySnapshot {
            counters: vec![("par.tasks".into(), 42)],
            spans: vec![(
                "wake.denoise".into(),
                HistSnapshot {
                    count: 3,
                    mean_ns: 1500.0,
                    p50_ns: 1400,
                    p95_ns: 2000,
                    p99_ns: 2000,
                    min_ns: 1200,
                    max_ns: 2000,
                },
            )],
        }
    }

    #[test]
    fn report_serialization_is_byte_stable() {
        let snap = sample_snapshot();
        assert_eq!(obs_report(&snap), obs_report(&snap.clone()));
        let v = snap.to_json();
        assert_eq!(
            v.get("spans")
                .and_then(|s| s.get("wake.denoise"))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("par.tasks"))
                .and_then(Json::as_u64),
            Some(42)
        );
    }

    #[test]
    fn report_parses_back_as_json() {
        let text = obs_report(&sample_snapshot());
        let parsed = Json::parse(&text).expect("valid JSON");
        assert!(parsed.get("spans").is_some());
        assert!(parsed.get("counters").is_some());
    }

    #[test]
    fn pool_stats_serialize_with_totals() {
        let stats = PoolStats {
            threads: 2,
            jobs: 5,
            per_worker: vec![
                WorkerStats {
                    tasks: 30,
                    steals: 1,
                    queue_hwm: 16,
                },
                WorkerStats {
                    tasks: 10,
                    steals: 2,
                    queue_hwm: 8,
                },
            ],
        };
        let v = stats.to_json();
        assert_eq!(v.get("total_tasks").and_then(Json::as_u64), Some(40));
        assert_eq!(v.get("total_steals").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("per_worker").unwrap().as_array().unwrap().len(), 2);
    }
}
