//! Random-signal helpers shared across the workspace: Gaussian sampling
//! (Box–Muller, so we avoid a `rand_distr` dependency) and white-noise
//! buffers.
//!
//! Every generator takes an explicit [`rand::Rng`] so callers control
//! seeding; all experiments in the reproduction are deterministic given a
//! seed.

use rand::Rng;

/// Draws one standard-normal sample via the Box–Muller transform.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let z = ht_dsp::rng::gaussian(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * gaussian(rng)
}

/// A buffer of `n` i.i.d. standard-normal samples (white Gaussian noise with
/// unit RMS in expectation).
pub fn white_noise<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| gaussian(rng)).collect()
}

/// A buffer of `n` uniform samples in `[-1, 1)`.
pub fn uniform_noise<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_standard() {
        let mut rng = StdRng::seed_from_u64(42);
        let xs = white_noise(&mut rng, 100_000);
        let mean = crate::stats::mean(&xs);
        let var = crate::stats::variance(&xs);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn gaussian_tail_mass_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs = white_noise(&mut rng, 50_000);
        let beyond_2sd = xs.iter().filter(|v| v.abs() > 2.0).count() as f64 / xs.len() as f64;
        // True mass is ~4.55%.
        assert!((beyond_2sd - 0.0455).abs() < 0.01, "tail {beyond_2sd}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..50_000).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        assert!((crate::stats::mean(&xs) - 5.0).abs() < 0.05);
        assert!((crate::stats::std_dev(&xs) - 2.0).abs() < 0.05);
    }

    #[test]
    fn uniform_noise_is_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = uniform_noise(&mut rng, 10_000);
        assert!(xs.iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = white_noise(&mut StdRng::seed_from_u64(123), 64);
        let b = white_noise(&mut StdRng::seed_from_u64(123), 64);
        assert_eq!(a, b);
    }
}
