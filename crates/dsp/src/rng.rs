//! Deterministic pseudo-random number generation for the whole workspace.
//!
//! The reproduction is hermetic: no external crates, no OS entropy. This
//! module provides the workspace's only randomness source — a seedable
//! [`Xoshiro256pp`] generator (xoshiro256++ by Blackman & Vigna, seeded
//! through [`SplitMix64`] as the authors recommend) behind a small [`Rng`]
//! trait, plus the Gaussian/noise helpers built on top of it.
//!
//! Every generator takes an explicit [`Rng`] so callers control seeding;
//! all experiments in the reproduction are deterministic given a seed, and
//! the raw output streams are pinned by known-answer tests so a toolchain
//! or refactoring change that silently alters the streams fails CI.
//!
//! # Example
//!
//! ```
//! use ht_dsp::rng::{Rng, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let z = ht_dsp::rng::gaussian(&mut rng);
//! assert!(z.is_finite());
//! let k = rng.gen_range(0..10usize);
//! assert!(k < 10);
//! ```

/// 2^-53, the spacing of the uniform doubles produced by [`Rng::next_f64`].
const F64_SCALE: f64 = 1.0 / (1u64 << 53) as f64;

/// A source of uniformly distributed `u64`s plus the derived sampling
/// helpers the workspace uses (`gen`, `gen_range`, `gen_bool`).
///
/// Implementors only provide [`Rng::next_u64`]; everything else is derived.
pub trait Rng {
    /// The next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * F64_SCALE
    }

    /// A uniformly distributed value of type `T` (see [`FromRng`]).
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform sample from `range` (half-open integer or float range).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a `u64` seed.
///
/// Distinct seeds give independent-looking streams; the same seed always
/// gives the same stream (the determinism contract every experiment relies
/// on).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`Rng`].
pub trait FromRng: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: Rng>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for f64 {
    fn from_rng<R: Rng>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl FromRng for f32 {
    fn from_rng<R: Rng>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Half-open ranges an [`Rng`] can sample from via [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased uniform integer in `[0, bound)` by rejection sampling
/// (multiply-shift would bias the extreme tail for huge bounds).
fn uniform_below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Largest multiple of `bound` that fits in u64; values at or above it
    // would wrap unevenly, so they are rejected (expected < 2 draws).
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "gen_range: empty range");
        a + (b - a) * rng.next_f64()
    }
}

/// In-place shuffling and uniform element choice on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// Fisher–Yates shuffles the slice in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
    /// A uniformly chosen element, or `None` for an empty slice.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}

/// SplitMix64 (Steele, Lea & Flood; Vigna's reference implementation).
///
/// A tiny, fast generator with a 64-bit state whose every seed gives a
/// full-period stream. Used directly for seed-derivation (splitting one
/// `u64` seed into many independent sub-seeds) and to initialize
/// [`Xoshiro256pp`] state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64::new(seed)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna) — the workspace's general-purpose
/// generator: 256-bit state, period 2^256 − 1, passes BigCrush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256pp {
    /// Expands `seed` into the 256-bit state with SplitMix64, per the
    /// xoshiro authors' recommendation (an all-zero state is unreachable).
    fn seed_from_u64(seed: u64) -> Xoshiro256pp {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

/// The workspace's standard deterministic generator.
///
/// Everything seeds this by name so the underlying algorithm can be swapped
/// in one place; it is currently [`Xoshiro256pp`].
pub type StdRng = Xoshiro256pp;

/// Derives an independent sub-seed from a base seed and a stream index.
///
/// Handy for giving each parallel worker / dataset record its own
/// deterministic stream without the streams overlapping.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut sm = SplitMix64::new(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    sm.next_u64()
}

/// Forks a generator for parallel stream `index` of base `seed` — the
/// workspace's **deterministic fork point** for data-parallel work.
///
/// Parallel code must never share one sequential generator between items
/// (the draw order would depend on scheduling); instead, each item `i`
/// gets `split_stream(seed, i)`, making the work's result a pure function
/// of `(seed, i)` and therefore identical for any thread count. The split
/// runs the base seed and the index through two chained SplitMix64 steps
/// (with the golden-ratio increment decorrelating consecutive indices), so
/// neighbouring streams share no structure; the resulting raw streams are
/// pinned by known-answer tests below.
pub fn split_stream(seed: u64, index: u64) -> StdRng {
    let mut outer = SplitMix64::new(seed);
    let base = outer.next_u64();
    let mut inner = SplitMix64::new(base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    StdRng::seed_from_u64(inner.next_u64())
}

/// Draws one standard-normal sample via the Box–Muller transform.
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.next_f64();
    let u2: f64 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal sample with the given mean and standard deviation.
pub fn normal<R: Rng>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * gaussian(rng)
}

/// A buffer of `n` i.i.d. standard-normal samples (white Gaussian noise with
/// unit RMS in expectation).
pub fn white_noise<R: Rng>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| gaussian(rng)).collect()
}

/// A buffer of `n` uniform samples in `[-1, 1)`.
pub fn uniform_noise<R: Rng>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors computed from the authors' C implementations
    // (SplitMix64: Vigna's splitmix64.c; xoshiro256++: xoshiro256plusplus.c
    // seeded via splitmix64).

    #[test]
    fn splitmix64_known_answer_seed_zero() {
        let mut rng = SplitMix64::new(0);
        let got: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F,
                0xF88B_B8A8_724C_81EC,
                0x1B39_896A_51A8_749B,
            ]
        );
    }

    #[test]
    fn splitmix64_known_answer_published_seed() {
        // The widely circulated test vector for seed 1234567.
        let mut rng = SplitMix64::new(1_234_567);
        let got: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6_457_827_717_110_365_317,
                3_203_168_211_198_807_973,
                9_817_491_932_198_370_423,
                4_593_380_528_125_082_431,
                16_408_922_859_458_223_821,
            ]
        );
    }

    #[test]
    fn xoshiro256pp_known_answer_seed_zero() {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let got: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0x5317_5D61_490B_23DF,
                0x61DA_6F3D_C380_D507,
                0x5C0F_DF91_EC9A_7BFC,
                0x02EE_BF8C_3BBE_5E1A,
                0x7ECA_04EB_AF4A_5EEA,
            ]
        );
    }

    #[test]
    fn xoshiro256pp_known_answer_seed_42() {
        let mut rng = StdRng::seed_from_u64(42);
        let got: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                15_021_278_609_987_233_951,
                5_881_210_131_331_364_753,
                18_149_643_915_985_481_100,
                12_933_668_939_759_105_464,
                14_637_574_242_682_825_331,
            ]
        );
    }

    #[test]
    fn next_f64_is_unit_interval_and_deterministic() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = a.next_f64();
            assert!((0.0..1.0).contains(&x));
            assert_eq!(x, b.next_f64());
        }
    }

    #[test]
    fn gen_range_integers_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let k = rng.gen_range(3..10usize);
            assert!((3..10).contains(&k));
            seen[k - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        // Negative integer ranges work too.
        for _ in 0..100 {
            let v = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_range_float_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(8);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());

        let items = [1, 2, 3, 4];
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[*items.choose(&mut rng).unwrap() - 1] += 1;
        }
        assert!(counts.iter().all(|&c| c > 1600), "counts {counts:?}");
        assert!(Vec::<i32>::new().choose(&mut rng).is_none());
    }

    #[test]
    fn split_stream_known_answers() {
        // Pinned raw outputs: a refactor that silently changes the fork
        // derivation would break byte-stable parallel reports, so it must
        // fail here first.
        let take3 = |seed: u64, index: u64| {
            let mut rng = split_stream(seed, index);
            [rng.next_u64(), rng.next_u64(), rng.next_u64()]
        };
        assert_eq!(
            take3(0, 0),
            [
                0x3ED1_653F_0682_083A,
                0x852C_ECD8_E741_8FF7,
                0x8DEB_058E_BAF6_FFC3,
            ]
        );
        assert_eq!(
            take3(0, 1),
            [
                0xAD73_B4AA_5324_46DF,
                0xF1FB_8290_845A_0320,
                0x7E37_4495_4665_9912,
            ]
        );
        assert_eq!(
            take3(42, 7),
            [
                0x04D1_81B1_F38C_DD6D,
                0x3A0A_EB7D_56CD_90D5,
                0x9DE5_DB02_999D_C68F,
            ]
        );
        assert_eq!(
            take3(0xDEAD_BEEF, 123_456_789),
            [
                0x0CAA_8FFD_91D0_EA63,
                0xF72E_7240_C3A5_07C6,
                0xA1C9_18C5_8C5D_17FB,
            ]
        );
    }

    #[test]
    fn split_stream_is_deterministic_and_distinct() {
        let draw = |seed, index| split_stream(seed, index).next_u64();
        assert_eq!(draw(9, 4), draw(9, 4));
        assert_ne!(draw(9, 4), draw(9, 5));
        assert_ne!(draw(9, 4), draw(10, 4));
        // Consecutive indices stay decorrelated across a wide span.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            assert!(seen.insert(draw(1234, i)), "collision at stream {i}");
        }
    }

    #[test]
    fn derive_seed_separates_streams() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(1, 0));
    }

    #[test]
    fn gaussian_moments_are_standard() {
        let mut rng = StdRng::seed_from_u64(42);
        let xs = white_noise(&mut rng, 100_000);
        let mean = crate::stats::mean(&xs);
        let var = crate::stats::variance(&xs);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn gaussian_tail_mass_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs = white_noise(&mut rng, 50_000);
        let beyond_2sd = xs.iter().filter(|v| v.abs() > 2.0).count() as f64 / xs.len() as f64;
        // True mass is ~4.55%.
        assert!((beyond_2sd - 0.0455).abs() < 0.01, "tail {beyond_2sd}");
    }

    #[test]
    fn gaussian_skew_and_kurtosis_are_normal() {
        let mut rng = StdRng::seed_from_u64(77);
        let xs = white_noise(&mut rng, 100_000);
        assert!(crate::stats::skewness(&xs).abs() < 0.03);
        // stats::kurtosis is the raw fourth standardized moment: 3 for a normal.
        assert!((crate::stats::kurtosis(&xs) - 3.0).abs() < 0.1);
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..50_000).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        assert!((crate::stats::mean(&xs) - 5.0).abs() < 0.05);
        assert!((crate::stats::std_dev(&xs) - 2.0).abs() < 0.05);
    }

    #[test]
    fn uniform_noise_is_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = uniform_noise(&mut rng, 10_000);
        assert!(xs.iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = white_noise(&mut StdRng::seed_from_u64(123), 64);
        let b = white_noise(&mut StdRng::seed_from_u64(123), 64);
        assert_eq!(a, b);
    }
}
