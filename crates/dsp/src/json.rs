//! Minimal, dependency-free JSON for experiment reports and caches.
//!
//! The workspace is hermetic (no external crates), so this module replaces
//! `serde`/`serde_json` for the few places that actually serialize:
//! experiment result JSON under `target/ht_cache/results/` and the feature
//! cache's `.meta.json` sidecars.
//!
//! Design points:
//!
//! * [`Json`] objects preserve insertion order, so serializing the same
//!   value twice produces byte-identical text — experiment reports are
//!   deterministic given a seed, a property the regression tests rely on.
//! * The parser is tolerant on input (accepts trailing commas and any
//!   amount of whitespace) and strict on output (emits canonical JSON).
//! * Integers survive exactly: values that fit `i64`/`u64` are kept as
//!   integers rather than routed through `f64`, so 64-bit seeds round-trip.
//!
//! # Example
//!
//! ```
//! use ht_dsp::json::Json;
//!
//! let v = Json::parse(r#"{"id": "table3", "rows": [1, 2.5, null,]}"#).unwrap();
//! assert_eq!(v.get("id").and_then(Json::as_str), Some("table3"));
//! assert_eq!(v.get("rows").unwrap().as_array().unwrap().len(), 3);
//! ```

use std::fmt;

/// A JSON value with order-preserving objects and exact integers.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `i64` (covers all negative integers emitted).
    I64(i64),
    /// A non-negative integer above `i64::MAX` (e.g. 64-bit seeds).
    U64(u64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is insertion order and is preserved on output.
    Obj(Vec<(String, Json)>),
}

/// A parse or conversion error with a byte offset for parse failures.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input for parse errors, `None` for conversions.
    pub offset: Option<usize>,
}

impl JsonError {
    /// A conversion (non-parse) error.
    pub fn msg(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: None,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "json error at byte {at}: {}", self.message),
            None => write!(f, "json error: {}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// An empty object (builder entry point).
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts `key: value` and returns `self` (builder style). Replaces an
    /// existing key in place so objects never hold duplicates.
    #[must_use]
    pub fn set(mut self, key: &str, value: impl ToJson) -> Json {
        if let Json::Obj(pairs) = &mut self {
            let value = value.to_json();
            if let Some(pair) = pairs.iter_mut().find(|(k, _)| k == key) {
                pair.1 = value;
            } else {
                pairs.push((key.to_string(), value));
            }
        }
        self
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Any numeric variant as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::I64(v) => Some(v as f64),
            Json::U64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Any numeric variant as `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::I64(v) => u64::try_from(v).ok(),
            Json::U64(v) => Some(v),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Any numeric variant as `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::I64(v) => Some(v),
            Json::U64(v) => i64::try_from(v).ok(),
            Json::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact canonical serialization.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization (two-space indent).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, pairs.len(), '{', '}', |out, i| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, depth + 1);
            }),
        }
    }

    /// Parses `text` into a [`Json`] value.
    ///
    /// Tolerant of insignificant whitespace and trailing commas in arrays
    /// and objects; everything else follows RFC 8259.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, at: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

/// Floats print via Rust's shortest-round-trip formatting; non-finite
/// values become `null` (JSON has no NaN/Infinity).
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = v.to_string();
    out.push_str(&s);
    // Keep the float-ness visible so `1.0` does not re-parse as an integer.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: Some(self.at),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.at..].starts_with(token.as_bytes()) {
            self.at += token.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.at += 1; // '['
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.at += 1;
                return Ok(Json::Arr(items));
            }
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {}
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.at += 1; // '{'
        let mut pairs = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.at += 1;
                return Ok(Json::Obj(pairs));
            }
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.at += 1;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {}
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.at += 1; // '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    /// Parses `uXXXX` (after the backslash), handling surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        self.at += 1; // 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            if !self.eat("\\u") {
                return Err(self.err("unpaired surrogate"));
            }
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.at + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.at..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.at = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Conversion back from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reconstructs the value.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the field or shape mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Json, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<bool, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::msg("expected bool"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<f64, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::msg("expected number"))
    }
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            #[allow(clippy::unnecessary_cast)] // `u64 as u64` in one instantiation
            fn to_json(&self) -> Json {
                match i64::try_from(*self) {
                    Ok(v) => Json::I64(v),
                    // Only u64 can exceed i64::MAX among these types.
                    Err(_) => Json::U64(*self as u64),
                }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<$t, JsonError> {
                v.as_i64()
                    .and_then(|x| <$t>::try_from(x).ok())
                    .or_else(|| v.as_u64().and_then(|x| <$t>::try_from(x).ok()))
                    .ok_or_else(|| JsonError::msg(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_json_int!(i64, i32, u64, u32, usize, u8);

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<String, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::msg("expected string"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Vec<T>, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::msg("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Option<T>, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

/// Implements [`ToJson`]/[`FromJson`] for a fieldless enum, serializing
/// each variant as its name string (human-readable, order-insensitive).
///
/// ```
/// #[derive(Debug, Clone, Copy, PartialEq)]
/// enum Mode { Fast, Slow }
/// ht_dsp::impl_unit_enum_json!(Mode, { Mode::Fast => "Fast", Mode::Slow => "Slow" });
///
/// use ht_dsp::json::{FromJson, ToJson};
/// assert_eq!(Mode::from_json(&Mode::Slow.to_json()).unwrap(), Mode::Slow);
/// ```
#[macro_export]
macro_rules! impl_unit_enum_json {
    ($t:ty, { $($variant:path => $name:literal),+ $(,)? }) => {
        impl $crate::json::ToJson for $t {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Str(match self { $($variant => $name),+ }.to_string())
            }
        }
        impl $crate::json::FromJson for $t {
            fn from_json(v: &$crate::json::Json) -> Result<$t, $crate::json::JsonError> {
                match v.as_str() {
                    $(Some($name) => Ok($variant),)+
                    Some(other) => Err($crate::json::JsonError::msg(format!(
                        concat!("unknown ", stringify!($t), " variant `{}`"),
                        other
                    ))),
                    None => Err($crate::json::JsonError::msg(concat!(
                        "expected string for ",
                        stringify!($t)
                    ))),
                }
            }
        }
    };
}

/// Reads a required object field.
///
/// # Errors
///
/// Returns a [`JsonError`] naming the missing or mismatched field.
pub fn field<T: FromJson>(obj: &Json, key: &str) -> Result<T, JsonError> {
    let v = obj
        .get(key)
        .ok_or_else(|| JsonError::msg(format!("missing field `{key}`")))?;
    T::from_json(v).map_err(|e| JsonError::msg(format!("field `{key}`: {}", e.message)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.25", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.dump(), text);
        }
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let seed = u64::MAX - 3;
        let v = Json::parse(&seed.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(seed));
        assert_eq!(v.dump(), seed.to_string());
    }

    #[test]
    fn floats_keep_floatness() {
        let v = Json::F64(1.0);
        assert_eq!(v.dump(), "1.0");
        let back = Json::parse(&v.dump()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).dump(), "null");
        assert_eq!(Json::F64(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj().set("z", 1i64).set("a", 2i64).set("m", 3i64);
        assert_eq!(v.dump(), r#"{"z":1,"a":2,"m":3}"#);
        // Re-setting replaces in place rather than duplicating.
        let v = v.set("a", 9i64);
        assert_eq!(v.dump(), r#"{"z":1,"a":9,"m":3}"#);
    }

    #[test]
    fn parser_tolerates_trailing_commas_and_whitespace() {
        let v = Json::parse("{\n  \"a\": [1, 2, 3,],\n  \"b\": {\"c\": 1,},\n}").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nbreak \"quoted\" back\\slash tab\t ünïcode 💬";
        let v = Json::Str(s.to_string());
        let back = Json::parse(&v.dump()).unwrap();
        assert_eq!(back.as_str(), Some(s));
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Json::parse(r#""Aé💬""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé💬"));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Json::obj()
            .set("id", "fig10")
            .set("rows", vec![1.5f64, 2.5])
            .set("empty", Json::Arr(vec![]))
            .set("nested", Json::obj().set("ok", true));
        let text = v.pretty();
        assert!(text.contains("\n  \"id\": \"fig10\""));
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn errors_carry_offsets() {
        let e = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(e.offset, Some(6));
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("[1] junk").is_err());
    }

    #[test]
    fn typed_field_accessor_reports_names() {
        let v = Json::obj().set("n", 3usize);
        assert_eq!(field::<usize>(&v, "n").unwrap(), 3);
        let e = field::<usize>(&v, "missing").unwrap_err();
        assert!(e.message.contains("missing"));
        let e = field::<String>(&v, "n").unwrap_err();
        assert!(e.message.contains("`n`"));
    }

    #[test]
    fn options_and_vecs_round_trip() {
        let some: Option<f64> = Some(2.5);
        let none: Option<f64> = None;
        assert_eq!(Option::<f64>::from_json(&some.to_json()).unwrap(), some);
        assert_eq!(Option::<f64>::from_json(&none.to_json()).unwrap(), none);
        let xs = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_json(&xs.to_json()).unwrap(), xs);
    }
}
