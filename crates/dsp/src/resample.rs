//! Sample-rate conversion.
//!
//! The liveness detector consumes 16 kHz audio while the arrays record at
//! 48 kHz (§III-A: "takes the downsampled 16 kHz speech … as input"), so the
//! primary operation here is an anti-aliased integer-factor decimation.

use crate::error::DspError;
use crate::window::{sinc_lowpass, Window};

/// Decimates `x` by the integer `factor` after an anti-alias windowed-sinc
/// low-pass at 45% of the output Nyquist.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `factor == 0`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ht_dsp::DspError> {
/// let x: Vec<f64> = (0..4800).map(|n| (n as f64 * 0.01).sin()).collect();
/// let y = ht_dsp::resample::decimate(&x, 3)?;
/// assert_eq!(y.len(), 1600);
/// # Ok(())
/// # }
/// ```
pub fn decimate(x: &[f64], factor: usize) -> Result<Vec<f64>, DspError> {
    if factor == 0 {
        return Err(DspError::param("factor", "must be at least 1"));
    }
    if factor == 1 {
        return Ok(x.to_vec());
    }
    if x.is_empty() {
        return Ok(Vec::new());
    }
    // Anti-alias filter: cutoff at 0.45 / factor (relative to input rate).
    // The Blackman transition band is ~5.5/taps of the input rate; 24·factor
    // taps keeps the transition inside the guard band below the new Nyquist.
    let fc = 0.45 / factor as f64;
    let taps = 24 * factor + 1;
    let h = sinc_lowpass(taps, fc, Window::Blackman);
    let delay = (taps - 1) / 2;

    let out_len = x.len().div_ceil(factor);
    let mut y = Vec::with_capacity(out_len);
    for m in 0..out_len {
        // Output sample m corresponds to input index m*factor; compensate
        // the FIR group delay so the output is time-aligned with the input.
        let center = m * factor + delay;
        let mut acc = 0.0;
        for (k, &hk) in h.iter().enumerate() {
            let idx = center as isize - k as isize;
            if idx >= 0 && (idx as usize) < x.len() {
                acc += hk * x[idx as usize];
            }
        }
        y.push(acc);
    }
    Ok(y)
}

/// Downsamples 48 kHz audio to 16 kHz (the liveness-detector input rate).
///
/// # Errors
///
/// Propagates [`decimate`] errors (none in practice: the factor is fixed).
pub fn to_16k_from_48k(x: &[f64]) -> Result<Vec<f64>, DspError> {
    decimate(x, 3)
}

/// Naive zero-order-hold upsampling by an integer factor (used only by test
/// fixtures; real rendering happens natively at 48 kHz).
pub fn upsample_hold(x: &[f64], factor: usize) -> Result<Vec<f64>, DspError> {
    if factor == 0 {
        return Err(DspError::param("factor", "must be at least 1"));
    }
    let mut y = Vec::with_capacity(x.len() * factor);
    for &v in x {
        for _ in 0..factor {
            y.push(v);
        }
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{rms, tone};

    #[test]
    fn output_length_is_ceil_division() {
        let x = vec![0.0; 10];
        assert_eq!(decimate(&x, 3).unwrap().len(), 4);
        assert_eq!(decimate(&x, 2).unwrap().len(), 5);
        assert_eq!(decimate(&x, 1).unwrap().len(), 10);
    }

    #[test]
    fn factor_zero_is_rejected() {
        assert!(decimate(&[1.0], 0).is_err());
        assert!(upsample_hold(&[1.0], 0).is_err());
    }

    #[test]
    fn passband_tone_survives_decimation() {
        // 1 kHz tone at 48 kHz -> 16 kHz: well inside the new Nyquist.
        let x = tone(1000.0, 48_000.0, 48_000, 1.0);
        let y = to_16k_from_48k(&x).unwrap();
        let mid = &y[2000..14_000];
        assert!((rms(mid) - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.02);
    }

    #[test]
    fn aliasing_tone_is_suppressed() {
        // 10 kHz is above the 16 kHz-Nyquist of 8 kHz; it must not alias in.
        let x = tone(10_000.0, 48_000.0, 48_000, 1.0);
        let y = to_16k_from_48k(&x).unwrap();
        assert!(rms(&y[2000..14_000]) < 0.01);
    }

    #[test]
    fn decimated_tone_keeps_frequency() {
        let f = 440.0;
        let x = tone(f, 48_000.0, 48_000, 1.0);
        let y = to_16k_from_48k(&x).unwrap();
        let mag = crate::fft::rfft_magnitude(&y[..16_000]);
        let peak = crate::peak::argmax(&mag).unwrap();
        let bin_hz = 16_000.0 / crate::fft::next_pow2(16_000) as f64;
        assert!((peak as f64 * bin_hz - f).abs() < 2.0 * bin_hz);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(decimate(&[], 3).unwrap().is_empty());
    }

    #[test]
    fn upsample_hold_repeats_samples() {
        assert_eq!(
            upsample_hold(&[1.0, 2.0], 3).unwrap(),
            vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]
        );
    }
}
