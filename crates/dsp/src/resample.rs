//! Sample-rate conversion.
//!
//! The liveness detector consumes 16 kHz audio while the arrays record at
//! 48 kHz (§III-A: "takes the downsampled 16 kHz speech … as input"), so the
//! primary operation here is an anti-aliased integer-factor decimation.

use crate::error::DspError;
use crate::window::{sinc_lowpass, Window};

/// Decimates `x` by the integer `factor` after an anti-alias windowed-sinc
/// low-pass at 45% of the output Nyquist.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `factor == 0`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ht_dsp::DspError> {
/// let x: Vec<f64> = (0..4800).map(|n| (n as f64 * 0.01).sin()).collect();
/// let y = ht_dsp::resample::decimate(&x, 3)?;
/// assert_eq!(y.len(), 1600);
/// # Ok(())
/// # }
/// ```
pub fn decimate(x: &[f64], factor: usize) -> Result<Vec<f64>, DspError> {
    if factor == 0 {
        return Err(DspError::param("factor", "must be at least 1"));
    }
    if factor == 1 {
        return Ok(x.to_vec());
    }
    if x.is_empty() {
        return Ok(Vec::new());
    }
    // Anti-alias filter: cutoff at 0.45 / factor (relative to input rate).
    // The Blackman transition band is ~5.5/taps of the input rate; 24·factor
    // taps keeps the transition inside the guard band below the new Nyquist.
    let fc = 0.45 / factor as f64;
    let taps = 24 * factor + 1;
    let h = sinc_lowpass(taps, fc, Window::Blackman);
    let delay = (taps - 1) / 2;

    let out_len = x.len().div_ceil(factor);
    let mut y = Vec::with_capacity(out_len);
    for m in 0..out_len {
        // Output sample m corresponds to input index m*factor; compensate
        // the FIR group delay so the output is time-aligned with the input.
        let center = m * factor + delay;
        let mut acc = 0.0;
        for (k, &hk) in h.iter().enumerate() {
            let idx = center as isize - k as isize;
            if idx >= 0 && (idx as usize) < x.len() {
                acc += hk * x[idx as usize];
            }
        }
        y.push(acc);
    }
    Ok(y)
}

/// A chunk-streaming counterpart of [`decimate`].
///
/// Feed arbitrary chunks with [`push`](Self::push); it emits exactly the
/// samples a single [`decimate`] call emits on the concatenated input, bit
/// for bit and in order. Output sample `m` depends on input samples up to
/// its filter center `m·factor + delay`, so it is emitted eagerly the
/// moment that input sample arrives; the pending tail — outputs whose
/// center lies at or past the end of the input seen so far — is produced by
/// [`flush_into`](Self::flush_into), which is non-destructive: streaming
/// may continue afterwards, and a later flush re-derives the (new) tail.
///
/// Only the last `taps` input samples are retained (a fixed ring), so the
/// memory footprint is independent of stream length.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamDecimator {
    factor: usize,
    delay: usize,
    h: Vec<f64>,
    /// Ring of the most recent `taps` input samples, indexed by absolute
    /// input position modulo `taps`.
    ring: Vec<f64>,
    /// Input samples consumed so far.
    n_in: usize,
    /// Output samples emitted by `push` so far.
    n_out: usize,
}

impl StreamDecimator {
    /// Builds a streaming decimator for the given integer factor.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `factor == 0`.
    pub fn new(factor: usize) -> Result<StreamDecimator, DspError> {
        if factor == 0 {
            return Err(DspError::param("factor", "must be at least 1"));
        }
        if factor == 1 {
            // Pass-through: `decimate` copies the input verbatim.
            return Ok(StreamDecimator {
                factor,
                delay: 0,
                h: Vec::new(),
                ring: Vec::new(),
                n_in: 0,
                n_out: 0,
            });
        }
        // Same kernel as `decimate`: any deviation would break bit parity.
        let fc = 0.45 / factor as f64;
        let taps = 24 * factor + 1;
        let h = sinc_lowpass(taps, fc, Window::Blackman);
        let delay = (taps - 1) / 2;
        Ok(StreamDecimator {
            factor,
            delay,
            h,
            ring: vec![0.0; taps],
            n_in: 0,
            n_out: 0,
        })
    }

    /// Consumes one chunk, appending every output sample that became ready.
    /// Allocation-free once `out` has capacity for the emitted samples.
    pub fn push(&mut self, x: &[f64], out: &mut Vec<f64>) {
        if self.factor == 1 {
            out.extend_from_slice(x);
            self.n_in += x.len();
            self.n_out += x.len();
            return;
        }
        let taps = self.h.len();
        for &v in x {
            let i = self.n_in;
            self.ring[i % taps] = v;
            self.n_in = i + 1;
            // Output m has filter center m·factor + delay: it is ready
            // exactly when input sample i == that center arrives.
            if i >= self.delay && (i - self.delay).is_multiple_of(self.factor) {
                out.push(self.output_at((i - self.delay) / self.factor));
                self.n_out += 1;
            }
        }
    }

    /// Appends the pending tail outputs (those [`decimate`] would produce
    /// past the last eagerly emitted sample if the input ended here). Does
    /// not consume state: call it repeatedly, or keep pushing afterwards.
    pub fn flush_into(&self, out: &mut Vec<f64>) {
        if self.factor == 1 {
            return;
        }
        let total = self.n_in.div_ceil(self.factor);
        for m in self.n_out..total {
            out.push(self.output_at(m));
        }
    }

    /// Output sample `m`, summed in the same term order as [`decimate`].
    /// Every referenced input index is provably within the ring: for eager
    /// outputs the center is the newest sample, and for tail outputs the
    /// center is past the end, so all live indices are within `taps` of
    /// `n_in`.
    fn output_at(&self, m: usize) -> f64 {
        let center = m * self.factor + self.delay;
        let taps = self.h.len();
        let mut acc = 0.0;
        for (k, &hk) in self.h.iter().enumerate() {
            let idx = center as isize - k as isize;
            if idx >= 0 && (idx as usize) < self.n_in {
                acc += hk * self.ring[idx as usize % taps];
            }
        }
        acc
    }

    /// Zeroes the stream state: a reset decimator is bit-identical to a
    /// freshly built one (pooled stream slots depend on this).
    pub fn reset(&mut self) {
        self.ring.fill(0.0);
        self.n_in = 0;
        self.n_out = 0;
    }

    /// Input samples consumed so far.
    pub fn samples_consumed(&self) -> usize {
        self.n_in
    }

    /// Output samples emitted by `push` so far (tail outputs from
    /// [`flush_into`](Self::flush_into) are not counted).
    pub fn emitted(&self) -> usize {
        self.n_out
    }
}

/// Downsamples 48 kHz audio to 16 kHz (the liveness-detector input rate).
///
/// # Errors
///
/// Propagates [`decimate`] errors (none in practice: the factor is fixed).
pub fn to_16k_from_48k(x: &[f64]) -> Result<Vec<f64>, DspError> {
    decimate(x, 3)
}

/// Naive zero-order-hold upsampling by an integer factor (used only by test
/// fixtures; real rendering happens natively at 48 kHz).
pub fn upsample_hold(x: &[f64], factor: usize) -> Result<Vec<f64>, DspError> {
    if factor == 0 {
        return Err(DspError::param("factor", "must be at least 1"));
    }
    let mut y = Vec::with_capacity(x.len() * factor);
    for &v in x {
        for _ in 0..factor {
            y.push(v);
        }
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{rms, tone};

    #[test]
    fn output_length_is_ceil_division() {
        let x = vec![0.0; 10];
        assert_eq!(decimate(&x, 3).unwrap().len(), 4);
        assert_eq!(decimate(&x, 2).unwrap().len(), 5);
        assert_eq!(decimate(&x, 1).unwrap().len(), 10);
    }

    #[test]
    fn factor_zero_is_rejected() {
        assert!(decimate(&[1.0], 0).is_err());
        assert!(upsample_hold(&[1.0], 0).is_err());
    }

    #[test]
    fn passband_tone_survives_decimation() {
        // 1 kHz tone at 48 kHz -> 16 kHz: well inside the new Nyquist.
        let x = tone(1000.0, 48_000.0, 48_000, 1.0);
        let y = to_16k_from_48k(&x).unwrap();
        let mid = &y[2000..14_000];
        assert!((rms(mid) - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.02);
    }

    #[test]
    fn aliasing_tone_is_suppressed() {
        // 10 kHz is above the 16 kHz-Nyquist of 8 kHz; it must not alias in.
        let x = tone(10_000.0, 48_000.0, 48_000, 1.0);
        let y = to_16k_from_48k(&x).unwrap();
        assert!(rms(&y[2000..14_000]) < 0.01);
    }

    #[test]
    fn decimated_tone_keeps_frequency() {
        let f = 440.0;
        let x = tone(f, 48_000.0, 48_000, 1.0);
        let y = to_16k_from_48k(&x).unwrap();
        let mag = crate::fft::rfft_magnitude(&y[..16_000]);
        let peak = crate::peak::argmax(&mag).unwrap();
        let bin_hz = 16_000.0 / crate::fft::next_pow2(16_000) as f64;
        assert!((peak as f64 * bin_hz - f).abs() < 2.0 * bin_hz);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(decimate(&[], 3).unwrap().is_empty());
    }

    #[test]
    fn upsample_hold_repeats_samples() {
        assert_eq!(
            upsample_hold(&[1.0, 2.0], 3).unwrap(),
            vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]
        );
    }

    /// Deterministic noise in [-1, 1) (xorshift; tests must not use wall
    /// clocks or OS entropy).
    fn noise(n: usize, mut seed: u64) -> Vec<f64> {
        (0..n)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn stream_decimator_matches_batch_for_any_chunking() {
        for factor in [2usize, 3, 4] {
            for (len, seed) in [
                (0usize, 1u64),
                (1, 2),
                (72, 3),
                (73, 4),
                (997, 5),
                (4800, 6),
            ] {
                let x = noise(len, seed ^ factor as u64);
                let want = decimate(&x, factor).unwrap();
                for chunk in [1usize, 3, 7, 64, 480, 5000] {
                    let mut dec = StreamDecimator::new(factor).unwrap();
                    let mut got = Vec::new();
                    for c in x.chunks(chunk.max(1)) {
                        dec.push(c, &mut got);
                    }
                    dec.flush_into(&mut got);
                    assert_eq!(
                        got.len(),
                        want.len(),
                        "factor {factor} len {len} chunk {chunk}"
                    );
                    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                        assert_eq!(
                            g.to_bits(),
                            w.to_bits(),
                            "factor {factor} len {len} chunk {chunk} sample {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stream_decimator_flush_is_non_destructive() {
        let x = noise(1000, 9);
        let mut dec = StreamDecimator::new(3).unwrap();
        let mut live = Vec::new();
        dec.push(&x[..500], &mut live);

        // A mid-stream flush sees the capture "as if it ended here" ...
        let mut snap = live.clone();
        dec.flush_into(&mut snap);
        let want_half = decimate(&x[..500], 3).unwrap();
        assert_eq!(snap.len(), want_half.len());
        for (g, w) in snap.iter().zip(&want_half) {
            assert_eq!(g.to_bits(), w.to_bits());
        }

        // ... and pushing may continue afterwards with full-stream parity.
        dec.push(&x[500..], &mut live);
        let mut full = live.clone();
        dec.flush_into(&mut full);
        let want = decimate(&x, 3).unwrap();
        assert_eq!(full.len(), want.len());
        for (g, w) in full.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn stream_decimator_factor_one_is_passthrough() {
        let x = noise(37, 11);
        let mut dec = StreamDecimator::new(1).unwrap();
        let mut got = Vec::new();
        dec.push(&x[..20], &mut got);
        dec.push(&x[20..], &mut got);
        dec.flush_into(&mut got);
        assert_eq!(got, x);
        assert!(StreamDecimator::new(0).is_err());
    }

    #[test]
    fn stream_decimator_reset_matches_fresh() {
        let x = noise(300, 21);
        let mut dec = StreamDecimator::new(3).unwrap();
        let mut first = Vec::new();
        dec.push(&noise(131, 22), &mut first);
        dec.reset();
        let mut got = Vec::new();
        dec.push(&x, &mut got);
        dec.flush_into(&mut got);
        let want = decimate(&x, 3).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
        assert_eq!(dec.samples_consumed(), 300);
        assert_eq!(dec.emitted(), 88); // floor((299 - 36) / 3) + 1
    }
}
