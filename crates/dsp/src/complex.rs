//! Minimal complex-number type used by the FFT and spectral routines.
//!
//! The crate deliberately avoids external numeric dependencies, so this is a
//! small, `Copy`, `f64`-based complex type with just the operations the DSP
//! code needs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` over `f64`.
///
/// # Example
///
/// ```
/// use ht_dsp::Complex;
///
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// let c = a * b;
/// assert_eq!(c, Complex::new(5.0, 5.0));
/// assert!((a.abs() - 5.0_f64.sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates `e^{iθ} = cos θ + i sin θ` (a unit phasor).
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Creates a complex number from polar coordinates.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`; cheaper than [`abs`](Self::abs) when only
    /// relative magnitudes matter.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Complex reciprocal `1/z`.
    ///
    /// Returns [`Complex::ZERO`] for a zero input rather than producing NaNs;
    /// callers in PHAT weighting rely on this to treat empty bins as silent.
    #[inline]
    pub fn recip(self) -> Self {
        let n = self.norm_sqr();
        if n == 0.0 {
            Complex::ZERO
        } else {
            Complex {
                re: self.re / n,
                im: -self.im / n,
            }
        }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// `true` if either part is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w.recip()
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert_eq!(-z, Complex::new(-3.0, 4.0));
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(4.0, -5.0);
        // (2+3i)(4-5i) = 8 -10i +12i -15i^2 = 23 + 2i
        assert_eq!(a * b, Complex::new(23.0, 2.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.5, 3.0);
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < EPS);
        assert!((q.im - a.im).abs() < EPS);
    }

    #[test]
    fn magnitude_and_phase() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < EPS);
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
        let p = Complex::from_polar(5.0, z.arg());
        assert!((p.re - 3.0).abs() < 1e-9);
        assert!((p.im - 4.0).abs() < 1e-9);
    }

    #[test]
    fn unit_phasor_has_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            assert!((Complex::from_angle(theta).abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn recip_of_zero_is_zero() {
        assert_eq!(Complex::ZERO.recip(), Complex::ZERO);
    }

    #[test]
    fn conj_negates_phase() {
        let z = Complex::new(1.0, 2.0);
        assert!((z.conj().arg() + z.arg()).abs() < EPS);
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = (Complex::I * std::f64::consts::PI).exp();
        assert!((z.re + 1.0).abs() < EPS);
        assert!(z.im.abs() < EPS);
    }

    #[test]
    fn sum_iterator() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
