//! Physics-level integration tests for the room simulator: energy decay,
//! geometry, and the orientation-dependence the HeadTalk features rely on.

use ht_acoustics::array::Device;
use ht_acoustics::directivity::Directivity;
use ht_acoustics::geometry::Vec3;
use ht_acoustics::image_source::image_paths;
use ht_acoustics::render::{RenderConfig, Scene, Source};
use ht_acoustics::room::Room;
use ht_dsp::rng::SeedableRng;

fn speech_like(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(seed);
    let raw = ht_dsp::rng::white_noise(&mut rng, n);
    let bp = ht_dsp::filter::Butterworth::bandpass(2, 120.0, 9_000.0, 48_000.0).unwrap();
    let mut x = bp.filter(&raw);
    ht_dsp::signal::normalize_peak(&mut x, 0.3);
    x
}

fn scene(room: Room, angle: f64, dist: f64) -> Scene {
    let array_pos = Vec3::new(0.6, 2.0, 0.74);
    Scene {
        room,
        source: Source {
            position: Vec3::new(0.6 + dist, 2.0, 1.6),
            azimuth_deg: angle,
            directivity: Directivity::human_speech(),
        },
        array: Device::D2.array_at(array_pos, 0.0),
    }
}

#[test]
fn higher_order_images_carry_less_energy() {
    let room = Room::lab();
    let s = Vec3::new(2.5, 2.0, 1.5);
    let m = Vec3::new(4.5, 2.5, 1.0);
    let paths = image_paths(&room, s, m, 3).unwrap();
    let mean_amp = |order: u32| {
        let v: Vec<f64> = paths
            .iter()
            .filter(|p| p.order == order)
            .map(|p| p.band_gain.mean() / p.distance)
            .collect();
        ht_dsp::stats::mean(&v)
    };
    assert!(mean_amp(0) > mean_amp(1));
    assert!(mean_amp(1) > mean_amp(3));
}

#[test]
fn bigger_room_renders_longer_impulse_tails() {
    // The home (10.06 m long) has longer reflection paths than the lab
    // (6.10 m), so the rendered capture extends further past the dry signal.
    let x = speech_like(9600, 1);
    let cfg = RenderConfig::default();
    let render_len = |room: Room| scene(room, 180.0, 2.0).render(&x, &cfg).unwrap()[0].len();
    let lab = render_len(Room::lab());
    let home = render_len(Room::home());
    assert!(home > lab, "home render {home} vs lab {lab}");
    // And the model-level mid-band RT60 ordering holds (home harder walls).
    assert!(Room::home().rt60().get(3) > Room::lab().rt60().get(3));
}

#[test]
fn angle_sweep_monotonically_reduces_high_band() {
    // The >2 kHz received energy should fall monotonically (on average) as
    // the speaker rotates away, per the directivity model.
    let x = speech_like(7200, 2);
    let cfg = RenderConfig {
        max_order: 2,
        ..RenderConfig::default()
    };
    let high_energy = |angle: f64| {
        let out = scene(Room::lab(), angle, 2.0).render(&x, &cfg).unwrap();
        let s = ht_dsp::spectrum::Spectrum::of(&out[0], 48_000.0).unwrap();
        s.band_energy(2_000.0, 8_000.0)
    };
    let e0 = high_energy(180.0); // facing the array (array is at -x)
    let e90 = high_energy(90.0);
    let e180 = high_energy(0.0); // facing away
    assert!(e0 > e90, "0° {e0} vs 90° {e90}");
    assert!(e90 > e180, "90° {e90} vs 180° {e180}");
}

#[test]
fn all_mics_hear_comparable_levels() {
    // The array aperture (9 cm) is tiny compared to the source distance;
    // per-mic levels must agree within a fraction of a dB (before the
    // simulated gain mismatch that datagen adds).
    let x = speech_like(7200, 3);
    let out = scene(Room::lab(), 180.0, 3.0)
        .render(&x, &RenderConfig::default())
        .unwrap();
    let levels: Vec<f64> = out.iter().map(|c| ht_dsp::signal::rms(c)).collect();
    let spread = ht_dsp::stats::max(&levels) / ht_dsp::stats::min(&levels);
    assert!(spread < 1.2, "inter-mic level spread {spread}");
}

#[test]
fn direct_path_arrival_time_matches_distance() {
    // Cross-correlating renders at 1 m and 3 m should reveal the ~2 m
    // propagation difference (2/340 s ≈ 282 samples at 48 kHz).
    let x = speech_like(4800, 4);
    let cfg = RenderConfig {
        max_order: 0,
        ..RenderConfig::default()
    };
    let near = scene(Room::lab(), 180.0, 1.0).render(&x, &cfg).unwrap();
    let far = scene(Room::lab(), 180.0, 3.0).render(&x, &cfg).unwrap();
    let n = near[0].len().min(far[0].len());
    let est = ht_dsp::correlate::tdoa_samples(&far[0][..n], &near[0][..n], 400).unwrap();
    // 3-D distances: mouth at z = 1.6 m, array at z = 0.74 m.
    let d_near = (1.0f64.powi(2) + 0.86f64.powi(2)).sqrt();
    let d_far = (3.0f64.powi(2) + 0.86f64.powi(2)).sqrt();
    let expected = (d_far - d_near) / 340.0 * 48_000.0;
    assert!(
        (est - expected).abs() < 4.0,
        "estimated {est}, expected {expected}"
    );
}

#[test]
fn obstruction_reduces_but_never_silences() {
    let x = speech_like(7200, 5);
    for obstruction in [
        ht_acoustics::room::Obstruction::Partial,
        ht_acoustics::room::Obstruction::Full,
    ] {
        let open = scene(Room::lab(), 180.0, 2.0)
            .render(&x, &RenderConfig::default())
            .unwrap();
        let blocked = scene(Room::lab(), 180.0, 2.0)
            .render(
                &x,
                &RenderConfig {
                    obstruction,
                    ..RenderConfig::default()
                },
            )
            .unwrap();
        let ro = ht_dsp::signal::rms(&open[0]);
        let rb = ht_dsp::signal::rms(&blocked[0]);
        assert!(rb < ro, "{obstruction:?} must attenuate");
        assert!(
            rb > 0.05 * ro,
            "{obstruction:?} must not silence (diffraction)"
        );
    }
}
