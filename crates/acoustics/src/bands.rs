//! Octave bands used for frequency-dependent acoustics.
//!
//! Wall absorption, air absorption and source directivity all vary with
//! frequency; the renderer therefore works band-by-band. Six octave bands
//! spanning 125 Hz – 8 kHz centers (edges 88 Hz – 11.3 kHz) cover the speech
//! band the paper's features use, with a seventh band up to Nyquist capturing
//! the >4 kHz liveness cues of Fig. 3.

use ht_dsp::filter::{Butterworth, Sos};

/// Center frequencies (Hz) of the octave bands used by the renderer.
pub const BAND_CENTERS_HZ: [f64; 7] = [125.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0];

/// Number of octave bands.
pub const NUM_BANDS: usize = BAND_CENTERS_HZ.len();

/// A per-band scalar quantity (absorption, gain, …).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandValues(pub [f64; NUM_BANDS]);

impl BandValues {
    /// All bands set to the same value.
    pub const fn flat(v: f64) -> Self {
        BandValues([v; NUM_BANDS])
    }

    /// Element-wise product.
    #[allow(clippy::should_implement_trait)] // band-wise product, not scalar Mul
    pub fn mul(self, other: BandValues) -> BandValues {
        let mut out = self.0;
        for (o, b) in out.iter_mut().zip(other.0.iter()) {
            *o *= b;
        }
        BandValues(out)
    }

    /// Scales all bands by `k`.
    pub fn scale(self, k: f64) -> BandValues {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o *= k;
        }
        BandValues(out)
    }

    /// Arithmetic mean over bands.
    pub fn mean(self) -> f64 {
        self.0.iter().sum::<f64>() / NUM_BANDS as f64
    }

    /// Value for band `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= NUM_BANDS`.
    pub fn get(self, b: usize) -> f64 {
        self.0[b]
    }
}

impl Default for BandValues {
    fn default() -> Self {
        BandValues::flat(0.0)
    }
}

/// Edge frequencies `(lo, hi)` of band `b`: an octave centered on
/// `BAND_CENTERS_HZ[b]`, clipped to `[30 Hz, 0.49 · fs]`.
pub fn band_edges_hz(b: usize, sample_rate: f64) -> (f64, f64) {
    let c = BAND_CENTERS_HZ[b];
    let lo = (c / std::f64::consts::SQRT_2).max(30.0);
    let mut hi = c * std::f64::consts::SQRT_2;
    // The top band absorbs everything up to (near) Nyquist so that the band
    // decomposition sums back to the full signal energy.
    if b == NUM_BANDS - 1 {
        hi = sample_rate * 0.49;
    }
    hi = hi.min(sample_rate * 0.49);
    (lo, hi)
}

/// A bank of band-pass filters realizing the octave-band decomposition.
#[derive(Debug, Clone)]
pub struct BandSplitter {
    filters: Vec<Sos>,
    sample_rate: f64,
}

impl BandSplitter {
    /// Builds the filter bank for the given sample rate.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is too low to fit the band edges (all
    /// reproduction audio is 48 kHz; 16 kHz would still work).
    pub fn new(sample_rate: f64) -> BandSplitter {
        let filters = (0..NUM_BANDS)
            .map(|b| {
                let (lo, hi) = band_edges_hz(b, sample_rate);
                Butterworth::bandpass(2, lo, hi, sample_rate)
                    .expect("octave band edges are valid for the supported sample rates")
            })
            .collect();
        BandSplitter {
            filters,
            sample_rate,
        }
    }

    /// Splits `x` into `NUM_BANDS` band-limited signals (zero-phase, so the
    /// bands stay time-aligned for the image-source delays).
    pub fn split(&self, x: &[f64]) -> Vec<Vec<f64>> {
        self.filters.iter().map(|f| f.filtfilt(x)).collect()
    }

    /// The sample rate the bank was designed for.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }
}

/// The band index whose octave contains `hz` (clamped to the outer bands).
pub fn band_of_hz(hz: f64) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in BAND_CENTERS_HZ.iter().enumerate() {
        let d = (hz.max(1.0).ln() - c.ln()).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::signal::{rms, tone};

    #[test]
    fn band_values_arithmetic() {
        let a = BandValues::flat(2.0);
        let b = BandValues::flat(3.0);
        assert_eq!(a.mul(b), BandValues::flat(6.0));
        assert_eq!(a.scale(0.5), BandValues::flat(1.0));
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn band_edges_are_ordered_and_cover_speech() {
        for b in 0..NUM_BANDS {
            let (lo, hi) = band_edges_hz(b, 48_000.0);
            assert!(lo < hi, "band {b}");
        }
        // Consecutive bands touch (within the octave grid).
        let (_, hi0) = band_edges_hz(0, 48_000.0);
        let (lo1, _) = band_edges_hz(1, 48_000.0);
        assert!((hi0 - lo1).abs() < 1.0);
        // The top band reaches close to Nyquist.
        let (_, hi_top) = band_edges_hz(NUM_BANDS - 1, 48_000.0);
        assert!(hi_top > 20_000.0);
    }

    #[test]
    fn band_of_hz_matches_centers() {
        assert_eq!(band_of_hz(125.0), 0);
        assert_eq!(band_of_hz(1000.0), 3);
        assert_eq!(band_of_hz(10_000.0), 6);
        assert_eq!(band_of_hz(0.0), 0);
    }

    #[test]
    fn splitter_isolates_a_tone_into_its_band() {
        let split = BandSplitter::new(48_000.0);
        let x = tone(1000.0, 48_000.0, 9600, 1.0);
        let bands = split.split(&x);
        assert_eq!(bands.len(), NUM_BANDS);
        let energies: Vec<f64> = bands.iter().map(|b| rms(&b[2400..7200])).collect();
        let imax = ht_dsp::peak::argmax(&energies).unwrap();
        assert_eq!(imax, 3, "1 kHz tone should land in the 1 kHz band");
        // Bands two octaves away hold almost nothing.
        assert!(energies[0] < 0.05 * energies[3]);
        assert!(energies[6] < 0.05 * energies[3]);
    }

    #[test]
    fn split_bands_sum_back_to_roughly_the_input() {
        // The octave decomposition is not perfectly reconstructing, but a
        // mid-band tone must survive the split-and-sum within a few dB.
        let split = BandSplitter::new(48_000.0);
        let x = tone(800.0, 48_000.0, 9600, 1.0);
        let bands = split.split(&x);
        let mut sum = vec![0.0; x.len()];
        for b in &bands {
            for (s, v) in sum.iter_mut().zip(b.iter()) {
                *s += v;
            }
        }
        let ratio = rms(&sum[2400..7200]) / rms(&x[2400..7200]);
        assert!((0.5..2.0).contains(&ratio), "split/sum ratio {ratio}");
    }
}
