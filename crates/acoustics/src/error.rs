//! Error type for the acoustics substrate.

use std::error::Error;
use std::fmt;

/// Error returned by fallible acoustics routines.
#[derive(Debug, Clone, PartialEq)]
pub enum AcousticsError {
    /// A geometric configuration was invalid (source outside the room, …).
    InvalidGeometry(String),
    /// A numeric parameter was outside its valid domain.
    InvalidParameter(String),
    /// A lower-level DSP routine failed.
    Dsp(ht_dsp::DspError),
}

impl fmt::Display for AcousticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcousticsError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            AcousticsError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            AcousticsError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl Error for AcousticsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AcousticsError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ht_dsp::DspError> for AcousticsError {
    fn from(e: ht_dsp::DspError) -> Self {
        AcousticsError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let g = AcousticsError::InvalidGeometry("source outside room".into());
        assert!(g.to_string().contains("geometry"));
        let d: AcousticsError = ht_dsp::DspError::param("x", "bad").into();
        assert!(d.to_string().contains("dsp error"));
    }

    #[test]
    fn source_chain_is_exposed() {
        use std::error::Error as _;
        let d: AcousticsError = ht_dsp::DspError::param("x", "bad").into();
        assert!(d.source().is_some());
        assert!(AcousticsError::InvalidParameter("p".into())
            .source()
            .is_none());
    }
}
