//! JSON conversions for the acoustics types that appear in persisted
//! artifacts (the feature cache's `CaptureSpec` sidecars).
//!
//! Unit enums serialize as their variant name, so the cache files stay
//! human-readable and stable under field reordering.

use crate::array::Device;
use crate::noise::NoiseKind;
use crate::room::Obstruction;
use ht_dsp::impl_unit_enum_json;

impl_unit_enum_json!(Device, {
    Device::D1 => "D1",
    Device::D2 => "D2",
    Device::D3 => "D3",
});

impl_unit_enum_json!(NoiseKind, {
    NoiseKind::White => "White",
    NoiseKind::Tv => "Tv",
    NoiseKind::RoomAmbient => "RoomAmbient",
});

impl_unit_enum_json!(Obstruction, {
    Obstruction::None => "None",
    Obstruction::Partial => "Partial",
    Obstruction::Full => "Full",
    Obstruction::Raised => "Raised",
});

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::json::{FromJson, Json, ToJson};

    #[test]
    fn unit_enums_round_trip() {
        for d in Device::ALL {
            assert_eq!(Device::from_json(&d.to_json()).unwrap(), d);
        }
        for k in [NoiseKind::White, NoiseKind::Tv, NoiseKind::RoomAmbient] {
            assert_eq!(NoiseKind::from_json(&k.to_json()).unwrap(), k);
        }
        for o in [
            Obstruction::None,
            Obstruction::Partial,
            Obstruction::Full,
            Obstruction::Raised,
        ] {
            assert_eq!(Obstruction::from_json(&o.to_json()).unwrap(), o);
        }
    }

    #[test]
    fn unknown_variant_is_an_error() {
        assert!(Device::from_json(&Json::Str("D9".into())).is_err());
        assert!(Device::from_json(&Json::I64(1)).is_err());
    }
}
