//! Wall materials (per-band absorption) and reverberation-time estimation.
//!
//! Absorption coefficients are octave-band values in `[0, 1]` taken from
//! standard architectural-acoustics tables. The Eyring equation (§III-B2 of
//! the paper, citing Eyring 1930) estimates the reverberation time of a room
//! from its volume, surface area and mean absorption.

use crate::bands::{BandValues, NUM_BANDS};

/// A surface material with per-octave-band absorption coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Absorption coefficient α per band, each in `[0, 1]`.
    pub absorption: BandValues,
    /// Human-readable name.
    pub name: &'static str,
}

impl Material {
    /// Painted drywall / gypsum board: reflective, slightly absorptive at
    /// low frequencies (panel resonance).
    pub const fn drywall() -> Material {
        Material {
            absorption: BandValues([0.29, 0.10, 0.05, 0.04, 0.07, 0.09, 0.09]),
            name: "drywall",
        }
    }

    /// Concrete / brick: highly reflective across the band.
    pub const fn concrete() -> Material {
        Material {
            absorption: BandValues([0.01, 0.01, 0.02, 0.02, 0.02, 0.03, 0.04]),
            name: "concrete",
        }
    }

    /// Carpet on concrete: absorptive at high frequencies.
    pub const fn carpet() -> Material {
        Material {
            absorption: BandValues([0.02, 0.06, 0.14, 0.37, 0.60, 0.65, 0.65]),
            name: "carpet",
        }
    }

    /// Acoustic ceiling tile (dropped ceiling, as in the paper's lab).
    pub const fn ceiling_tile() -> Material {
        Material {
            absorption: BandValues([0.70, 0.66, 0.72, 0.92, 0.88, 0.75, 0.75]),
            name: "ceiling tile",
        }
    }

    /// Hardwood / laminate floor.
    pub const fn wood_floor() -> Material {
        Material {
            absorption: BandValues([0.15, 0.11, 0.10, 0.07, 0.06, 0.07, 0.07]),
            name: "wood floor",
        }
    }

    /// Heavily furnished wall equivalent (bookcases, curtains, sofa backs) —
    /// used for the home setting's busier surfaces.
    pub const fn furnished() -> Material {
        Material {
            absorption: BandValues([0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.55]),
            name: "furnished",
        }
    }

    /// Pressure reflection coefficient per band: `sqrt(1 - α)`.
    pub fn reflection(self) -> BandValues {
        let mut r = [0.0; NUM_BANDS];
        for (out, &a) in r.iter_mut().zip(self.absorption.0.iter()) {
            *out = (1.0 - a.clamp(0.0, 1.0)).sqrt();
        }
        BandValues(r)
    }
}

/// Eyring reverberation time for a room of volume `v` m³, total surface `s`
/// m², and mean absorption `alpha_mean` in `(0, 1)`:
///
/// `T = k · V / (−S · ln(1 − α))`, with `k = 0.161 s/m` (the Sabine/Eyring
/// constant; the paper writes the same equation with a generic `k`).
///
/// # Panics
///
/// Panics if `alpha_mean` is outside `(0, 1)` or `s <= 0`.
pub fn eyring_rt60(v: f64, s: f64, alpha_mean: f64) -> f64 {
    assert!(s > 0.0, "surface area must be positive");
    assert!(
        (0.0..1.0).contains(&alpha_mean) && alpha_mean > 0.0,
        "mean absorption must be in (0, 1)"
    );
    0.161 * v / (-s * (1.0 - alpha_mean).ln())
}

/// Frequency-dependent air absorption in nepers per meter per band: a mild
/// exponential high-frequency loss, `gain = exp(-coeff · distance)`.
///
/// Values approximate 20 °C / 50 % relative humidity.
pub fn air_absorption_per_meter() -> BandValues {
    BandValues([0.0001, 0.0003, 0.0006, 0.0011, 0.0027, 0.0090, 0.0300])
}

/// Per-band gain after traveling `distance_m` meters of air.
pub fn air_gain(distance_m: f64) -> BandValues {
    let coeffs = air_absorption_per_meter();
    let mut g = [0.0; NUM_BANDS];
    for (out, &c) in g.iter_mut().zip(coeffs.0.iter()) {
        *out = (-c * distance_m).exp();
    }
    BandValues(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorption_is_a_valid_coefficient() {
        for m in [
            Material::drywall(),
            Material::concrete(),
            Material::carpet(),
            Material::ceiling_tile(),
            Material::wood_floor(),
            Material::furnished(),
        ] {
            for a in m.absorption.0 {
                assert!((0.0..=1.0).contains(&a), "{}: α = {a}", m.name);
            }
        }
    }

    #[test]
    fn reflection_complements_absorption() {
        let m = Material::concrete();
        let r = m.reflection();
        for (rf, a) in r.0.iter().zip(m.absorption.0.iter()) {
            assert!((rf * rf + a - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn carpet_absorbs_more_highs_than_lows() {
        let c = Material::carpet();
        assert!(c.absorption.get(6) > 5.0 * c.absorption.get(0));
    }

    #[test]
    fn eyring_rt60_is_plausible_for_a_lab() {
        // Paper's lab: 20' x 14' x 10' ≈ 6.1 x 4.27 x 3.05 m.
        let (l, w, h) = (6.1, 4.27, 3.05);
        let v = l * w * h;
        let s = 2.0 * (l * w + l * h + w * h);
        let t = eyring_rt60(v, s, 0.3);
        assert!((0.1..1.0).contains(&t), "rt60 {t}");
        // More absorption means a shorter tail.
        assert!(eyring_rt60(v, s, 0.5) < t);
    }

    #[test]
    #[should_panic(expected = "absorption")]
    fn eyring_rejects_alpha_one() {
        eyring_rt60(10.0, 20.0, 1.0);
    }

    #[test]
    fn air_gain_decays_with_distance_and_frequency() {
        let g1 = air_gain(1.0);
        let g10 = air_gain(10.0);
        for b in 0..NUM_BANDS {
            assert!(g10.get(b) < g1.get(b));
            assert!(g1.get(b) <= 1.0);
        }
        // High band loses more than low band.
        assert!(g10.get(6) < g10.get(0));
        // But even at 10 m the loss is mild, not a brick wall.
        assert!(g10.get(6) > 0.5);
    }
}
