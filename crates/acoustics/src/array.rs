//! Microphone-array geometries for the three prototype devices of Table I.
//!
//! | # | Device | Channels | Aperture (orthogonal mic distance) |
//! |---|--------|----------|------------------------------------|
//! | D1 | miniDSP UMA-8 USB v2.0 | 7 (center + 6 ring) | 8.5 cm |
//! | D2 | Seeed ReSpeaker Core v2.0 | 6 (ring) | 9.0 cm |
//! | D3 | Seeed ReSpeaker USB Mic Array | 4 (ring) | 6.5 cm |
//!
//! Positions are planar (the arrays are flat boards); world placement adds a
//! mounting height and an azimuth.

use crate::geometry::Vec3;
use crate::{SAMPLE_RATE, SPEED_OF_SOUND};

/// The three prototype devices (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// miniDSP UMA-8 USB microphone array v2.0 — 7 channels.
    D1,
    /// Seeed ReSpeaker Core v2.0 — 6 channels (the paper's default device).
    D2,
    /// Seeed ReSpeaker USB microphone array — 4 channels.
    D3,
}

impl Device {
    /// All devices, in Table I order.
    pub const ALL: [Device; 3] = [Device::D1, Device::D2, Device::D3];

    /// Number of microphones (Table I "Channels").
    pub fn channels(self) -> usize {
        match self {
            Device::D1 => 7,
            Device::D2 => 6,
            Device::D3 => 4,
        }
    }

    /// Distance between orthogonal (diametrically opposite) microphones in
    /// meters (§III-B3: 8.5 cm, 9 cm, 6.5 cm for D1, D2, D3).
    pub fn aperture_m(self) -> f64 {
        match self {
            Device::D1 => 0.085,
            Device::D2 => 0.090,
            Device::D3 => 0.065,
        }
    }

    /// Human-readable device name.
    pub fn name(self) -> &'static str {
        match self {
            Device::D1 => "UMA-8 USB mic array V2.0",
            Device::D2 => "Seeed ReSpeaker Core V2.0",
            Device::D3 => "Seeed ReSpeaker USB Mic Array",
        }
    }

    /// Microphone positions relative to the array center (meters, planar).
    ///
    /// Ring mics sit at equal angular spacing starting from the array's +x
    /// axis; D1 additionally has a center microphone at index 0.
    pub fn mic_offsets(self) -> Vec<Vec3> {
        let r = self.aperture_m() / 2.0;
        match self {
            Device::D1 => {
                let mut mics = vec![Vec3::ZERO];
                mics.extend((0..6).map(|k| ring_position(r, k, 6)));
                mics
            }
            Device::D2 => (0..6).map(|k| ring_position(r, k, 6)).collect(),
            Device::D3 => (0..4).map(|k| ring_position(r, k, 4)).collect(),
        }
    }

    /// The one-sided SRP lag window in samples at 48 kHz, matching the
    /// paper's per-device choices (§III-B3): ±12 for D1 (±0.25 ms), ±13 for
    /// D2 (±0.27 ms), ±10 for D3 (±0.2 ms).
    pub fn srp_max_lag(self) -> usize {
        match self {
            Device::D1 => 12,
            Device::D2 => 13,
            Device::D3 => 10,
        }
    }

    /// The four-microphone subset used for the main evaluation (§IV-A): the
    /// paper selects 4 mics from D1/D2 to stay comparable with D3 and reduce
    /// computation. Indices are 0-based into [`Device::mic_offsets`].
    ///
    /// For ring arrays the subset picks two orthogonal diameters (maximum
    /// spread); D3 already has exactly four microphones.
    pub fn default_subset(self) -> Vec<usize> {
        match self {
            // D1: ring mics 1..=6; {1, 2, 4, 5} are two diameters 60° apart.
            Device::D1 => vec![1, 2, 4, 5],
            // D2 (paper: Mic1, Mic2, Mic4, Mic5 → 0-based 0, 1, 3, 4).
            Device::D2 => vec![0, 1, 3, 4],
            Device::D3 => vec![0, 1, 2, 3],
        }
    }

    /// Places the array in the world: `center` is the array center (the
    /// mounting height goes in `center.z`), `azimuth_deg` rotates the board
    /// about z.
    pub fn array_at(self, center: Vec3, azimuth_deg: f64) -> PlacedArray {
        let mics = self
            .mic_offsets()
            .into_iter()
            .map(|m| center + m.rotate_z_deg(azimuth_deg))
            .collect();
        PlacedArray {
            device: self,
            center,
            mic_positions: mics,
        }
    }
}

fn ring_position(radius: f64, k: usize, n: usize) -> Vec3 {
    let theta = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
    Vec3::new(radius * theta.cos(), radius * theta.sin(), 0.0)
}

/// A device placed in world coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedArray {
    /// Which prototype device this is.
    pub device: Device,
    /// Array center in world coordinates.
    pub center: Vec3,
    /// World positions of all microphones.
    pub mic_positions: Vec<Vec3>,
}

impl PlacedArray {
    /// Number of microphones.
    pub fn channels(&self) -> usize {
        self.mic_positions.len()
    }

    /// Largest distance between any microphone pair (the physical aperture).
    pub fn max_pair_distance(&self) -> f64 {
        let mut d = 0.0f64;
        for i in 0..self.mic_positions.len() {
            for j in (i + 1)..self.mic_positions.len() {
                d = d.max(self.mic_positions[i].distance(self.mic_positions[j]));
            }
        }
        d
    }

    /// Maximum physically possible inter-mic delay in samples at the device
    /// sample rate.
    pub fn max_delay_samples(&self) -> usize {
        (self.max_pair_distance() * SAMPLE_RATE / SPEED_OF_SOUND).ceil() as usize
    }

    /// Selects a subset of microphones by index, preserving order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> PlacedArray {
        PlacedArray {
            device: self.device,
            center: self.center,
            mic_positions: indices.iter().map(|&i| self.mic_positions[i]).collect(),
        }
    }

    /// Greedy max-spread ordering of `n` microphone indices, reproducing the
    /// §IV-B6 protocol: *"We select the microphones in an order that results
    /// in the greatest distance among them."* Starts from the farthest pair,
    /// then repeatedly adds the mic maximizing the minimum distance to the
    /// already-chosen set.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the channel count or `n < 1`.
    pub fn max_spread_indices(&self, n: usize) -> Vec<usize> {
        let total = self.mic_positions.len();
        assert!((1..=total).contains(&n), "n must be in 1..={total}");
        if n == 1 {
            return vec![0];
        }
        // Farthest pair.
        let (mut bi, mut bj, mut bd) = (0, 1, -1.0);
        for i in 0..total {
            for j in (i + 1)..total {
                let d = self.mic_positions[i].distance(self.mic_positions[j]);
                if d > bd {
                    bd = d;
                    bi = i;
                    bj = j;
                }
            }
        }
        let mut chosen = vec![bi, bj];
        while chosen.len() < n {
            let next = (0..total)
                .filter(|i| !chosen.contains(i))
                .max_by(|&a, &b| {
                    let da = chosen
                        .iter()
                        .map(|&c| self.mic_positions[a].distance(self.mic_positions[c]))
                        .fold(f64::INFINITY, f64::min);
                    let db = chosen
                        .iter()
                        .map(|&c| self.mic_positions[b].distance(self.mic_positions[c]))
                        .fold(f64::INFINITY, f64::min);
                    da.total_cmp(&db)
                })
                .expect("candidates remain");
            chosen.push(next);
        }
        chosen.sort_unstable();
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_counts_match_table_one() {
        assert_eq!(Device::D1.channels(), 7);
        assert_eq!(Device::D2.channels(), 6);
        assert_eq!(Device::D3.channels(), 4);
        for d in Device::ALL {
            assert_eq!(d.mic_offsets().len(), d.channels());
        }
    }

    #[test]
    fn apertures_match_paper() {
        assert_eq!(Device::D1.aperture_m(), 0.085);
        assert_eq!(Device::D2.aperture_m(), 0.090);
        assert_eq!(Device::D3.aperture_m(), 0.065);
    }

    #[test]
    fn ring_mics_lie_on_the_stated_diameter() {
        for d in Device::ALL {
            let placed = d.array_at(Vec3::ZERO, 0.0);
            let max = placed.max_pair_distance();
            assert!(
                (max - d.aperture_m()).abs() < 1e-12,
                "{:?}: aperture {max}",
                d
            );
        }
    }

    #[test]
    fn srp_lag_windows_match_paper() {
        assert_eq!(Device::D1.srp_max_lag(), 12);
        assert_eq!(Device::D2.srp_max_lag(), 13);
        assert_eq!(Device::D3.srp_max_lag(), 10);
        // And they are consistent with the physical aperture at 48 kHz.
        for d in Device::ALL {
            let placed = d.array_at(Vec3::ZERO, 0.0);
            let phys = placed.max_delay_samples();
            let window = d.srp_max_lag();
            assert!(
                window >= phys || phys - window <= 1,
                "{:?}: window {window} vs physical {phys}",
                d
            );
        }
    }

    #[test]
    fn placement_translates_and_rotates() {
        let c = Vec3::new(1.0, 2.0, 0.74);
        let placed = Device::D3.array_at(c, 90.0);
        assert_eq!(placed.center, c);
        // First D3 mic starts on +x; rotated 90° it points along +y.
        let m0 = placed.mic_positions[0] - c;
        assert!(m0.x.abs() < 1e-12 && (m0.y - 0.0325).abs() < 1e-12);
    }

    #[test]
    fn default_subsets_are_valid_and_four_wide() {
        for d in Device::ALL {
            let subset = d.default_subset();
            assert_eq!(subset.len(), 4);
            let placed = d.array_at(Vec3::ZERO, 0.0).subset(&subset);
            assert_eq!(placed.channels(), 4);
        }
    }

    #[test]
    fn max_spread_prefers_opposite_mics() {
        let placed = Device::D2.array_at(Vec3::ZERO, 0.0);
        let two = placed.max_spread_indices(2);
        let d = placed.mic_positions[two[0]].distance(placed.mic_positions[two[1]]);
        assert!((d - Device::D2.aperture_m()).abs() < 1e-12);
        // Full set is all indices.
        assert_eq!(placed.max_spread_indices(6), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "n must be")]
    fn max_spread_rejects_oversized_request() {
        Device::D3.array_at(Vec3::ZERO, 0.0).max_spread_indices(5);
    }

    #[test]
    fn d1_has_center_mic() {
        let offsets = Device::D1.mic_offsets();
        assert_eq!(offsets[0], Vec3::ZERO);
        assert!((offsets[1].norm() - 0.0425).abs() < 1e-12);
    }
}
