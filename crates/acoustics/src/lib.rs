//! # ht-acoustics — room-acoustics simulation substrate
//!
//! The HeadTalk paper measures real rooms with real microphone arrays; this
//! crate is the simulated stand-in (see the repository `DESIGN.md` for the
//! substitution argument). It provides:
//!
//! * [`geometry`] — 3-D points/vectors and azimuth conventions,
//! * [`bands`] — the octave bands in which wall absorption and source
//!   directivity are frequency dependent,
//! * [`materials`] — per-band absorption data and Eyring reverberation time,
//! * [`room`] — shoebox rooms (the paper's lab and home), device obstruction
//!   states for the §IV-B13 experiment,
//! * [`directivity`] — frequency-dependent source directivity (human speech
//!   per Monson et al., loudspeakers, omni),
//! * [`mod@array`] — the three prototype microphone arrays of Table I,
//! * [`image_source`] — the image-source reverberation model (Eq. 1),
//! * [`render`] — multichannel rendering of a directional source into an
//!   array inside a room,
//! * [`noise`] — ambient noise fields (white, TV/babble) at calibrated SPL,
//! * [`spl`] — the dB-SPL ↔ amplitude convention used throughout.
//!
//! # Example
//!
//! ```
//! use ht_acoustics::array::Device;
//! use ht_acoustics::directivity::Directivity;
//! use ht_acoustics::geometry::Vec3;
//! use ht_acoustics::render::{RenderConfig, Scene, Source};
//! use ht_acoustics::room::Room;
//!
//! # fn main() -> Result<(), ht_acoustics::AcousticsError> {
//! let room = Room::lab();
//! let scene = Scene {
//!     room,
//!     source: Source {
//!         position: Vec3::new(3.0, 2.0, 1.65),
//!         azimuth_deg: 180.0, // facing away from the array
//!         directivity: Directivity::human_speech(),
//!     },
//!     array: Device::D2.array_at(Vec3::new(0.5, 2.0, 0.74), 0.0),
//! };
//! let signal = vec![0.5; 4800]; // 100 ms of audio at 48 kHz
//! let channels = scene.render(&signal, &RenderConfig::default())?;
//! assert_eq!(channels.len(), 6); // D2 has six microphones
//! # Ok(())
//! # }
//! ```

pub mod array;
pub mod bands;
pub mod directivity;
pub mod error;
pub mod geometry;
pub mod image_source;
pub mod json;
pub mod materials;
pub mod noise;
pub mod render;
pub mod room;
pub mod spl;

pub use error::AcousticsError;

/// Speed of sound used throughout, in m/s (the paper's constant, §III-B3).
pub const SPEED_OF_SOUND: f64 = 340.0;

/// The sample rate all three prototype devices record at (§IV).
pub const SAMPLE_RATE: f64 = 48_000.0;
