//! Ambient noise fields at calibrated SPL.
//!
//! The paper evaluates against two injected noise types (§IV-B10): white
//! noise and "a TV playing a popular series" — people chatting/laughing,
//! doors, footsteps. We synthesize the latter as speech-shaped noise with
//! syllabic amplitude modulation plus sparse broadband transients. Room
//! ambient floors (lab 33 dB, home 43 dB) are low-frequency-weighted rumble,
//! approximating HVAC/appliance/street noise.

use ht_dsp::filter::Butterworth;
use ht_dsp::rng::white_noise;
use ht_dsp::rng::Rng;

/// The kinds of ambient noise used in the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseKind {
    /// Flat-spectrum white noise (§IV-B10).
    White,
    /// TV-series noise: speech-shaped, amplitude modulated, with transients
    /// (§IV-B10).
    Tv,
    /// Low-frequency-weighted room floor (HVAC, refrigerator, street).
    RoomAmbient,
}

/// Generates `n` samples of the given noise kind at `spl_db` dB SPL and
/// `sample_rate` Hz.
///
/// Each microphone channel should get its own call (ambient fields are
/// spatially diffuse, i.e. decorrelated across microphones at speech
/// frequencies for realistic array spacings).
pub fn generate<R: Rng>(
    rng: &mut R,
    kind: NoiseKind,
    n: usize,
    sample_rate: f64,
    spl_db: f64,
) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let mut x = match kind {
        NoiseKind::White => white_noise(rng, n),
        NoiseKind::Tv => tv_shape(rng, n, sample_rate),
        NoiseKind::RoomAmbient => room_shape(rng, n, sample_rate),
    };
    crate::spl::scale_to_spl(&mut x, spl_db);
    x
}

/// Speech-shaped noise with 3–5 Hz syllabic modulation and sparse
/// transients.
fn tv_shape<R: Rng>(rng: &mut R, n: usize, sample_rate: f64) -> Vec<f64> {
    let raw = white_noise(rng, n);
    // Speech band emphasis.
    let bp =
        Butterworth::bandpass(2, 150.0, 3500.0, sample_rate).expect("static corners are valid");
    let mut x = bp.filter(&raw);

    // Syllabic modulation around 4 Hz with random phase/depth.
    let rate = 3.0 + 2.0 * rng.gen::<f64>();
    let phase = rng.gen::<f64>() * std::f64::consts::TAU;
    let depth = 0.5 + 0.3 * rng.gen::<f64>();
    for (i, v) in x.iter_mut().enumerate() {
        let m = 1.0 - depth
            + depth
                * (std::f64::consts::TAU * rate * i as f64 / sample_rate + phase)
                    .sin()
                    .abs();
        *v *= m;
    }

    // Sparse transients: ~1 per second, 30 ms decaying broadband bursts.
    let per_second = 1.0;
    let expected = (n as f64 / sample_rate * per_second).ceil() as usize;
    for _ in 0..expected {
        let at = rng.gen_range(0..n);
        let len = (0.03 * sample_rate) as usize;
        let amp = 2.0 + 2.0 * rng.gen::<f64>();
        for k in 0..len {
            if at + k >= n {
                break;
            }
            let env = (-(k as f64) / (0.008 * sample_rate)).exp();
            x[at + k] += amp * env * ht_dsp::rng::gaussian(rng);
        }
    }
    x
}

/// Low-frequency-weighted floor noise.
fn room_shape<R: Rng>(rng: &mut R, n: usize, sample_rate: f64) -> Vec<f64> {
    let raw = white_noise(rng, n);
    let lp = Butterworth::lowpass(2, 400.0, sample_rate).expect("static corner is valid");
    let mut x = lp.filter(&raw);
    // A little broadband hiss on top so the field is not purely rumble.
    for (v, w) in x.iter_mut().zip(white_noise(rng, n)) {
        *v += 0.05 * w;
    }
    x
}

/// Adds `kind` noise at `spl_db` to every channel in place (independent
/// noise per channel).
pub fn add_to_channels<R: Rng>(
    rng: &mut R,
    channels: &mut [Vec<f64>],
    kind: NoiseKind,
    sample_rate: f64,
    spl_db: f64,
) {
    for ch in channels.iter_mut() {
        let noise = generate(rng, kind, ch.len(), sample_rate, spl_db);
        for (c, v) in ch.iter_mut().zip(noise.iter()) {
            *c += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spl::amplitude_for_spl;
    use ht_dsp::rng::{SeedableRng, StdRng};
    use ht_dsp::spectrum::Spectrum;

    const FS: f64 = 48_000.0;

    #[test]
    fn level_calibration_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [NoiseKind::White, NoiseKind::Tv, NoiseKind::RoomAmbient] {
            let x = generate(&mut rng, kind, 48_000, FS, 43.0);
            let rms = ht_dsp::signal::rms(&x);
            assert!(
                (rms - amplitude_for_spl(43.0)).abs() < 1e-9,
                "{kind:?}: rms {rms}"
            );
        }
    }

    #[test]
    fn white_noise_is_roughly_flat() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = generate(&mut rng, NoiseKind::White, 96_000, FS, 60.0);
        let s = Spectrum::of(&x, FS).unwrap();
        let low = s.band_energy(500.0, 4000.0);
        let high = s.band_energy(8000.0, 11_500.0);
        // Equal bandwidths -> comparable energy.
        let ratio = low / high;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn tv_noise_is_speech_band_weighted() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = generate(&mut rng, NoiseKind::Tv, 96_000, FS, 60.0);
        let s = Spectrum::of(&x, FS).unwrap();
        assert!(s.band_energy(200.0, 3000.0) > 5.0 * s.band_energy(8000.0, 10_800.0));
    }

    #[test]
    fn room_ambient_is_low_frequency_weighted() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = generate(&mut rng, NoiseKind::RoomAmbient, 96_000, FS, 40.0);
        let s = Spectrum::of(&x, FS).unwrap();
        assert!(s.band_energy(50.0, 400.0) > 3.0 * s.band_energy(2000.0, 2350.0));
    }

    #[test]
    fn tv_noise_has_amplitude_modulation() {
        // Frame-level RMS of TV noise varies much more than white noise.
        let mut rng = StdRng::seed_from_u64(5);
        let tv = generate(&mut rng, NoiseKind::Tv, 96_000, FS, 60.0);
        let wh = generate(&mut rng, NoiseKind::White, 96_000, FS, 60.0);
        let frame_rms = |x: &[f64]| {
            ht_dsp::stft::frames(x, 4800, 4800)
                .iter()
                .map(|f| ht_dsp::signal::rms(f))
                .collect::<Vec<_>>()
        };
        let cv = |r: &[f64]| ht_dsp::stats::std_dev(r) / ht_dsp::stats::mean(r);
        assert!(cv(&frame_rms(&tv)) > 3.0 * cv(&frame_rms(&wh)));
    }

    #[test]
    fn add_to_channels_is_decorrelated() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut chans = vec![vec![0.0; 24_000]; 2];
        add_to_channels(&mut rng, &mut chans, NoiseKind::White, FS, 60.0);
        let c = ht_dsp::correlate::xcorr(&chans[0], &chans[1], 0).unwrap();
        let auto = ht_dsp::correlate::xcorr(&chans[0], &chans[0], 0).unwrap();
        assert!(c.at(0).abs() < 0.05 * auto.at(0));
    }

    #[test]
    fn empty_request_is_empty() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(generate(&mut rng, NoiseKind::White, 0, FS, 40.0).is_empty());
    }
}
