//! Multichannel rendering: a directional source in a shoebox room captured
//! by a microphone array.
//!
//! For each microphone the renderer sums, per octave band, every image-source
//! path (delay `d/c`, spherical spreading `1/d`, wall/air attenuation, and
//! the *source directivity evaluated at the path's departure direction* —
//! this is where speaker orientation enters the physics), then adds a
//! statistically-diffuse late tail whose level follows the room's
//! reverberant-field gain and decay time. The result reproduces both of the
//! paper's insights: the reverberation structure changes with orientation
//! (Insight 1) and the high/low-band balance changes with orientation
//! (Insight 2).

use crate::array::PlacedArray;
use crate::bands::{BandSplitter, NUM_BANDS};
use crate::directivity::Directivity;
use crate::geometry::{angle_between_deg, Vec3};
use crate::image_source::image_paths;
use crate::room::{Obstruction, Room};
use crate::{AcousticsError, SAMPLE_RATE, SPEED_OF_SOUND};
use ht_dsp::rng::{SeedableRng, StdRng};

/// A sound source: position, horizontal facing direction, and radiation
/// pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Source {
    /// Position in the room (meters; `z` is mouth/driver height).
    pub position: Vec3,
    /// Horizontal facing azimuth in degrees (see [`crate::geometry`]).
    pub azimuth_deg: f64,
    /// Frequency-dependent radiation pattern.
    pub directivity: Directivity,
}

/// A complete acoustic scene.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    /// The room.
    pub room: Room,
    /// The sound source.
    pub source: Source,
    /// The receiving microphone array.
    pub array: PlacedArray,
}

/// Rendering parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderConfig {
    /// Maximum total reflection order for image sources (3 covers the early
    /// reflections that carry the orientation signal; the diffuse tail
    /// stands in for higher orders).
    pub max_order: u32,
    /// Sample rate in Hz.
    pub sample_rate: f64,
    /// Obstruction state of the device (§IV-B13).
    pub obstruction: Obstruction,
    /// Seed for the diffuse-tail noise (renders are deterministic given the
    /// seed).
    pub scatter_seed: u64,
}

impl Default for RenderConfig {
    fn default() -> Self {
        RenderConfig {
            max_order: 3,
            sample_rate: SAMPLE_RATE,
            obstruction: Obstruction::None,
            scatter_seed: 0,
        }
    }
}

/// Cubic Lagrange fractional-delay taps for fraction `mu` in `[0, 1)`,
/// applied at integer offsets `-1, 0, 1, 2` around the base index.
fn lagrange_taps(mu: f64) -> [f64; 4] {
    [
        -mu * (mu - 1.0) * (mu - 2.0) / 6.0,
        (mu * mu - 1.0) * (mu - 2.0) / 2.0,
        -mu * (mu + 1.0) * (mu - 2.0) / 2.0,
        mu * (mu * mu - 1.0) / 6.0,
    ]
}

impl Scene {
    /// Renders `signal` (the dry source waveform, calibrated at the 1 m
    /// reference level) into one output waveform per microphone.
    ///
    /// All channels share the same length,
    /// `signal.len() + longest_path_delay + 8` samples.
    ///
    /// # Errors
    ///
    /// Returns [`AcousticsError::InvalidGeometry`] when the source or any
    /// microphone lies outside the room, and
    /// [`AcousticsError::InvalidParameter`] for an empty signal.
    #[allow(clippy::needless_range_loop)] // band indices address parallel arrays
    pub fn render(
        &self,
        signal: &[f64],
        cfg: &RenderConfig,
    ) -> Result<Vec<Vec<f64>>, AcousticsError> {
        let _span = ht_obs::span("acoustics.render");
        if signal.is_empty() {
            return Err(AcousticsError::InvalidParameter(
                "signal must be non-empty".into(),
            ));
        }
        let fs = cfg.sample_rate;
        let splitter = BandSplitter::new(fs);
        let band_signals = splitter.split(signal);

        // Enumerate paths per microphone first to size the output buffers.
        let mut all_paths = Vec::with_capacity(self.array.channels());
        let mut max_delay = 0usize;
        for mic in &self.array.mic_positions {
            let paths = image_paths(&self.room, self.source.position, *mic, cfg.max_order)?;
            let longest = paths.last().map(|p| p.distance).unwrap_or(0.0);
            max_delay = max_delay.max((longest / SPEED_OF_SOUND * fs).ceil() as usize);
            all_paths.push(paths);
        }
        let n_out = signal.len() + max_delay + 8;

        let direct_gain = cfg.obstruction.direct_path_gain();
        let clutter = cfg.obstruction.clutter_reflection_gain();
        let rt60 = self.room.rt60();
        let mean_alpha = self.room.mean_absorption();
        let surface = self.room.surface_area();

        // Each microphone renders independently: the per-mic diffuse-tail
        // RNG is forked from (scatter_seed, mic index), never shared, so the
        // parallel render is byte-identical to the serial one for any thread
        // count.
        let channels = ht_par::par_map_indexed(&all_paths, |mic_idx, paths| {
            let mut out = vec![0.0f64; n_out];

            for path in paths {
                let phi = angle_between_deg(path.departure_azimuth_deg, self.source.azimuth_deg);
                let spread = 1.0 / path.distance.max(0.2);
                let delay = path.distance / SPEED_OF_SOUND * fs;
                let base = delay.floor() as usize;
                let taps = lagrange_taps(delay - delay.floor());

                for b in 0..NUM_BANDS {
                    let mut amp =
                        path.band_gain.get(b) * self.source.directivity.gain(b, phi) * spread;
                    // Obstruction shadows the direct path fully and the
                    // first-order reflections partially (they graze the
                    // clutter on one leg).
                    match path.order {
                        0 => amp *= direct_gain.get(b),
                        1 => amp *= direct_gain.get(b).sqrt(),
                        _ => {}
                    }
                    if amp == 0.0 {
                        continue;
                    }
                    let band = &band_signals[b];
                    for (t, &tap) in taps.iter().enumerate() {
                        // Tap offsets are -1, 0, 1, 2 around `base`.
                        let off = base + t;
                        if off == 0 {
                            continue; // the -1 tap of a zero-delay path
                        }
                        ht_dsp::signal::mix_into(&mut out, band, off - 1, amp * tap);
                    }
                }
            }

            // Clutter bounce: one extra strong early reflection off the
            // obstructing objects, arriving just after the direct sound,
            // spectrally flat and direction-less.
            if clutter > 0.0 {
                let direct = &paths[0];
                let delay = direct.distance / SPEED_OF_SOUND * fs + 0.0008 * fs;
                let base = delay.floor() as usize;
                let taps = lagrange_taps(delay - delay.floor());
                let amp = clutter / direct.distance.max(0.2);
                for b in 0..NUM_BANDS {
                    let band = &band_signals[b];
                    for (t, &tap) in taps.iter().enumerate() {
                        let off = base + t;
                        if off == 0 {
                            continue;
                        }
                        ht_dsp::signal::mix_into(&mut out, band, off - 1, amp * tap * 0.7);
                    }
                }
            }

            // Diffuse late tail: a noise field whose instantaneous level
            // follows the source energy smoothed with the room's RT60 and
            // whose gain is the classical reverberant-field gain
            // sqrt(4(1-a)/(S a)), scaled by the room's clutter/scattering.
            let mut rng = StdRng::seed_from_u64(
                cfg.scatter_seed ^ (mic_idx as u64).wrapping_mul(0x9E3779B97F4A7C15),
            );
            let onset = (paths[0].distance / SPEED_OF_SOUND * fs) as usize + (0.008 * fs) as usize;
            for b in 0..NUM_BANDS {
                let alpha = mean_alpha.get(b).clamp(0.02, 0.98);
                let rev_gain = (4.0 * (1.0 - alpha) / (surface * alpha)).sqrt();
                let g = rev_gain * self.room.scattering * 3.0;
                if g <= 0.0 {
                    continue;
                }
                let tau = rt60.get(b) / 6.91; // energy e-folding time
                let decay = (-1.0 / (tau * fs)).exp();
                let band = &band_signals[b];
                let mut energy = 0.0f64;
                for n in 0..n_out {
                    let inject = if n >= onset && n - onset < band.len() {
                        let v = band[n - onset];
                        v * v
                    } else {
                        0.0
                    };
                    energy = decay * energy + (1.0 - decay) * inject;
                    out[n] += g * energy.sqrt() * ht_dsp::rng::gaussian(&mut rng);
                }
            }

            out
        });
        Ok(channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Device;
    use ht_dsp::rng::white_noise;
    use ht_dsp::signal::rms;

    fn test_signal(n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(99);
        let mut x = white_noise(&mut rng, n);
        // Speech-band shape so every octave band has energy.
        let bp = ht_dsp::filter::Butterworth::bandpass(2, 120.0, 10_000.0, SAMPLE_RATE).unwrap();
        x = bp.filter(&x);
        ht_dsp::signal::normalize_peak(&mut x, 0.5);
        x
    }

    fn scene(source_azimuth: f64, distance: f64) -> Scene {
        let room = Room::lab();
        let array_pos = Vec3::new(0.6, 2.1, 0.74);
        Scene {
            room,
            source: Source {
                position: Vec3::new(0.6 + distance, 2.1, 1.65),
                azimuth_deg: source_azimuth,
                directivity: Directivity::human_speech(),
            },
            array: Device::D3.array_at(array_pos, 0.0),
        }
    }

    fn fast_cfg() -> RenderConfig {
        RenderConfig {
            max_order: 2,
            ..RenderConfig::default()
        }
    }

    #[test]
    fn channel_count_and_equal_lengths() {
        let sc = scene(180.0, 2.0);
        let out = sc.render(&test_signal(2400), &fast_cfg()).unwrap();
        assert_eq!(out.len(), 4);
        let len = out[0].len();
        assert!(out.iter().all(|c| c.len() == len));
        assert!(len > 2400);
        assert!(out.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn facing_source_is_louder_than_backward() {
        // Fig. 5: same utterance at 0° vs 180° — forward has the higher
        // received magnitude.
        let x = test_signal(2400);
        // Source faces the array when its azimuth points back along -x,
        // i.e. 180 in world coords; our scene has the source at +x of the
        // array, so facing the device means azimuth 180.
        let facing = scene(180.0, 2.0).render(&x, &fast_cfg()).unwrap();
        let backward = scene(0.0, 2.0).render(&x, &fast_cfg()).unwrap();
        let rf = rms(&facing[0]);
        let rb = rms(&backward[0]);
        assert!(rf > 1.2 * rb, "facing rms {rf} vs backward {rb}");
    }

    #[test]
    fn facing_source_has_higher_hlbr() {
        // Insight 2: the high/low band balance degrades off-axis.
        let x = test_signal(4800);
        let facing = scene(180.0, 2.0).render(&x, &fast_cfg()).unwrap();
        let backward = scene(0.0, 2.0).render(&x, &fast_cfg()).unwrap();
        let h_f = ht_dsp::spectrum::hlbr(
            &ht_dsp::spectrum::Spectrum::of(&facing[0], SAMPLE_RATE).unwrap(),
        );
        let h_b = ht_dsp::spectrum::hlbr(
            &ht_dsp::spectrum::Spectrum::of(&backward[0], SAMPLE_RATE).unwrap(),
        );
        assert!(h_f > h_b, "facing HLBR {h_f} vs backward {h_b}");
    }

    #[test]
    fn inter_mic_delay_matches_geometry() {
        // Two D3 mics are 6.5 cm apart along x; a source along +x hits the
        // far mic later by ~aperture/c.
        let sc = scene(180.0, 3.0);
        let out = sc
            .render(
                &test_signal(4800),
                &RenderConfig {
                    max_order: 0, // direct path only: clean TDoA
                    ..RenderConfig::default()
                },
            )
            .unwrap();
        // D3 mic 0 is at +x (closer to source), mic 2 at -x (farther).
        let est = ht_dsp::correlate::tdoa_samples(&out[2], &out[0], 12).unwrap();
        let expected = 0.065 * SAMPLE_RATE / SPEED_OF_SOUND; // ≈ 9.2 samples
        assert!(
            (est - expected).abs() < 0.7,
            "estimated {est}, expected {expected}"
        );
    }

    #[test]
    fn reverberation_extends_the_signal() {
        let sc = scene(180.0, 2.0);
        let x = test_signal(2400);
        let dry_len = x.len();
        let out = sc.render(&x, &fast_cfg()).unwrap();
        // Energy after the dry signal ends (reverb tail) is non-zero.
        let tail = &out[0][dry_len..];
        assert!(rms(tail) > 0.0);
    }

    #[test]
    fn full_obstruction_kills_high_band_direct_energy() {
        let x = test_signal(4800);
        let sc = scene(180.0, 2.0);
        let open = sc.render(&x, &fast_cfg()).unwrap();
        let blocked = sc
            .render(
                &x,
                &RenderConfig {
                    obstruction: Obstruction::Full,
                    ..fast_cfg()
                },
            )
            .unwrap();
        let hb = |c: &[f64]| {
            ht_dsp::spectrum::Spectrum::of(c, SAMPLE_RATE)
                .unwrap()
                .band_energy(4000.0, 10_000.0)
        };
        assert!(hb(&blocked[0]) < 0.5 * hb(&open[0]));
    }

    #[test]
    fn renders_are_deterministic_given_seed() {
        let x = test_signal(2400);
        let sc = scene(45.0, 2.0);
        let a = sc.render(&x, &fast_cfg()).unwrap();
        let b = sc.render(&x, &fast_cfg()).unwrap();
        assert_eq!(a, b);
        let c = sc
            .render(
                &x,
                &RenderConfig {
                    scatter_seed: 1,
                    ..fast_cfg()
                },
            )
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn empty_signal_is_rejected() {
        assert!(scene(0.0, 2.0).render(&[], &fast_cfg()).is_err());
    }

    #[test]
    fn source_outside_room_is_rejected() {
        let mut sc = scene(0.0, 2.0);
        sc.source.position = Vec3::new(-1.0, 0.0, 1.0);
        assert!(sc.render(&test_signal(512), &fast_cfg()).is_err());
    }

    #[test]
    fn lagrange_taps_identity_at_zero() {
        let t = lagrange_taps(0.0);
        assert!((t[1] - 1.0).abs() < 1e-12);
        assert!(t[0].abs() < 1e-12 && t[2].abs() < 1e-12 && t[3].abs() < 1e-12);
        // Taps always sum to 1 (DC preservation).
        for mu in [0.1, 0.35, 0.5, 0.9] {
            let s: f64 = lagrange_taps(mu).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn closer_source_is_louder() {
        let x = test_signal(2400);
        let near = scene(180.0, 1.0).render(&x, &fast_cfg()).unwrap();
        let far = scene(180.0, 4.0).render(&x, &fast_cfg()).unwrap();
        assert!(rms(&near[0]) > 1.5 * rms(&far[0]));
    }
}
