//! Shoebox rooms, including the paper's lab and home environments, and the
//! device-obstruction states of the surrounding-objects experiment
//! (§IV-B13).

use crate::bands::{BandValues, NUM_BANDS};
use crate::geometry::Vec3;
use crate::materials::{eyring_rt60, Material};
use ht_dsp::rng::Rng;

/// The six surfaces of a shoebox room.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Surface {
    /// Floor (z = 0).
    Floor,
    /// Ceiling (z = height).
    Ceiling,
    /// Wall at x = 0.
    WallX0,
    /// Wall at x = length.
    WallX1,
    /// Wall at y = 0.
    WallY0,
    /// Wall at y = width.
    WallY1,
}

impl Surface {
    /// All six surfaces.
    pub const ALL: [Surface; 6] = [
        Surface::Floor,
        Surface::Ceiling,
        Surface::WallX0,
        Surface::WallX1,
        Surface::WallY0,
        Surface::WallY1,
    ];
}

/// Obstruction state of the device, reproducing the §IV-B13 setups
/// (Fig. 17): unobstructed, partially blocked by nearby objects, fully
/// blocked, or raised above the surrounding objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Obstruction {
    /// Open placement (default).
    #[default]
    None,
    /// Objects beside the device partially shadow the direct path.
    Partial,
    /// Objects surround the device; the direct path is heavily shadowed and
    /// the response is dominated by diffracted/reflected energy.
    Full,
    /// Device raised above the surrounding objects (the paper raises it
    /// 14.8 cm), restoring the direct path.
    Raised,
}

impl Obstruction {
    /// Per-band gain applied to the *direct* (and first-order) propagation
    /// paths. Diffraction passes low frequencies around an obstacle more
    /// readily than high frequencies, so blocking is band-dependent — this is
    /// exactly why a fully blocked device "hears the voice like a speech
    /// coming from the backward direction" (§IV-B13): the facing cues live in
    /// the high bands.
    pub fn direct_path_gain(self) -> BandValues {
        match self {
            Obstruction::None | Obstruction::Raised => BandValues::flat(1.0),
            Obstruction::Partial => BandValues([0.9, 0.85, 0.75, 0.6, 0.5, 0.4, 0.35]),
            Obstruction::Full => BandValues([0.6, 0.45, 0.3, 0.15, 0.08, 0.04, 0.03]),
        }
    }

    /// Gain on a strong extra early reflection off the obstructing objects
    /// themselves (zero when unobstructed).
    pub fn clutter_reflection_gain(self) -> f64 {
        match self {
            Obstruction::None | Obstruction::Raised => 0.0,
            Obstruction::Partial => 0.25,
            Obstruction::Full => 0.5,
        }
    }
}

/// A shoebox room with per-surface materials.
#[derive(Debug, Clone, PartialEq)]
pub struct Room {
    /// Interior length along x, in meters.
    pub length: f64,
    /// Interior width along y, in meters.
    pub width: f64,
    /// Interior height along z, in meters.
    pub height: f64,
    /// Materials in [`Surface::ALL`] order.
    pub materials: [Material; 6],
    /// Extra diffuse scattering strength in `[0, 1]` — a proxy for clutter
    /// (furniture) that is not part of the shoebox geometry. Higher values
    /// add more late, direction-less energy. The home setting is more
    /// cluttered than the lab.
    pub scattering: f64,
    /// Human-readable name ("lab", "home", …).
    pub name: String,
}

impl Room {
    /// Builds a room from dimensions and a uniform wall material, with
    /// floor/ceiling overridden separately.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is non-positive.
    pub fn new(
        name: impl Into<String>,
        length: f64,
        width: f64,
        height: f64,
        walls: Material,
        floor: Material,
        ceiling: Material,
    ) -> Room {
        assert!(
            length > 0.0 && width > 0.0 && height > 0.0,
            "room dimensions must be positive"
        );
        Room {
            length,
            width,
            height,
            materials: [floor, ceiling, walls, walls, walls, walls],
            scattering: 0.1,
            name: name.into(),
        }
    }

    /// The paper's lab: a 280 ft² office, 20' × 14' with a 10' dropped
    /// ceiling (§IV, Fig. 8). Quiet (33 dB SPL ambient), acoustic ceiling
    /// tile, carpeted floor.
    pub fn lab() -> Room {
        let mut r = Room::new(
            "lab",
            6.10,
            4.27,
            3.05,
            Material::drywall(),
            Material::carpet(),
            Material::ceiling_tile(),
        );
        r.scattering = 0.08;
        r
    }

    /// The paper's home: a 33' × 10' × 8' apartment living room (§IV,
    /// Fig. 9). Harder surfaces, more furniture clutter, noisier ambient
    /// (43 dB SPL).
    pub fn home() -> Room {
        let mut r = Room::new(
            "home",
            10.06,
            3.05,
            2.44,
            Material::drywall(),
            Material::wood_floor(),
            Material::drywall(),
        );
        // One long wall is heavily furnished (sofa, shelves, curtains).
        r.materials[4] = Material::furnished();
        r.scattering = 0.2;
        r
    }

    /// Interior volume in m³.
    pub fn volume(&self) -> f64 {
        self.length * self.width * self.height
    }

    /// Total interior surface area in m².
    pub fn surface_area(&self) -> f64 {
        2.0 * (self.length * self.width + self.length * self.height + self.width * self.height)
    }

    /// Surface-area-weighted mean absorption per band.
    pub fn mean_absorption(&self) -> BandValues {
        let areas = [
            self.length * self.width,  // floor
            self.length * self.width,  // ceiling
            self.width * self.height,  // x0
            self.width * self.height,  // x1
            self.length * self.height, // y0
            self.length * self.height, // y1
        ];
        let total: f64 = areas.iter().sum();
        let mut acc = [0.0; NUM_BANDS];
        for (m, &a) in self.materials.iter().zip(areas.iter()) {
            for (out, &alpha) in acc.iter_mut().zip(m.absorption.0.iter()) {
                *out += alpha * a / total;
            }
        }
        BandValues(acc)
    }

    /// Eyring RT60 per band (§III-B2, Eyring 1930).
    pub fn rt60(&self) -> BandValues {
        let v = self.volume();
        let s = self.surface_area();
        let alpha = self.mean_absorption();
        let mut out = [0.0; NUM_BANDS];
        for (o, &a) in out.iter_mut().zip(alpha.0.iter()) {
            *o = eyring_rt60(v, s, a.clamp(0.01, 0.99));
        }
        BandValues(out)
    }

    /// `true` if `p` lies strictly inside the room.
    pub fn contains(&self, p: Vec3) -> bool {
        p.x > 0.0
            && p.x < self.length
            && p.y > 0.0
            && p.y < self.width
            && p.z > 0.0
            && p.z < self.height
    }

    /// A copy with every material's per-band absorption perturbed by
    /// independent multiplicative noise `(1 + sd·N(0,1))` clamped to
    /// `[0.01, 0.95]` — models day-to-day changes in furnishings/temperature
    /// for the temporal-stability experiment (§IV-B9).
    pub fn with_perturbed_absorption<R: Rng>(&self, rng: &mut R, sd: f64) -> Room {
        let mut room = self.clone();
        for m in &mut room.materials {
            let mut a = m.absorption.0;
            for v in &mut a {
                *v = (*v * (1.0 + sd * ht_dsp::rng::gaussian(rng))).clamp(0.01, 0.95);
            }
            m.absorption = BandValues(a);
        }
        room.scattering =
            (room.scattering * (1.0 + sd * ht_dsp::rng::gaussian(rng))).clamp(0.0, 0.6);
        room
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::rng::{SeedableRng, StdRng};

    #[test]
    fn lab_and_home_match_paper_dimensions() {
        let lab = Room::lab();
        assert!((lab.length - 6.10).abs() < 0.01);
        assert!((lab.volume() - 6.10 * 4.27 * 3.05).abs() < 1e-9);
        let home = Room::home();
        assert!((home.length - 10.06).abs() < 0.01);
        assert!(home.height < lab.height);
    }

    #[test]
    fn home_is_more_reverberant_than_lab_in_mid_band() {
        // The lab's ceiling tile and carpet soak up mid/high energy; the
        // home's drywall and wood floor do not.
        let lab = Room::lab().rt60();
        let home = Room::home().rt60();
        assert!(
            home.get(3) > lab.get(3),
            "home {} vs lab {}",
            home.get(3),
            lab.get(3)
        );
    }

    #[test]
    fn rt60_values_are_room_scale() {
        for room in [Room::lab(), Room::home()] {
            for b in 0..NUM_BANDS {
                let t = room.rt60().get(b);
                assert!((0.05..3.0).contains(&t), "{}: band {b} rt60 {t}", room.name);
            }
        }
    }

    #[test]
    fn contains_checks_strict_interior() {
        let lab = Room::lab();
        assert!(lab.contains(Vec3::new(3.0, 2.0, 1.5)));
        assert!(!lab.contains(Vec3::new(0.0, 2.0, 1.5)));
        assert!(!lab.contains(Vec3::new(3.0, 2.0, 4.0)));
        assert!(!lab.contains(Vec3::new(-1.0, 2.0, 1.5)));
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn zero_dimension_panics() {
        Room::new(
            "bad",
            0.0,
            1.0,
            1.0,
            Material::drywall(),
            Material::carpet(),
            Material::drywall(),
        );
    }

    #[test]
    fn perturbation_changes_but_stays_valid() {
        let lab = Room::lab();
        let mut rng = StdRng::seed_from_u64(5);
        let p = lab.with_perturbed_absorption(&mut rng, 0.15);
        assert_ne!(p.materials[0].absorption, lab.materials[0].absorption);
        for m in &p.materials {
            for a in m.absorption.0 {
                assert!((0.01..=0.95).contains(&a));
            }
        }
        // Geometry untouched.
        assert_eq!(p.length, lab.length);
    }

    #[test]
    fn obstruction_gains_are_ordered() {
        let none = Obstruction::None.direct_path_gain();
        let partial = Obstruction::Partial.direct_path_gain();
        let full = Obstruction::Full.direct_path_gain();
        for b in 0..NUM_BANDS {
            assert!(none.get(b) >= partial.get(b));
            assert!(partial.get(b) > full.get(b));
        }
        // Blocking hits high bands hardest.
        assert!(full.get(6) < full.get(0));
        assert_eq!(
            Obstruction::Raised.direct_path_gain(),
            Obstruction::None.direct_path_gain()
        );
    }
}
