//! Sound-pressure-level (SPL) calibration.
//!
//! The reproduction uses a fixed digital full-scale convention: an RMS
//! amplitude of 1.0 corresponds to 94 dB SPL at the source's 1 m reference
//! distance. The paper's utterance loudness levels (60/70/80 dB, §IV) and
//! ambient noise floors (33/43/45 dB) all map through this one constant, so
//! relative levels — which are what the experiments measure — are exact.

/// RMS amplitude 1.0 ≡ this many dB SPL (at the 1 m reference distance).
pub const FULL_SCALE_DB_SPL: f64 = 94.0;

/// RMS amplitude corresponding to `spl_db` dB SPL.
///
/// ```
/// let a = ht_acoustics::spl::amplitude_for_spl(94.0);
/// assert!((a - 1.0).abs() < 1e-12);
/// assert!(ht_acoustics::spl::amplitude_for_spl(74.0) < a);
/// ```
pub fn amplitude_for_spl(spl_db: f64) -> f64 {
    10f64.powf((spl_db - FULL_SCALE_DB_SPL) / 20.0)
}

/// dB SPL corresponding to an RMS amplitude (`-inf` for silence).
pub fn spl_for_amplitude(rms: f64) -> f64 {
    FULL_SCALE_DB_SPL + 20.0 * rms.log10()
}

/// Scales `signal` in place so its RMS equals the amplitude of `spl_db`
/// dB SPL. Silence is left untouched.
pub fn scale_to_spl(signal: &mut [f64], spl_db: f64) {
    let current = ht_dsp::signal::rms(signal);
    if current <= 0.0 {
        return;
    }
    let target = amplitude_for_spl(spl_db);
    let g = target / current;
    for v in signal.iter_mut() {
        *v *= g;
    }
}

/// The paper's default utterance loudness (§IV "Data Collection Process").
pub const DEFAULT_UTTERANCE_SPL: f64 = 70.0;
/// Ambient noise floor measured in the lab (§IV).
pub const LAB_AMBIENT_SPL: f64 = 33.0;
/// Ambient noise floor measured in the home (§IV).
pub const HOME_AMBIENT_SPL: f64 = 43.0;
/// Level of the injected ambient noise in the §IV-B10 experiment.
pub const AMBIENT_EXPERIMENT_SPL: f64 = 45.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_spl_amplitude() {
        for spl in [33.0, 43.0, 60.0, 70.0, 80.0, 94.0] {
            let a = amplitude_for_spl(spl);
            assert!((spl_for_amplitude(a) - spl).abs() < 1e-9);
        }
    }

    #[test]
    fn ten_db_is_a_sqrt10_amplitude_ratio() {
        let r = amplitude_for_spl(80.0) / amplitude_for_spl(70.0);
        assert!((r - 10f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn scale_to_spl_sets_rms() {
        let mut x: Vec<f64> = (0..4800).map(|n| (n as f64 * 0.13).sin() * 3.0).collect();
        scale_to_spl(&mut x, 70.0);
        let rms = ht_dsp::signal::rms(&x);
        assert!((spl_for_amplitude(rms) - 70.0).abs() < 1e-9);
        // Silence stays silent.
        let mut z = vec![0.0; 16];
        scale_to_spl(&mut z, 70.0);
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn paper_levels_are_ordered_sensibly() {
        assert!(amplitude_for_spl(LAB_AMBIENT_SPL) < amplitude_for_spl(HOME_AMBIENT_SPL));
        assert!(amplitude_for_spl(HOME_AMBIENT_SPL) < amplitude_for_spl(DEFAULT_UTTERANCE_SPL));
        // Speech at 70 dB has ~37 dB SNR over the lab floor.
        let snr = DEFAULT_UTTERANCE_SPL - LAB_AMBIENT_SPL;
        assert_eq!(snr, 37.0);
    }
}
