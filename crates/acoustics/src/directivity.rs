//! Frequency-dependent source directivity.
//!
//! Insight 2 of the paper (§III-B2): *"higher frequency acoustic signals are
//! more directional, carrying the most significant amplitude in their emitted
//! direction, while lower frequency components spread out in a more
//! omnidirectional fashion"* (speech directivity, Monson et al. 2012).
//!
//! We model directivity as a per-band cardioid-family pattern
//!
//! `g_b(φ) = floor_b + (1 − floor_b) · ((1 + cos φ) / 2)^{p_b}`
//!
//! where `φ` is the angle between the source's facing direction and the
//! departure direction, `p_b` grows with band frequency (sharper beams at
//! high frequency) and `floor_b` is the rear-radiation floor (low
//! frequencies diffract around the head; high frequencies barely do).

use crate::bands::{BandValues, NUM_BANDS};

/// A frequency-dependent radiation pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Directivity {
    /// Beam sharpness exponent per band (0 = omnidirectional).
    pub exponent: BandValues,
    /// Rear-radiation floor per band, in `[0, 1]`.
    pub floor: BandValues,
}

impl Directivity {
    /// Perfectly omnidirectional source (unit gain everywhere).
    pub const fn omni() -> Directivity {
        Directivity {
            exponent: BandValues::flat(0.0),
            floor: BandValues::flat(1.0),
        }
    }

    /// Human speech directivity: nearly omni at 125 Hz, strongly directional
    /// by 8 kHz. Exponents/floors follow the trend of Monson et al.'s
    /// horizontal directivity measurements (≈3 dB front/back difference at
    /// low bands growing beyond 10 dB above 4 kHz).
    pub const fn human_speech() -> Directivity {
        Directivity {
            exponent: BandValues([0.3, 0.5, 0.8, 1.2, 1.8, 2.6, 3.5]),
            floor: BandValues([0.65, 0.50, 0.38, 0.28, 0.18, 0.10, 0.06]),
        }
    }

    /// A boxed loudspeaker: more uniform directivity than a human head.
    /// Cone breakup makes the top bands beam somewhat, but the rear floor is
    /// governed by the enclosure, not a head/torso baffle.
    pub const fn loudspeaker() -> Directivity {
        Directivity {
            exponent: BandValues([0.1, 0.2, 0.4, 0.7, 1.0, 1.4, 1.8]),
            floor: BandValues([0.80, 0.70, 0.60, 0.50, 0.42, 0.35, 0.30]),
        }
    }

    /// A small phone speaker: almost omni (tiny baffle).
    pub const fn phone_speaker() -> Directivity {
        Directivity {
            exponent: BandValues([0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9]),
            floor: BandValues([0.90, 0.85, 0.80, 0.72, 0.65, 0.58, 0.52]),
        }
    }

    /// Gain in band `b` at angle `phi_deg` off the facing axis.
    ///
    /// # Panics
    ///
    /// Panics if `b >= NUM_BANDS`.
    pub fn gain(&self, b: usize, phi_deg: f64) -> f64 {
        assert!(b < NUM_BANDS, "band index {b} out of range");
        let phi = phi_deg.to_radians();
        let cardioid = ((1.0 + phi.cos()) / 2.0).max(0.0);
        let p = self.exponent.get(b);
        let fl = self.floor.get(b);
        fl + (1.0 - fl) * cardioid.powf(p)
    }

    /// Per-band gains at angle `phi_deg`.
    pub fn gains(&self, phi_deg: f64) -> BandValues {
        let mut out = [0.0; NUM_BANDS];
        for (b, o) in out.iter_mut().enumerate() {
            *o = self.gain(b, phi_deg);
        }
        BandValues(out)
    }

    /// Front-to-back ratio in dB for band `b` (a directivity summary).
    pub fn front_back_db(&self, b: usize) -> f64 {
        20.0 * (self.gain(b, 0.0) / self.gain(b, 180.0)).log10()
    }

    /// A slightly perturbed copy — per-speaker anatomical variation for the
    /// cross-user experiments. `sd` is the relative jitter.
    pub fn perturbed<R: ht_dsp::rng::Rng>(&self, rng: &mut R, sd: f64) -> Directivity {
        let mut e = self.exponent.0;
        let mut f = self.floor.0;
        for v in &mut e {
            *v = (*v * (1.0 + sd * ht_dsp::rng::gaussian(rng))).max(0.0);
        }
        for v in &mut f {
            *v = (*v * (1.0 + sd * ht_dsp::rng::gaussian(rng))).clamp(0.01, 1.0);
        }
        Directivity {
            exponent: BandValues(e),
            floor: BandValues(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_is_maximal_on_axis() {
        let d = Directivity::human_speech();
        for b in 0..NUM_BANDS {
            let on = d.gain(b, 0.0);
            for phi in [30.0, 60.0, 90.0, 150.0, 180.0] {
                assert!(on >= d.gain(b, phi), "band {b}, phi {phi}");
            }
            assert!((on - 1.0).abs() < 1e-12, "on-axis gain is unity");
        }
    }

    #[test]
    fn gain_is_symmetric_in_angle() {
        let d = Directivity::human_speech();
        for b in 0..NUM_BANDS {
            for phi in [15.0, 45.0, 120.0] {
                assert!((d.gain(b, phi) - d.gain(b, -phi)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn high_bands_are_more_directional_than_low_bands() {
        // This is Insight 2: the front/back contrast grows with frequency.
        let d = Directivity::human_speech();
        let mut prev = -1.0;
        for b in 0..NUM_BANDS {
            let fb = d.front_back_db(b);
            assert!(
                fb > prev,
                "front/back should grow with band: {fb} after {prev}"
            );
            prev = fb;
        }
        // Low band mild (few dB), high band strong (>10 dB).
        assert!(d.front_back_db(0) < 5.0);
        assert!(d.front_back_db(6) > 10.0);
    }

    #[test]
    fn human_head_beams_harder_than_loudspeaker_at_top_band() {
        let human = Directivity::human_speech();
        let speaker = Directivity::loudspeaker();
        let phone = Directivity::phone_speaker();
        assert!(human.front_back_db(6) > speaker.front_back_db(6));
        assert!(speaker.front_back_db(6) > phone.front_back_db(6));
    }

    #[test]
    fn omni_is_flat() {
        let o = Directivity::omni();
        for b in 0..NUM_BANDS {
            for phi in [0.0, 90.0, 180.0] {
                assert!((o.gain(b, phi) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gains_vector_matches_scalar() {
        let d = Directivity::human_speech();
        let g = d.gains(72.0);
        for b in 0..NUM_BANDS {
            assert_eq!(g.get(b), d.gain(b, 72.0));
        }
    }

    #[test]
    fn perturbed_stays_valid_and_differs() {
        use ht_dsp::rng::SeedableRng;
        let mut rng = ht_dsp::rng::StdRng::seed_from_u64(11);
        let d = Directivity::human_speech();
        let p = d.perturbed(&mut rng, 0.1);
        assert_ne!(p.exponent, d.exponent);
        for b in 0..NUM_BANDS {
            assert!(p.floor.get(b) > 0.0 && p.floor.get(b) <= 1.0);
            assert!(p.exponent.get(b) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "band index")]
    fn out_of_range_band_panics() {
        Directivity::omni().gain(NUM_BANDS, 0.0);
    }
}
