//! 3-D geometry and the azimuth conventions used across the reproduction.
//!
//! Coordinates are right-handed with `z` up. Azimuths are measured in the
//! horizontal (`x`–`y`) plane in degrees, counter-clockwise from the `+x`
//! axis. A *speaker orientation* of 0° in a scene means the speaker faces the
//! device; 180° means the speaker faces directly away — matching the paper's
//! angle labels (Fig. 8/9: 14 angles spanning 360°).
use std::ops::{Add, Mul, Neg, Sub};

/// A 3-D point or vector in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component (m).
    pub x: f64,
    /// y component (m).
    pub y: f64,
    /// z component (m), positive up.
    pub z: f64,
}

impl Vec3 {
    /// The origin / zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Unit vector in the same direction; `ZERO` stays `ZERO`.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n == 0.0 {
            Vec3::ZERO
        } else {
            self * (1.0 / n)
        }
    }

    /// Horizontal azimuth of this vector in degrees, CCW from `+x`, in
    /// `(-180, 180]`.
    pub fn azimuth_deg(self) -> f64 {
        self.y.atan2(self.x).to_degrees()
    }

    /// Rotates the vector about the `z` axis by `deg` degrees (CCW).
    pub fn rotate_z_deg(self, deg: f64) -> Vec3 {
        let r = deg.to_radians();
        let (s, c) = r.sin_cos();
        Vec3 {
            x: c * self.x - s * self.y,
            y: s * self.x + c * self.y,
            z: self.z,
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// Unit direction vector in the horizontal plane for an azimuth in degrees.
///
/// ```
/// use ht_acoustics::geometry::{azimuth_to_direction, Vec3};
///
/// let east = azimuth_to_direction(0.0);
/// assert!((east.x - 1.0).abs() < 1e-12 && east.y.abs() < 1e-12);
/// let north = azimuth_to_direction(90.0);
/// assert!((north.y - 1.0).abs() < 1e-12);
/// ```
pub fn azimuth_to_direction(deg: f64) -> Vec3 {
    let r = deg.to_radians();
    Vec3::new(r.cos(), r.sin(), 0.0)
}

/// Normalizes an angle in degrees to `(-180, 180]`.
pub fn wrap_angle_deg(deg: f64) -> f64 {
    let mut a = deg % 360.0;
    if a <= -180.0 {
        a += 360.0;
    } else if a > 180.0 {
        a -= 360.0;
    }
    a
}

/// The smallest absolute angular difference between two azimuths, in
/// `[0, 180]` degrees.
pub fn angle_between_deg(a: f64, b: f64) -> f64 {
    wrap_angle_deg(a - b).abs()
}

/// The 14 speaker-orientation angles of the paper's data-collection grid
/// (§IV, "Datasets"): 0, ±15, ±30, ±45, ±60, ±90, ±135, 180.
pub const PAPER_ANGLES_DEG: [f64; 14] = [
    0.0, 15.0, -15.0, 30.0, -30.0, 45.0, -45.0, 60.0, -60.0, 90.0, -90.0, 135.0, -135.0, 180.0,
];

/// The two extra verification angles collected for Table III (±75°).
pub const EXTRA_ANGLES_DEG: [f64; 2] = [75.0, -75.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_and_distance() {
        let v = Vec3::new(3.0, 4.0, 12.0);
        assert!((v.norm() - 13.0).abs() < 1e-12);
        assert!((Vec3::ZERO.distance(v) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = Vec3::new(1.0, -2.0, 3.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn azimuth_of_cardinal_directions() {
        assert!((Vec3::new(1.0, 0.0, 0.0).azimuth_deg() - 0.0).abs() < 1e-12);
        assert!((Vec3::new(0.0, 1.0, 0.0).azimuth_deg() - 90.0).abs() < 1e-12);
        assert!((Vec3::new(-1.0, 0.0, 0.0).azimuth_deg() - 180.0).abs() < 1e-12);
        assert!((Vec3::new(0.0, -1.0, 0.0).azimuth_deg() + 90.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_norm_and_moves_azimuth() {
        let v = Vec3::new(2.0, 0.0, 5.0);
        let r = v.rotate_z_deg(45.0);
        assert!((r.norm() - v.norm()).abs() < 1e-12);
        assert!((Vec3::new(r.x, r.y, 0.0).azimuth_deg() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn wrap_angle_covers_edges() {
        assert_eq!(wrap_angle_deg(180.0), 180.0);
        assert_eq!(wrap_angle_deg(-180.0), 180.0);
        assert_eq!(wrap_angle_deg(540.0), 180.0);
        assert!((wrap_angle_deg(-190.0) - 170.0).abs() < 1e-12);
        assert!((wrap_angle_deg(370.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn angle_between_is_symmetric_and_bounded() {
        assert!((angle_between_deg(10.0, 350.0) - 20.0).abs() < 1e-12);
        assert!((angle_between_deg(350.0, 10.0) - 20.0).abs() < 1e-12);
        assert!((angle_between_deg(0.0, 180.0) - 180.0).abs() < 1e-12);
    }

    #[test]
    fn paper_angle_grid_is_complete() {
        assert_eq!(PAPER_ANGLES_DEG.len(), 14);
        // Symmetric except 0 and 180.
        for a in PAPER_ANGLES_DEG {
            assert!(PAPER_ANGLES_DEG.contains(&-a) || a == 180.0 || a == 0.0);
        }
    }

    #[test]
    fn direction_round_trip() {
        for deg in [-135.0, -60.0, 0.0, 45.0, 90.0, 180.0] {
            let d = azimuth_to_direction(deg);
            assert!((wrap_angle_deg(d.azimuth_deg() - deg)).abs() < 1e-9);
        }
    }
}
