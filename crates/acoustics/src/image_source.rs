//! The image-source model of room reverberation.
//!
//! Eq. 1 of the paper models the received signal as `y(t) = h(t) * x(t)`
//! where the room impulse response `h(t)` changes with speaker orientation
//! (Insight 1). The image-source method constructs `h(t)` explicitly: every
//! reflection path corresponds to a mirror image of the receiver across the
//! room's walls, and the *unfolded* straight line from the real source to the
//! mirrored receiver preserves both the path length and — crucially for
//! directivity — the departure direction of the first leg at the source.

use crate::bands::{BandValues, NUM_BANDS};
use crate::geometry::Vec3;
use crate::materials::air_gain;
use crate::room::Room;
use crate::AcousticsError;

/// One propagation path from source to a microphone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImagePath {
    /// Total (unfolded) path length in meters.
    pub distance: f64,
    /// Horizontal azimuth (degrees) of the departure direction at the
    /// source. Feeding this through the source directivity gives the
    /// orientation dependence of the reverberation pattern.
    pub departure_azimuth_deg: f64,
    /// Per-band gain from wall reflections and air absorption. Spherical
    /// spreading (`1/d`) and source directivity are *not* included.
    pub band_gain: BandValues,
    /// Total reflection count (0 = the direct path).
    pub order: u32,
}

/// Mirrored coordinate of `p` across walls at `0` and `len`, for image index
/// `n`: even `n` translates, odd `n` reflects.
fn mirror_coord(p: f64, len: f64, n: i32) -> f64 {
    if n.rem_euclid(2) == 0 {
        n as f64 * len + p
    } else {
        n as f64 * len + (len - p)
    }
}

/// Number of reflections at the low and high wall of one axis for image
/// index `n`.
fn reflection_counts(n: i32) -> (u32, u32) {
    let a = n.unsigned_abs();
    if n >= 0 {
        (a / 2, a - a / 2) // positive indices reflect first off the high wall
    } else {
        (a - a / 2, a / 2)
    }
}

/// Enumerates all image paths from `source_pos` to `mic_pos` inside `room`
/// up to `max_order` total reflections.
///
/// # Errors
///
/// Returns [`AcousticsError::InvalidGeometry`] when source or microphone lie
/// outside the room.
pub fn image_paths(
    room: &Room,
    source_pos: Vec3,
    mic_pos: Vec3,
    max_order: u32,
) -> Result<Vec<ImagePath>, AcousticsError> {
    if !room.contains(source_pos) {
        return Err(AcousticsError::InvalidGeometry(format!(
            "source {source_pos:?} outside room {}",
            room.name
        )));
    }
    if !room.contains(mic_pos) {
        return Err(AcousticsError::InvalidGeometry(format!(
            "microphone {mic_pos:?} outside room {}",
            room.name
        )));
    }

    // Reflection coefficients per surface, in Surface::ALL order:
    // floor, ceiling, x0, x1, y0, y1.
    let refl: Vec<BandValues> = room.materials.iter().map(|m| m.reflection()).collect();

    let order = max_order as i32;
    let mut paths = Vec::new();
    for nx in -order..=order {
        for ny in -order..=order {
            for nz in -order..=order {
                let total = nx.unsigned_abs() + ny.unsigned_abs() + nz.unsigned_abs();
                if total > max_order {
                    continue;
                }
                let img = Vec3::new(
                    mirror_coord(mic_pos.x, room.length, nx),
                    mirror_coord(mic_pos.y, room.width, ny),
                    mirror_coord(mic_pos.z, room.height, nz),
                );
                let delta = img - source_pos;
                let distance = delta.norm().max(1e-6);

                let (x_lo, x_hi) = reflection_counts(nx);
                let (y_lo, y_hi) = reflection_counts(ny);
                let (z_lo, z_hi) = reflection_counts(nz);

                let mut gain = [1.0; NUM_BANDS];
                for (b, g) in gain.iter_mut().enumerate() {
                    *g *= refl[0].get(b).powi(z_lo as i32) // floor
                        * refl[1].get(b).powi(z_hi as i32) // ceiling
                        * refl[2].get(b).powi(x_lo as i32)
                        * refl[3].get(b).powi(x_hi as i32)
                        * refl[4].get(b).powi(y_lo as i32)
                        * refl[5].get(b).powi(y_hi as i32);
                }
                let band_gain = BandValues(gain).mul(air_gain(distance));

                paths.push(ImagePath {
                    distance,
                    departure_azimuth_deg: delta.azimuth_deg(),
                    band_gain,
                    order: total,
                });
            }
        }
    }
    // Sort by arrival time: the direct path first.
    paths.sort_by(|a, b| a.distance.total_cmp(&b.distance));
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab() -> Room {
        Room::lab()
    }

    #[test]
    fn path_count_matches_combinatorics() {
        let room = lab();
        let s = Vec3::new(2.0, 2.0, 1.5);
        let m = Vec3::new(4.0, 2.0, 1.0);
        // #{(nx,ny,nz) : |nx|+|ny|+|nz| <= R}: R=0 -> 1, R=1 -> 7, R=2 -> 25,
        // R=3 -> 63.
        assert_eq!(image_paths(&room, s, m, 0).unwrap().len(), 1);
        assert_eq!(image_paths(&room, s, m, 1).unwrap().len(), 7);
        assert_eq!(image_paths(&room, s, m, 2).unwrap().len(), 25);
        assert_eq!(image_paths(&room, s, m, 3).unwrap().len(), 63);
    }

    #[test]
    fn direct_path_is_first_and_exact() {
        let room = lab();
        let s = Vec3::new(2.0, 2.0, 1.5);
        let m = Vec3::new(5.0, 2.0, 1.5);
        let paths = image_paths(&room, s, m, 2).unwrap();
        let direct = &paths[0];
        assert_eq!(direct.order, 0);
        assert!((direct.distance - 3.0).abs() < 1e-12);
        // Departure direction points from source toward the mic (+x).
        assert!(direct.departure_azimuth_deg.abs() < 1e-9);
        // No walls touched: gain is pure air absorption (≈1 at 3 m).
        for b in 0..NUM_BANDS {
            assert!(direct.band_gain.get(b) > 0.9);
        }
    }

    #[test]
    fn first_order_ceiling_bounce_geometry() {
        let room = lab();
        let s = Vec3::new(2.0, 2.0, 1.5);
        let m = Vec3::new(2.0, 2.0, 1.0);
        let paths = image_paths(&room, s, m, 1).unwrap();
        // Find the ceiling image: mirrored z = 2*H - m.z.
        let expected = (2.0 * room.height - 1.0 - 1.5).abs();
        assert!(
            paths.iter().any(|p| (p.distance - expected).abs() < 1e-9),
            "ceiling-bounce path of length {expected} missing"
        );
    }

    #[test]
    fn reflected_paths_are_weaker_per_band_than_direct() {
        let room = lab();
        let s = Vec3::new(2.0, 2.0, 1.5);
        let m = Vec3::new(4.5, 3.0, 1.0);
        let paths = image_paths(&room, s, m, 3).unwrap();
        let direct = paths.iter().find(|p| p.order == 0).unwrap();
        for p in paths.iter().filter(|p| p.order >= 2) {
            for b in 0..NUM_BANDS {
                assert!(p.band_gain.get(b) <= direct.band_gain.get(b) + 1e-12);
            }
        }
    }

    #[test]
    fn paths_sorted_by_distance() {
        let room = lab();
        let s = Vec3::new(1.0, 1.0, 1.0);
        let m = Vec3::new(5.0, 3.0, 2.0);
        let paths = image_paths(&room, s, m, 3).unwrap();
        for w in paths.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn outside_positions_are_rejected() {
        let room = lab();
        let inside = Vec3::new(1.0, 1.0, 1.0);
        let outside = Vec3::new(-1.0, 1.0, 1.0);
        assert!(image_paths(&room, outside, inside, 1).is_err());
        assert!(image_paths(&room, inside, outside, 1).is_err());
    }

    #[test]
    fn mirror_coord_matches_reflection_algebra() {
        let l = 5.0;
        let p = 1.2;
        assert_eq!(mirror_coord(p, l, 0), p);
        assert!((mirror_coord(p, l, 1) - (2.0 * l - p)).abs() < 1e-12);
        assert!((mirror_coord(p, l, -1) + p).abs() < 1e-12);
        assert!((mirror_coord(p, l, 2) - (2.0 * l + p)).abs() < 1e-12);
    }

    #[test]
    fn reflection_counts_add_up() {
        for n in -5i32..=5 {
            let (lo, hi) = reflection_counts(n);
            assert_eq!(lo + hi, n.unsigned_abs());
        }
        assert_eq!(reflection_counts(1), (0, 1));
        assert_eq!(reflection_counts(-1), (1, 0));
        assert_eq!(reflection_counts(2), (1, 1));
    }

    #[test]
    fn backward_facing_source_sees_reflections_from_behind() {
        // For a mic in front of the source (+x), the direct path departs at
        // 0° but a back-wall bounce departs near 180°: the reverberation
        // pattern carries orientation information (Insight 1).
        let room = lab();
        let s = Vec3::new(3.0, 2.0, 1.5);
        let m = Vec3::new(5.0, 2.0, 1.5);
        let paths = image_paths(&room, s, m, 1).unwrap();
        let behind = paths
            .iter()
            .filter(|p| p.order == 1)
            .any(|p| p.departure_azimuth_deg.abs() > 150.0);
        assert!(behind, "expected a departure azimuth near 180°");
    }
}
