//! Corpus-level integration tests: every wake word × voice combination must
//! produce usable, distinguishable speech.

use ht_dsp::rng::SeedableRng;
use ht_dsp::spectrum::Spectrum;
use ht_speech::replay::SpeakerModel;
use ht_speech::utterance::WakeWord;
use ht_speech::voice::VoiceProfile;

const FS: f64 = 48_000.0;

#[test]
fn every_word_and_voice_synthesizes_valid_audio() {
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(1);
    for word in WakeWord::ALL {
        for (i, voice) in VoiceProfile::panel(7).into_iter().enumerate() {
            let y = word.synthesize(&voice, &mut rng, FS);
            assert!(!y.is_empty(), "{} voice {i}", word.name());
            assert!(y.iter().all(|v| v.is_finite()));
            assert!((ht_dsp::signal::peak(&y) - 1.0).abs() < 1e-9);
            let secs = y.len() as f64 / FS;
            assert!(
                (0.25..1.5).contains(&secs),
                "{} voice {i}: {secs} s",
                word.name()
            );
        }
    }
}

#[test]
fn speech_band_dominates_for_all_panel_voices() {
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(2);
    for voice in VoiceProfile::panel(9) {
        let y = WakeWord::Computer.synthesize(&voice, &mut rng, FS);
        let s = Spectrum::of(&y, FS).unwrap();
        let speech = s.band_energy(100.0, 4_000.0);
        let above = s.band_energy(4_000.0, 12_000.0);
        assert!(speech > above, "speech band must dominate");
        assert!(above > 0.0, "but HF must be present (liveness cue)");
    }
}

#[test]
fn replay_chain_is_consistent_across_the_panel() {
    // Every voice's replay must lose HF relative to its own live version —
    // otherwise liveness detection could not generalize across speakers.
    let hf = |x: &[f64]| {
        let s = Spectrum::of(x, FS).unwrap();
        s.band_energy(5_000.0, 10_000.0) / s.band_energy(500.0, 3_000.0)
    };
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(3);
    for (i, voice) in VoiceProfile::panel(11).into_iter().enumerate() {
        let live = WakeWord::Amazon.synthesize(&voice, &mut rng, FS);
        let replay = SpeakerModel::GalaxyS21.play(&live, &mut rng, FS);
        assert!(
            hf(&live) > hf(&replay),
            "voice {i}: live {} vs replay {}",
            hf(&live),
            hf(&replay)
        );
    }
}

#[test]
fn panel_voices_produce_distinct_audio() {
    let panel = VoiceProfile::panel(13);
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(4);
    let a = WakeWord::Computer.synthesize(&panel[0], &mut rng, FS);
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(4);
    let b = WakeWord::Computer.synthesize(&panel[5], &mut rng, FS);
    assert_ne!(a, b, "different voices, same RNG -> different audio");
}

#[test]
fn male_and_female_presets_differ_in_fundamental() {
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(5);
    let m = WakeWord::HeyAssistant.synthesize(&VoiceProfile::adult_male(), &mut rng, FS);
    let f = WakeWord::HeyAssistant.synthesize(&VoiceProfile::adult_female(), &mut rng, FS);
    let centroid_low = |x: &[f64]| {
        let s = Spectrum::of(x, FS).unwrap();
        let band = s.band(80.0, 320.0);
        let total: f64 = band.iter().sum();
        band.iter()
            .enumerate()
            .map(|(k, v)| (80.0 + k as f64 * s.bin_to_hz(1)) * v)
            .sum::<f64>()
            / total
    };
    assert!(centroid_low(&f) > centroid_low(&m));
}
