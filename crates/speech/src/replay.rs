//! Loudspeaker playback models for replay attacks.
//!
//! Fig. 3 of the paper shows the discriminating signature of replayed audio:
//! the live human voice has rich detail above 4 kHz, while the replayed
//! versions (Sony SRS-X5, Galaxy S21) show *fewer high-frequency responses*
//! and *more uniformity above 4 kHz*. The playback chain here reproduces
//! those artifacts physically:
//!
//! 1. enclosure high-pass (small drivers reproduce no deep bass),
//! 2. driver resonance peak,
//! 3. high-frequency roll-off (cone mass / crossover),
//! 4. soft-clipping nonlinearity (harmonic distortion smears detail),
//! 5. a flat electronic noise floor (the "uniform" >4 kHz content).

use ht_dsp::filter::Butterworth;
use ht_dsp::rng::Rng;

/// Playback device models used for replay attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpeakerModel {
    /// High-end portable speaker (Sony SRS-X5-class): wide response,
    /// moderate distortion.
    SonySrsX5,
    /// Smartphone speaker (Galaxy S21-class): narrow response, strong
    /// midrange coloration.
    GalaxyS21,
    /// A generic small media speaker (for ASVspoof-style variety).
    GenericMedia,
}

/// The playback-chain parameters of one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaybackChain {
    /// Enclosure high-pass corner (Hz).
    pub hp_corner_hz: f64,
    /// High-frequency roll-off corner (Hz).
    pub lp_corner_hz: f64,
    /// Roll-off order (sharper = more HF loss).
    pub lp_order: usize,
    /// Driver resonance frequency (Hz).
    pub resonance_hz: f64,
    /// Resonance gain (linear, at the resonance peak).
    pub resonance_gain: f64,
    /// Soft-clip drive (higher = more distortion).
    pub drive: f64,
    /// Flat electronic noise floor (linear amplitude, relative to a
    /// peak-normalized input).
    pub noise_floor: f64,
}

impl SpeakerModel {
    /// All models.
    pub const ALL: [SpeakerModel; 3] = [
        SpeakerModel::SonySrsX5,
        SpeakerModel::GalaxyS21,
        SpeakerModel::GenericMedia,
    ];

    /// The playback chain for this device.
    pub fn chain(self) -> PlaybackChain {
        match self {
            SpeakerModel::SonySrsX5 => PlaybackChain {
                hp_corner_hz: 90.0,
                lp_corner_hz: 7_000.0,
                lp_order: 3,
                resonance_hz: 1_100.0,
                resonance_gain: 1.3,
                drive: 1.5,
                noise_floor: 0.0020,
            },
            SpeakerModel::GalaxyS21 => PlaybackChain {
                hp_corner_hz: 350.0,
                lp_corner_hz: 5_000.0,
                lp_order: 4,
                resonance_hz: 1_800.0,
                resonance_gain: 1.6,
                drive: 2.5,
                noise_floor: 0.0012,
            },
            SpeakerModel::GenericMedia => PlaybackChain {
                hp_corner_hz: 180.0,
                lp_corner_hz: 6_000.0,
                lp_order: 3,
                resonance_hz: 1_400.0,
                resonance_gain: 1.4,
                drive: 2.0,
                noise_floor: 0.0015,
            },
        }
    }

    /// Passes `audio` (a dry recording, peak-normalized) through the
    /// playback chain, returning the waveform the loudspeaker actually
    /// radiates. Feed the result to the room renderer with
    /// `Directivity::loudspeaker()` / `phone_speaker()`.
    pub fn play<R: Rng>(self, audio: &[f64], rng: &mut R, sample_rate: f64) -> Vec<f64> {
        let c = self.chain();
        if audio.is_empty() {
            return Vec::new();
        }

        let hp =
            Butterworth::highpass(2, c.hp_corner_hz, sample_rate).expect("static corner is valid");
        let lp = Butterworth::lowpass(c.lp_order, c.lp_corner_hz, sample_rate)
            .expect("static corner is valid");
        let mut x = lp.filter(&hp.filter(audio));

        // Driver resonance: add a resonant band back on top.
        let res = crate::formant::Formant::new(
            c.resonance_hz,
            c.resonance_hz * 0.25,
            c.resonance_gain - 1.0,
        );
        let resonant = crate::formant::apply_formants(&x, &[res], sample_rate);
        for (o, r) in x.iter_mut().zip(resonant.iter()) {
            *o += r;
        }

        // Soft clipping (tanh), normalized so small signals keep unit gain.
        for v in x.iter_mut() {
            *v = (c.drive * *v).tanh() / c.drive;
        }

        // Electronic noise floor: flat-spectrum hiss (the uniform >4 kHz
        // content of Fig. 3b/c).
        for v in x.iter_mut() {
            *v += c.noise_floor * ht_dsp::rng::gaussian(rng);
        }
        ht_dsp::signal::normalize_peak(&mut x, 1.0);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utterance::WakeWord;
    use crate::voice::VoiceProfile;
    use ht_dsp::rng::{SeedableRng, StdRng};
    use ht_dsp::spectrum::Spectrum;

    const FS: f64 = 48_000.0;

    fn live() -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(10);
        WakeWord::Computer.synthesize(&VoiceProfile::adult_male(), &mut rng, FS)
    }

    /// High-frequency energy relative to the mid (speech-core) band —
    /// insensitive to how much bass the device reproduces.
    fn hf_fraction(x: &[f64]) -> f64 {
        let s = Spectrum::of(x, FS).unwrap();
        s.band_energy(5_000.0, 10_000.0) / s.band_energy(500.0, 3_000.0)
    }

    #[test]
    fn replay_attenuates_high_frequencies() {
        // Fig. 3: live speech has more >4 kHz content than its replays.
        let original = live();
        let mut rng = StdRng::seed_from_u64(11);
        for model in SpeakerModel::ALL {
            let replayed = model.play(&original, &mut rng, FS);
            assert!(
                hf_fraction(&replayed) < hf_fraction(&original),
                "{model:?} should lose HF content"
            );
        }
    }

    #[test]
    fn phone_is_more_band_limited_than_sony() {
        let original = live();
        let mut rng = StdRng::seed_from_u64(12);
        let sony = SpeakerModel::SonySrsX5.play(&original, &mut rng, FS);
        let phone = SpeakerModel::GalaxyS21.play(&original, &mut rng, FS);
        assert!(hf_fraction(&phone) < hf_fraction(&sony));
        // Phone also loses more bass.
        let lf = |x: &[f64]| {
            let s = Spectrum::of(x, FS).unwrap();
            s.band_energy(80.0, 300.0) / s.band_energy(100.0, 12_000.0)
        };
        assert!(lf(&phone) < lf(&sony));
    }

    #[test]
    fn replay_high_band_is_flatter_than_live() {
        // "More uniformity above 4 kHz": in live speech the >4 kHz energy is
        // bursty in time (sibilants, stop bursts); after replay the rolled-off
        // speech HF is replaced by a steady noise floor, so the frame-level
        // HF energy varies far less.
        let original = live();
        let mut rng = StdRng::seed_from_u64(13);
        let replayed = SpeakerModel::GalaxyS21.play(&original, &mut rng, FS);
        let hf_burstiness = |x: &[f64]| {
            let hp = Butterworth::highpass(4, 5_000.0, FS).unwrap();
            let y = hp.filter(x);
            let frame_rms: Vec<f64> = ht_dsp::stft::frames(&y, 480, 480)
                .iter()
                .map(|f| ht_dsp::signal::rms(f))
                .collect();
            ht_dsp::stats::std_dev(&frame_rms) / ht_dsp::stats::mean(&frame_rms)
        };
        assert!(
            hf_burstiness(&replayed) < hf_burstiness(&original),
            "replayed HF should be temporally flatter"
        );
    }

    #[test]
    fn output_is_normalized_and_finite() {
        let original = live();
        let mut rng = StdRng::seed_from_u64(14);
        let y = SpeakerModel::GenericMedia.play(&original, &mut rng, FS);
        assert_eq!(y.len(), original.len());
        assert!((ht_dsp::signal::peak(&y) - 1.0).abs() < 1e-9);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let mut rng = StdRng::seed_from_u64(15);
        assert!(SpeakerModel::SonySrsX5.play(&[], &mut rng, FS).is_empty());
    }
}
