//! A small phoneme inventory sufficient for the paper's three wake words.
//!
//! Each phoneme knows how to synthesize itself for a given voice profile.
//! Vowels and nasals are voiced (glottal excitation through a formant bank);
//! fricatives are shaped noise — sibilants like /s/ put their energy above
//! 4 kHz, which is precisely the live-speech high-frequency content the
//! liveness detector keys on (Fig. 3); plosives are a silence+burst.

use crate::formant::{apply_formants, Formant};
use crate::glottal::excitation;
use crate::voice::VoiceProfile;
use ht_dsp::rng::Rng;

/// How a phoneme is produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Manner {
    /// Voiced vowel with a 4-formant target.
    Vowel([Formant; 4]),
    /// Nasal consonant (voiced, murmur-like, low first formant).
    Nasal([Formant; 3]),
    /// Fricative noise centered at `(center_hz, bandwidth_hz)`; `voiced`
    /// adds a glottal component (e.g. /z/ vs /s/).
    Fricative {
        /// Noise band center in Hz.
        center_hz: f64,
        /// Noise bandwidth in Hz.
        bandwidth_hz: f64,
        /// Whether voicing runs under the frication.
        voiced: bool,
    },
    /// Plosive: a closure (silence) then a noise burst at `burst_hz`.
    Plosive {
        /// Burst spectrum center in Hz.
        burst_hz: f64,
    },
    /// Aspirate /h/: broadband noise through neutral vowel formants.
    Aspirate,
}

/// One phoneme: its manner and nominal duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phoneme {
    /// Production details.
    pub manner: Manner,
    /// Nominal duration in milliseconds (scaled by the voice's rate).
    pub duration_ms: f64,
}

const fn f(freq: f64, bw: f64, amp: f64) -> Formant {
    Formant::new(freq, bw, amp)
}

impl Phoneme {
    /// /ə/ (schwa) — "comp-UH-ter".
    pub const AH: Phoneme = Phoneme {
        manner: Manner::Vowel([
            f(620.0, 80.0, 1.0),
            f(1200.0, 100.0, 0.5),
            f(2550.0, 140.0, 0.25),
            f(3500.0, 200.0, 0.1),
        ]),
        duration_ms: 90.0,
    };
    /// /æ/ — "A-mazon".
    pub const AE: Phoneme = Phoneme {
        manner: Manner::Vowel([
            f(730.0, 90.0, 1.0),
            f(1660.0, 110.0, 0.55),
            f(2490.0, 150.0, 0.25),
            f(3500.0, 200.0, 0.1),
        ]),
        duration_ms: 120.0,
    };
    /// /ɑ/ — "amaz-O-n".
    pub const AA: Phoneme = Phoneme {
        manner: Manner::Vowel([
            f(710.0, 90.0, 1.0),
            f(1100.0, 100.0, 0.55),
            f(2540.0, 150.0, 0.22),
            f(3400.0, 200.0, 0.1),
        ]),
        duration_ms: 110.0,
    };
    /// /u/ — "comp-U-ter".
    pub const UW: Phoneme = Phoneme {
        manner: Manner::Vowel([
            f(300.0, 70.0, 1.0),
            f(870.0, 90.0, 0.5),
            f(2240.0, 140.0, 0.2),
            f(3300.0, 200.0, 0.08),
        ]),
        duration_ms: 100.0,
    };
    /// /ɝ/ — "comput-ER".
    pub const ER: Phoneme = Phoneme {
        manner: Manner::Vowel([
            f(490.0, 80.0, 1.0),
            f(1350.0, 100.0, 0.6),
            f(1690.0, 120.0, 0.3),
            f(3300.0, 200.0, 0.1),
        ]),
        duration_ms: 130.0,
    };
    /// /eɪ/ — "h-EY".
    pub const EY: Phoneme = Phoneme {
        manner: Manner::Vowel([
            f(480.0, 80.0, 1.0),
            f(1900.0, 110.0, 0.6),
            f(2550.0, 150.0, 0.3),
            f(3500.0, 200.0, 0.1),
        ]),
        duration_ms: 140.0,
    };
    /// /ɪ/ — "ass-I-stant".
    pub const IH: Phoneme = Phoneme {
        manner: Manner::Vowel([
            f(390.0, 70.0, 1.0),
            f(1990.0, 110.0, 0.6),
            f(2550.0, 150.0, 0.3),
            f(3600.0, 200.0, 0.1),
        ]),
        duration_ms: 80.0,
    };
    /// /j/ glide (= short /i/) — "comp-Y-uter".
    pub const Y: Phoneme = Phoneme {
        manner: Manner::Vowel([
            f(280.0, 60.0, 0.9),
            f(2250.0, 120.0, 0.6),
            f(2890.0, 160.0, 0.3),
            f(3600.0, 200.0, 0.1),
        ]),
        duration_ms: 55.0,
    };
    /// /m/.
    pub const M: Phoneme = Phoneme {
        manner: Manner::Nasal([
            f(250.0, 60.0, 0.8),
            f(1000.0, 150.0, 0.15),
            f(2200.0, 200.0, 0.08),
        ]),
        duration_ms: 70.0,
    };
    /// /n/.
    pub const N: Phoneme = Phoneme {
        manner: Manner::Nasal([
            f(250.0, 60.0, 0.8),
            f(1400.0, 150.0, 0.15),
            f(2400.0, 200.0, 0.08),
        ]),
        duration_ms: 65.0,
    };
    /// /s/ — sibilant, energy 5–9 kHz.
    pub const S: Phoneme = Phoneme {
        manner: Manner::Fricative {
            center_hz: 6500.0,
            bandwidth_hz: 4000.0,
            voiced: false,
        },
        duration_ms: 110.0,
    };
    /// /z/ — voiced sibilant.
    pub const Z: Phoneme = Phoneme {
        manner: Manner::Fricative {
            center_hz: 6000.0,
            bandwidth_hz: 4000.0,
            voiced: true,
        },
        duration_ms: 90.0,
    };
    /// /h/.
    pub const H: Phoneme = Phoneme {
        manner: Manner::Aspirate,
        duration_ms: 70.0,
    };
    /// /k/.
    pub const K: Phoneme = Phoneme {
        manner: Manner::Plosive { burst_hz: 3000.0 },
        duration_ms: 75.0,
    };
    /// /p/.
    pub const P: Phoneme = Phoneme {
        manner: Manner::Plosive { burst_hz: 1200.0 },
        duration_ms: 75.0,
    };
    /// /t/.
    pub const T: Phoneme = Phoneme {
        manner: Manner::Plosive { burst_hz: 4500.0 },
        duration_ms: 70.0,
    };

    /// Synthesizes this phoneme for `profile` at `sample_rate`, with `pitch`
    /// a relative multiplier on the voice's f0 (prosody).
    ///
    /// Segments are normalized to manner-specific RMS targets so the
    /// phoneme classes keep realistic relative levels: vowels carry the
    /// energy, sibilants/bursts sit 10–15 dB below them (this is what gives
    /// the overall spectrum its Fig. 3 shape — dominant 200 Hz–4 kHz with
    /// present-but-weaker energy above 4 kHz).
    pub fn synthesize<R: Rng>(
        &self,
        rng: &mut R,
        profile: &VoiceProfile,
        sample_rate: f64,
        pitch: f64,
    ) -> Vec<f64> {
        let mut seg = self.synthesize_raw(rng, profile, sample_rate, pitch);
        let target = match self.manner {
            Manner::Vowel(_) => 0.10,
            Manner::Nasal(_) => 0.05,
            Manner::Fricative { .. } => 0.030 * profile.brightness,
            Manner::Plosive { .. } => 0.022 * profile.brightness.sqrt(),
            Manner::Aspirate => 0.025 * profile.brightness,
        };
        let rms = ht_dsp::signal::rms(&seg);
        if rms > 0.0 {
            let g = target / rms;
            for v in &mut seg {
                *v *= g;
            }
        }
        seg
    }

    fn synthesize_raw<R: Rng>(
        &self,
        rng: &mut R,
        profile: &VoiceProfile,
        sample_rate: f64,
        pitch: f64,
    ) -> Vec<f64> {
        let n = (self.duration_ms / 1000.0 * profile.rate.recip() * sample_rate) as usize;
        let n = n.max(16);
        match self.manner {
            Manner::Vowel(formants) => {
                let exc = excitation(rng, profile, n, sample_rate, 0.4, |t| {
                    pitch * (1.0 + 0.04 * (1.0 - 2.0 * t)) // slight declination
                });
                let scaled: Vec<Formant> = formants
                    .iter()
                    .map(|fm| fm.scaled(profile.formant_scale))
                    .collect();
                let mut y = apply_formants(&exc, &scaled, sample_rate);
                envelope(&mut y, 0.15);
                y
            }
            Manner::Nasal(formants) => {
                let exc = excitation(rng, profile, n, sample_rate, 0.15, |_| pitch);
                let scaled: Vec<Formant> = formants
                    .iter()
                    .map(|fm| fm.scaled(profile.formant_scale))
                    .collect();
                let mut y = apply_formants(&exc, &scaled, sample_rate);
                for v in &mut y {
                    *v *= 0.5; // nasal murmur is weaker than a vowel
                }
                envelope(&mut y, 0.2);
                y
            }
            Manner::Fricative {
                center_hz,
                bandwidth_hz,
                voiced,
            } => {
                let noise = ht_dsp::rng::white_noise(rng, n);
                let lo = (center_hz - bandwidth_hz / 2.0).max(200.0);
                let hi = (center_hz + bandwidth_hz / 2.0).min(sample_rate * 0.45);
                let bp = ht_dsp::filter::Butterworth::bandpass(2, lo, hi, sample_rate)
                    .expect("fricative band is valid");
                let mut y = bp.filter(&noise);
                let level = 0.25 * profile.brightness;
                for v in &mut y {
                    *v *= level;
                }
                if voiced {
                    let voice_part = excitation(rng, profile, n, sample_rate, 0.1, |_| pitch);
                    let lp = ht_dsp::filter::Butterworth::lowpass(2, 700.0, sample_rate)
                        .expect("static corner");
                    let low = lp.filter(&voice_part);
                    for (o, v) in y.iter_mut().zip(low.iter()) {
                        *o += 0.3 * v;
                    }
                }
                envelope(&mut y, 0.25);
                y
            }
            Manner::Plosive { burst_hz } => {
                let mut y = vec![0.0; n];
                let closure = n / 2;
                let burst_len = (n - closure).min((0.02 * sample_rate) as usize).max(8);
                let noise = ht_dsp::rng::white_noise(rng, burst_len);
                let lo = (burst_hz * 0.5).max(200.0);
                let hi = (burst_hz * 2.0).min(sample_rate * 0.45);
                let bp = ht_dsp::filter::Butterworth::bandpass(2, lo, hi, sample_rate)
                    .expect("burst band is valid");
                let burst = bp.filter(&noise);
                let level = 0.6 * profile.brightness.sqrt();
                for (k, &b) in burst.iter().enumerate() {
                    let decay = (-(k as f64) / (0.006 * sample_rate)).exp();
                    y[closure + k] = level * b * decay;
                }
                y
            }
            Manner::Aspirate => {
                let noise = ht_dsp::rng::white_noise(rng, n);
                let neutral = [
                    f(500.0, 150.0, 1.0).scaled(profile.formant_scale),
                    f(1500.0, 200.0, 0.5).scaled(profile.formant_scale),
                    f(2500.0, 250.0, 0.3).scaled(profile.formant_scale),
                ];
                let mut y = apply_formants(&noise, &neutral, sample_rate);
                let level = 0.08 * profile.brightness;
                for v in &mut y {
                    *v *= level;
                }
                envelope(&mut y, 0.3);
                y
            }
        }
    }
}

/// Raised-cosine attack/release over the first/last `frac` of the samples.
fn envelope(x: &mut [f64], frac: f64) {
    let n = x.len();
    let ramp = ((n as f64 * frac) as usize).max(1).min(n / 2);
    for i in 0..ramp {
        let w = 0.5 * (1.0 - (std::f64::consts::PI * i as f64 / ramp as f64).cos());
        x[i] *= w;
        x[n - 1 - i] *= w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::rng::{SeedableRng, StdRng};
    use ht_dsp::spectrum::Spectrum;

    const FS: f64 = 48_000.0;

    fn synth(p: Phoneme) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(7);
        p.synthesize(&mut rng, &VoiceProfile::adult_male(), FS, 1.0)
    }

    #[test]
    fn vowel_spectrum_peaks_near_first_formant() {
        let y = synth(Phoneme::AE);
        let s = Spectrum::of(&y, FS).unwrap();
        assert!(s.band_energy(630.0, 830.0) > s.band_energy(3000.0, 3200.0));
        assert!(!y.is_empty());
    }

    #[test]
    fn sibilant_energy_is_above_4khz() {
        let y = synth(Phoneme::S);
        let s = Spectrum::of(&y, FS).unwrap();
        assert!(
            s.band_energy(4500.0, 9000.0) > 5.0 * s.band_energy(200.0, 2000.0),
            "sibilant must be high-frequency dominated"
        );
    }

    #[test]
    fn voiced_fricative_has_low_frequency_voicing() {
        let z = synth(Phoneme::Z);
        let s_ = synth(Phoneme::S);
        let low = |x: &[f64]| Spectrum::of(x, FS).unwrap().band_energy(80.0, 500.0);
        assert!(low(&z) > 3.0 * low(&s_));
    }

    #[test]
    fn plosive_starts_with_closure_silence() {
        let y = synth(Phoneme::T);
        let n = y.len();
        let first_half_rms = ht_dsp::signal::rms(&y[..n / 3]);
        let second_half_rms = ht_dsp::signal::rms(&y[n / 2..]);
        assert!(first_half_rms < 0.05 * second_half_rms.max(1e-9));
    }

    #[test]
    fn nasal_is_weaker_than_vowel() {
        let v = synth(Phoneme::AH);
        let m = synth(Phoneme::M);
        assert!(ht_dsp::signal::rms(&m) < ht_dsp::signal::rms(&v));
    }

    #[test]
    fn duration_scales_with_rate() {
        let slow = VoiceProfile {
            rate: 0.8,
            ..VoiceProfile::adult_male()
        };
        let fast = VoiceProfile {
            rate: 1.3,
            ..VoiceProfile::adult_male()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let ys = Phoneme::AH.synthesize(&mut rng, &slow, FS, 1.0);
        let yf = Phoneme::AH.synthesize(&mut rng, &fast, FS, 1.0);
        assert!(ys.len() > yf.len());
    }

    #[test]
    fn formant_scale_moves_vowel_spectrum() {
        let male = VoiceProfile::adult_male();
        let scaled = VoiceProfile {
            formant_scale: 1.25,
            ..male
        };
        let mut rng = StdRng::seed_from_u64(2);
        let ym = Phoneme::IH.synthesize(&mut rng, &male, FS, 1.0);
        let yf = Phoneme::IH.synthesize(&mut rng, &scaled, FS, 1.0);
        let centroid = |x: &[f64]| {
            let s = Spectrum::of(x, FS).unwrap();
            let total: f64 = s.magnitudes.iter().sum();
            s.magnitudes
                .iter()
                .enumerate()
                .map(|(k, m)| s.bin_to_hz(k) * m)
                .sum::<f64>()
                / total
        };
        assert!(centroid(&yf) > centroid(&ym));
    }

    #[test]
    fn envelope_tapers_both_ends() {
        let mut x = vec![1.0; 100];
        envelope(&mut x, 0.2);
        assert!(x[0] < 0.05 && x[99] < 0.05);
        assert!((x[50] - 1.0).abs() < 1e-12);
    }
}
