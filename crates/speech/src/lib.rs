//! # ht-speech — synthetic speech substrate
//!
//! The paper's data is human speech recorded live plus the same utterances
//! replayed through loudspeakers. This crate synthesizes the stand-ins
//! (see `DESIGN.md` for the substitution argument):
//!
//! * [`voice`] — per-speaker voice profiles (pitch, formant scaling,
//!   brightness, timing), randomizable for multi-user experiments,
//! * [`glottal`] — the glottal excitation source (Rosenberg-style pulse
//!   train with jitter/shimmer and aspiration noise),
//! * [`formant`] — formant resonator filters,
//! * [`phoneme`] — a small phoneme inventory (vowels, fricatives, plosives,
//!   nasals) sufficient for the three wake words,
//! * [`utterance`] — wake-word synthesis ("Computer", "Amazon",
//!   "Hey Assistant!"),
//! * [`replay`] — loudspeaker playback models (Sony SRS-X5-class high-end
//!   speaker, Galaxy-S21-class phone) that reproduce the spectral signature
//!   replay attacks leave behind (Fig. 3: missing/flattened high-frequency
//!   detail).
//!
//! # Example
//!
//! ```
//! use ht_speech::utterance::WakeWord;
//! use ht_speech::voice::VoiceProfile;
//! use ht_dsp::rng::SeedableRng;
//!
//! let mut rng = ht_dsp::rng::StdRng::seed_from_u64(1);
//! let voice = VoiceProfile::adult_male();
//! let audio = WakeWord::Computer.synthesize(&voice, &mut rng, 48_000.0);
//! assert!(audio.len() > 10_000); // a few hundred ms at 48 kHz
//! ```

pub mod formant;
pub mod glottal;
pub mod json;
pub mod phoneme;
pub mod replay;
pub mod utterance;
pub mod voice;

pub use replay::SpeakerModel;
pub use utterance::WakeWord;
pub use voice::VoiceProfile;
