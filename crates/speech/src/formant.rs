//! Formant resonators: second-order band-pass filters that impose the
//! vocal-tract resonances on the glottal excitation.

use ht_dsp::filter::{Biquad, Sos};

/// One formant target: center frequency, bandwidth, and linear amplitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Formant {
    /// Resonance center in Hz.
    pub freq_hz: f64,
    /// −3 dB bandwidth in Hz.
    pub bandwidth_hz: f64,
    /// Linear gain of this formant's contribution.
    pub amplitude: f64,
}

impl Formant {
    /// Creates a formant target.
    pub const fn new(freq_hz: f64, bandwidth_hz: f64, amplitude: f64) -> Formant {
        Formant {
            freq_hz,
            bandwidth_hz,
            amplitude,
        }
    }

    /// Returns the formant with its frequency scaled by `k` (vocal-tract
    /// length adjustment).
    pub fn scaled(self, k: f64) -> Formant {
        Formant {
            freq_hz: self.freq_hz * k,
            ..self
        }
    }

    /// A two-pole resonator biquad at this formant (constant peak gain).
    ///
    /// Uses the standard resonator design: poles at radius
    /// `r = exp(-π·BW/fs)` and angle `2π·f/fs`, with the numerator scaled so
    /// the peak response is `amplitude`.
    pub fn resonator(self, sample_rate: f64) -> Biquad {
        let r = (-std::f64::consts::PI * self.bandwidth_hz / sample_rate).exp();
        let theta = 2.0 * std::f64::consts::PI * self.freq_hz / sample_rate;
        let a1 = -2.0 * r * theta.cos();
        let a2 = r * r;
        // Peak gain of 1/(1 + a1 z^-1 + a2 z^-2) at ω=θ is ~1/((1-r)·sqrt(...));
        // normalize empirically via the magnitude at the center frequency.
        let unnorm = Biquad {
            b: [1.0, 0.0, 0.0],
            a: [a1, a2],
        };
        let peak = unnorm.magnitude_at(self.freq_hz, sample_rate);
        Biquad {
            b: [self.amplitude / peak, 0.0, 0.0],
            a: [a1, a2],
        }
    }
}

/// Applies a parallel formant bank to the excitation: the output is the sum
/// of each resonator's response (parallel synthesis keeps per-formant
/// amplitudes independent, which we need for vowel identity).
pub fn apply_formants(excitation: &[f64], formants: &[Formant], sample_rate: f64) -> Vec<f64> {
    let mut out = vec![0.0; excitation.len()];
    for f in formants {
        let sos = Sos::new(vec![f.resonator(sample_rate)]);
        let y = sos.filter(excitation);
        for (o, v) in out.iter_mut().zip(y.iter()) {
            *o += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::spectrum::Spectrum;

    const FS: f64 = 48_000.0;

    #[test]
    fn resonator_peaks_at_center_with_requested_gain() {
        let f = Formant::new(700.0, 80.0, 2.0);
        let b = f.resonator(FS);
        assert!((b.magnitude_at(700.0, FS) - 2.0).abs() < 1e-9);
        // Response falls off away from the center.
        assert!(b.magnitude_at(1400.0, FS) < 1.0);
        assert!(b.magnitude_at(350.0, FS) < 1.0);
    }

    #[test]
    fn bandwidth_controls_sharpness() {
        let narrow = Formant::new(1000.0, 50.0, 1.0).resonator(FS);
        let wide = Formant::new(1000.0, 300.0, 1.0).resonator(FS);
        // At 1.2 kHz the narrow resonator has decayed more.
        assert!(narrow.magnitude_at(1200.0, FS) < wide.magnitude_at(1200.0, FS));
    }

    #[test]
    fn scaled_moves_frequency_only() {
        let f = Formant::new(500.0, 60.0, 1.5).scaled(1.2);
        assert!((f.freq_hz - 600.0).abs() < 1e-12);
        assert_eq!(f.bandwidth_hz, 60.0);
        assert_eq!(f.amplitude, 1.5);
    }

    #[test]
    fn formant_bank_shapes_a_pulse_train() {
        // Feed an impulse train through an /a/-like bank and verify the
        // spectrum peaks near the formant centers.
        let mut x = vec![0.0; 24_000];
        for i in (0..x.len()).step_by(400) {
            x[i] = 1.0;
        }
        let bank = [
            Formant::new(800.0, 80.0, 1.0),
            Formant::new(1200.0, 90.0, 0.6),
            Formant::new(2500.0, 120.0, 0.3),
        ];
        let y = apply_formants(&x, &bank, FS);
        let s = Spectrum::of(&y, FS).unwrap();
        assert!(s.band_energy(700.0, 900.0) > s.band_energy(1500.0, 1700.0));
        assert!(s.band_energy(1100.0, 1300.0) > s.band_energy(1800.0, 2000.0));
        assert!(s.band_energy(2400.0, 2600.0) > s.band_energy(3200.0, 3400.0));
    }

    #[test]
    fn empty_input_stays_empty() {
        let y = apply_formants(&[], &[Formant::new(500.0, 50.0, 1.0)], FS);
        assert!(y.is_empty());
    }
}
