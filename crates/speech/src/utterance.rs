//! Wake-word synthesis.
//!
//! The paper collects three wake words (§IV "Data Collection Process"):
//! "Hey Assistant!" (shared with the DoV dataset of Ahuja et al.),
//! "Computer" and "Amazon" (stock Alexa wake words). Each is a phoneme
//! sequence rendered with a voice profile; the output is peak-normalized to
//! ±1 like the paper's preprocessing, and callers set loudness via
//! `ht_acoustics::spl`.

use crate::phoneme::Phoneme;
use crate::voice::VoiceProfile;
use ht_dsp::rng::Rng;

/// The three wake words evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WakeWord {
    /// "Computer".
    Computer,
    /// "Amazon".
    Amazon,
    /// "Hey Assistant!".
    HeyAssistant,
}

impl WakeWord {
    /// All wake words, in the paper's order.
    pub const ALL: [WakeWord; 3] = [WakeWord::HeyAssistant, WakeWord::Computer, WakeWord::Amazon];

    /// Display name as written in the paper.
    pub fn name(self) -> &'static str {
        match self {
            WakeWord::Computer => "Computer",
            WakeWord::Amazon => "Amazon",
            WakeWord::HeyAssistant => "Hey Assistant!",
        }
    }

    /// The phoneme sequence, with a per-phoneme relative pitch (simple
    /// falling prosody with stress peaks).
    pub fn phonemes(self) -> Vec<(Phoneme, f64)> {
        match self {
            // /k ə m p j u t ɝ/
            WakeWord::Computer => vec![
                (Phoneme::K, 1.0),
                (Phoneme::AH, 1.02),
                (Phoneme::M, 1.0),
                (Phoneme::P, 1.0),
                (Phoneme::Y, 1.12),
                (Phoneme::UW, 1.12),
                (Phoneme::T, 1.0),
                (Phoneme::ER, 0.92),
            ],
            // /æ m ə z ɑ n/
            WakeWord::Amazon => vec![
                (Phoneme::AE, 1.12),
                (Phoneme::M, 1.05),
                (Phoneme::AH, 1.0),
                (Phoneme::Z, 1.0),
                (Phoneme::AA, 0.98),
                (Phoneme::N, 0.9),
            ],
            // /h eɪ/ + /ə s ɪ s t ə n t/
            WakeWord::HeyAssistant => vec![
                (Phoneme::H, 1.0),
                (Phoneme::EY, 1.15),
                (Phoneme::AH, 1.0),
                (Phoneme::S, 1.0),
                (Phoneme::IH, 1.08),
                (Phoneme::S, 1.0),
                (Phoneme::T, 1.0),
                (Phoneme::AH, 0.95),
                (Phoneme::N, 0.92),
                (Phoneme::T, 1.0),
            ],
        }
    }

    /// Synthesizes one spoken instance of the wake word at `sample_rate`,
    /// peak-normalized to ±1. Each call produces a slightly different
    /// rendition (jitter, shimmer, burst noise are stochastic), as repeated
    /// human utterances are.
    pub fn synthesize<R: Rng>(
        self,
        profile: &VoiceProfile,
        rng: &mut R,
        sample_rate: f64,
    ) -> Vec<f64> {
        let gap = (0.012 * sample_rate) as usize; // short coarticulation gap
        let mut out: Vec<f64> = Vec::new();
        for (ph, pitch) in self.phonemes() {
            let seg = ph.synthesize(rng, profile, sample_rate, pitch);
            // Overlap-add with a small crossfade into the gap.
            let overlap = gap.min(out.len()).min(seg.len());
            let start = out.len() - overlap;
            for (k, &v) in seg.iter().enumerate() {
                if start + k < out.len() {
                    out[start + k] += v;
                } else {
                    out.push(v);
                }
            }
        }
        ht_dsp::signal::normalize_peak(&mut out, 1.0);
        out
    }

    /// Nominal duration in seconds for a rate-1.0 voice (sum of phoneme
    /// durations; useful for buffer sizing).
    pub fn nominal_duration_s(self) -> f64 {
        self.phonemes()
            .iter()
            .map(|(p, _)| p.duration_ms)
            .sum::<f64>()
            / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::rng::{SeedableRng, StdRng};
    use ht_dsp::spectrum::Spectrum;

    const FS: f64 = 48_000.0;

    fn synth(w: WakeWord, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        w.synthesize(&VoiceProfile::adult_male(), &mut rng, FS)
    }

    #[test]
    fn durations_are_wake_word_scale() {
        for w in WakeWord::ALL {
            let y = synth(w, 1);
            let secs = y.len() as f64 / FS;
            assert!((0.3..1.2).contains(&secs), "{}: {secs} s", w.name());
            assert!((ht_dsp::signal::peak(&y) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn spectrum_matches_fig3_shape() {
        // Live human speech: dominant 200 Hz–4 kHz with exponential decay
        // around 4 kHz, but non-trivial energy above 4 kHz.
        let y = synth(WakeWord::Computer, 2);
        let s = Spectrum::of(&y, FS).unwrap();
        let low = s.band_energy(200.0, 4000.0);
        let high = s.band_energy(4000.0, 12_000.0);
        assert!(low > high, "low band dominates");
        assert!(
            high > 0.005 * low,
            "but high band is present: ratio {}",
            high / low
        );
    }

    #[test]
    fn repeated_utterances_differ_but_share_structure() {
        let a = synth(WakeWord::Amazon, 3);
        let b = synth(WakeWord::Amazon, 4);
        assert_ne!(a, b);
        // Durations agree within the jitter budget.
        let ratio = a.len() as f64 / b.len() as f64;
        assert!((0.9..1.1).contains(&ratio));
    }

    #[test]
    fn wake_words_have_distinct_lengths() {
        let c = synth(WakeWord::Computer, 5).len();
        let h = synth(WakeWord::HeyAssistant, 5).len();
        // "Hey Assistant!" has more phonemes than "Computer".
        assert!(h > c);
    }

    #[test]
    fn female_voice_has_higher_pitch() {
        let mut rng = StdRng::seed_from_u64(6);
        let male = WakeWord::Amazon.synthesize(&VoiceProfile::adult_male(), &mut rng, FS);
        let female = WakeWord::Amazon.synthesize(&VoiceProfile::adult_female(), &mut rng, FS);
        let f0_band =
            |x: &[f64], lo: f64, hi: f64| Spectrum::of(x, FS).unwrap().band_energy(lo, hi);
        // Male fundamental ~120 Hz, female ~210 Hz.
        assert!(f0_band(&male, 100.0, 140.0) > f0_band(&male, 190.0, 230.0));
        assert!(f0_band(&female, 190.0, 230.0) > f0_band(&female, 100.0, 140.0));
    }

    #[test]
    fn nominal_duration_matches_sum() {
        for w in WakeWord::ALL {
            assert!(w.nominal_duration_s() > 0.3);
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(WakeWord::HeyAssistant.name(), "Hey Assistant!");
        assert_eq!(WakeWord::ALL.len(), 3);
    }
}
