//! JSON conversions for the speech types that appear in persisted
//! artifacts (the feature cache's `CaptureSpec` sidecars).

use crate::replay::SpeakerModel;
use crate::utterance::WakeWord;
use crate::voice::VoiceProfile;
use ht_dsp::impl_unit_enum_json;
use ht_dsp::json::{field, FromJson, Json, JsonError, ToJson};

impl_unit_enum_json!(WakeWord, {
    WakeWord::Computer => "Computer",
    WakeWord::Amazon => "Amazon",
    WakeWord::HeyAssistant => "HeyAssistant",
});

impl_unit_enum_json!(SpeakerModel, {
    SpeakerModel::SonySrsX5 => "SonySrsX5",
    SpeakerModel::GalaxyS21 => "GalaxyS21",
    SpeakerModel::GenericMedia => "GenericMedia",
});

impl ToJson for VoiceProfile {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("f0_hz", self.f0_hz)
            .set("formant_scale", self.formant_scale)
            .set("brightness", self.brightness)
            .set("jitter", self.jitter)
            .set("shimmer", self.shimmer)
            .set("rate", self.rate)
    }
}

impl FromJson for VoiceProfile {
    fn from_json(v: &Json) -> Result<VoiceProfile, JsonError> {
        Ok(VoiceProfile {
            f0_hz: field(v, "f0_hz")?,
            formant_scale: field(v, "formant_scale")?,
            brightness: field(v, "brightness")?,
            jitter: field(v, "jitter")?,
            shimmer: field(v, "shimmer")?,
            rate: field(v, "rate")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_words_and_speakers_round_trip() {
        for w in WakeWord::ALL {
            assert_eq!(WakeWord::from_json(&w.to_json()).unwrap(), w);
        }
        for m in [
            SpeakerModel::SonySrsX5,
            SpeakerModel::GalaxyS21,
            SpeakerModel::GenericMedia,
        ] {
            assert_eq!(SpeakerModel::from_json(&m.to_json()).unwrap(), m);
        }
    }

    #[test]
    fn voice_profiles_round_trip_exactly() {
        for v in [VoiceProfile::adult_male(), VoiceProfile::adult_female()] {
            let text = v.to_json().dump();
            let back = VoiceProfile::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn missing_field_is_reported_by_name() {
        let broken = Json::obj().set("f0_hz", 120.0);
        let e = VoiceProfile::from_json(&broken).unwrap_err();
        assert!(e.message.contains("formant_scale"), "{}", e.message);
    }
}
