//! Per-speaker voice profiles.
//!
//! A profile captures the anatomy-driven parameters that vary between
//! speakers: fundamental frequency, vocal-tract length (as a formant scale
//! factor), spectral brightness (high-frequency energy, the liveness cue of
//! Fig. 3), pitch jitter/shimmer, and speaking rate. The cross-user
//! experiment (Fig. 16) draws ten distinct profiles.

use ht_dsp::rng::Rng;

/// The parameters of one synthetic speaker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoiceProfile {
    /// Mean fundamental frequency in Hz (male ≈ 120, female ≈ 210).
    pub f0_hz: f64,
    /// Multiplier on all formant frequencies (vocal-tract length proxy;
    /// 1.0 = reference adult male, ≈1.15 typical adult female).
    pub formant_scale: f64,
    /// High-frequency energy multiplier for aspiration/fricative noise
    /// (the >4 kHz content live speech has and replays lack).
    pub brightness: f64,
    /// Cycle-to-cycle pitch perturbation (relative, ≈0.01).
    pub jitter: f64,
    /// Cycle-to-cycle amplitude perturbation (relative, ≈0.05).
    pub shimmer: f64,
    /// Duration multiplier (1.0 = reference speaking rate).
    pub rate: f64,
}

impl VoiceProfile {
    /// Reference adult male voice.
    pub const fn adult_male() -> VoiceProfile {
        VoiceProfile {
            f0_hz: 120.0,
            formant_scale: 1.0,
            brightness: 1.0,
            jitter: 0.012,
            shimmer: 0.05,
            rate: 1.0,
        }
    }

    /// Reference adult female voice.
    pub const fn adult_female() -> VoiceProfile {
        VoiceProfile {
            f0_hz: 210.0,
            formant_scale: 1.16,
            brightness: 1.1,
            jitter: 0.010,
            shimmer: 0.045,
            rate: 1.05,
        }
    }

    /// Draws a plausible random adult voice. `female` selects the base
    /// anatomy; all parameters get independent perturbations.
    pub fn random<R: Rng>(rng: &mut R, female: bool) -> VoiceProfile {
        let base = if female {
            VoiceProfile::adult_female()
        } else {
            VoiceProfile::adult_male()
        };
        let g = |rng: &mut R, sd: f64| 1.0 + sd * ht_dsp::rng::gaussian(rng);
        VoiceProfile {
            f0_hz: (base.f0_hz * g(rng, 0.12)).clamp(70.0, 320.0),
            formant_scale: (base.formant_scale * g(rng, 0.05)).clamp(0.85, 1.3),
            brightness: (base.brightness * g(rng, 0.2)).clamp(0.4, 2.0),
            jitter: (base.jitter * g(rng, 0.3)).clamp(0.003, 0.04),
            shimmer: (base.shimmer * g(rng, 0.3)).clamp(0.01, 0.15),
            rate: (base.rate * g(rng, 0.1)).clamp(0.7, 1.4),
        }
    }

    /// The ten-participant panel of the cross-user experiment (Dataset-8:
    /// 4 male, 6 female, following the paper's demographics). Deterministic
    /// given the seed.
    pub fn panel(seed: u64) -> Vec<VoiceProfile> {
        use ht_dsp::rng::SeedableRng;
        let mut rng = ht_dsp::rng::StdRng::seed_from_u64(seed);
        let mut panel = Vec::with_capacity(10);
        for i in 0..10 {
            panel.push(VoiceProfile::random(&mut rng, i >= 4));
        }
        panel
    }
}

impl Default for VoiceProfile {
    fn default() -> Self {
        VoiceProfile::adult_male()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::rng::{SeedableRng, StdRng};

    #[test]
    fn presets_are_distinct_and_plausible() {
        let m = VoiceProfile::adult_male();
        let f = VoiceProfile::adult_female();
        assert!(f.f0_hz > m.f0_hz);
        assert!(f.formant_scale > m.formant_scale);
        for v in [m, f] {
            assert!((70.0..=320.0).contains(&v.f0_hz));
            assert!(v.jitter > 0.0 && v.shimmer > 0.0);
        }
    }

    #[test]
    fn random_voices_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..50 {
            let v = VoiceProfile::random(&mut rng, i % 2 == 0);
            assert!((70.0..=320.0).contains(&v.f0_hz));
            assert!((0.85..=1.3).contains(&v.formant_scale));
            assert!((0.4..=2.0).contains(&v.brightness));
            assert!((0.7..=1.4).contains(&v.rate));
        }
    }

    #[test]
    fn panel_is_deterministic_and_diverse() {
        let a = VoiceProfile::panel(42);
        let b = VoiceProfile::panel(42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        // All f0 values distinct (they are continuous draws).
        for i in 0..10 {
            for j in (i + 1)..10 {
                assert_ne!(a[i].f0_hz, a[j].f0_hz);
            }
        }
        // Different seed, different panel.
        assert_ne!(VoiceProfile::panel(43), a);
    }
}
