//! Glottal excitation: a Rosenberg-style pulse train with jitter, shimmer
//! and aspiration noise.
//!
//! The pulse train supplies the harmonic structure of voiced speech
//! (100 Hz – 4 kHz, Fig. 3's low band); the aspiration noise supplies the
//! breathy high-frequency energy above 4 kHz that distinguishes live speech
//! from replays.

use crate::voice::VoiceProfile;
use ht_dsp::rng::Rng;

/// One Rosenberg glottal pulse, sampled over `period` samples with an open
/// quotient of 0.6 and a speed quotient of 2.0 (rising 40%, falling 20%,
/// closed 40%).
fn rosenberg_pulse(period: usize) -> Vec<f64> {
    let open = (period as f64 * 0.6) as usize;
    let rise = (open as f64 * 2.0 / 3.0) as usize;
    (0..period)
        .map(|n| {
            if n < rise {
                // Rising phase: half-cosine ramp.
                0.5 * (1.0 - (std::f64::consts::PI * n as f64 / rise.max(1) as f64).cos())
            } else if n < open {
                // Falling phase: quarter-cosine.
                let t = (n - rise) as f64 / (open - rise).max(1) as f64;
                (std::f64::consts::FRAC_PI_2 * t).cos()
            } else {
                0.0
            }
        })
        .collect()
}

/// Generates `n` samples of glottal excitation for a voice at `f0_hz`
/// multiplied by `pitch_contour(t)` (t in `[0, 1]` across the output).
///
/// The returned excitation has a harmonic voiced component plus aspiration
/// noise scaled by `aspiration` and the profile's brightness.
pub fn excitation<R: Rng>(
    rng: &mut R,
    profile: &VoiceProfile,
    n: usize,
    sample_rate: f64,
    aspiration: f64,
    pitch_contour: impl Fn(f64) -> f64,
) -> Vec<f64> {
    let mut out = vec![0.0; n];
    if n == 0 {
        return out;
    }
    let mut pos = 0usize;
    while pos < n {
        let t = pos as f64 / n as f64;
        let f0 = (profile.f0_hz * pitch_contour(t)).clamp(50.0, 500.0);
        // Jitter perturbs each period; shimmer perturbs each amplitude.
        let f0_jittered = f0 * (1.0 + profile.jitter * ht_dsp::rng::gaussian(rng));
        let period = (sample_rate / f0_jittered.max(50.0)).round().max(8.0) as usize;
        let amp = 1.0 + profile.shimmer * ht_dsp::rng::gaussian(rng);
        let pulse = rosenberg_pulse(period);
        for (k, &p) in pulse.iter().enumerate() {
            if pos + k >= n {
                break;
            }
            out[pos + k] += amp * p;
        }
        pos += period;
    }

    // Differentiate: radiation at the lips behaves like a +6 dB/oct
    // high-pass, and the derivative of the glottal flow is the standard
    // excitation waveform.
    let mut prev = 0.0;
    for v in out.iter_mut() {
        let d = *v - prev;
        prev = *v;
        *v = d;
    }

    // Aspiration: breath noise through the glottis, high-pass tinted,
    // amplitude modulated by the voicing cycle (approximated by |signal|).
    if aspiration > 0.0 {
        let noise = ht_dsp::rng::white_noise(rng, n);
        let hp = ht_dsp::filter::Butterworth::highpass(2, 2_000.0, sample_rate)
            .expect("static corner is valid");
        let shaped = hp.filter(&noise);
        let level = aspiration * profile.brightness * 0.05;
        for (o, s) in out.iter_mut().zip(shaped.iter()) {
            *o += level * s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::rng::{SeedableRng, StdRng};
    use ht_dsp::spectrum::Spectrum;

    const FS: f64 = 48_000.0;

    fn flat(_t: f64) -> f64 {
        1.0
    }

    #[test]
    fn excitation_has_harmonic_structure() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = VoiceProfile::adult_male();
        p.jitter = 0.0;
        p.shimmer = 0.0;
        let x = excitation(&mut rng, &p, 24_000, FS, 0.0, flat);
        let s = Spectrum::of(&x, FS).unwrap();
        // Energy at the first harmonics dominates energy between them.
        let h1 = s.band_energy(110.0, 130.0);
        let gap = s.band_energy(150.0, 170.0);
        assert!(h1 > 3.0 * gap, "h1 {h1} vs gap {gap}");
    }

    #[test]
    fn pitch_contour_moves_the_fundamental() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = VoiceProfile::adult_male();
        p.jitter = 0.0;
        let hi = excitation(&mut rng, &p, 24_000, FS, 0.0, |_| 1.5);
        let s = Spectrum::of(&hi, FS).unwrap();
        // Fundamental near 180 Hz, not 120 Hz.
        assert!(s.band_energy(170.0, 190.0) > s.band_energy(110.0, 130.0));
    }

    #[test]
    fn aspiration_adds_high_frequency_energy() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = VoiceProfile::adult_male();
        let dry = excitation(&mut StdRng::seed_from_u64(3), &p, 24_000, FS, 0.0, flat);
        let breathy = excitation(&mut rng, &p, 24_000, FS, 1.0, flat);
        let hf = |x: &[f64]| Spectrum::of(x, FS).unwrap().band_energy(5_000.0, 12_000.0);
        assert!(hf(&breathy) > 2.0 * hf(&dry));
    }

    #[test]
    fn brightness_scales_aspiration() {
        let p_dull = VoiceProfile {
            brightness: 0.5,
            ..VoiceProfile::adult_male()
        };
        let p_bright = VoiceProfile {
            brightness: 2.0,
            ..VoiceProfile::adult_male()
        };
        let hf = |p: &VoiceProfile| {
            let mut rng = StdRng::seed_from_u64(4);
            let x = excitation(&mut rng, p, 24_000, FS, 1.0, flat);
            Spectrum::of(&x, FS).unwrap().band_energy(5_000.0, 12_000.0)
        };
        assert!(hf(&p_bright) > 2.0 * hf(&p_dull));
    }

    #[test]
    fn rosenberg_pulse_shape() {
        let p = rosenberg_pulse(100);
        assert_eq!(p.len(), 100);
        // Non-negative, peaks inside the open phase, closed phase is zero.
        assert!(p.iter().all(|&v| v >= 0.0));
        assert!(p[90] == 0.0);
        let peak = ht_dsp::peak::argmax(&p).unwrap();
        assert!(peak > 10 && peak < 60, "peak at {peak}");
    }

    #[test]
    fn empty_request_is_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = VoiceProfile::adult_male();
        assert!(excitation(&mut rng, &p, 0, FS, 1.0, flat).is_empty());
    }
}
