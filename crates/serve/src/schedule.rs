//! Deterministic load generation: seeded session schedules over a
//! [`WakeServer`].
//!
//! The driver replays `n_sessions` synthetic wake events through the
//! server in **waves** sized to the server's total slot capacity. Each
//! wave runs in two phases:
//!
//! 1. **Admission (serial).** Sessions open one at a time in id order on a
//!    logical clock that advances `open_spacing_ns` per attempt, so the
//!    token bucket sees one well-defined arrival sequence regardless of
//!    thread count.
//! 2. **Streaming (shard-parallel).** Admitted sessions are grouped by
//!    shard and the groups run on the `ht-par` pool. Within a group, a
//!    per-`(seed, wave, shard)` RNG interleaves the sessions' pushes with
//!    ragged chunk sizes drawn from `[chunk_min, chunk_max]` — thousands
//!    of sessions' chunks arbitrarily interleaved, yet fully determined by
//!    `(seed, scenario set)`.
//!
//! Because shards share no state and each shard's event order is fixed by
//! the seed (never by scheduling), the whole run — every decision bit,
//! every rejection — is byte-identical at any `HT_THREADS`. The
//! [`LoadReport::checksum`] folds all of it into one replayable
//! fingerprint; two runs agree iff their checksums do.

use headtalk::liveness::LivenessDetector;
use headtalk::orientation::{ModelKind, OrientationDetector};
use headtalk::stream::WakeVerdict;
use headtalk::{HeadTalk, PipelineConfig};
use ht_dsp::rng::{derive_seed, gaussian, split_stream, Rng, SeedableRng, StdRng};
use ht_ml::Dataset;

use crate::admission::RejectReason;
use crate::server::{ServeError, WakeServer};

/// Tuning for one [`run_load`] drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadConfig {
    /// Master seed; `(seed, captures)` fully determines the run.
    pub seed: u64,
    /// Synthetic wake events to replay.
    pub n_sessions: usize,
    /// Logical nanoseconds between admission attempts (what the token
    /// bucket experiences as the arrival rate).
    pub open_spacing_ns: u64,
    /// Smallest push chunk in samples (≥ 1).
    pub chunk_min: usize,
    /// Largest push chunk in samples (≥ `chunk_min`).
    pub chunk_max: usize,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            seed: 0x10AD,
            n_sessions: 1000,
            open_spacing_ns: 1_000_000,
            chunk_min: 120,
            chunk_max: 960,
        }
    }
}

/// What one [`run_load`] drive did, deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadReport {
    /// Sessions admitted and streamed to a decision.
    pub decided: usize,
    /// Decisions that accepted the wake (live human, facing).
    pub accepted: usize,
    /// Decisions that soft-muted (rejected the wake).
    pub soft_muted: usize,
    /// Opens refused by the token bucket.
    pub rejected_rate: usize,
    /// Opens refused because the target shard was full.
    pub rejected_capacity: usize,
    /// Analysis frames processed across all sessions.
    pub frames: u64,
    /// Samples ingested across all sessions and channels.
    pub samples: u64,
    /// FNV-1a fold of every per-session result (decision bits, feature
    /// bits, frame counts, rejections) in session-id order. Two runs are
    /// byte-identical iff their checksums match.
    pub checksum: u64,
}

/// FNV-1a over little-endian u64 words — the workspace's standard cheap
/// fingerprint (same constants as `ht_dsp::check`'s seed streams).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn mix(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// One admitted session waiting to stream.
#[derive(Debug, Clone, Copy)]
struct Pending {
    id: u64,
    capture: usize,
}

/// One finished session's result, reduced to comparison bits.
#[derive(Debug, Clone, Copy)]
struct SessionOutcome {
    id: u64,
    verdict: WakeVerdict,
    accepted: bool,
    live_bits: u64,
    facing_bits: u64,
    feature_fold: u64,
    frames: u64,
    samples: u64,
}

/// Replays `config.n_sessions` wake events from `captures` through
/// `server` under the seeded interleaving schedule. Session `i` (id `i`)
/// streams `captures[i % captures.len()]`.
///
/// # Errors
///
/// Propagates unexpected serving errors (the schedule itself never sends
/// malformed chunks, so evictions and pipeline failures here mean the
/// captures are degenerate).
///
/// # Panics
///
/// Panics when `captures` is empty or the chunk bounds are inverted/zero.
pub fn run_load(
    server: &WakeServer<'_>,
    captures: &[Vec<Vec<f64>>],
    config: &LoadConfig,
) -> Result<LoadReport, ServeError> {
    assert!(!captures.is_empty(), "load generation needs captures");
    assert!(
        config.chunk_min >= 1 && config.chunk_min <= config.chunk_max,
        "chunk bounds must satisfy 1 <= min <= max"
    );
    let n_shards = server.config().n_shards;
    let total_slots = n_shards * server.config().sessions_per_shard;

    let mut report = LoadReport::default();
    let mut checksum = Fnv::new();
    let mut now_ns = 0u64;
    let mut next_id = 0u64;
    let mut remaining = config.n_sessions;
    let mut wave_idx = 0u64;

    while remaining > 0 {
        let wave = remaining.min(total_slots);
        // Phase 1: serial admission in id order on the logical clock.
        let mut groups: Vec<Vec<Pending>> = vec![Vec::new(); n_shards];
        for _ in 0..wave {
            let id = next_id;
            next_id += 1;
            now_ns += config.open_spacing_ns;
            match server.open(id, now_ns) {
                Ok(()) => groups[server.shard_of(id)].push(Pending {
                    id,
                    capture: (id % captures.len() as u64) as usize,
                }),
                Err(ServeError::Rejected(RejectReason::RateLimited { .. })) => {
                    report.rejected_rate += 1;
                    checksum.mix(id);
                    checksum.mix(u64::MAX - 1);
                }
                Err(ServeError::Rejected(RejectReason::ShardFull { .. })) => {
                    report.rejected_capacity += 1;
                    checksum.mix(id);
                    checksum.mix(u64::MAX - 2);
                }
                Err(e) => return Err(e),
            }
        }
        remaining -= wave;

        // Phase 2: shard groups stream in parallel; each group's event
        // order comes from its own (seed, wave, shard) RNG stream, so the
        // pool's scheduling cannot reorder anything observable.
        let wave_seed = derive_seed(config.seed, wave_idx);
        let indexed: Vec<(usize, Vec<Pending>)> = groups.into_iter().enumerate().collect();
        let shard_results: Vec<Result<Vec<SessionOutcome>, ServeError>> =
            ht_par::par_map(&indexed, |(shard_idx, group)| {
                run_shard_group(
                    server, *shard_idx, group, wave_seed, config, captures, now_ns,
                )
            });

        // Merge in session-id order so the checksum is schedule-free.
        let mut outcomes: Vec<SessionOutcome> = Vec::new();
        for r in shard_results {
            outcomes.extend(r?);
        }
        outcomes.sort_by_key(|o| o.id);
        for o in &outcomes {
            report.decided += 1;
            if o.accepted {
                report.accepted += 1;
            } else {
                report.soft_muted += 1;
            }
            report.frames += o.frames;
            report.samples += o.samples;
            checksum.mix(o.id);
            checksum.mix(match o.verdict {
                WakeVerdict::Allow => 1,
                WakeVerdict::SoftMute => 2,
                WakeVerdict::Undecided => 3,
            });
            checksum.mix(o.live_bits);
            checksum.mix(o.facing_bits);
            checksum.mix(o.feature_fold);
            checksum.mix(o.frames);
            checksum.mix(o.samples);
        }
        wave_idx += 1;
    }
    report.checksum = checksum.0;
    Ok(report)
}

/// Streams one shard's admitted sessions to completion under the group's
/// seeded interleaving.
fn run_shard_group(
    server: &WakeServer<'_>,
    shard_idx: usize,
    group: &[Pending],
    wave_seed: u64,
    config: &LoadConfig,
    captures: &[Vec<Vec<f64>>],
    now_ns: u64,
) -> Result<Vec<SessionOutcome>, ServeError> {
    let mut rng = split_stream(wave_seed, shard_idx as u64);
    let mut cursors: Vec<(Pending, usize)> = group.iter().map(|&p| (p, 0usize)).collect();
    let mut outcomes = Vec::with_capacity(group.len());
    let mut chunk: Vec<&[f64]> = Vec::new();
    while !cursors.is_empty() {
        let pick = rng.gen_range(0..cursors.len());
        let (pending, pos) = cursors[pick];
        let capture = &captures[pending.capture];
        let len = capture[0].len();
        let take = rng
            .gen_range(config.chunk_min..config.chunk_max + 1)
            .min(len - pos);
        chunk.clear();
        chunk.extend(capture.iter().map(|c| &c[pos..pos + take]));
        server.push(pending.id, &chunk, now_ns)?;
        let pos = pos + take;
        cursors[pick].1 = pos;
        if pos == len {
            let outcome = server.finalize(pending.id, now_ns)?;
            let mut fold = Fnv::new();
            for f in &outcome.features {
                fold.mix(f.to_bits());
            }
            outcomes.push(SessionOutcome {
                id: pending.id,
                verdict: outcome.verdict,
                accepted: outcome.decision.as_ref().is_some_and(|d| d.accepted()),
                live_bits: outcome
                    .decision
                    .as_ref()
                    .map_or(0, |d| d.live_probability.to_bits()),
                facing_bits: outcome
                    .decision
                    .as_ref()
                    .map_or(0, |d| d.facing_score.to_bits()),
                feature_fold: fold.0,
                frames: outcome.frames,
                samples: (outcome.samples_per_channel * capture.len()) as u64,
            });
            cursors.swap_remove(pick);
        }
    }
    Ok(outcomes)
}

/// A pipeline with quickly trained stand-in models, for load generation,
/// benches, and tests. The streaming path under load never consults the
/// models until finalization, but every session borrows a full
/// [`HeadTalk`]; tiny synthetic training sets keep startup in
/// milliseconds. Fully seeded — two calls build byte-identical pipelines.
pub fn toy_pipeline() -> HeadTalk {
    let config = PipelineConfig::default();
    let mut rng = StdRng::seed_from_u64(0x5E54);

    let width = headtalk::features::feature_width(4, &config);
    let mut orient = Dataset::new(width);
    for i in 0..12 {
        let offset = if i % 2 == 0 { 1.0 } else { -1.0 };
        let row: Vec<f64> = (0..width)
            .map(|_| offset + 0.3 * gaussian(&mut rng))
            .collect();
        orient.push(row, (i % 2 == 0) as usize).expect("push");
    }
    let orientation =
        OrientationDetector::fit(&orient, ModelKind::Knn, 3).expect("orientation training");

    let mut live = Dataset::new(config.liveness_input_len);
    for i in 0..8 {
        let offset = if i % 2 == 0 { 0.5 } else { -0.5 };
        let row: Vec<f64> = (0..config.liveness_input_len)
            .map(|_| offset + 0.1 * gaussian(&mut rng))
            .collect();
        live.push(row, (i % 2 == 0) as usize).expect("push");
    }
    let liveness = LivenessDetector::fit(&live, 8, 2).expect("liveness training");

    HeadTalk::new(config, liveness, orientation).expect("pipeline assembly")
}

/// `n` deterministic multi-channel noise captures for load drives that
/// don't need rendered acoustics (tests, the soak): capture `i` is
/// `len + i * jitter` samples of seeded white noise per channel, so
/// lengths are deliberately unequal across sessions.
pub fn noise_captures(
    n: usize,
    n_channels: usize,
    len: usize,
    jitter: usize,
    seed: u64,
) -> Vec<Vec<Vec<f64>>> {
    (0..n)
        .map(|i| {
            let mut rng = split_stream(seed, i as u64);
            let this_len = len + i * jitter;
            (0..n_channels)
                .map(|_| (0..this_len).map(|_| 0.1 * gaussian(&mut rng)).collect())
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::TokenBucketConfig;
    use crate::server::ServeConfig;

    fn small_server_config(ht: &HeadTalk) -> ServeConfig {
        ServeConfig {
            n_shards: 2,
            sessions_per_shard: 4,
            bucket: TokenBucketConfig {
                capacity: 16,
                refill_per_sec: 1_000_000,
            },
            ..ServeConfig::for_pipeline(ht.config())
        }
    }

    #[test]
    fn same_seed_same_checksum_different_seed_different_schedule() {
        let ht = toy_pipeline();
        let captures = noise_captures(3, 4, 4800, 240, 0xCAFE);
        let config = LoadConfig {
            n_sessions: 24,
            ..LoadConfig::default()
        };

        let a = {
            let server = WakeServer::new(&ht, small_server_config(&ht));
            run_load(&server, &captures, &config).unwrap()
        };
        let b = {
            let server = WakeServer::new(&ht, small_server_config(&ht));
            run_load(&server, &captures, &config).unwrap()
        };
        assert_eq!(a, b, "same (seed, captures) must replay identically");
        assert_eq!(a.decided, 24);
        assert_eq!(a.decided, a.accepted + a.soft_muted);
        assert!(a.frames > 0 && a.samples > 0);

        // The decision bits are seed-independent (they depend only on the
        // captures), but the checksum also folds rejections — with this
        // generous bucket there are none, so a different interleaving seed
        // must still produce the same fingerprint: the point of the
        // determinism contract.
        let c = {
            let server = WakeServer::new(&ht, small_server_config(&ht));
            run_load(
                &server,
                &captures,
                &LoadConfig {
                    seed: 0xD00D,
                    ..config
                },
            )
            .unwrap()
        };
        assert_eq!(
            a.checksum, c.checksum,
            "outcomes must not depend on the interleaving"
        );
    }

    #[test]
    fn drained_bucket_rejections_are_deterministic() {
        let ht = toy_pipeline();
        let captures = noise_captures(2, 4, 4800, 0, 0xBEEF);
        let mut server_config = small_server_config(&ht);
        // 4 tokens, no refill: exactly 4 of 12 sessions admit.
        server_config.bucket = TokenBucketConfig {
            capacity: 4,
            refill_per_sec: 0,
        };
        let config = LoadConfig {
            n_sessions: 12,
            ..LoadConfig::default()
        };
        let run = |_: ()| {
            let server = WakeServer::new(&ht, server_config);
            run_load(&server, &captures, &config).unwrap()
        };
        let a = run(());
        assert_eq!(a.decided, 4);
        assert_eq!(a.rejected_rate, 8);
        assert_eq!(a.rejected_capacity, 0);
        assert_eq!(a, run(()), "rejection pattern must replay");
    }
}
