//! Deterministic load generation: seeded session schedules over a
//! [`WakeServer`].
//!
//! The driver replays `n_sessions` synthetic wake events through the
//! server in **waves**, each wave running three phases:
//!
//! 1. **Admission (serial).** Sessions open one at a time in id order on a
//!    logical clock that advances `open_spacing_ns` per attempt, so the
//!    token bucket sees one well-defined arrival sequence regardless of
//!    thread count.
//! 2. **Streaming (shard-parallel).** Admitted sessions are grouped by
//!    shard and the groups run on the `ht-par` pool. Within a group, a
//!    per-`(seed, wave, shard)` RNG interleaves the sessions' pushes with
//!    ragged chunk sizes drawn from `[chunk_min, chunk_max]` — thousands
//!    of sessions' chunks arbitrarily interleaved, yet fully determined by
//!    `(seed, scenario set)`.
//! 3. **Finalization (batched).** The wave's sessions decide through
//!    [`WakeServer::finalize_batch`]: evidence assembly is O(features) per
//!    session (the incremental accumulators — no capture re-transform) and
//!    model inference for the whole wave runs on the pool.
//!
//! Waves **overlap**: while wave `w` streams, wave `w+1`'s admission runs
//! concurrently, so the serial admission phase costs no wall-clock between
//! waves. Overlap is safe for determinism because waves are sized to half
//! of each shard's slots — two waves in flight can never fill a shard, so
//! admission outcomes depend only on the serial token-bucket sequence,
//! never on how far the concurrent streaming has progressed. (A
//! single-slot-per-shard server degenerates to drained, non-overlapped
//! waves.)
//!
//! Because shards share no state and each shard's event order is fixed by
//! the seed (never by scheduling), the whole run — every decision bit,
//! every rejection — is byte-identical at any `HT_THREADS`. The
//! [`LoadReport::checksum`] folds all of it into one replayable
//! fingerprint; two runs agree iff their checksums do.

use headtalk::liveness::LivenessDetector;
use headtalk::orientation::{ModelKind, OrientationDetector};
use headtalk::stream::WakeVerdict;
use headtalk::{HeadTalk, PipelineConfig};
use ht_dsp::rng::{derive_seed, gaussian, split_stream, Rng, SeedableRng, StdRng};
use ht_ml::Dataset;

use crate::admission::RejectReason;
use crate::server::{ServeError, WakeServer};

/// Tuning for one [`run_load`] drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadConfig {
    /// Master seed; `(seed, captures)` fully determines the run.
    pub seed: u64,
    /// Synthetic wake events to replay.
    pub n_sessions: usize,
    /// Logical nanoseconds between admission attempts (what the token
    /// bucket experiences as the arrival rate).
    pub open_spacing_ns: u64,
    /// Smallest push chunk in samples (≥ 1).
    pub chunk_min: usize,
    /// Largest push chunk in samples (≥ `chunk_min`).
    pub chunk_max: usize,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            seed: 0x10AD,
            n_sessions: 1000,
            open_spacing_ns: 1_000_000,
            chunk_min: 120,
            chunk_max: 960,
        }
    }
}

/// What one [`run_load`] drive did, deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadReport {
    /// Sessions admitted and streamed to a decision.
    pub decided: usize,
    /// Decisions that accepted the wake (live human, facing).
    pub accepted: usize,
    /// Decisions that soft-muted (rejected the wake).
    pub soft_muted: usize,
    /// Opens refused by the token bucket.
    pub rejected_rate: usize,
    /// Opens refused because the target shard was full.
    pub rejected_capacity: usize,
    /// Analysis frames processed across all sessions.
    pub frames: u64,
    /// Samples ingested across all sessions and channels.
    pub samples: u64,
    /// FNV-1a fold of every per-session result (decision bits, feature
    /// bits, frame counts, rejections) in session-id order. Two runs are
    /// byte-identical iff their checksums match.
    pub checksum: u64,
}

/// FNV-1a over little-endian u64 words — the workspace's standard cheap
/// fingerprint (same constants as `ht_dsp::check`'s seed streams).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn mix(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// One admitted session waiting to stream.
#[derive(Debug, Clone, Copy)]
struct Pending {
    id: u64,
    capture: usize,
}

/// One wave's serial admission outcome.
struct AdmitResult {
    /// Admitted sessions, grouped by shard.
    groups: Vec<Vec<Pending>>,
    /// Rejected ids with their checksum tags, in admission order.
    rejections: Vec<(u64, u64)>,
    rejected_rate: usize,
    rejected_capacity: usize,
    /// The logical clock after the wave's last admission attempt.
    end_ns: u64,
}

/// One unit of super-step work: stream a shard's admitted group, or run
/// the next wave's serial admission (concurrently with the streaming).
enum Task<'a> {
    Admit {
        base_id: u64,
        start_ns: u64,
        count: usize,
    },
    Stream {
        shard: usize,
        group: &'a [Pending],
        now_ns: u64,
        wave_seed: u64,
    },
}

enum TaskOut {
    Admitted(AdmitResult),
    Streamed(Result<(), ServeError>),
}

/// Admits `count` consecutive session ids starting at `base_id`, one per
/// `open_spacing_ns` tick of the logical clock.
fn admit_wave(
    server: &WakeServer<'_>,
    config: &LoadConfig,
    captures_len: usize,
    base_id: u64,
    start_ns: u64,
    count: usize,
) -> AdmitResult {
    let n_shards = server.config().n_shards;
    let mut groups: Vec<Vec<Pending>> = vec![Vec::new(); n_shards];
    let mut rejections = Vec::new();
    let mut rejected_rate = 0;
    let mut rejected_capacity = 0;
    let mut now_ns = start_ns;
    for offset in 0..count as u64 {
        let id = base_id + offset;
        now_ns += config.open_spacing_ns;
        match server.open(id, now_ns) {
            Ok(()) => groups[server.shard_of(id)].push(Pending {
                id,
                capture: (id % captures_len as u64) as usize,
            }),
            Err(ServeError::Rejected(RejectReason::RateLimited { .. })) => {
                rejected_rate += 1;
                rejections.push((id, u64::MAX - 1));
            }
            Err(ServeError::Rejected(RejectReason::ShardFull { .. })) => {
                rejected_capacity += 1;
                rejections.push((id, u64::MAX - 2));
            }
            // Consecutive fresh ids cannot be duplicates, and the wave
            // sizing keeps shards under capacity; anything else here is a
            // driver bug worth failing loudly on.
            Err(e) => panic!("unexpected admission error for session {id}: {e}"),
        }
    }
    AdmitResult {
        groups,
        rejections,
        rejected_rate,
        rejected_capacity,
        end_ns: now_ns,
    }
}

/// Replays `config.n_sessions` wake events from `captures` through
/// `server` under the seeded interleaving schedule. Session `i` (id `i`)
/// streams `captures[i % captures.len()]`.
///
/// # Errors
///
/// Propagates unexpected serving errors (the schedule itself never sends
/// malformed chunks, so evictions and pipeline failures here mean the
/// captures are degenerate).
///
/// # Panics
///
/// Panics when `captures` is empty or the chunk bounds are inverted/zero.
pub fn run_load(
    server: &WakeServer<'_>,
    captures: &[Vec<Vec<f64>>],
    config: &LoadConfig,
) -> Result<LoadReport, ServeError> {
    assert!(!captures.is_empty(), "load generation needs captures");
    assert!(
        config.chunk_min >= 1 && config.chunk_min <= config.chunk_max,
        "chunk bounds must satisfy 1 <= min <= max"
    );
    let n_shards = server.config().n_shards;
    let sessions_per_shard = server.config().sessions_per_shard;
    // Overlap-safe wave size: half of each shard's slots, so two waves in
    // flight (one streaming, the next admitting concurrently) can never
    // fill a shard — admission outcomes stay a pure function of the serial
    // token-bucket sequence. Waves take consecutive ids, so a wave of
    // `n_shards * k` lands at most `k` sessions on any shard.
    let overlap = sessions_per_shard >= 2;
    let wave_cap = if overlap {
        n_shards * (sessions_per_shard / 2)
    } else {
        n_shards * sessions_per_shard
    };

    let mut report = LoadReport::default();
    let mut checksum = Fnv::new();
    let mut now_ns = 0u64;
    let mut next_id = 0u64;
    let mut remaining = config.n_sessions;
    let mut wave_idx = 0u64;

    // Wave 0 admits with nothing to overlap.
    let mut current: Option<AdmitResult> = (remaining > 0).then(|| {
        let count = remaining.min(wave_cap);
        remaining -= count;
        let r = admit_wave(server, config, captures.len(), next_id, now_ns, count);
        next_id += count as u64;
        now_ns = r.end_ns;
        r
    });

    while let Some(wave) = current.take() {
        // The wave's logical time: frozen after its own admission, shared
        // by its pushes and its finalization regardless of how far the
        // overlapped next-wave admission advances the clock.
        let stream_now = now_ns;
        let next_count = remaining.min(wave_cap);

        // Super-step: this wave's shard groups stream in parallel; each
        // group's event order comes from its own (seed, wave, shard) RNG
        // stream, so the pool's scheduling cannot reorder anything
        // observable. With overlap, the next wave's serial admission rides
        // along as one more task.
        let wave_seed = derive_seed(config.seed, wave_idx);
        let mut tasks: Vec<Task<'_>> = wave
            .groups
            .iter()
            .enumerate()
            .filter(|(_, group)| !group.is_empty())
            .map(|(shard, group)| Task::Stream {
                shard,
                group,
                now_ns: stream_now,
                wave_seed,
            })
            .collect();
        if overlap && next_count > 0 {
            tasks.push(Task::Admit {
                base_id: next_id,
                start_ns: now_ns,
                count: next_count,
            });
        }
        let mut next: Option<AdmitResult> = None;
        for out in ht_par::par_map(&tasks, |task| match task {
            Task::Stream {
                shard,
                group,
                now_ns,
                wave_seed,
            } => TaskOut::Streamed(run_shard_group(
                server, *shard, group, *wave_seed, config, captures, *now_ns,
            )),
            Task::Admit {
                base_id,
                start_ns,
                count,
            } => TaskOut::Admitted(admit_wave(
                server,
                config,
                captures.len(),
                *base_id,
                *start_ns,
                *count,
            )),
        }) {
            match out {
                TaskOut::Streamed(r) => r?,
                TaskOut::Admitted(a) => next = Some(a),
            }
        }
        if let Some(a) = &next {
            remaining -= next_count;
            next_id += next_count as u64;
            now_ns = a.end_ns;
        }

        // The wave decides as one batch: per-shard O(features) assembly,
        // pooled model inference across every session at once.
        let mut ids: Vec<u64> = wave.groups.iter().flatten().map(|p| p.id).collect();
        ids.sort_unstable();
        let finalized = server.finalize_batch(&ids, stream_now);

        // Fold the wave into the report: rejections in admission order,
        // then outcomes in session-id order — schedule-free.
        for (id, tag) in &wave.rejections {
            checksum.mix(*id);
            checksum.mix(*tag);
        }
        report.rejected_rate += wave.rejected_rate;
        report.rejected_capacity += wave.rejected_capacity;
        for (id, result) in finalized {
            let outcome = result?;
            let n_channels = captures[(id % captures.len() as u64) as usize].len();
            let mut fold = Fnv::new();
            for f in &outcome.features {
                fold.mix(f.to_bits());
            }
            let samples = (outcome.samples_per_channel * n_channels) as u64;
            report.decided += 1;
            if outcome.decision.as_ref().is_some_and(|d| d.accepted()) {
                report.accepted += 1;
            } else {
                report.soft_muted += 1;
            }
            report.frames += outcome.frames;
            report.samples += samples;
            checksum.mix(id);
            checksum.mix(match outcome.verdict {
                WakeVerdict::Allow => 1,
                WakeVerdict::SoftMute => 2,
                WakeVerdict::Undecided => 3,
            });
            checksum.mix(
                outcome
                    .decision
                    .as_ref()
                    .map_or(0, |d| d.live_probability.to_bits()),
            );
            checksum.mix(
                outcome
                    .decision
                    .as_ref()
                    .map_or(0, |d| d.facing_score.to_bits()),
            );
            checksum.mix(fold.0);
            checksum.mix(outcome.frames);
            checksum.mix(samples);
        }

        // Degenerate single-slot shards cannot overlap: admit the next
        // wave only now, after this wave drained.
        if !overlap && next_count > 0 {
            remaining -= next_count;
            let r = admit_wave(server, config, captures.len(), next_id, now_ns, next_count);
            next_id += next_count as u64;
            now_ns = r.end_ns;
            next = Some(r);
        }
        current = next;
        wave_idx += 1;
    }
    report.checksum = checksum.0;
    Ok(report)
}

/// Streams one shard's admitted sessions to completion under the group's
/// seeded interleaving. Finalization happens afterwards, batched across
/// the whole wave by the driver.
fn run_shard_group(
    server: &WakeServer<'_>,
    shard_idx: usize,
    group: &[Pending],
    wave_seed: u64,
    config: &LoadConfig,
    captures: &[Vec<Vec<f64>>],
    now_ns: u64,
) -> Result<(), ServeError> {
    let mut rng = split_stream(wave_seed, shard_idx as u64);
    let mut cursors: Vec<(Pending, usize)> = group.iter().map(|&p| (p, 0usize)).collect();
    let mut chunk: Vec<&[f64]> = Vec::new();
    while !cursors.is_empty() {
        let pick = rng.gen_range(0..cursors.len());
        let (pending, pos) = cursors[pick];
        let capture = &captures[pending.capture];
        let len = capture[0].len();
        let take = rng
            .gen_range(config.chunk_min..config.chunk_max + 1)
            .min(len - pos);
        chunk.clear();
        chunk.extend(capture.iter().map(|c| &c[pos..pos + take]));
        server.push(pending.id, &chunk, now_ns)?;
        let pos = pos + take;
        cursors[pick].1 = pos;
        if pos == len {
            cursors.swap_remove(pick);
        }
    }
    Ok(())
}

/// A pipeline with quickly trained stand-in models, for load generation,
/// benches, and tests. The streaming path under load never consults the
/// models until finalization, but every session borrows a full
/// [`HeadTalk`]; tiny synthetic training sets keep startup in
/// milliseconds. Fully seeded — two calls build byte-identical pipelines.
pub fn toy_pipeline() -> HeadTalk {
    let config = PipelineConfig::default();
    let mut rng = StdRng::seed_from_u64(0x5E54);

    let width = headtalk::features::feature_width(4, &config);
    let mut orient = Dataset::new(width);
    for i in 0..12 {
        let offset = if i % 2 == 0 { 1.0 } else { -1.0 };
        let row: Vec<f64> = (0..width)
            .map(|_| offset + 0.3 * gaussian(&mut rng))
            .collect();
        orient.push(row, (i % 2 == 0) as usize).expect("push");
    }
    let orientation =
        OrientationDetector::fit(&orient, ModelKind::Knn, 3).expect("orientation training");

    let mut live = Dataset::new(config.liveness_input_len);
    for i in 0..8 {
        let offset = if i % 2 == 0 { 0.5 } else { -0.5 };
        let row: Vec<f64> = (0..config.liveness_input_len)
            .map(|_| offset + 0.1 * gaussian(&mut rng))
            .collect();
        live.push(row, (i % 2 == 0) as usize).expect("push");
    }
    let liveness = LivenessDetector::fit(&live, 8, 2).expect("liveness training");

    HeadTalk::new(config, liveness, orientation).expect("pipeline assembly")
}

/// `n` deterministic multi-channel noise captures for load drives that
/// don't need rendered acoustics (tests, the soak): capture `i` is
/// `len + i * jitter` samples of seeded white noise per channel, so
/// lengths are deliberately unequal across sessions.
pub fn noise_captures(
    n: usize,
    n_channels: usize,
    len: usize,
    jitter: usize,
    seed: u64,
) -> Vec<Vec<Vec<f64>>> {
    (0..n)
        .map(|i| {
            let mut rng = split_stream(seed, i as u64);
            let this_len = len + i * jitter;
            (0..n_channels)
                .map(|_| (0..this_len).map(|_| 0.1 * gaussian(&mut rng)).collect())
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::TokenBucketConfig;
    use crate::server::ServeConfig;

    fn small_server_config(ht: &HeadTalk) -> ServeConfig {
        ServeConfig {
            n_shards: 2,
            sessions_per_shard: 4,
            bucket: TokenBucketConfig {
                capacity: 16,
                refill_per_sec: 1_000_000,
            },
            ..ServeConfig::for_pipeline(ht.config())
        }
    }

    #[test]
    fn same_seed_same_checksum_different_seed_different_schedule() {
        let ht = toy_pipeline();
        let captures = noise_captures(3, 4, 4800, 240, 0xCAFE);
        let config = LoadConfig {
            n_sessions: 24,
            ..LoadConfig::default()
        };

        let a = {
            let server = WakeServer::new(&ht, small_server_config(&ht));
            run_load(&server, &captures, &config).unwrap()
        };
        let b = {
            let server = WakeServer::new(&ht, small_server_config(&ht));
            run_load(&server, &captures, &config).unwrap()
        };
        assert_eq!(a, b, "same (seed, captures) must replay identically");
        assert_eq!(a.decided, 24);
        assert_eq!(a.decided, a.accepted + a.soft_muted);
        assert!(a.frames > 0 && a.samples > 0);

        // The decision bits are seed-independent (they depend only on the
        // captures), but the checksum also folds rejections — with this
        // generous bucket there are none, so a different interleaving seed
        // must still produce the same fingerprint: the point of the
        // determinism contract.
        let c = {
            let server = WakeServer::new(&ht, small_server_config(&ht));
            run_load(
                &server,
                &captures,
                &LoadConfig {
                    seed: 0xD00D,
                    ..config
                },
            )
            .unwrap()
        };
        assert_eq!(
            a.checksum, c.checksum,
            "outcomes must not depend on the interleaving"
        );
    }

    #[test]
    fn drained_bucket_rejections_are_deterministic() {
        let ht = toy_pipeline();
        let captures = noise_captures(2, 4, 4800, 0, 0xBEEF);
        let mut server_config = small_server_config(&ht);
        // 4 tokens, no refill: exactly 4 of 12 sessions admit.
        server_config.bucket = TokenBucketConfig {
            capacity: 4,
            refill_per_sec: 0,
        };
        let config = LoadConfig {
            n_sessions: 12,
            ..LoadConfig::default()
        };
        let run = |_: ()| {
            let server = WakeServer::new(&ht, server_config);
            run_load(&server, &captures, &config).unwrap()
        };
        let a = run(());
        assert_eq!(a.decided, 4);
        assert_eq!(a.rejected_rate, 8);
        assert_eq!(a.rejected_capacity, 0);
        assert_eq!(a, run(()), "rejection pattern must replay");
    }
}
