//! Token-bucket admission control with typed backpressure.
//!
//! The server admits a new device session only when the bucket holds a
//! token; a drained bucket answers with a typed
//! [`RejectReason::RateLimited`] carrying the earliest retry time instead
//! of silently queueing unbounded work (the smart-speaker fleet at the
//! other end retries with that hint).
//!
//! Determinism contract: the bucket never reads a wall clock. Every
//! operation takes the caller's logical `now_ns`, so a load-generator run
//! driven by a seeded schedule is replayable tick for tick. Refill
//! arithmetic is exact over `u128` intermediates — a bucket left idle for
//! centuries of logical time refills to exactly `capacity`, never wraps,
//! and keeps sub-token remainders by only advancing its refill epoch by
//! the time that produced whole tokens.

/// Tuning for a [`TokenBucket`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenBucketConfig {
    /// Maximum tokens the bucket holds (burst size). Zero means "admit
    /// nothing": every take is rejected with no retry hint.
    pub capacity: u64,
    /// Tokens added per second of logical time. Zero means the bucket
    /// never refills (the initial `capacity` tokens are all there is).
    pub refill_per_sec: u64,
}

impl Default for TokenBucketConfig {
    fn default() -> TokenBucketConfig {
        TokenBucketConfig {
            capacity: 64,
            refill_per_sec: 256,
        }
    }
}

/// Why the server refused work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The admission bucket is empty. `retry_after_ns` is the logical
    /// nanoseconds until a token will exist, or `None` when one never will
    /// (zero capacity or zero refill).
    RateLimited {
        /// Logical ns until the next token, if tokens ever accrue.
        retry_after_ns: Option<u64>,
    },
    /// Every session slot of the target shard is in flight; the client
    /// should back off and re-open (finishing sessions free slots).
    ShardFull {
        /// The shard that was full.
        shard: usize,
        /// Its slot capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::RateLimited {
                retry_after_ns: Some(ns),
            } => write!(f, "rate limited: retry in {ns} ns"),
            RejectReason::RateLimited {
                retry_after_ns: None,
            } => write!(f, "rate limited: no tokens will accrue"),
            RejectReason::ShardFull { shard, capacity } => {
                write!(
                    f,
                    "shard {shard} full: all {capacity} session slots in flight"
                )
            }
        }
    }
}

const NS_PER_SEC: u128 = 1_000_000_000;

/// A deterministic token bucket over a caller-supplied logical clock.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    config: TokenBucketConfig,
    tokens: u64,
    /// Logical time the fractional-token remainder is measured from.
    epoch_ns: u64,
}

impl TokenBucket {
    /// A full bucket whose refill epoch starts at logical time zero.
    pub fn new(config: TokenBucketConfig) -> TokenBucket {
        TokenBucket {
            config,
            tokens: config.capacity,
            epoch_ns: 0,
        }
    }

    /// The configuration this bucket runs under.
    pub fn config(&self) -> &TokenBucketConfig {
        &self.config
    }

    /// Tokens available at logical time `now_ns` (refills first).
    pub fn available(&mut self, now_ns: u64) -> u64 {
        self.refill(now_ns);
        self.tokens
    }

    /// Takes one token at logical time `now_ns`.
    ///
    /// # Errors
    ///
    /// Returns [`RejectReason::RateLimited`] with the earliest retry time
    /// when the bucket is empty.
    pub fn try_take(&mut self, now_ns: u64) -> Result<(), RejectReason> {
        self.refill(now_ns);
        if self.tokens > 0 {
            self.tokens -= 1;
            return Ok(());
        }
        Err(RejectReason::RateLimited {
            retry_after_ns: self.ns_until_next_token(now_ns),
        })
    }

    /// Credits whole tokens accrued since the epoch, keeping the
    /// sub-token remainder by advancing the epoch only by the time that
    /// produced whole tokens. Time never flows backwards: a stale `now_ns`
    /// is a no-op, so out-of-order observations cannot mint tokens.
    fn refill(&mut self, now_ns: u64) {
        if self.config.refill_per_sec == 0 || now_ns <= self.epoch_ns {
            // Still pin the epoch forward for the rate-zero case so retry
            // hints stay meaningful relative to `now_ns`.
            if self.config.refill_per_sec == 0 {
                self.epoch_ns = self.epoch_ns.max(now_ns);
            }
            return;
        }
        let elapsed = (now_ns - self.epoch_ns) as u128;
        let rate = self.config.refill_per_sec as u128;
        // elapsed < 2^64 and rate < 2^64, so the product fits u128 exactly.
        let accrued = elapsed * rate / NS_PER_SEC;
        if accrued == 0 {
            return;
        }
        let headroom = (self.config.capacity - self.tokens) as u128;
        if accrued >= headroom {
            // Full: any fractional remainder is forfeit (a full bucket
            // stores no credit), so the epoch snaps to now.
            self.tokens = self.config.capacity;
            self.epoch_ns = now_ns;
        } else {
            self.tokens += accrued as u64;
            // Advance by exactly the time that minted `accrued` tokens;
            // the remainder keeps accruing from the new epoch.
            let consumed_ns = accrued * NS_PER_SEC / rate;
            self.epoch_ns += consumed_ns as u64;
        }
    }

    /// Logical ns from `now_ns` until one token exists, or `None` when
    /// tokens never accrue.
    fn ns_until_next_token(&self, now_ns: u64) -> Option<u64> {
        if self.config.capacity == 0 || self.config.refill_per_sec == 0 {
            return None;
        }
        let rate = self.config.refill_per_sec as u128;
        // First instant t with (t - epoch) * rate / 1e9 >= 1.
        let target = self.epoch_ns as u128 + NS_PER_SEC.div_ceil(rate);
        Some(target.saturating_sub(now_ns as u128).max(1) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::check::property;

    #[test]
    fn full_bucket_grants_exactly_capacity_as_a_burst() {
        // Burst exactly at capacity: all succeed, the very next is typed.
        let mut b = TokenBucket::new(TokenBucketConfig {
            capacity: 7,
            refill_per_sec: 0,
        });
        for i in 0..7 {
            assert!(b.try_take(0).is_ok(), "take {i}");
        }
        assert_eq!(
            b.try_take(0),
            Err(RejectReason::RateLimited {
                retry_after_ns: None
            })
        );
    }

    #[test]
    fn zero_capacity_bucket_rejects_everything_forever() {
        let mut b = TokenBucket::new(TokenBucketConfig {
            capacity: 0,
            refill_per_sec: 1_000_000,
        });
        for now in [0u64, 1, 1_000_000_000, u64::MAX] {
            assert_eq!(
                b.try_take(now),
                Err(RejectReason::RateLimited {
                    retry_after_ns: None
                }),
                "at {now}"
            );
            assert_eq!(b.available(now), 0);
        }
    }

    #[test]
    fn refill_is_exact_and_keeps_subtoken_remainders() {
        let mut b = TokenBucket::new(TokenBucketConfig {
            capacity: 10,
            refill_per_sec: 2, // one token per 500 ms
        });
        for _ in 0..10 {
            b.try_take(0).unwrap();
        }
        // 499 ms: still empty, retry hint points at the 500 ms boundary.
        assert_eq!(
            b.try_take(499_000_000),
            Err(RejectReason::RateLimited {
                retry_after_ns: Some(1_000_000)
            })
        );
        // 500 ms: exactly one token.
        assert!(b.try_take(500_000_000).is_ok());
        assert_eq!(b.available(500_000_000), 0);
        // 999 ms total: the 499 ms remainder carried over, so the next
        // token lands at 1000 ms, not 1499 ms.
        assert!(b.try_take(999_000_000).is_err());
        assert!(b.try_take(1_000_000_000).is_ok());
    }

    #[test]
    fn long_idle_gaps_never_saturate() {
        // A bucket left idle for the maximum representable logical time
        // refills to exactly capacity — no u64 wrap, no panic.
        let mut b = TokenBucket::new(TokenBucketConfig {
            capacity: 3,
            refill_per_sec: u64::MAX,
        });
        for _ in 0..3 {
            b.try_take(0).unwrap();
        }
        assert_eq!(b.available(u64::MAX), 3);
        for _ in 0..3 {
            b.try_take(u64::MAX).unwrap();
        }
        assert!(b.try_take(u64::MAX).is_err());
    }

    #[test]
    fn stale_timestamps_mint_nothing() {
        let mut b = TokenBucket::new(TokenBucketConfig {
            capacity: 1,
            refill_per_sec: 1_000_000_000,
        });
        b.try_take(1_000).unwrap();
        // Time appears to run backwards (reordered events): no credit.
        assert_eq!(b.available(0), 0);
        assert_eq!(b.available(999), 0);
    }

    #[test]
    fn prop_tokens_never_exceed_capacity_and_grants_are_bounded() {
        property("bucket_invariants").cases(64).run(|g| {
            let capacity = g.u64_in(0..20);
            let refill_per_sec = *g.choose(&[0u64, 1, 3, 1_000, 1_000_000_000, u64::MAX]);
            let mut b = TokenBucket::new(TokenBucketConfig {
                capacity,
                refill_per_sec,
            });
            let mut now: u64 = 0;
            let mut granted: u64 = 0;
            let mut max_elapsed: u128 = 0;
            for _ in 0..g.usize_in(1..200) {
                // Mostly small steps, occasionally a huge idle gap.
                let step = if g.usize_in(0..10) == 0 {
                    g.u64_in(0..u64::MAX / 2)
                } else {
                    g.u64_in(0..2_000_000_000)
                };
                now = now.saturating_add(step);
                max_elapsed += step as u128;
                if b.try_take(now).is_ok() {
                    granted += 1;
                }
                assert!(b.available(now) <= capacity, "tokens exceed capacity");
            }
            // Conservation: grants never exceed the initial burst plus
            // everything the refill rate could possibly have minted.
            let minted_bound = if refill_per_sec == 0 {
                0
            } else {
                // Saturating: the bound only ever needs to reach u64::MAX.
                (max_elapsed.saturating_mul(refill_per_sec as u128) / NS_PER_SEC)
                    .saturating_add(1)
                    .min(u64::MAX as u128) as u64
            };
            assert!(
                granted <= capacity.saturating_add(minted_bound),
                "granted {granted} > capacity {capacity} + minted bound {minted_bound}"
            );
        });
    }

    #[test]
    fn prop_retry_hint_is_honored_and_tight() {
        // Satellite: whenever a take is rejected with a finite retry hint,
        // a take at exactly `now + hint` succeeds (provided no other taker
        // raced) — and the hint is *tight*: one nanosecond earlier is still
        // rejected. Widened over random capacities and refill rates from
        // one token per second up to one per nanosecond, with both gentle
        // and multi-second arrival gaps.
        property("bucket_retry_hint").cases(128).run(|g| {
            let capacity = g.u64_in(1..64);
            let refill_per_sec = *g.choose(&[
                1u64,
                2,
                7,
                1_000,
                48_000,
                999_983, // prime: exercises sub-token remainder carries
                1_000_000,
                123_456_789,
                1_000_000_000,
            ]);
            let mut b = TokenBucket::new(TokenBucketConfig {
                capacity,
                refill_per_sec,
            });
            let mut now: u64 = 0;
            for _ in 0..g.usize_in(1..80) {
                let step = if g.usize_in(0..4) == 0 {
                    g.u64_in(0..30_000_000_000) // multi-second idle gap
                } else {
                    g.u64_in(0..500_000_000)
                };
                now = now.saturating_add(step);
                match b.try_take(now) {
                    Ok(()) => {}
                    Err(RejectReason::RateLimited {
                        retry_after_ns: Some(hint),
                    }) => {
                        if hint > 1 {
                            // Tightness: probe a clone so the real bucket's
                            // epoch is untouched by the early attempt.
                            assert!(
                                b.clone().try_take(now + hint - 1).is_err(),
                                "one ns before the hint must still reject \
                                 (now {now}, hint {hint})"
                            );
                        }
                        now = now.saturating_add(hint);
                        assert!(
                            b.try_take(now).is_ok(),
                            "retry at now+{hint} must be granted"
                        );
                    }
                    Err(other) => panic!("unexpected rejection {other:?}"),
                }
            }
        });
    }
}
