//! Per-shard session-slot arenas.
//!
//! A shard owns a small pool of reusable session slots. Each slot is a
//! fully assembled [`WakeStream`] — ring, STFT plan + scratch, gate,
//! capture accumulator — built at most once and **reset, never dropped**
//! between sessions, so steady-state serving touches the heap only when a
//! capture outgrows every capture a slot has seen before. (The FFT plans
//! behind every slot come from `ht_dsp`'s shared size-keyed plan cache, so
//! even first-time slot construction reuses twiddle tables across the
//! whole process.)
//!
//! The arena tracks two monotone high-water marks that the eviction
//! regression tests pin flat:
//!
//! * `live_hwm` — most slots simultaneously in flight,
//! * `built` — total slots ever constructed (i.e. allocation events).
//!
//! A failed or evicted session that *leaked* its slot would show up as a
//! rising `live_hwm`; a release path that dropped the slot instead of
//! resetting it would show up as a rising `built`.

use headtalk::{HeadTalk, HeadTalkError, StreamConfig, WakeStream};

/// A pool of reusable [`WakeStream`] slots for one shard.
#[derive(Debug)]
pub struct ShardArena<'ht> {
    ht: &'ht HeadTalk,
    n_channels: usize,
    stream_config: StreamConfig,
    capacity: usize,
    /// Constructed slots; `slots[i]` may be in flight or free.
    slots: Vec<WakeStream<'ht>>,
    /// Indices into `slots` that are free, in LIFO order (reuse the most
    /// recently warmed slot first — its buffers are hottest).
    free: Vec<usize>,
    live: usize,
    live_hwm: usize,
    built: usize,
}

impl<'ht> ShardArena<'ht> {
    /// An empty arena that will build at most `capacity` slots lazily.
    pub fn new(
        ht: &'ht HeadTalk,
        n_channels: usize,
        stream_config: StreamConfig,
        capacity: usize,
    ) -> ShardArena<'ht> {
        ShardArena {
            ht,
            n_channels,
            stream_config,
            capacity,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            live_hwm: 0,
            built: 0,
        }
    }

    /// Acquires a slot: pops a warmed free slot or lazily builds a new one
    /// while under capacity. Returns the slot index, or `None` when every
    /// slot is in flight (the caller maps this to
    /// [`RejectReason::ShardFull`](crate::RejectReason::ShardFull)).
    ///
    /// # Errors
    ///
    /// Propagates stream-construction errors (bad geometry, untrained
    /// feature width) from the first build of a slot.
    pub fn acquire(&mut self) -> Result<Option<usize>, HeadTalkError> {
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                if self.slots.len() >= self.capacity {
                    return Ok(None);
                }
                let slot = self.ht.streamer_with(self.n_channels, self.stream_config)?;
                self.slots.push(slot);
                self.built += 1;
                self.slots.len() - 1
            }
        };
        self.live += 1;
        self.live_hwm = self.live_hwm.max(self.live);
        Ok(Some(idx))
    }

    /// Releases a slot back to the pool, resetting it in place so the next
    /// acquisition starts from a clean stream without new allocations.
    ///
    /// # Panics
    ///
    /// Panics on a double release or an out-of-range index (both are
    /// serving-layer bugs, not client errors).
    pub fn release(&mut self, idx: usize) {
        assert!(idx < self.slots.len(), "release of unbuilt slot {idx}");
        assert!(
            !self.free.contains(&idx),
            "double release of slot {idx} (serving-layer bug)"
        );
        self.slots[idx].reset();
        self.free.push(idx);
        self.live -= 1;
    }

    /// Eagerly builds slots until `n` exist (bounded by the capacity), so
    /// the first `n` acquisitions skip construction entirely — the fix for
    /// lazy-construction tail latency on `open`. Returns the number of
    /// slots built by this call; already-built slots count toward `n` but
    /// are not rebuilt.
    ///
    /// # Errors
    ///
    /// Propagates stream-construction errors (bad geometry, untrained
    /// feature width) from the first failing build; earlier slots stay
    /// built and usable.
    pub fn prewarm(&mut self, n: usize) -> Result<usize, HeadTalkError> {
        let target = n.min(self.capacity);
        let mut built_now = 0;
        while self.slots.len() < target {
            let slot = self.ht.streamer_with(self.n_channels, self.stream_config)?;
            self.slots.push(slot);
            self.free.push(self.slots.len() - 1);
            self.built += 1;
            built_now += 1;
        }
        Ok(built_now)
    }

    /// The slot at `idx` (must be acquired).
    pub fn slot_mut(&mut self, idx: usize) -> &mut WakeStream<'ht> {
        &mut self.slots[idx]
    }

    /// Hands out disjoint mutable borrows of the slots at `indices`, so
    /// per-session work (batch-finalize assembly) can proceed in parallel
    /// across the sessions of one shard while the shard stays locked.
    ///
    /// # Panics
    ///
    /// Panics unless `indices` is strictly increasing and in range — the
    /// caller derives it from the session map, where each live session
    /// owns a distinct slot, so a violation is a serving-layer bug.
    pub fn disjoint_slots_mut(&mut self, indices: &[usize]) -> Vec<&mut WakeStream<'ht>> {
        let mut out = Vec::with_capacity(indices.len());
        let mut rest = self.slots.as_mut_slice();
        let mut offset = 0;
        for &idx in indices {
            let skip = idx
                .checked_sub(offset)
                .expect("disjoint slot indices must be strictly increasing");
            let (_, tail) = rest.split_at_mut(skip);
            let (slot, tail) = tail
                .split_first_mut()
                .expect("disjoint slot index out of range");
            out.push(slot);
            offset = idx + 1;
            rest = tail;
        }
        out
    }

    /// Immutable access to the slot at `idx`.
    pub fn slot(&self, idx: usize) -> &WakeStream<'ht> {
        &self.slots[idx]
    }

    /// Slots currently in flight.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Most slots simultaneously in flight over the arena's lifetime.
    pub fn live_hwm(&self) -> usize {
        self.live_hwm
    }

    /// Total slots ever constructed (each is one burst of allocations).
    pub fn built(&self) -> usize {
        self.built
    }

    /// The slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use headtalk::PipelineConfig;
    use ht_dsp::rng::{gaussian, SeedableRng, StdRng};
    use ht_ml::Dataset;

    fn toy_pipeline() -> HeadTalk {
        let config = PipelineConfig::default();
        let mut rng = StdRng::seed_from_u64(0xA7E4A);
        let width = headtalk::features::feature_width(4, &config);
        let mut orient = Dataset::new(width);
        for i in 0..12 {
            let offset = if i % 2 == 0 { 1.0 } else { -1.0 };
            let row: Vec<f64> = (0..width)
                .map(|_| offset + 0.3 * gaussian(&mut rng))
                .collect();
            orient.push(row, (i % 2 == 0) as usize).unwrap();
        }
        let orientation = headtalk::orientation::OrientationDetector::fit(
            &orient,
            headtalk::orientation::ModelKind::Knn,
            3,
        )
        .unwrap();
        let mut live = Dataset::new(config.liveness_input_len);
        for i in 0..8 {
            let offset = if i % 2 == 0 { 0.5 } else { -0.5 };
            let row: Vec<f64> = (0..config.liveness_input_len)
                .map(|_| offset + 0.1 * gaussian(&mut rng))
                .collect();
            live.push(row, (i % 2 == 0) as usize).unwrap();
        }
        let liveness = headtalk::liveness::LivenessDetector::fit(&live, 8, 2).unwrap();
        HeadTalk::new(config, liveness, orientation).unwrap()
    }

    #[test]
    fn acquire_release_recycles_one_slot() {
        let ht = toy_pipeline();
        let cfg = StreamConfig::for_pipeline(ht.config());
        let mut arena = ShardArena::new(&ht, 4, cfg, 4);
        for _ in 0..10 {
            let idx = arena.acquire().unwrap().expect("slot");
            arena.release(idx);
        }
        assert_eq!(arena.built(), 1, "one slot serves sequential sessions");
        assert_eq!(arena.live_hwm(), 1);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn capacity_bounds_in_flight_slots() {
        let ht = toy_pipeline();
        let cfg = StreamConfig::for_pipeline(ht.config());
        let mut arena = ShardArena::new(&ht, 4, cfg, 2);
        let a = arena.acquire().unwrap().expect("slot a");
        let b = arena.acquire().unwrap().expect("slot b");
        assert_eq!(arena.acquire().unwrap(), None, "third acquire must refuse");
        assert_eq!(arena.live(), 2);
        arena.release(a);
        let c = arena.acquire().unwrap().expect("slot after release");
        assert_eq!(c, a, "freed slot is reused");
        arena.release(b);
        arena.release(c);
        assert_eq!(arena.built(), 2);
        assert_eq!(arena.live_hwm(), 2);
    }

    #[test]
    fn prewarm_builds_eagerly_and_acquire_reuses() {
        let ht = toy_pipeline();
        let cfg = StreamConfig::for_pipeline(ht.config());
        let mut arena = ShardArena::new(&ht, 4, cfg, 3);
        assert_eq!(arena.prewarm(2).unwrap(), 2);
        assert_eq!(arena.built(), 2);
        // Prewarming past capacity clamps; re-prewarming builds nothing.
        assert_eq!(arena.prewarm(10).unwrap(), 1);
        assert_eq!(arena.built(), 3);
        assert_eq!(arena.prewarm(10).unwrap(), 0);
        // Every acquisition now reuses a prewarmed slot.
        let a = arena.acquire().unwrap().expect("slot");
        let b = arena.acquire().unwrap().expect("slot");
        let c = arena.acquire().unwrap().expect("slot");
        assert_eq!(arena.built(), 3, "no lazy construction after prewarm");
        assert_eq!(arena.acquire().unwrap(), None, "capacity still bounds");
        arena.release(a);
        arena.release(b);
        arena.release(c);
    }

    #[test]
    fn disjoint_slots_mut_hands_out_every_requested_slot() {
        let ht = toy_pipeline();
        let cfg = StreamConfig::for_pipeline(ht.config());
        let mut arena = ShardArena::new(&ht, 4, cfg, 4);
        arena.prewarm(4).unwrap();
        let slots = arena.disjoint_slots_mut(&[0, 2, 3]);
        assert_eq!(slots.len(), 3);
        // The borrows are usable mutably and genuinely disjoint.
        for slot in slots {
            slot.reset();
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn disjoint_slots_mut_rejects_duplicates() {
        let ht = toy_pipeline();
        let cfg = StreamConfig::for_pipeline(ht.config());
        let mut arena = ShardArena::new(&ht, 4, cfg, 4);
        arena.prewarm(2).unwrap();
        arena.disjoint_slots_mut(&[1, 1]);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_is_a_loud_bug() {
        let ht = toy_pipeline();
        let cfg = StreamConfig::for_pipeline(ht.config());
        let mut arena = ShardArena::new(&ht, 4, cfg, 2);
        let a = arena.acquire().unwrap().expect("slot");
        arena.release(a);
        arena.release(a);
    }
}
