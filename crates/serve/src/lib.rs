//! # ht-serve — the multi-tenant wake-word server
//!
//! Serving infrastructure over the `headtalk` pipeline: many device
//! sessions multiplexed onto one trained model set, with deterministic
//! scheduling so every load test and incident is replayable from a seed.
//!
//! The layer stack:
//!
//! * [`TokenBucket`] / [`RejectReason`] ([`admission`]) — logical-clock
//!   rate limiting with typed backpressure; no wall clock anywhere.
//! * [`ShardArena`] ([`arena`]) — per-shard pools of reusable
//!   [`WakeStream`](headtalk::WakeStream) slots; steady-state serving is
//!   allocation-free because slots are reset in place, never rebuilt.
//! * [`WakeServer`] ([`server`]) — session-sharded front end: open /
//!   push / finalize with eager eviction on mid-stream geometry
//!   violations and idle timeouts.
//! * [`run_load`] ([`schedule`]) — the seeded load generator: waves of
//!   sessions, serial admission, shard-parallel ragged-chunk
//!   interleavings, all byte-identical for a `(seed, scenario set)` pair
//!   at any `HT_THREADS` (the interleaving property suite pins this
//!   against solo batch [`process_wake`](headtalk::HeadTalk::process_wake)
//!   results).
//!
//! The `ht_loadgen` binary drives [`run_load`] from the command line; the
//! `server_throughput` bench gates sustained decisions/sec and tail
//! latency in CI via `BENCH_server.json`.

mod admission;
mod arena;
mod schedule;
mod server;

pub use admission::{RejectReason, TokenBucket, TokenBucketConfig};
pub use arena::ShardArena;
pub use schedule::{noise_captures, run_load, toy_pipeline, LoadConfig, LoadReport};
pub use server::{ServeConfig, ServeError, ServeStats, ShardStats, WakeServer};
